//! Differential correctness: the optimized memory substrate against plain
//! reference models.
//!
//! The hot-path implementations trade clarity for speed: `SetAssocCache`
//! packs valid/dirty flags into the tag word, probes an MRU way first and
//! skips refreshing its LRU stamp; `PageTable` translates through a chunked
//! dense array with a per-accessor lookaside instead of a hash map;
//! `MemorySystem` drains its traffic ledger by swapping scratch buffers
//! instead of allocating per quantum. These properties drive the optimized
//! types and straightforward reference models — a recency-list LRU, a
//! `HashMap` page table, and a drain that materializes a fresh ledger every
//! epoch — through identical operation streams and require *bit-identical*
//! observable behavior: per-access outcomes, write-back addresses, hit/miss
//! statistics, placement decisions, capacity accounting, and per-class
//! per-link traffic.

use std::collections::HashMap;

use proptest::prelude::*;

use oovr_mem::{
    AccessLevel, Addr, GpmId, MemConfig, MemOp, MemorySystem, OpKind, PageTable, Placement, Region,
    SetAssocCache, Traffic, TrafficClass, LINE_SIZE, PAGE_SIZE,
};

// ---------------------------------------------------------------------------
// Reference cache: LRU as an explicit recency list.
// ---------------------------------------------------------------------------

struct RefLine {
    line: u64,
    dirty: bool,
}

/// Textbook set-associative LRU cache: each set is a recency-ordered list
/// (front = least recent). No flag packing, no MRU probe, no stamps.
struct RefCache {
    ways: usize,
    sets: usize,
    line_size: u64,
    data: Vec<Vec<RefLine>>,
    accesses: u64,
    hits: u64,
    writebacks: u64,
}

impl RefCache {
    fn new(capacity_bytes: u64, ways: usize, line_size: u64) -> Self {
        // Same geometry derivation as `SetAssocCache::new`.
        let lines = capacity_bytes / line_size;
        let target = (lines / ways as u64).max(1);
        let sets = (1u64 << (63 - target.leading_zeros())) as usize;
        RefCache {
            ways,
            sets,
            line_size,
            data: (0..sets).map(|_| Vec::new()).collect(),
            accesses: 0,
            hits: 0,
            writebacks: 0,
        }
    }

    /// Returns `(hit, write-back address)`.
    fn access(&mut self, addr: Addr, write: bool) -> (bool, Option<Addr>) {
        self.accesses += 1;
        let line = addr.0 / self.line_size;
        let set = &mut self.data[(line as usize) & (self.sets - 1)];
        if let Some(pos) = set.iter().position(|l| l.line == line) {
            let mut l = set.remove(pos);
            l.dirty |= write;
            set.push(l);
            self.hits += 1;
            return (true, None);
        }
        let mut writeback = None;
        if set.len() == self.ways {
            let victim = set.remove(0);
            if victim.dirty {
                self.writebacks += 1;
                writeback = Some(Addr(victim.line * self.line_size));
            }
        }
        set.push(RefLine { line, dirty: write });
        (false, writeback)
    }

    fn flush_dirty(&mut self) -> Vec<Addr> {
        let mut out = Vec::new();
        for set in &mut self.data {
            for l in set.iter_mut() {
                if l.dirty {
                    out.push(Addr(l.line * self.line_size));
                    l.dirty = false;
                }
            }
        }
        self.writebacks += out.len() as u64;
        out
    }
}

// ---------------------------------------------------------------------------
// Reference page table: a plain hash map.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
struct RefPage {
    home: u8,
    replicas: u16,
}

struct RefPageTable {
    n_gpms: usize,
    default_policy: Placement,
    regions: Vec<(Region, Placement)>,
    pages: HashMap<u64, RefPage>,
    resident: Vec<u64>,
}

impl RefPageTable {
    fn new(n_gpms: usize, default_policy: Placement) -> Self {
        RefPageTable {
            n_gpms,
            default_policy,
            regions: Vec::new(),
            pages: HashMap::new(),
            resident: vec![0; n_gpms],
        }
    }

    fn set_policy(&mut self, region: Region, policy: Placement) {
        self.regions.push((region, policy));
    }

    fn policy_for(&self, addr: Addr) -> Placement {
        for (r, p) in &self.regions {
            if r.contains(addr) {
                return *p;
            }
        }
        self.default_policy
    }

    fn resolve(&mut self, addr: Addr, accessor: GpmId) -> GpmId {
        let page = addr.page();
        if let Some(e) = self.pages.get(&page) {
            return if e.replicas & (1 << accessor.0) != 0 { accessor } else { GpmId(e.home) };
        }
        let policy = self.policy_for(addr);
        let home = match policy {
            Placement::FirstTouch | Placement::Replicated => accessor,
            Placement::Interleaved => GpmId((page % self.n_gpms as u64) as u8),
            Placement::Fixed(g) => g,
        };
        let replicas = if policy == Placement::Replicated {
            for r in &mut self.resident {
                *r += PAGE_SIZE;
            }
            (1u16 << self.n_gpms) - 1
        } else {
            self.resident[home.index()] += PAGE_SIZE;
            0
        };
        self.pages.insert(page, RefPage { home: home.0, replicas });
        home
    }

    fn migrate(&mut self, addr: Addr, to: GpmId) -> Option<GpmId> {
        let page = addr.page();
        match self.pages.get_mut(&page) {
            Some(e) if e.home == to.0 => None,
            Some(e) => {
                let from = GpmId(e.home);
                e.home = to.0;
                e.replicas = 0;
                self.resident[from.index()] = self.resident[from.index()].saturating_sub(PAGE_SIZE);
                self.resident[to.index()] += PAGE_SIZE;
                Some(from)
            }
            None => {
                self.pages.insert(page, RefPage { home: to.0, replicas: 0 });
                self.resident[to.index()] += PAGE_SIZE;
                None
            }
        }
    }

    fn replicate(&mut self, addr: Addr, at: GpmId) -> Option<GpmId> {
        let page = addr.page();
        match self.pages.get_mut(&page) {
            Some(e) => {
                if e.home == at.0 || e.replicas & (1 << at.0) != 0 {
                    return None;
                }
                e.replicas |= 1 << at.0;
                self.resident[at.index()] += PAGE_SIZE;
                Some(GpmId(e.home))
            }
            None => {
                self.pages.insert(page, RefPage { home: at.0, replicas: 0 });
                self.resident[at.index()] += PAGE_SIZE;
                None
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Reference memory system: reference cache + reference page table, with the
// pre-optimization drain scheme (a freshly allocated ledger per epoch).
// ---------------------------------------------------------------------------

struct RefMemorySystem {
    page_table: RefPageTable,
    l1: Vec<RefCache>,
    l2: Vec<RefCache>,
    pending: Traffic,
    total: Traffic,
}

impl RefMemorySystem {
    fn new(n_gpms: usize, cfg: MemConfig, default_policy: Placement) -> Self {
        RefMemorySystem {
            page_table: RefPageTable::new(n_gpms, default_policy),
            l1: (0..n_gpms).map(|_| RefCache::new(cfg.l1_bytes, cfg.l1_ways, LINE_SIZE)).collect(),
            l2: (0..n_gpms).map(|_| RefCache::new(cfg.l2_bytes, cfg.l2_ways, LINE_SIZE)).collect(),
            pending: Traffic::new(n_gpms),
            total: Traffic::new(n_gpms),
        }
    }

    fn read(&mut self, gpm: GpmId, addr: Addr, class: TrafficClass, use_l1: bool) -> AccessLevel {
        let line = addr.line_base();
        let g = gpm.index();
        if use_l1 && self.l1[g].access(line, false).0 {
            return AccessLevel::L1;
        }
        if self.l2[g].access(line, false).0 {
            return AccessLevel::L2;
        }
        let home = self.page_table.resolve(line, gpm);
        if home == gpm {
            self.pending.add_local(gpm, class, LINE_SIZE);
            self.total.add_local(gpm, class, LINE_SIZE);
            AccessLevel::LocalDram
        } else {
            self.pending.add_remote(home, gpm, class, LINE_SIZE);
            self.total.add_remote(home, gpm, class, LINE_SIZE);
            AccessLevel::RemoteDram(home)
        }
    }

    fn write(&mut self, gpm: GpmId, addr: Addr, class: TrafficClass) {
        let line = addr.line_base();
        let g = gpm.index();
        if self.l2[g].access(line, false).0 {
            return;
        }
        let home = self.page_table.resolve(line, gpm);
        if home == gpm {
            self.pending.add_local(gpm, class, LINE_SIZE);
            self.total.add_local(gpm, class, LINE_SIZE);
        } else {
            self.pending.dram[home.index()] += LINE_SIZE;
            self.total.dram[home.index()] += LINE_SIZE;
            self.pending.add_link_only(gpm, home, class, LINE_SIZE);
            self.total.add_link_only(gpm, home, class, LINE_SIZE);
        }
    }

    /// The pre-optimization drain: materialize a fresh ledger every epoch.
    fn drain_pending(&mut self) -> Traffic {
        std::mem::replace(&mut self.pending, Traffic::new(self.total.n_gpms()))
    }
}

// ---------------------------------------------------------------------------
// Properties.
// ---------------------------------------------------------------------------

const CLASSES: [TrafficClass; 4] =
    [TrafficClass::Vertex, TrafficClass::Texture, TrafficClass::Depth, TrafficClass::Color];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The packed/MRU/stamp-skipping cache behaves exactly like a textbook
    /// recency-list LRU: same outcome, same write-back address on every
    /// access, same dirty set at flush, same statistics. Also exercises the
    /// non-power-of-two line-size fallback (no shift strength reduction).
    #[test]
    fn cache_matches_reference_lru(
        geometry in (0u64..3, 1usize..5, 0usize..2),
        ops in prop::collection::vec((0u64..1 << 14, 0u8..4), 1..600),
    ) {
        let (cap_sel, ways_exp, line_sel) = geometry;
        let capacity = 1u64 << (10 + cap_sel); // 1–4 KiB: small, collides hard
        let ways = 1 << ways_exp; // 2–16
        let line_size = [64u64, 48][line_sel]; // 48 exercises the divide path
        let mut opt = SetAssocCache::new(capacity, ways, line_size);
        let mut reference = RefCache::new(capacity, ways, line_size);
        prop_assert_eq!(opt.sets(), reference.sets);
        for (i, &(a, kind)) in ops.iter().enumerate() {
            if kind == 3 && i % 97 == 0 {
                // Occasional flush, as the executor does at frame boundaries.
                let mut d_opt = opt.flush_dirty();
                let mut d_ref = reference.flush_dirty();
                d_opt.sort();
                d_ref.sort();
                prop_assert_eq!(d_opt, d_ref, "flush divergence at op {}", i);
                continue;
            }
            let write = kind == 1;
            let (hit_ref, wb_ref) = reference.access(Addr(a), write);
            let out = opt.access(Addr(a), write);
            prop_assert_eq!(out.is_hit(), hit_ref, "outcome divergence at op {} addr {}", i, a);
            let wb_opt = match out {
                oovr_mem::cache::CacheOutcome::Miss { writeback } => writeback,
                oovr_mem::cache::CacheOutcome::Hit => None,
            };
            prop_assert_eq!(wb_opt, wb_ref, "write-back divergence at op {} addr {}", i, a);
        }
        let s = opt.stats();
        prop_assert_eq!(s.accesses, reference.accesses);
        prop_assert_eq!(s.hits, reference.hits);
        prop_assert_eq!(s.writebacks, reference.writebacks);
        let mut d_opt = opt.flush_dirty();
        let mut d_ref = reference.flush_dirty();
        d_opt.sort();
        d_ref.sort();
        prop_assert_eq!(d_opt, d_ref, "final dirty sets differ");
    }

    /// The chunked dense page table with its per-accessor lookaside resolves,
    /// migrates and replicates exactly like a plain hash-map model, for
    /// every placement policy, including pages beyond the dense range and
    /// region-scoped policy overrides.
    #[test]
    fn page_table_matches_reference_map(
        policy_sel in 0u8..4,
        n_gpms in 1usize..5,
        ops in prop::collection::vec((0u8..8, 0u64..64, 0u8..4), 1..400),
    ) {
        let default_policy = match policy_sel {
            0 => Placement::FirstTouch,
            1 => Placement::Interleaved,
            2 => Placement::Fixed(GpmId(0)),
            _ => Placement::Replicated,
        };
        let mut opt = PageTable::new(n_gpms, default_policy);
        let mut reference = RefPageTable::new(n_gpms, default_policy);
        // A fixed-policy region overriding the default for pages 8..16.
        let override_region = Region { base: 8 * PAGE_SIZE, size: 8 * PAGE_SIZE };
        opt.set_policy(override_region, Placement::Fixed(GpmId((n_gpms - 1) as u8)));
        reference.set_policy(override_region, Placement::Fixed(GpmId((n_gpms - 1) as u8)));
        for (i, &(op, page_sel, gpm)) in ops.iter().enumerate() {
            let gpm = GpmId(gpm % n_gpms as u8);
            // Mostly dense-range pages; every 5th lands beyond DENSE_LIMIT
            // (≥ 2^22 pages) to exercise the overflow hash path.
            let page = if page_sel % 5 == 0 { (1 << 22) + page_sel } else { page_sel };
            let addr = Addr(page * PAGE_SIZE + (page_sel % PAGE_SIZE));
            match op {
                0..=5 => {
                    // Resolution dominates, as in real streams.
                    prop_assert_eq!(
                        opt.resolve(addr, gpm),
                        reference.resolve(addr, gpm),
                        "resolve divergence at op {} page {} gpm {}", i, page, gpm
                    );
                }
                6 => {
                    prop_assert_eq!(
                        opt.migrate(addr, gpm),
                        reference.migrate(addr, gpm),
                        "migrate divergence at op {} page {}", i, page
                    );
                }
                _ => {
                    prop_assert_eq!(
                        opt.replicate(addr, gpm),
                        reference.replicate(addr, gpm),
                        "replicate divergence at op {} page {}", i, page
                    );
                }
            }
        }
        prop_assert_eq!(opt.resident_bytes(), &reference.resident[..]);
        prop_assert_eq!(opt.placed_pages(), reference.pages.len());
    }

    /// The full memory system — optimized caches, page table, and the
    /// swap-based epoch drain — produces bit-identical access levels,
    /// per-epoch traffic ledgers, and cumulative per-class per-link totals
    /// against the reference composition that allocates a fresh ledger per
    /// epoch.
    #[test]
    fn memory_system_matches_reference(
        n_gpms in 1usize..5,
        ops in prop::collection::vec((0u8..8, 0u64..1 << 15, 0u8..4, 0u8..4), 1..500),
    ) {
        // Small caches so misses, evictions and remote fills all occur.
        let cfg = MemConfig { l1_bytes: 2048, l1_ways: 2, l2_bytes: 4096, l2_ways: 4 };
        let mut opt = MemorySystem::new(n_gpms, cfg, Placement::FirstTouch);
        let mut reference = RefMemorySystem::new(n_gpms, cfg, Placement::FirstTouch);
        let mut scratch = Traffic::new(n_gpms);
        for (i, &(op, a, gpm, class_sel)) in ops.iter().enumerate() {
            let gpm = GpmId(gpm % n_gpms as u8);
            let class = CLASSES[class_sel as usize];
            let addr = Addr(a);
            match op {
                0..=3 => {
                    let use_l1 = op % 2 == 0;
                    prop_assert_eq!(
                        opt.read(gpm, addr, class, use_l1),
                        reference.read(gpm, addr, class, use_l1),
                        "read divergence at op {} addr {}", i, a
                    );
                }
                4 | 5 => {
                    opt.write(gpm, addr, class);
                    reference.write(gpm, addr, class);
                }
                _ => {
                    // Epoch boundary: drain both and compare ledgers. The
                    // optimized side reuses one scratch buffer across all
                    // epochs; the reference allocates a fresh ledger.
                    prop_assert_eq!(
                        opt.has_pending(),
                        !reference.pending.is_empty(),
                        "pending flag divergence at op {}", i
                    );
                    opt.drain_pending_into(&mut scratch);
                    let expected = reference.drain_pending();
                    prop_assert_eq!(&scratch, &expected, "epoch ledger divergence at op {}", i);
                }
            }
        }
        prop_assert_eq!(opt.total_traffic(), &reference.total, "cumulative ledgers differ");
        opt.drain_pending_into(&mut scratch);
        prop_assert_eq!(&scratch, &reference.drain_pending(), "final pending ledgers differ");
        for g in GpmId::all(n_gpms) {
            let (l1o, l1r) = (opt.l1_stats(g), &reference.l1[g.index()]);
            prop_assert_eq!(l1o.accesses, l1r.accesses);
            prop_assert_eq!(l1o.hits, l1r.hits);
            let (l2o, l2r) = (opt.l2_stats(g), &reference.l2[g.index()]);
            prop_assert_eq!(l2o.accesses, l2r.accesses);
            prop_assert_eq!(l2o.hits, l2r.hits);
        }
        prop_assert_eq!(
            opt.page_table().resident_bytes(),
            &reference.page_table.resident[..]
        );
    }
}

// ---------------------------------------------------------------------------
// Batched substrate differentials: the batch APIs against the retained
// scalar paths, and the tiled rasterizer against the per-pixel reference.
// ---------------------------------------------------------------------------

/// Expands a generated spec into a run-heavy op stream: each entry emits
/// `run` accesses to the same cache line (with varying in-line offsets, so
/// line folding — not address equality — is what's under test), which is
/// the shape the executor's texture/color streams take.
fn expand_ops(raw: &[(u8, u16, u8, u8)]) -> Vec<MemOp> {
    let mut ops = Vec::new();
    for &(kind_sel, base, run, class_sel) in raw {
        let kind = match kind_sel % 3 {
            0 => OpKind::ReadL1,
            1 => OpKind::ReadL2,
            _ => OpKind::Write,
        };
        let class = CLASSES[(class_sel % 4) as usize];
        for r in 0..u64::from(run % 6) + 1 {
            let addr = Addr(u64::from(base) * LINE_SIZE + (r * 17) % LINE_SIZE);
            ops.push(MemOp { addr, class, kind });
        }
    }
    ops
}

/// Applies one op through the retained scalar `read`/`write` calls.
fn apply_scalar_op(sys: &mut MemorySystem, gpm: GpmId, op: &MemOp) -> Option<AccessLevel> {
    match op.kind {
        OpKind::ReadL1 => Some(sys.read(gpm, op.addr, op.class, true)),
        OpKind::ReadL2 => Some(sys.read(gpm, op.addr, op.class, false)),
        OpKind::Write => {
            sys.write(gpm, op.addr, op.class);
            None
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `run_batch` over arbitrary interleaved, run-heavy op streams leaves
    /// the memory system in a state bit-identical to the scalar loop: same
    /// per-epoch and cumulative traffic, same cache statistics, and the
    /// same cache *contents* as observed by a deterministic probe suffix.
    /// Folding an access that is not actually the MRU line of its set (e.g.
    /// a broken MRU-demotion order in the cache) diverges the probe.
    #[test]
    fn run_batch_matches_scalar_state(
        n_gpms in 1usize..5,
        raw in prop::collection::vec((0u8..6, 0u16..256, 0u8..6, 0u8..4), 1..120),
        chunk in 1usize..40,
        gpm_sel in 0u8..4,
    ) {
        // Small caches so runs straddle evictions and remote fills.
        let cfg = MemConfig { l1_bytes: 1024, l1_ways: 2, l2_bytes: 2048, l2_ways: 4 };
        let mut batched = MemorySystem::new(n_gpms, cfg, Placement::FirstTouch);
        let mut scalar = MemorySystem::new(n_gpms, cfg, Placement::FirstTouch);
        let gpm = GpmId(gpm_sel % n_gpms as u8);
        let ops = expand_ops(&raw);
        let mut drained_b = Traffic::new(n_gpms);
        let mut drained_s = Traffic::new(n_gpms);
        for (i, c) in ops.chunks(chunk).enumerate() {
            batched.run_batch(gpm, c);
            for op in c {
                apply_scalar_op(&mut scalar, gpm, op);
            }
            // Epoch boundary per chunk, as the executor drains per quantum.
            batched.drain_pending_into(&mut drained_b);
            scalar.drain_pending_into(&mut drained_s);
            prop_assert_eq!(&drained_b, &drained_s, "epoch ledger divergence at chunk {}", i);
        }
        prop_assert_eq!(batched.total_traffic(), scalar.total_traffic());
        for g in GpmId::all(n_gpms) {
            prop_assert_eq!(batched.l1_stats(g), scalar.l1_stats(g), "L1 stats for {}", g);
            prop_assert_eq!(batched.l2_stats(g), scalar.l2_stats(g), "L2 stats for {}", g);
        }
        // Probe suffix: identical scalar reads must see identical levels,
        // which pins the cache contents (tags, LRU order), not just stats.
        for base in 0u64..256 {
            let addr = Addr(base * LINE_SIZE);
            for g in GpmId::all(n_gpms) {
                prop_assert_eq!(
                    batched.read(g, addr, TrafficClass::Vertex, true),
                    scalar.read(g, addr, TrafficClass::Vertex, true),
                    "probe divergence at line {} gpm {}", base, g
                );
            }
        }
    }

    /// `read_batch` returns the same `AccessLevel` sequence the scalar
    /// `read` loop produces, element for element.
    #[test]
    fn read_batch_levels_match_scalar(
        n_gpms in 1usize..5,
        raw in prop::collection::vec((0u16..128, 0u8..6), 1..80),
        use_l1_sel in 0u8..2,
        gpm_sel in 0u8..4,
    ) {
        let use_l1 = use_l1_sel == 1;
        let cfg = MemConfig { l1_bytes: 1024, l1_ways: 2, l2_bytes: 2048, l2_ways: 4 };
        let mut batched = MemorySystem::new(n_gpms, cfg, Placement::FirstTouch);
        let mut scalar = MemorySystem::new(n_gpms, cfg, Placement::FirstTouch);
        let gpm = GpmId(gpm_sel % n_gpms as u8);
        let addrs: Vec<Addr> = raw
            .iter()
            .flat_map(|&(base, run)| {
                (0..u64::from(run % 4) + 1)
                    .map(move |r| Addr(u64::from(base) * LINE_SIZE + (r * 31) % LINE_SIZE))
            })
            .collect();
        let mut levels = Vec::new();
        batched.read_batch(gpm, &addrs, TrafficClass::Texture, use_l1, &mut levels);
        let expected: Vec<AccessLevel> =
            addrs.iter().map(|&a| scalar.read(gpm, a, TrafficClass::Texture, use_l1)).collect();
        prop_assert_eq!(levels, expected);
    }
}

/// One recorded quad emission: `(x, y, mask, uv.x bits, uv.y bits, z bits)`.
type QuadRecord = (u32, u32, u8, u32, u32, u32);

/// Byte-exact emission record of one rasterizer pass.
fn raster_emissions(
    tri: &oovr_scene::ScreenTriangle,
    clip: Option<&oovr_scene::Rect>,
    w: u32,
    h: u32,
    tiled: bool,
) -> (u64, Vec<QuadRecord>) {
    let mut out = Vec::new();
    let sink = |q: oovr_gpu::QuadFragment| {
        out.push((q.x, q.y, q.mask, q.uv.x.to_bits(), q.uv.y.to_bits(), q.z.to_bits()));
    };
    let quads = if tiled {
        oovr_gpu::rasterize(tri, clip, w, h, sink)
    } else {
        oovr_gpu::rasterize_scalar(tri, clip, w, h, sink)
    };
    (quads, out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The tiled rasterizer emits bit-for-bit the quads of the per-pixel
    /// reference — same order, same coverage masks, same UV and Z bits —
    /// for arbitrary triangles (including slivers, degenerate and
    /// off-screen ones, both windings) under arbitrary clip rectangles.
    /// A tile-accept margin that is one ULP too eager fails this: an
    /// accepted tile would emit a full mask where the per-pixel walk
    /// rejects a borderline sample.
    #[test]
    fn tiled_raster_matches_scalar(
        // Vertex coordinates in 1/8-pixel steps spanning off-screen
        // (−400 px) to beyond the frame (+2200 px); small denominators
        // make near-edge pixel centers (the margin's hard cases) common.
        verts in prop::collection::vec(0u32..20_800, 6..7),
        uvs in prop::collection::vec(0u32..512, 6..7),
        z in 0u8..200,
        clip_on in 0u8..2,
        clip_box in (0u32..180, 0u32..180, 1u32..200, 1u32..200),
        degenerate in 0u8..2,
    ) {
        let c = |v: u32| (v as f32 - 3_200.0) / 8.0;
        let mut v = [
            oovr_scene::Vec2::new(c(verts[0]), c(verts[1])),
            oovr_scene::Vec2::new(c(verts[2]), c(verts[3])),
            oovr_scene::Vec2::new(c(verts[4]), c(verts[5])),
        ];
        if degenerate == 1 {
            // Collinear: the midpoint of the other two.
            v[2] = oovr_scene::Vec2::new((v[0].x + v[1].x) * 0.5, (v[0].y + v[1].y) * 0.5);
        }
        let tri = oovr_scene::ScreenTriangle {
            v,
            uv: [
                oovr_scene::Vec2::new(uvs[0] as f32, uvs[1] as f32),
                oovr_scene::Vec2::new(uvs[2] as f32, uvs[3] as f32),
                oovr_scene::Vec2::new(uvs[4] as f32, uvs[5] as f32),
            ],
            z: f32::from(z) / 200.0,
            texture: oovr_scene::TextureId(0),
        };
        let (cx, cy, cw, ch) = clip_box;
        let clip = (clip_on == 1)
            .then(|| oovr_scene::Rect::new(cx as f32, cy as f32, cw as f32, ch as f32));
        let (tq, tiled) = raster_emissions(&tri, clip.as_ref(), 256, 256, true);
        let (sq, scalar) = raster_emissions(&tri, clip.as_ref(), 256, 256, false);
        prop_assert_eq!(tq, sq, "quad count divergence");
        prop_assert_eq!(tiled, scalar, "emission divergence");
    }

    /// Adversarial margin cases: a near-vertical edge hugging a sample
    /// column (sample x = col + 0.515625, exactly representable) offset by
    /// amounts down to 2⁻²⁰ px. True edge values at those samples sit well
    /// inside the classifier's error margin, so a classifier that accepts
    /// or rejects borderline tiles instead of leaving them `Partial` emits
    /// different masks than the per-pixel `f32` walk.
    #[test]
    fn tiled_raster_matches_scalar_near_edges(
        col in 1u32..250,
        dx_exp in 0u32..21,
        sign in 0u8..2,
        wind in 0u8..2,
        apex_y in 0u32..40,
    ) {
        let sx = col as f32 + 0.515625;
        let dx = (f32::from(sign) * 2.0 - 1.0) * (2.0f32).powi(-(dx_exp as i32));
        // Edge from below the frame to above it, skewed by ±2·dx across its
        // run so some tiles straddle the sample column at sub-margin range.
        let a = oovr_scene::Vec2::new(sx + dx, -10.0);
        let b = oovr_scene::Vec2::new(sx - dx, 266.0);
        let apex =
            oovr_scene::Vec2::new(if wind == 0 { 500.0 } else { -300.0 }, apex_y as f32 * 6.0);
        let tri = oovr_scene::ScreenTriangle {
            v: [a, b, apex],
            uv: [
                oovr_scene::Vec2::new(0.0, 0.0),
                oovr_scene::Vec2::new(128.0, 0.0),
                oovr_scene::Vec2::new(0.0, 128.0),
            ],
            z: 0.25,
            texture: oovr_scene::TextureId(0),
        };
        let (tq, tiled) = raster_emissions(&tri, None, 256, 256, true);
        let (sq, scalar) = raster_emissions(&tri, None, 256, 256, false);
        prop_assert_eq!(tq, sq, "quad count divergence");
        prop_assert_eq!(tiled, scalar, "emission divergence");
    }
}

// ---------------------------------------------------------------------------
// Render cache and rate-schedule cursor differentials.
// ---------------------------------------------------------------------------

/// Field-by-field frame equality (`FrameReport` deliberately has no
/// `PartialEq`; float rates compare by bit pattern, as the render cache
/// promises bit-identity, not mere closeness).
fn assert_frames_identical(
    a: &oovr_gpu::FrameReport,
    b: &oovr_gpu::FrameReport,
) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert_eq!(a.frame_cycles, b.frame_cycles);
    prop_assert_eq!(a.composition_cycles, b.composition_cycles);
    prop_assert_eq!(&a.gpm_busy, &b.gpm_busy);
    prop_assert_eq!(&a.traffic, &b.traffic);
    prop_assert_eq!(a.counts, b.counts);
    prop_assert_eq!(a.l1_hit_rate.to_bits(), b.l1_hit_rate.to_bits());
    prop_assert_eq!(a.l2_hit_rate.to_bits(), b.l2_hit_rate.to_bits());
    prop_assert_eq!(&a.resident_bytes, &b.resident_bytes);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A memoized render — scene built through the content-addressed scene
    /// cache, frame served by the render cache (miss on first call, hit on
    /// second) — is bit-identical to rendering an independently built scene
    /// directly, across workloads, schemes, and link-bandwidth configs.
    #[test]
    fn cached_render_matches_uncached(
        wl in 0usize..9,
        scheme_sel in 0usize..4,
        link_sel in 0usize..3,
        seed_bump in 0u64..3,
    ) {
        use oovr::experiments::SchemeKind;
        let kinds = [
            SchemeKind::Baseline,
            SchemeKind::ObjectLevel,
            SchemeKind::OoVr,
            SchemeKind::SortMiddle,
        ];
        let kind = kinds[scheme_sel];
        let mut spec = oovr_scene::benchmarks::all()[wl].scaled(0.06);
        // Perturb the workload seed so this test cannot accidentally share
        // cache entries with other tests' identically-parameterized specs.
        spec.seed ^= 0xD1F7 + seed_bump;
        let cfg = oovr_gpu::GpuConfig::default()
            .with_link_gbps([32.0, 64.0, 128.0][link_sel]);

        let scene = oovr::cache::scene_for(&spec);
        let miss = oovr::cache::render(kind, &scene, &cfg);
        let hit = oovr::cache::render(kind, &scene, &cfg);
        let direct = kind.render(&spec.build(), &cfg);
        assert_frames_identical(&miss, &hit)?;
        assert_frames_identical(&miss, &direct)?;
    }

    /// Same property for the resilient render path (deadline-keyed cache
    /// entries, countermeasure runtime) under an injected fault plan.
    #[test]
    fn cached_resilient_render_matches_uncached(
        wl in 0usize..9,
        scenario_sel in 0usize..5,
        severity in 0.1f64..0.9,
    ) {
        use oovr_frameworks::RenderScheme as _;
        let mut spec = oovr_scene::benchmarks::all()[wl].scaled(0.06);
        spec.seed ^= 0x5EED;
        let plan = oovr_gpu::FaultPlan::new(
            oovr_gpu::FaultScenario::ALL[scenario_sel],
            severity,
            7,
        );
        let cfg = oovr_gpu::GpuConfig::default().with_fault(plan);
        let deadline = 2_000_000u64;

        let scene = oovr::cache::scene_for(&spec);
        let miss = oovr::cache::render_resilient(deadline, &scene, &cfg);
        let hit = oovr::cache::render_resilient(deadline, &scene, &cfg);
        let direct =
            oovr::schemes::OoVr::resilient_with_deadline(deadline).render_frame(&spec.build(), &cfg);
        assert_frames_identical(&miss, &hit)?;
        assert_frames_identical(&miss, &direct)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `RateSchedule::advance_with_hint` equals the hint-free binary-search
    /// walk for *any* hint value, including stale and out-of-range ones, and
    /// the returned cursor is the segment containing the completion time.
    #[test]
    fn schedule_hint_matches_search(
        breaks in prop::collection::vec((1u64..10_000, 0u32..5), 0..12),
        queries in prop::collection::vec((0u64..20_000u64, 0u64..5_000, 0usize..16), 1..40),
    ) {
        use oovr_mem::RateSchedule;
        let mut segs = vec![(0u64, 1.0f64)];
        for &(dt, m) in &breaks {
            let t = segs.last().unwrap().0 + dt;
            segs.push((t, f64::from(m) * 0.25));
        }
        // The tail must make progress.
        if segs.last().unwrap().1 == 0.0 {
            segs.last_mut().unwrap().1 = 0.5;
        }
        let s = RateSchedule::new(segs);
        for &(start, work, hint) in &queries {
            let (start, work) = (start as f64, work as f64);
            let plain = s.advance(start, work);
            let (hinted, cursor) = s.advance_with_hint(hint, start, work);
            prop_assert_eq!(plain.to_bits(), hinted.to_bits());
            // The returned cursor must itself be a valid resume point:
            // resuming from it reproduces the hint-free walk exactly.
            let (again, _) = s.advance_with_hint(cursor, hinted, 0.0);
            prop_assert_eq!(again.to_bits(), s.advance(hinted, 0.0).to_bits());
        }
    }
}
