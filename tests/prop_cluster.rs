//! Property tests for the cluster tier: fault plans are exact, cluster
//! runs replay bit-identically from their seeds.
//!
//! Two invariants anchor `oovr-serve`'s cluster layer:
//!
//! * **Zero-severity exactness.** A severity-0 server-level [`FaultPlan`]
//!   is indistinguishable — outcome fields *and* exported trace bytes —
//!   from running with no plan at all: the fault path costs nothing when
//!   nothing is injected.
//! * **Seeded determinism.** A (mix, config, fault, seed) tuple replays
//!   bit-identically, including every cluster-level trace event, and the
//!   `figures -- cluster` capacity table serializes to byte-identical CSV
//!   across evaluations.

use proptest::prelude::*;

use oovr_gpu::{FaultPlan, FaultScenario, GpuConfig};
use oovr_scene::benchmarks;
use oovr_serve::{cluster_scale_table, simulate_cluster, ClusterConfig, Placement, RouterConfig};
use oovr_trace::export::{chrome_trace, csv_timeline, flight_digest};
use oovr_trace::{Recorder, TraceConfig, TraceEvent};

fn mix() -> Vec<(oovr_serve::ServeScheme, oovr_scene::BenchmarkSpec)> {
    vec![
        (oovr_serve::ServeScheme::OoVr, benchmarks::hl2_640().scaled(0.05)),
        (oovr_serve::ServeScheme::OoVr, benchmarks::we().scaled(0.05)),
    ]
}

fn traced_run(cfg: &ClusterConfig) -> (oovr_serve::ClusterOutcome, Vec<TraceEvent>) {
    let gpu = GpuConfig::default();
    let mut rec = Recorder::new(TraceConfig::default());
    let out = simulate_cluster(&mix(), &gpu, cfg, Some(&mut rec));
    (out, rec.into_events())
}

proptest! {
    // Cost streams are memoized process-wide, so each case only pays the
    // cluster scheduling itself.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A zero-severity fault plan must be bit-identical to no plan at all,
    /// down to the exported trace bytes.
    #[test]
    fn zero_severity_plan_is_bit_identical_to_no_plan(
        seed in 0u64..10_000,
        sessions in 8u32..120,
        policy_ix in 0usize..Placement::ALL.len(),
        scenario_ix in 0usize..FaultScenario::ALL.len(),
    ) {
        let base = ClusterConfig {
            sessions,
            frames_per_session: 8,
            seed,
            policy: Placement::ALL[policy_ix],
            ..ClusterConfig::default()
        };
        let noop_plan = FaultPlan::new(FaultScenario::ALL[scenario_ix], 0.0, seed);
        prop_assert!(noop_plan.is_noop());
        let with_noop = ClusterConfig { fault: Some(noop_plan), ..base.clone() };
        let (a, ea) = traced_run(&base);
        let (b, eb) = traced_run(&with_noop);
        prop_assert_eq!(&a.sessions, &b.sessions);
        prop_assert_eq!(a.on_time, b.on_time);
        prop_assert_eq!(a.retries, b.retries);
        prop_assert_eq!(a.downs, 0u64);
        prop_assert_eq!(b.downs, 0u64);
        let n = GpuConfig::default().n_gpms;
        prop_assert_eq!(chrome_trace(&ea, n, 0), chrome_trace(&eb, n, 0));
        prop_assert_eq!(csv_timeline(&ea, 0), csv_timeline(&eb, 0));
        prop_assert_eq!(flight_digest(&ea, 0), flight_digest(&eb, 0));
    }

    /// Identical seeds replay identical cluster outcomes and trace exports,
    /// byte for byte, under real faults and either router.
    #[test]
    fn identical_seeds_replay_cluster_runs_bit_identically(
        seed in 0u64..10_000,
        sessions in 8u32..160,
        severity in 0.25f64..1.0,
        scenario_ix in 0usize..FaultScenario::ALL.len(),
        policy_ix in 0usize..Placement::ALL.len(),
        resilient_ix in 0usize..2,
    ) {
        let resilient = resilient_ix == 1;
        let cfg = ClusterConfig {
            sessions,
            frames_per_session: 8,
            seed,
            policy: Placement::ALL[policy_ix],
            router: if resilient { RouterConfig::resilient() } else { RouterConfig::baseline() },
            fault: Some(FaultPlan::new(FaultScenario::ALL[scenario_ix], severity, seed)),
            ..ClusterConfig::default()
        };
        let (a, ea) = traced_run(&cfg);
        let (b, eb) = traced_run(&cfg);
        prop_assert_eq!(&a.sessions, &b.sessions);
        prop_assert_eq!(a.on_time, b.on_time);
        prop_assert_eq!(a.min_scale.to_bits(), b.min_scale.to_bits());
        prop_assert_eq!(
            (a.retries, a.migrations, a.failovers, a.downs),
            (b.retries, b.migrations, b.failovers, b.downs)
        );
        let n = GpuConfig::default().n_gpms;
        prop_assert_eq!(chrome_trace(&ea, n, 0), chrome_trace(&eb, n, 0));
        prop_assert_eq!(csv_timeline(&ea, 0), csv_timeline(&eb, 0));
        // The chrome export stays structurally valid with cluster events in
        // the stream.
        let doc = oovr_trace::json::parse(&chrome_trace(&ea, n, 0)).expect("parses");
        oovr_trace::json::validate_chrome_trace(&doc, n).expect("validates");
    }
}

/// `results/cluster.csv` is a pure function of (specs, config): two
/// evaluations of the scale table serialize to byte-identical CSV.
#[test]
fn cluster_scale_table_is_deterministic() {
    let specs = vec![benchmarks::hl2_640().scaled(0.05)];
    let gpu = GpuConfig::default();
    let cfg = ClusterConfig::default();
    let a = cluster_scale_table(&specs, &gpu, &cfg);
    let b = cluster_scale_table(&specs, &gpu, &cfg);
    assert_eq!(a.to_csv(), b.to_csv(), "cluster.csv must be byte-identical across runs");
}
