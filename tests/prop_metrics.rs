//! Property tests for the metrics layer: metering observes, never
//! perturbs — and the derived numbers are honest.
//!
//! `oovr-metrics` threads an optional registry through the EDF scheduler
//! and the cluster tier the same way `oovr-trace` threads a recorder:
//! every hook is gated on `Option`, so a metered run must be
//! *bit-identical* to an unmetered one across serve schemes, temporal
//! thresholds, fault plans, and router configurations. On top of parity,
//! this file pins the accounting itself: histogram quantiles stay within
//! one octave of `qos`'s exact nearest-rank percentiles, the metered
//! cluster miss rate reconciles exactly with `ClusterOutcome::miss_rate`,
//! the Prometheus exposition of a pinned workload is byte-stable
//! (golden file), and the health gate passes with the resilient router
//! while failing with the fault-oblivious baseline under a link-down
//! fault.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

use oovr_gpu::{FaultPlan, FaultScenario, GpuConfig, VSYNC_90HZ_CYCLES};
use oovr_metrics::export::prometheus;
use oovr_metrics::{Hist, Registry};
use oovr_scene::{benchmarks, BenchmarkSpec};
use oovr_serve::{
    health_cell, percentile, simulate, simulate_cluster, simulate_cluster_metered,
    simulate_metered, ClusterConfig, ClusterOutcome, RouterConfig, ServeConfig, ServeScheme,
};

fn spec() -> BenchmarkSpec {
    benchmarks::hl2_640().scaled(0.05)
}

fn scenario(ix: usize) -> FaultScenario {
    FaultScenario::ALL[ix % FaultScenario::ALL.len()]
}

fn assert_cluster_identical(a: &ClusterOutcome, b: &ClusterOutcome) -> Result<(), TestCaseError> {
    prop_assert_eq!(&a.sessions, &b.sessions);
    prop_assert_eq!(a.on_time, b.on_time);
    prop_assert_eq!(a.degraded, b.degraded);
    prop_assert_eq!(a.retries, b.retries);
    prop_assert_eq!(a.migrations, b.migrations);
    prop_assert_eq!(a.failovers, b.failovers);
    prop_assert_eq!(a.downs, b.downs);
    prop_assert_eq!(a.min_scale.to_bits(), b.min_scale.to_bits());
    Ok(())
}

proptest! {
    // Each case runs the serving simulation twice; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Metering any serve scheme changes nothing observable: sessions,
    /// frames, rejects and the derived QoS are bit-identical, and the
    /// metered counters reconcile exactly with the QoS accounting.
    #[test]
    fn metered_serve_is_bit_identical(
        scheme_ix in 0usize..ServeScheme::ALL.len(),
        sessions in 2u32..10,
        frames in 4u32..12,
        threshold_ix in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let threshold = [0.0f64, 0.02, 0.08][threshold_ix];
        let scheme = ServeScheme::ALL[scheme_ix];
        let cfg = ServeConfig {
            sessions,
            frames_per_session: frames,
            seed,
            temporal: oovr::TemporalConfig { reuse_threshold: threshold },
            ..ServeConfig::default()
        };
        let gpu = GpuConfig::default();
        let plain = simulate(scheme, &spec(), &gpu, &cfg, None);
        let mut reg = Registry::new(cfg.vsync_cycles);
        let metered = simulate_metered(scheme, &spec(), &gpu, &cfg, None, Some(&mut reg));
        prop_assert_eq!(&plain.sessions, &metered.sessions);
        prop_assert_eq!(&plain.rejects, &metered.rejects);
        let qos = plain.qos();
        prop_assert_eq!(reg.counter_sum("frames"), u64::from(qos.frames));
        prop_assert_eq!(
            reg.counter_sum("frames_missed"),
            u64::from(qos.missed + qos.dropped)
        );
        prop_assert_eq!(reg.counter_sum("frames_dropped"), u64::from(qos.dropped));
    }

    /// Metering the cluster tier under any fault plan and either router
    /// changes nothing observable, and the metered frame ledger reconciles
    /// exactly with the outcome's offered/on-time accounting.
    #[test]
    fn metered_cluster_is_bit_identical_under_faults(
        scenario_ix in 0usize..8,
        severity in 0.1f64..1.0,
        resilient_ix in 0usize..2,
        sessions in 20u32..80,
        seed in 0u64..1_000,
    ) {
        let horizon = VSYNC_90HZ_CYCLES * 24;
        let plan = FaultPlan::new(scenario(scenario_ix), severity, seed).with_horizon(horizon);
        let cfg = ClusterConfig {
            sessions,
            frames_per_session: 16,
            router: if resilient_ix == 0 {
                RouterConfig::resilient()
            } else {
                RouterConfig::baseline()
            },
            fault: Some(plan),
            ..ClusterConfig::default()
        };
        let gpu = GpuConfig::default();
        let mix = vec![(ServeScheme::OoVr, spec())];
        let plain = simulate_cluster(&mix, &gpu, &cfg, None);
        let mut reg = Registry::new(cfg.vsync_cycles);
        let metered = simulate_cluster_metered(&mix, &gpu, &cfg, None, Some(&mut reg));
        assert_cluster_identical(&plain, &metered)?;
        // Reconciliation: every offered paced frame is accounted once.
        prop_assert_eq!(reg.counter_sum("frames"), plain.frames_offered);
        prop_assert_eq!(
            reg.counter_sum("frames_missed"),
            plain.frames_offered - plain.on_time
        );
    }

    /// The log2 histogram's quantiles bracket `qos`'s exact nearest-rank
    /// percentiles: never below, and strictly less than one octave above
    /// (satellite of the quantile-bound documented on `Hist::quantile`).
    #[test]
    fn histogram_quantiles_bracket_exact_percentiles(
        samples in prop::collection::vec(0u64..10_000_000, 1..400),
        p_ix in 0usize..3,
    ) {
        let p = [50.0f64, 99.0, 99.9][p_ix];
        let mut h = Hist::default();
        for &s in &samples {
            h.observe(s);
        }
        let exact = percentile(&samples, p);
        let est = h.quantile(p);
        prop_assert!(est >= exact, "histogram must never underestimate: {est} < {exact}");
        if exact == 0 {
            prop_assert_eq!(est, 0);
        } else {
            prop_assert!(
                est < 2 * exact,
                "octave bound violated: {est} >= 2 x {exact} at p{p}"
            );
        }
    }
}

/// The Prometheus exposition of one pinned workload is byte-stable: any
/// change to metric names, label order, or the histogram bucketing shows
/// up as a golden-file diff, reviewed like a schema change.
#[test]
fn prometheus_exposition_matches_golden() {
    let cfg = ServeConfig { sessions: 6, frames_per_session: 8, ..ServeConfig::default() };
    let mut reg = Registry::new(cfg.vsync_cycles);
    simulate_metered(ServeScheme::OoVr, &spec(), &GpuConfig::default(), &cfg, None, Some(&mut reg));
    let got = prometheus(&reg);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/metrics_golden.prom");
    let want = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!("golden file {path} must be committed (regenerate with `figures -- metrics`): {e}")
    });
    assert_eq!(got, want, "Prometheus exposition drifted from {path}");
}

/// The acceptance gate of the health command: at the chaos operating
/// point under a severity-1.0 link-down fault, the resilient router holds
/// the error budgets while the fault-oblivious baseline exhausts them.
#[test]
fn health_gate_passes_resilient_and_fails_baseline_under_link_down() {
    let gpu = GpuConfig::default();
    let cfg = ClusterConfig::default();
    let resilient = health_cell(&spec(), &gpu, RouterConfig::resilient(), &cfg);
    assert!(
        resilient.healthy(),
        "resilient router must hold every aggregate budget: {:?}",
        resilient
            .faulted
            .iter()
            .filter(|e| e.label == "*")
            .map(|e| (e.slo, e.achieved, e.target))
            .collect::<Vec<_>>()
    );
    let baseline = health_cell(&spec(), &gpu, RouterConfig::baseline(), &cfg);
    let faulted_miss = baseline
        .faulted
        .iter()
        .find(|e| e.slo == "missed-vsync-rate" && e.label == "*")
        .expect("aggregate miss row present");
    assert!(
        !faulted_miss.healthy,
        "baseline router must exhaust the faulted miss budget (achieved {:.4} <= target {:.4})",
        faulted_miss.achieved, faulted_miss.target
    );
    assert!(!baseline.healthy());
}
