//! Property tests for the flight recorder: tracing observes, never perturbs.
//!
//! The `oovr-trace` integration threads an optional event sink through the
//! executor, the distribution engine, and the memory-window sampler. Every
//! path is gated on `Option::is_none()`, so a traced render must be
//! *bit-identical* to an untraced one — same cycles, same traffic ledger,
//! same work counts — across schemes, workloads, fault plans, and the
//! resilience toggle. The exporters themselves must also be deterministic:
//! the same frame always serializes to the same bytes.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

use oovr::{OoApp, OoVr};
use oovr_frameworks::{Baseline, ObjectSfr, RenderScheme};
use oovr_gpu::{FaultPlan, FaultScenario, FrameReport, GpuConfig};
use oovr_scene::BenchmarkSpec;
use oovr_trace::export::{chrome_trace, csv_timeline, flight_digest};
use oovr_trace::TraceConfig;

/// The traceable schemes, by index (so proptest can pick one).
fn scheme(ix: usize) -> Box<dyn RenderScheme> {
    match ix % 5 {
        0 => Box::new(Baseline::new()),
        1 => Box::new(ObjectSfr::new()),
        2 => Box::new(OoApp::new()),
        3 => Box::new(OoVr::new()),
        _ => Box::new(OoVr::resilient()),
    }
}

fn scenario(ix: usize) -> FaultScenario {
    FaultScenario::ALL[ix % FaultScenario::ALL.len()]
}

/// Field-by-field equality of the observable frame outcome (`FrameReport`
/// carries no `PartialEq`; the labels are irrelevant here).
fn assert_reports_identical(a: &FrameReport, b: &FrameReport) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.frame_cycles, b.frame_cycles);
    prop_assert_eq!(a.composition_cycles, b.composition_cycles);
    prop_assert_eq!(&a.gpm_busy, &b.gpm_busy);
    prop_assert_eq!(a.counts, b.counts);
    prop_assert_eq!(a.inter_gpm_bytes(), b.inter_gpm_bytes());
    prop_assert_eq!(a.traffic.local_bytes(), b.traffic.local_bytes());
    prop_assert_eq!(a.l1_hit_rate.to_bits(), b.l1_hit_rate.to_bits());
    prop_assert_eq!(a.l2_hit_rate.to_bits(), b.l2_hit_rate.to_bits());
    prop_assert_eq!(&a.resident_bytes, &b.resident_bytes);
    Ok(())
}

proptest! {
    // Each case renders a scene two or three times; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Tracing any scheme on a fault-free frame changes nothing observable.
    #[test]
    fn traced_render_is_bit_identical(
        scheme_ix in 0usize..5,
        seed in 0u64..1_000,
        draws in 8u32..32,
    ) {
        let spec = BenchmarkSpec::new("prop-trace", 96, 96, draws, seed);
        let scene = spec.build();
        let cfg = GpuConfig::default();
        let s = scheme(scheme_ix);
        let plain = s.render_frame(&scene, &cfg);
        let (traced, rec) = s.render_frame_traced(&scene, &cfg, TraceConfig::default());
        assert_reports_identical(&plain, &traced)?;
        let rec = rec.expect("every scheme supports tracing");
        prop_assert!(!rec.is_empty(), "a traced frame records events");
    }

    /// Same, under deterministic fault injection — the observer must not
    /// perturb the fault schedule either, with and without countermeasures.
    #[test]
    fn traced_render_is_bit_identical_under_faults(
        scheme_ix in 0usize..5,
        scenario_ix in 0usize..8,
        severity in 0.1f64..1.0,
        seed in 0u64..1_000,
    ) {
        let spec = BenchmarkSpec::new("prop-trace", 96, 96, 16, 7);
        let scene = spec.build();
        let plan = FaultPlan::new(scenario(scenario_ix), severity, seed).with_horizon(20_000);
        let cfg = GpuConfig::default().with_fault(plan);
        let s = scheme(scheme_ix);
        let plain = s.render_frame(&scene, &cfg);
        let (traced, _) = s.render_frame_traced(&scene, &cfg, TraceConfig::default());
        assert_reports_identical(&plain, &traced)?;
    }

    /// The exporters are pure functions of the event stream, and the event
    /// stream is a pure function of the render: two traced renders of the
    /// same frame serialize byte-for-byte identically, and the chrome JSON
    /// passes structural validation.
    #[test]
    fn exports_are_deterministic_and_valid(
        scheme_ix in 0usize..5,
        seed in 0u64..1_000,
    ) {
        let spec = BenchmarkSpec::new("prop-trace", 96, 96, 20, seed);
        let scene = spec.build();
        let cfg = GpuConfig::default();
        let s = scheme(scheme_ix);
        let artifacts = |(_, rec): (FrameReport, Option<oovr_trace::Recorder>)| {
            let rec = rec.expect("recorder present");
            let dropped = rec.dropped();
            let events = rec.into_events();
            (
                chrome_trace(&events, cfg.n_gpms, dropped),
                csv_timeline(&events, dropped),
                flight_digest(&events, dropped),
            )
        };
        let a = artifacts(s.render_frame_traced(&scene, &cfg, TraceConfig::default()));
        let b = artifacts(s.render_frame_traced(&scene, &cfg, TraceConfig::default()));
        prop_assert_eq!(&a, &b, "trace artifacts must be byte-identical across runs");
        let doc = oovr_trace::json::parse(&a.0).expect("chrome trace parses");
        oovr_trace::json::validate_chrome_trace(&doc, cfg.n_gpms)
            .expect("chrome trace validates");
    }

    /// A tiny ring capacity drops the oldest events but never corrupts the
    /// stream: exports still succeed and the drop counter accounts for
    /// every event that didn't fit.
    #[test]
    fn ring_overflow_drops_oldest_but_stays_well_formed(
        capacity in 1usize..64,
        seed in 0u64..100,
    ) {
        let spec = BenchmarkSpec::new("prop-trace", 96, 96, 24, seed);
        let scene = spec.build();
        let cfg = GpuConfig::default();
        let trace = TraceConfig { capacity, ..TraceConfig::default() };
        let (_, rec) = OoVr::new().render_frame_traced(&scene, &cfg, trace);
        let rec = rec.expect("recorder present");
        let retained = rec.len();
        let dropped = rec.dropped();
        prop_assert!(retained <= capacity);
        let events = rec.into_events();
        prop_assert_eq!(events.len(), retained);
        // A full render of this scene emits more events than the tiny ring
        // holds, so something must have been dropped.
        prop_assert!(dropped > 0, "expected overflow at capacity {capacity}");
        // Exports stay well-formed on a truncated stream, and every one of
        // them announces the overflow instead of passing as complete.
        let json = chrome_trace(&events, cfg.n_gpms, dropped);
        let doc = oovr_trace::json::parse(&json).expect("truncated trace still parses");
        prop_assert!(doc.get("traceEvents").is_some());
        prop_assert!(
            json.contains("\"trace_overflow\"") &&
                json.contains(&format!("\"dropped\":{dropped}")),
            "chrome export must carry the overflow marker"
        );
        oovr_trace::json::validate_chrome_trace(&doc, cfg.n_gpms)
            .expect("annotated trace still validates");
        let csv = csv_timeline(&events, dropped);
        prop_assert!(
            csv.contains(&format!("trace_overflow,0,0,,,oldest events lost,{dropped},")),
            "csv export must carry the overflow marker"
        );
        let digest = flight_digest(&events, dropped);
        prop_assert!(
            digest.contains("RING OVERFLOW"),
            "digest must warn loudly about the overflow"
        );
        // A non-overflowed export carries no marker anywhere.
        prop_assert!(!chrome_trace(&events, cfg.n_gpms, 0).contains("trace_overflow"));
        prop_assert!(!csv_timeline(&events, 0).contains("trace_overflow"));
        prop_assert!(!flight_digest(&events, 0).contains("RING OVERFLOW"));
    }
}
