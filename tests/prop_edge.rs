//! Property tests for the edge tier: the split is an *overlay* on local
//! serving, never a different renderer.
//!
//! Two invariants anchor `oovr-edge`:
//!
//! * **Degenerate-link bit-identity.** Over the ideal link (unbounded
//!   bandwidth, zero latency/encode/bytes/loss) a split run is local
//!   serving with a display bolted on: every [`FrameRecord`] field, the
//!   folded [`AggregateQos`], and the admission decisions must equal
//!   `oovr_serve::simulate` bit-for-bit across schemes, loads, and
//!   seeds.
//! * **Seeded determinism.** A `(scheme, workload, edge config)` tuple —
//!   including a faulted, lossy, bandwidth-bound link — replays to a
//!   byte-identical [`EdgeOutcome`]: same deliveries, same losses, same
//!   reprojections, same photons.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

use oovr_edge::{edge_qos, simulate_edge, ClientConfig, EdgeConfig, LinkConfig};
use oovr_gpu::{FaultPlan, FaultScenario, GpuConfig};
use oovr_scene::benchmarks;
use oovr_serve::{simulate, FrameRecord, ServeConfig, ServeScheme};

fn spec() -> oovr_scene::BenchmarkSpec {
    benchmarks::hl2_640().scaled(0.05)
}

/// Field-by-field equality with f64 bit-compares (`FrameRecord` derives
/// `PartialEq`, but bitwise scale comparison is the stronger pin).
fn assert_records_identical(a: &FrameRecord, b: &FrameRecord) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.frame, b.frame);
    prop_assert_eq!(a.release, b.release);
    prop_assert_eq!(a.deadline, b.deadline);
    prop_assert_eq!(a.start, b.start);
    prop_assert_eq!(a.end, b.end);
    prop_assert_eq!(a.missed, b.missed);
    prop_assert_eq!(a.dropped, b.dropped);
    prop_assert_eq!(a.scale.to_bits(), b.scale.to_bits());
    prop_assert_eq!(a.report_index, b.report_index);
    prop_assert_eq!(a.pose, b.pose);
    Ok(())
}

const SCHEMES: [ServeScheme; 3] =
    [ServeScheme::Baseline, ServeScheme::OoVr, ServeScheme::OoVrTemporal];

proptest! {
    // Streams are memoized process-wide, so each case only pays scheduling.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Over the degenerate link the split tier *is* local serving:
    /// identical sessions, rejects, per-frame records, and folded QoS.
    #[test]
    fn degenerate_link_is_local_serving(
        scheme_idx in 0usize..3,
        sessions in 1u32..6,
        paced in 1u32..6,
        seed in 0u64..1_000,
    ) {
        let scheme = SCHEMES[scheme_idx];
        let spec = spec();
        let gpu = GpuConfig::default();
        let serve_cfg = ServeConfig { sessions, frames_per_session: paced, seed, ..ServeConfig::default() };
        let local = simulate(scheme, &spec, &gpu, &serve_cfg, None);
        let edge = simulate_edge(scheme, &spec, &gpu, &EdgeConfig::degenerate(serve_cfg), None);

        prop_assert_eq!(edge.link_rejected, 0);
        prop_assert_eq!(edge.sessions.len(), local.sessions.len());
        prop_assert_eq!(edge.rejects.len(), local.rejects.len());
        for (es, ls) in edge.sessions.iter().zip(&local.sessions) {
            prop_assert_eq!(es.id, ls.id);
            prop_assert_eq!(es.arrival, ls.arrival);
            prop_assert_eq!(es.frames.len(), ls.frames.len());
            for (ef, lf) in es.frames.iter().zip(&ls.frames) {
                assert_records_identical(&ef.record, lf)?;
                // Ideal link: delivery is retire, nothing is ever lost.
                prop_assert!(!ef.lost);
                if !lf.dropped {
                    prop_assert_eq!(ef.delivery, Some(lf.end));
                }
            }
        }
        prop_assert_eq!(edge_qos(&edge), local.qos());
    }

    /// A faulted, lossy, bandwidth-bound split run replays bit-
    /// identically from its config — the whole outcome, photons and all.
    #[test]
    fn same_seed_replays_byte_identically(
        scheme_idx in 0usize..3,
        sessions in 1u32..6,
        paced in 1u32..5,
        seed in 0u64..1_000,
        severity_idx in 0usize..3,
    ) {
        let scheme = SCHEMES[scheme_idx];
        let spec = spec();
        let gpu = GpuConfig::default();
        let severity = [0.4f64, 0.7, 1.0][severity_idx];
        let plan = FaultPlan::new(FaultScenario::LinkDown, severity, seed ^ 0xFA17);
        let cfg = EdgeConfig {
            serve: ServeConfig { sessions, frames_per_session: paced, seed, ..ServeConfig::default() },
            link: LinkConfig {
                provision: 1.5,
                base_loss: 0.05,
                fault: Some(plan),
                ..LinkConfig::default()
            },
            client: ClientConfig::default(),
        };
        let a = simulate_edge(scheme, &spec, &gpu, &cfg, None);
        let b = simulate_edge(scheme, &spec, &gpu, &cfg, None);
        prop_assert_eq!(a, b);
    }
}
