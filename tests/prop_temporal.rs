//! Property tests for pose-correlated temporal reuse.
//!
//! Two guarantees make `OOVR+temporal` safe to ship as a first-class
//! scheme, and both are pinned here over random workloads, pose seeds,
//! and serving configurations:
//!
//! * **Exactness at threshold 0.** With `TemporalConfig::exact()` the
//!   temporal scheme is *bit-identical* to plain OO-VR serving: same
//!   admitted sessions, same per-frame schedule, same rejects, same QoS.
//!   Reuse is a strict `motion < threshold` comparison against a
//!   non-negative motion, so a zero threshold reuses nothing and saves
//!   nothing, and the admission discount passes through exactly at 0.
//! * **Monotonicity in the threshold.** Raising `reuse_threshold` never
//!   decreases the reuse ratio and never increases any frame's cost (or
//!   their total): a larger bound only grows the reuse set, and each
//!   reused object's warp is clamped to the busy it replaces.

use proptest::prelude::*;

use oovr::temporal::TemporalConfig;
use oovr_gpu::GpuConfig;
use oovr_scene::benchmarks;
use oovr_serve::{cost_stream, simulate, PoseTrajectory, ServeConfig, ServeScheme};
use oovr_trace::Cycle;

/// The sweep's workload pool, small enough to stay cheap in debug builds.
fn specs() -> Vec<oovr_scene::BenchmarkSpec> {
    vec![
        benchmarks::hl2_640().scaled(0.05),
        benchmarks::dm3_640().scaled(0.05),
        benchmarks::we().scaled(0.05),
    ]
}

/// Total cycles the renderer spent on executed frames.
fn busy_cycles(out: &oovr_serve::ServeOutcome) -> Cycle {
    out.sessions
        .iter()
        .flat_map(|s| &s.frames)
        .filter(|f| !f.dropped)
        .map(|f| f.end - f.start)
        .sum()
}

proptest! {
    // Streams are memoized process-wide, so each case only pays the
    // scheduling and decide() walks.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The differential guard: at `reuse_threshold == 0.0` the temporal
    /// scheme serves bit-identically to plain OO-VR — sessions, frame
    /// schedules, rejects, and QoS all agree exactly.
    #[test]
    fn zero_threshold_temporal_serving_is_bit_identical_to_oovr(
        spec_ix in 0usize..3,
        sessions in 1u32..6,
        paced in 1u32..8,
        seed in 0u64..10_000,
    ) {
        let spec = &specs()[spec_ix];
        let gpu = GpuConfig::default();
        let cfg = ServeConfig {
            sessions,
            frames_per_session: paced,
            seed,
            temporal: TemporalConfig::exact(),
            ..ServeConfig::default()
        };
        let plain = simulate(ServeScheme::OoVr, spec, &gpu, &cfg, None);
        let exact = simulate(ServeScheme::OoVrTemporal, spec, &gpu, &cfg, None);
        prop_assert_eq!(&plain.sessions, &exact.sessions);
        prop_assert_eq!(&plain.rejects, &exact.rejects);
        prop_assert_eq!(plain.qos(), exact.qos());
    }

    /// Raising the threshold never decreases the per-frame reuse ratio and
    /// never increases the per-frame saving, for any pose delta on any
    /// workload's profile.
    #[test]
    fn decide_is_monotone_in_the_threshold(
        spec_ix in 0usize..3,
        pose_seed in 0u64..100_000,
        steps in 1u32..8,
        t1 in 0.0f64..64.0,
        t2 in 0.0f64..64.0,
    ) {
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let spec = &specs()[spec_ix];
        let gpu = GpuConfig::default();
        let stream = cost_stream(ServeScheme::OoVrTemporal, spec, &gpu);
        let profile = stream.temporal.as_ref().expect("temporal stream carries a profile");
        let mut traj = PoseTrajectory::new(pose_seed);
        let mut prev = traj.current();
        for _ in 0..steps {
            let cur = traj.step();
            let a = profile.decide(&prev, &cur, lo);
            let b = profile.decide(&prev, &cur, hi);
            prop_assert!(b.reuse_ratio() >= a.reuse_ratio(), "reuse ratio must not drop: {} -> {}", a.reuse_ratio(), b.reuse_ratio());
            prop_assert!(b.saved >= a.saved, "saving must not drop: {} -> {}", a.saved, b.saved);
            let steady = profile.steady_cycles();
            prop_assert!(b.apply(steady) <= a.apply(steady), "frame cost must not rise");
            prev = cur;
        }
    }

    /// End to end on a single always-admitted session: a higher threshold
    /// never increases the total cycles the renderer spends, and the
    /// temporal run never exceeds the plain OO-VR run it discounts.
    #[test]
    fn higher_thresholds_never_cost_more_cycles(
        spec_ix in 0usize..3,
        paced in 1u32..8,
        seed in 0u64..10_000,
        t1 in 0.0f64..64.0,
        t2 in 0.0f64..64.0,
    ) {
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let spec = &specs()[spec_ix];
        let gpu = GpuConfig::default();
        let run = |threshold: f64| {
            let cfg = ServeConfig {
                sessions: 1,
                frames_per_session: paced,
                seed,
                temporal: TemporalConfig { reuse_threshold: threshold },
                ..ServeConfig::default()
            };
            busy_cycles(&simulate(ServeScheme::OoVrTemporal, spec, &gpu, &cfg, None))
        };
        let at_lo = run(lo);
        let at_hi = run(hi);
        prop_assert!(at_hi <= at_lo, "busy cycles rose with the threshold: {at_lo} -> {at_hi}");
        let plain = {
            let cfg = ServeConfig {
                sessions: 1,
                frames_per_session: paced,
                seed,
                ..ServeConfig::default()
            };
            busy_cycles(&simulate(ServeScheme::OoVr, spec, &gpu, &cfg, None))
        };
        prop_assert!(at_lo <= plain, "temporal serving must never cost more than plain OO-VR");
    }
}
