//! Property-based tests over the substrate's core invariants.

use proptest::prelude::*;

use oovr::middleware::{build_batches, tsl, MiddlewareConfig};
use oovr::predictor::{BatchSample, Coefficients};
use oovr_gpu::{fragment_count, RenderUnit};
use oovr_mem::{Addr, BandwidthServer, GpmId, PageTable, Placement, SetAssocCache, PAGE_SIZE};
use oovr_scene::{BenchmarkSpec, ObjectId, ScreenTriangle, TextureId, Vec2};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_stats_are_consistent(addrs in prop::collection::vec(0u64..1 << 20, 1..400)) {
        let mut c = SetAssocCache::new(16 * 1024, 4, 64);
        for (i, &a) in addrs.iter().enumerate() {
            c.access(Addr(a), i % 3 == 0);
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses, addrs.len() as u64);
        prop_assert!(s.hits <= s.accesses);
        // Repeating the same stream immediately can only hit at least as
        // often for a singleton working set.
        let dirty = c.flush_dirty();
        prop_assert!(dirty.len() as u64 <= s.accesses);
    }

    #[test]
    fn cache_line_granularity(addr in 0u64..1 << 24) {
        let mut c = SetAssocCache::new(8 * 1024, 4, 64);
        c.access(Addr(addr), false);
        // Any address on the same 64 B line hits.
        let base = addr & !63;
        prop_assert!(c.access(Addr(base), false).is_hit());
        prop_assert!(c.access(Addr(base + 63), false).is_hit());
    }

    #[test]
    fn first_touch_is_stable(pages in prop::collection::vec((0u64..64, 0u8..4), 1..200)) {
        let mut pt = PageTable::new(4, Placement::FirstTouch);
        let mut homes = std::collections::HashMap::new();
        for &(page, gpm) in &pages {
            let a = Addr(page * PAGE_SIZE);
            let home = pt.resolve(a, GpmId(gpm));
            let prev = homes.entry(page).or_insert(home);
            prop_assert_eq!(*prev, home, "a page's home never changes without migration");
        }
        // Resident bytes equal placed pages.
        let placed = homes.len() as u64;
        prop_assert_eq!(pt.resident_bytes().iter().sum::<u64>(), placed * PAGE_SIZE);
    }

    #[test]
    fn bandwidth_server_conserves_bytes_and_orders_time(
        xfers in prop::collection::vec((0u64..10_000, 1u64..100_000), 1..50)
    ) {
        let mut s = BandwidthServer::new(64.0, 10);
        let mut total = 0;
        let mut last_completion = 0;
        let mut now = 0;
        for &(dt, bytes) in &xfers {
            now += dt;
            let done = s.transfer(now, bytes);
            prop_assert!(done >= now, "completion is never before arrival");
            prop_assert!(done >= last_completion.min(now), "FIFO service");
            last_completion = done;
            total += bytes;
        }
        prop_assert_eq!(s.served_bytes(), total);
    }

    #[test]
    fn tsl_is_bounded_and_maximal_for_identical_singletons(
        shares_a in prop::collection::vec(0.01f64..1.0, 1..6),
        shares_b in prop::collection::vec(0.01f64..1.0, 1..6),
    ) {
        let norm = |v: &[f64]| -> Vec<(TextureId, f64)> {
            let sum: f64 = v.iter().sum();
            v.iter().enumerate().map(|(i, s)| (TextureId(i as u32), s / sum)).collect()
        };
        let a = norm(&shares_a);
        let b = norm(&shares_b);
        let v = tsl(&a, &b);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&v), "tsl {v} out of range");
        // A single shared texture with full shares is perfect sharing.
        let single = vec![(TextureId(0), 1.0)];
        prop_assert!((tsl(&single, &single) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn batching_partitions_objects(draws in 4u32..60, seed in 0u64..500) {
        let scene = BenchmarkSpec::new("prop", 128, 128, draws, seed).build();
        let batches = build_batches(&scene, MiddlewareConfig::default());
        let mut seen: Vec<ObjectId> = batches.iter().flat_map(|b| b.objects.clone()).collect();
        seen.sort();
        seen.dedup();
        prop_assert_eq!(seen.len(), draws as usize, "each object in exactly one batch");
        let tris: u64 = batches.iter().map(|b| b.triangles).sum();
        prop_assert_eq!(tris, scene.total_triangles_per_eye());
    }

    #[test]
    fn predictor_recovers_linear_models(c1 in 0.1f64..10.0, c2 in 0.01f64..2.0) {
        let samples: Vec<BatchSample> = (1..9u64)
            .map(|i| {
                let tv = i * 37 % 400 + 10;
                let px = i * 91 % 3000 + 50;
                BatchSample {
                    triangles: tv * 2,
                    tv,
                    pixels: px,
                    cycles: (c1 * tv as f64 + c2 * px as f64).round() as u64,
                }
            })
            .collect();
        let fit = Coefficients::fit(&samples);
        prop_assert!((fit.c1 - c1).abs() < 0.1 * c1 + 0.5, "c1 {} vs {}", fit.c1, c1);
        prop_assert!((fit.c2 - c2).abs() < 0.1 * c2 + 0.5, "c2 {} vs {}", fit.c2, c2);
    }

    #[test]
    fn stride_and_range_partition_triangles(total in 1u64..500, step in 1u64..8) {
        let scene = oovr_scene::SceneBuilder::new(64, 64)
            .texture("t", 64, 64)
            .object("o", |o| {
                let cols = (total as u32).clamp(1, 100);
                o.grid(cols, (total as u32 / cols).clamp(1, 100)).texture("t", 1.0);
            })
            .build();
        let obj = &scene.objects()[0];
        let n = obj.triangle_count();
        // Strided units partition the index space exactly.
        let mut covered = 0u64;
        for off in 0..step {
            let u = RenderUnit::smp(obj.id()).with_stride(off, step);
            let brute = (0..n).filter(|&k| u.selects(k)).count() as u64;
            prop_assert_eq!(u.triangles_per_eye(obj), brute);
            covered += brute;
        }
        prop_assert_eq!(covered, n);
    }

    #[test]
    fn rasterized_fragments_bounded_by_bbox(
        x0 in 0.0f32..60.0, y0 in 0.0f32..60.0,
        dx1 in 1.0f32..30.0, dy2 in 1.0f32..30.0,
    ) {
        let tri = ScreenTriangle {
            v: [Vec2::new(x0, y0), Vec2::new(x0 + dx1, y0), Vec2::new(x0, y0 + dy2)],
            uv: [Vec2::new(0.0, 0.0); 3],
            z: 0.5,
            texture: TextureId(0),
        };
        let frags = fragment_count(&tri, None, 96, 96);
        let bbox = ((dx1.ceil() + 1.0) * (dy2.ceil() + 1.0)) as u64;
        prop_assert!(frags <= bbox, "frags {frags} exceed bbox {bbox}");
        // Large triangles produce roughly area/2... area fragments.
        if dx1 > 8.0 && dy2 > 8.0 {
            let area = (dx1 * dy2 / 2.0) as u64;
            prop_assert!(frags >= area / 2, "frags {frags} far below area {area}");
        }
    }

    #[test]
    fn adjacent_grid_triangles_tile_without_overlap(cols in 1u32..6, rows in 1u32..6) {
        let scene = oovr_scene::SceneBuilder::new(64, 64)
            .texture("t", 64, 64)
            .object("o", |o| {
                o.rect(0.1, 0.1, 0.8, 0.8).grid(cols, rows).texture("t", 1.0);
            })
            .build();
        let obj = &scene.objects()[0];
        let res = scene.resolution();
        let frags: u64 = obj
            .triangles(res, oovr_scene::Eye::Left)
            .map(|t| fragment_count(&t, None, res.stereo_width(), res.height))
            .sum();
        let vp = obj.viewport(res, oovr_scene::Eye::Left);
        let area = vp.area() as u64;
        // The grid tiles its viewport exactly, ± boundary pixels.
        let tolerance = 2 * (vp.width + vp.height) as u64 + 8;
        prop_assert!(frags <= area + tolerance, "{frags} vs area {area}");
        prop_assert!(frags + tolerance >= area, "{frags} vs area {area}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Work conservation under faults: for any seeded fault plan — any
    /// scenario, severity, and horizon — the resilient engine renders every
    /// triangle of every batch exactly once, even while stealing splits
    /// units and PA pre-allocation falls back to remote rendering.
    #[test]
    fn every_triangle_renders_exactly_once_under_any_fault_plan(
        scenario_idx in 0usize..5,
        severity in 0.0f64..1.0,
        seed in 0u64..1000,
        horizon_kc in 4u64..64,
    ) {
        use oovr::schemes::OoVr;
        use oovr_frameworks::RenderScheme;
        use oovr_gpu::{FaultPlan, FaultScenario};
        let scene = BenchmarkSpec::new("prop-fault", 128, 96, 24, seed).build();
        let plan = FaultPlan::new(FaultScenario::ALL[scenario_idx], severity, seed)
            .with_horizon(horizon_kc * 1000);
        let cfg = oovr_gpu::GpuConfig::default().with_fault(plan);
        // Exercise both the plain and the resilient engine (seed parity
        // stands in for a bool strategy).
        let scheme = if seed % 2 == 0 { OoVr::resilient() } else { OoVr::new() };
        let r = scheme.render_frame(&scene, &cfg);
        prop_assert_eq!(r.counts.triangles, 2 * scene.total_triangles_per_eye());
    }

    /// A zero-severity fault plan is bit-identical to no plan at all: every
    /// schedule query returns `None`, leaving the exact fixed-rate
    /// arithmetic untouched.
    #[test]
    fn zero_severity_plan_is_bit_identical_to_no_plan(
        scenario_idx in 0usize..5,
        seed in 0u64..1000,
    ) {
        use oovr::schemes::OoVr;
        use oovr_frameworks::RenderScheme;
        use oovr_gpu::{FaultPlan, FaultScenario};
        let scene = BenchmarkSpec::new("prop-zero", 128, 96, 16, seed).build();
        let clean_cfg = oovr_gpu::GpuConfig::default();
        let zero = FaultPlan::new(FaultScenario::ALL[scenario_idx], 0.0, seed);
        prop_assert!(zero.is_noop());
        let faulted_cfg = clean_cfg.clone().with_fault(zero);
        let a = OoVr::new().render_frame(&scene, &clean_cfg);
        let b = OoVr::new().render_frame(&scene, &faulted_cfg);
        prop_assert_eq!(a.frame_cycles, b.frame_cycles);
        prop_assert_eq!(a.counts, b.counts);
        prop_assert_eq!(a.inter_gpm_bytes(), b.inter_gpm_bytes());
        prop_assert_eq!(&a.gpm_busy, &b.gpm_busy);
    }

    /// End-to-end determinism across random workloads: two simulations of
    /// the same scene produce identical cycle counts and traffic.
    #[test]
    fn scheme_simulation_is_deterministic(seed in 0u64..1000) {
        use oovr_frameworks::{Baseline, RenderScheme};
        let scene = BenchmarkSpec::new("prop-det", 96, 96, 12, seed).build();
        let cfg = oovr_gpu::GpuConfig::default();
        let a = Baseline::new().render_frame(&scene, &cfg);
        let b = Baseline::new().render_frame(&scene, &cfg);
        prop_assert_eq!(a.frame_cycles, b.frame_cycles);
        prop_assert_eq!(a.inter_gpm_bytes(), b.inter_gpm_bytes());
    }

    /// Traffic conservation: every remote byte was served by some DRAM, so
    /// local (DRAM) bytes always dominate pure link-only classes removed.
    #[test]
    fn frame_traffic_is_conserved(seed in 0u64..1000) {
        use oovr::schemes::OoVr;
        use oovr_frameworks::RenderScheme;
        use oovr_mem::TrafficClass;
        let scene = BenchmarkSpec::new("prop-cons", 96, 96, 12, seed).build();
        let cfg = oovr_gpu::GpuConfig::default();
        let r = OoVr::new().render_frame(&scene, &cfg);
        let link_only = r.traffic.remote_of(TrafficClass::Composition)
            + r.traffic.remote_of(TrafficClass::Command)
            + r.traffic.remote_of(TrafficClass::PreAlloc);
        // All other remote classes were DRAM reads at their home.
        prop_assert!(
            r.traffic.local_bytes() + link_only >= r.inter_gpm_bytes(),
            "local {} + link-only {} vs links {}",
            r.traffic.local_bytes(),
            link_only,
            r.inter_gpm_bytes()
        );
        // Steady bytes never exceed total bytes.
        prop_assert!(r.steady_inter_gpm_bytes() <= r.inter_gpm_bytes());
    }
}
