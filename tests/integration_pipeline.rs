//! Cross-crate pipeline integration: scene → layout → executor, checking
//! conservation and determinism properties end to end.

use oovr_frameworks::{Baseline, RenderScheme, TileSfr};
use oovr_gpu::{ColorMode, Composition, Executor, FbOrg, GpuConfig, RenderUnit};
use oovr_mem::{GpmId, Placement, TrafficClass};
use oovr_scene::{benchmarks, Eye};

fn small_scene() -> oovr_scene::Scene {
    benchmarks::hl2_640().scaled(0.12).build()
}

#[test]
fn simulation_is_deterministic() {
    let scene = small_scene();
    let cfg = GpuConfig::default();
    let a = Baseline::new().render_frame(&scene, &cfg);
    let b = Baseline::new().render_frame(&scene, &cfg);
    assert_eq!(a.frame_cycles, b.frame_cycles);
    assert_eq!(a.inter_gpm_bytes(), b.inter_gpm_bytes());
    assert_eq!(a.counts, b.counts);
    assert_eq!(a.gpm_busy, b.gpm_busy);
}

#[test]
fn fragment_volume_is_scheme_independent() {
    let scene = small_scene();
    let cfg = GpuConfig::default();
    let base = Baseline::new().render_frame(&scene, &cfg);
    let tile = TileSfr::vertical().render_frame(&scene, &cfg);
    assert_eq!(base.counts.fragments, tile.counts.fragments);
    // Tile SFR re-processes geometry per overlapped strip (§4.2), so it
    // emits *more* post-SMP triangles, never fewer.
    assert!(
        tile.counts.triangles >= base.counts.triangles,
        "tile {} vs base {}",
        tile.counts.triangles,
        base.counts.triangles
    );
}

#[test]
fn every_fragment_comes_from_a_rasterized_quad() {
    let scene = small_scene();
    let cfg = GpuConfig::default();
    let r = Baseline::new().render_frame(&scene, &cfg);
    assert!(r.counts.fragments <= 4 * r.counts.quads, "a quad holds at most 4 fragments");
    assert!(r.counts.fragments >= r.counts.quads, "a covered quad holds at least 1");
    assert!(r.counts.pixels_out <= r.counts.fragments, "Z test only removes fragments");
    assert!(
        r.counts.pixels_out >= scene.resolution().stereo_pixels() / 4,
        "a dense scene covers a sizable part of the frame"
    );
}

#[test]
fn step_unit_equals_exec_unit() {
    // Resumable execution must produce identical results to one-shot
    // execution on a single GPM.
    let scene = small_scene();
    let unit = RenderUnit::smp(scene.objects()[3].id());

    let mut a = Executor::new(
        GpuConfig::default(),
        &scene,
        Placement::FirstTouch,
        FbOrg::Single(GpmId(0)),
        ColorMode::Direct,
    );
    a.exec_unit(GpmId(0), &unit);

    let mut b = Executor::new(
        GpuConfig::default(),
        &scene,
        Placement::FirstTouch,
        FbOrg::Single(GpmId(0)),
        ColorMode::Direct,
    );
    let mut ru = b.start_unit(&unit);
    let mut steps = 0;
    while !b.step_unit(GpmId(0), &mut ru) {
        steps += 1;
        assert!(steps < 1_000_000, "unit did not terminate");
    }
    assert!(ru.is_done());
    assert_eq!(a.counts(), b.counts());
    assert_eq!(a.gpm(GpmId(0)).now, b.gpm(GpmId(0)).now);
}

#[test]
fn remote_reads_charge_both_dram_and_link() {
    let scene = small_scene();
    let mut ex = Executor::new(
        GpuConfig::default(),
        &scene,
        Placement::Fixed(GpmId(1)),
        FbOrg::Single(GpmId(1)),
        ColorMode::Direct,
    );
    ex.exec_unit(GpmId(0), &RenderUnit::smp(scene.objects()[0].id()));
    let t = ex.traffic();
    // Every remote texture byte was also read from the home's DRAM.
    assert!(t.dram[1] >= t.links.get(GpmId(1), GpmId(0)));
    assert!(t.remote_of(TrafficClass::Texture) > 0);
}

#[test]
fn eye_instances_cover_disjoint_frame_halves() {
    let scene = small_scene();
    let res = scene.resolution();
    let cfg = GpuConfig::default();
    // Rendering only left-eye instances never writes right-half pixels:
    // verified via the per-partition composition counts of a 2-column split.
    let mut ex = Executor::new(
        cfg.with_n_gpms(2),
        &scene,
        Placement::FirstTouch,
        FbOrg::Columns,
        ColorMode::Deferred,
    );
    for o in scene.objects() {
        ex.exec_unit(GpmId(0), &RenderUnit::single(o.id(), Eye::Left));
    }
    let r = ex.finish("left-only", Composition::Distributed);
    // All pixels fall in column partition 0 (the left half of the stereo
    // frame, since n=2 splits exactly at the eye boundary).
    assert!(r.counts.pixels_out > 0);
    assert_eq!(
        r.traffic.remote_of(TrafficClass::Composition),
        0,
        "left-eye pixels composed locally on GPM0; got {} remote bytes at {res}",
        r.traffic.remote_of(TrafficClass::Composition)
    );
}
