//! Property tests for the serving layer: serving multiplexes measured
//! renders, it never re-renders differently.
//!
//! Two invariants anchor `oovr-serve`:
//!
//! * **Bit-identity with the warm executor.** A one-session serve run is
//!   exactly one warm frame sequence: the reports its frames replay must be
//!   field-identical to a standalone [`OoVr::render_frames`] run of the
//!   same length (the serving layer adds scheduling around the stream, not
//!   a second cost model). Single-frame schemes likewise replay the one
//!   memoized render on every frame.
//! * **Seeded determinism.** A (scheme, workload, config, seed) tuple
//!   replays bit-identically — outcomes, QoS, the capacity table's CSV
//!   bytes, and the exported session-lifecycle trace.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

use oovr::schemes::OoVr;
use oovr_frameworks::{Baseline, RenderScheme};
use oovr_gpu::{FrameReport, GpuConfig};
use oovr_scene::benchmarks;
use oovr_serve::{capacity_table, simulate, ServeConfig, ServeScheme, VSYNC_90HZ_CYCLES};
use oovr_trace::export::{chrome_trace, csv_timeline};
use oovr_trace::{Recorder, TraceConfig, TraceEvent};

fn spec() -> oovr_scene::BenchmarkSpec {
    benchmarks::hl2_640().scaled(0.05)
}

/// Field-by-field equality (`FrameReport` carries no `PartialEq`).
fn assert_reports_identical(a: &FrameReport, b: &FrameReport) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.frame_cycles, b.frame_cycles);
    prop_assert_eq!(a.composition_cycles, b.composition_cycles);
    prop_assert_eq!(&a.gpm_busy, &b.gpm_busy);
    prop_assert_eq!(a.counts, b.counts);
    prop_assert_eq!(a.inter_gpm_bytes(), b.inter_gpm_bytes());
    prop_assert_eq!(a.traffic.local_bytes(), b.traffic.local_bytes());
    prop_assert_eq!(a.l1_hit_rate.to_bits(), b.l1_hit_rate.to_bits());
    prop_assert_eq!(a.l2_hit_rate.to_bits(), b.l2_hit_rate.to_bits());
    prop_assert_eq!(&a.resident_bytes, &b.resident_bytes);
    Ok(())
}

proptest! {
    // Streams are memoized process-wide, so each case only pays scheduling.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A one-session OO-VR serve run replays exactly the reports of a
    /// standalone warm-executor sequence of the same length: warmup is the
    /// cold PA-paying frame, paced frame `k` is warm frame `k+1`.
    #[test]
    fn single_session_serve_matches_standalone_warm_render(
        paced in 1u32..4,
        seed in 0u64..1_000,
    ) {
        let spec = spec();
        let gpu = GpuConfig::default();
        let cfg = ServeConfig { sessions: 1, frames_per_session: paced, seed, ..ServeConfig::default() };
        let out = simulate(ServeScheme::OoVr, &spec, &gpu, &cfg, None);
        prop_assert_eq!(out.sessions.len(), 1);
        prop_assert!(out.rejects.is_empty());
        let served = out.session_reports(0);
        let scene = oovr::cache::scene_for(&spec);
        let direct = OoVr::new().render_frames(&scene, &gpu, paced + 1);
        prop_assert_eq!(served.len(), direct.len());
        for (got, want) in served.iter().zip(&direct) {
            assert_reports_identical(got, want)?;
        }
    }

    /// A one-session Baseline run replays the single memoized render on
    /// every frame — the same report `figures` uses everywhere else.
    #[test]
    fn single_session_baseline_replays_the_memoized_render(
        paced in 1u32..5,
        seed in 0u64..1_000,
    ) {
        let spec = spec();
        let gpu = GpuConfig::default();
        let cfg = ServeConfig { sessions: 1, frames_per_session: paced, seed, ..ServeConfig::default() };
        let out = simulate(ServeScheme::Baseline, &spec, &gpu, &cfg, None);
        prop_assert_eq!(out.sessions.len(), 1);
        let scene = oovr::cache::scene_for(&spec);
        let direct = Baseline::new().render_frame(&scene, &gpu);
        for report in out.session_reports(0) {
            assert_reports_identical(report, &direct)?;
        }
    }

    /// Identical seeds replay identical serving outcomes, QoS, and trace
    /// exports, byte for byte.
    #[test]
    fn identical_seeds_serve_bit_identically(
        sessions in 1u32..7,
        paced in 1u32..9,
        seed in 0u64..10_000,
        scheme_ix in 0usize..ServeScheme::ALL.len(),
    ) {
        let spec = spec();
        let gpu = GpuConfig::default();
        let scheme = ServeScheme::ALL[scheme_ix];
        let cfg = ServeConfig {
            sessions,
            frames_per_session: paced,
            seed,
            ..ServeConfig::default()
        };
        let run = || {
            let mut rec = Recorder::new(TraceConfig::default());
            let out = simulate(scheme, &spec, &gpu, &cfg, Some(&mut rec));
            let events: Vec<TraceEvent> = rec.into_events();
            (out, events)
        };
        let (a, ea) = run();
        let (b, eb) = run();
        prop_assert_eq!(&a.sessions, &b.sessions);
        prop_assert_eq!(&a.rejects, &b.rejects);
        prop_assert_eq!(a.qos(), b.qos());
        prop_assert_eq!(chrome_trace(&ea, gpu.n_gpms, 0), chrome_trace(&eb, gpu.n_gpms, 0));
        prop_assert_eq!(csv_timeline(&ea, 0), csv_timeline(&eb, 0));
        // The lifecycle is visible: every admitted session has an admit
        // instant, every executed frame a span.
        let admits = ea.iter().filter(|e| matches!(e, TraceEvent::SessionAdmit { .. })).count();
        prop_assert_eq!(admits, a.sessions.len());
        let spans = ea.iter().filter(|e| matches!(e, TraceEvent::FrameSpan { .. })).count();
        let executed: usize =
            a.sessions.iter().map(|s| s.frames.iter().filter(|f| !f.dropped).count()).sum();
        prop_assert_eq!(spans, executed);
        // And the chrome export passes structural validation.
        let doc = oovr_trace::json::parse(&chrome_trace(&ea, gpu.n_gpms, 0)).expect("parses");
        oovr_trace::json::validate_chrome_trace(&doc, gpu.n_gpms).expect("validates");
    }

    /// Over-capacity offered load is rejected at admission, never silently
    /// over-subscribed: the admitted predicted demand respects the budget.
    #[test]
    fn admission_never_oversubscribes_the_budget(
        sessions in 2u32..11,
        headroom in 0.3f64..1.0,
        seed in 0u64..1_000,
    ) {
        let spec = spec();
        let gpu = GpuConfig::default();
        let steady =
            oovr_serve::cost_stream(ServeScheme::OoVr, &spec, &gpu).steady().frame_cycles;
        // An interval of ~3 steady frames forces rejections well before
        // `sessions` arrivals have all been admitted.
        let cfg = ServeConfig {
            vsync_cycles: steady * 3,
            sessions,
            frames_per_session: 4,
            mean_interarrival: 0,
            seed,
            headroom,
            ..ServeConfig::default()
        };
        let out = simulate(ServeScheme::OoVr, &spec, &gpu, &cfg, None);
        prop_assert_eq!(out.sessions.len() + out.rejects.len(), sessions as usize);
        let admitted: f64 = out.sessions.iter().map(|s| s.predicted).sum();
        prop_assert!(admitted <= headroom * cfg.vsync_cycles as f64 + 1e-9);
        if sessions >= 6 {
            prop_assert!(!out.rejects.is_empty(), "offered load must overflow the budget");
        }
    }
}

/// The capacity table is a pure function of (specs, config): two
/// evaluations serialize to byte-identical CSV, and OO-VR strictly beats
/// Baseline on every workload row.
#[test]
fn capacity_table_is_deterministic_and_orders_schemes() {
    let specs = vec![benchmarks::hl2_640().scaled(0.05), benchmarks::we().scaled(0.05)];
    let gpu = GpuConfig::default();
    let cfg = ServeConfig::default();
    assert_eq!(cfg.vsync_cycles, VSYNC_90HZ_CYCLES);
    let a = capacity_table(&specs, &gpu, &cfg);
    let b = capacity_table(&specs, &gpu, &cfg);
    assert_eq!(a.to_csv(), b.to_csv(), "serve.csv must be byte-identical across runs");
    for spec in &specs {
        let base = a.value(&spec.name, "Baseline").unwrap();
        let oovr = a.value(&spec.name, "OOVR").unwrap();
        assert!(
            oovr > base,
            "{}: OOVR capacity {oovr} must strictly exceed Baseline {base}",
            spec.name
        );
    }
}
