//! End-to-end scheme comparisons: the paper's qualitative results must hold
//! on scaled-down workloads.

use oovr::schemes::{OoApp, OoVr};
use oovr_frameworks::{Afr, Baseline, ObjectSfr, RenderScheme, TileSfr};
use oovr_gpu::{FrameReport, GpuConfig};
use oovr_mem::TrafficClass;
use oovr_scene::benchmarks;

fn run_all(scale: f64) -> Vec<FrameReport> {
    let scene = benchmarks::hl2_640().scaled(scale).build();
    let cfg = GpuConfig::default();
    let schemes: Vec<Box<dyn RenderScheme>> = vec![
        Box::new(Baseline::new()),
        Box::new(Afr::new()),
        Box::new(TileSfr::vertical()),
        Box::new(TileSfr::horizontal()),
        Box::new(ObjectSfr::new()),
        Box::new(OoApp::new()),
        Box::new(OoVr::new()),
    ];
    schemes.iter().map(|s| s.render_frame(&scene, &cfg)).collect()
}

#[test]
fn all_schemes_render_the_same_frame() {
    let reports = run_all(0.15);
    let frags = reports[0].counts.fragments;
    for r in &reports {
        assert_eq!(r.counts.fragments, frags, "{} shades a different frame", r.scheme);
        assert!(r.frame_cycles > 0);
    }
}

#[test]
fn afr_is_the_only_scheme_with_zero_link_traffic() {
    let reports = run_all(0.15);
    for r in &reports {
        if r.scheme == "Frame-Level" {
            assert_eq!(r.inter_gpm_bytes(), 0, "AFR replicates memory");
        } else {
            assert!(r.inter_gpm_bytes() > 0, "{} must use the links", r.scheme);
        }
    }
}

#[test]
fn oovr_minimizes_remote_texture_traffic() {
    let reports = run_all(0.15);
    let tex = |name: &str| {
        reports
            .iter()
            .find(|r| r.scheme == name)
            .map(|r| r.traffic.remote_of(TrafficClass::Texture))
            .expect("scheme present")
    };
    // The locality ladder of the paper: OO-VR ≤ OO_APP ≤ Object-level <
    // Baseline.
    assert!(tex("OOVR") <= tex("OO_APP"), "oovr {} ooapp {}", tex("OOVR"), tex("OO_APP"));
    assert!(tex("OO_APP") < tex("Object-Level"));
    assert!(tex("Object-Level") < tex("Baseline"));
    // Threshold calibrated against the vendored RNG stream (shims/rand);
    // shared hero textures first-touched during calibration keep a residual
    // remote fraction at this tiny scale.
    assert!(
        (tex("OOVR") as f64) < 0.3 * tex("Baseline") as f64,
        "OO-VR must eliminate most remote texture reads ({} vs {})",
        tex("OOVR"),
        tex("Baseline")
    );
}

#[test]
fn oovr_is_the_fastest_multi_gpm_scheme_at_scale() {
    // Use a larger scale so fragment work dominates fixed overheads, as in
    // the paper's full-resolution evaluation.
    let reports = run_all(0.35);
    let cycles = |name: &str| {
        reports.iter().find(|r| r.scheme == name).map(|r| r.frame_cycles).expect("present")
    };
    assert!(cycles("OOVR") < cycles("Baseline"));
    assert!(cycles("OOVR") < cycles("Object-Level"));
    assert!(cycles("OOVR") < cycles("OO_APP"));
    assert!(cycles("OOVR") < cycles("Tile-Level (V)"));
}

#[test]
fn oovr_balances_better_than_object_sfr() {
    let reports = run_all(0.35);
    let imb = |name: &str| {
        reports.iter().find(|r| r.scheme == name).map(|r| r.imbalance_ratio()).expect("present")
    };
    assert!(
        imb("OOVR") < imb("Object-Level"),
        "oovr {} vs object {}",
        imb("OOVR"),
        imb("Object-Level")
    );
}

#[test]
fn composition_is_distributed_under_oovr() {
    let reports = run_all(0.15);
    let comp = |name: &str| {
        reports.iter().find(|r| r.scheme == name).map(|r| r.composition_cycles).expect("present")
    };
    // DHC uses all ROPs; master-node composition serializes on one GPM.
    assert!(comp("OOVR") < comp("Object-Level"));
    assert!(comp("OOVR") < comp("OO_APP"));
    assert_eq!(comp("Baseline"), 0, "in-place color output needs no composition pass");
}

#[test]
fn gpm_counts_other_than_four_work() {
    let scene = benchmarks::we().scaled(0.12).build();
    for n in [1usize, 2, 8] {
        let cfg = GpuConfig::default().with_n_gpms(n);
        for scheme in ["base", "oovr"] {
            let r: FrameReport = match scheme {
                "base" => Baseline::new().render_frame(&scene, &cfg),
                _ => OoVr::new().render_frame(&scene, &cfg),
            };
            assert!(r.frame_cycles > 0, "{scheme} at {n} GPMs");
            assert_eq!(r.gpm_busy.len(), n);
            if n == 1 {
                assert_eq!(r.inter_gpm_bytes(), 0, "single GPM has no links");
            }
        }
    }
}
