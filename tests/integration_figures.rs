//! Shape assertions on the experiment runners: scaled-down versions of the
//! paper's figures must show the paper's qualitative trends.

use oovr::experiments::{fig16, fig17, fig18, fig4, fig7, fig9, smp_validation};
use oovr_scene::benchmarks;

fn tiny_specs() -> Vec<oovr_scene::BenchmarkSpec> {
    vec![benchmarks::hl2_640().scaled(0.15), benchmarks::we().scaled(0.15)]
}

#[test]
fn fig4_performance_degrades_monotonically_with_bandwidth() {
    let t = fig4(&tiny_specs());
    for (label, vals) in &t.rows {
        for w in vals.windows(2) {
            assert!(
                w[1] <= w[0] + 0.02,
                "{label}: lower link bandwidth must not speed the baseline up ({vals:?})"
            );
        }
        assert!(vals[4] < 0.9, "{label}: 32GB/s must hurt ({vals:?})");
    }
}

#[test]
fn smp_beats_sequential_stereo() {
    let t = smp_validation(&tiny_specs());
    let avg = t.value("Avg.", "SMP speedup").expect("avg row");
    assert!(avg > 1.05, "SMP speedup {avg} (paper: ~1.27)");
    assert!(avg < 2.0, "SMP cannot beat 2x (geometry is only half the work)");
}

#[test]
fn fig7_afr_tradeoff() {
    let t = fig7(&tiny_specs());
    let overall = t.value("Avg.", "Overall perf").expect("avg");
    assert!(overall > 1.0, "AFR wins on overall frame rate ({overall})");
}

#[test]
fn fig9_object_sfr_reduces_traffic() {
    let t = fig9(&tiny_specs());
    let obj = t.value("Avg.", "Object-Level").expect("avg");
    assert!(obj < 1.0, "object-level SFR must reduce inter-GPM traffic ({obj})");
}

#[test]
fn fig16_oovr_cuts_most_inter_gpm_traffic() {
    let t = fig16(&tiny_specs());
    let oovr = t.value("Avg.", "OOVR").expect("avg");
    let object = t.value("Avg.", "Object-Level").expect("avg");
    assert!(oovr < object, "OO-VR below object-level ({oovr} vs {object})");
    assert!(oovr < 0.75, "OO-VR must cut most baseline traffic ({oovr})");
}

#[test]
fn fig17_oovr_is_bandwidth_insensitive() {
    let t = fig17(&tiny_specs());
    let series = |name: &str| -> Vec<f64> {
        t.rows.iter().find(|(l, _)| l == name).map(|(_, v)| v.clone()).expect("row")
    };
    let base = series("Baseline");
    let oovr = series("OOVR");
    // Sensitivity = speedup spread between 32 and 256 GB/s.
    let base_spread = base[3] / base[0];
    let oovr_spread = oovr[3] / oovr[0];
    assert!(
        oovr_spread < 0.75 * base_spread,
        "OO-VR ({oovr_spread}) must be much less bandwidth-sensitive than baseline ({base_spread})"
    );
    // At test scale residual depth/composition traffic keeps some slope;
    // full-scale runs (EXPERIMENTS.md) are nearly flat.
    assert!(oovr_spread < 2.0, "OO-VR spread stays moderate ({oovr_spread})");
    // And OO-VR at 64 GB/s beats the baseline at 64 GB/s.
    assert!(oovr[1] > base[1]);
}

#[test]
fn fig18_oovr_scales_best() {
    let t = fig18(&tiny_specs());
    let series = |name: &str| -> Vec<f64> {
        t.rows.iter().find(|(l, _)| l == name).map(|(_, v)| v.clone()).expect("row")
    };
    let base = series("Baseline");
    let oovr = series("OOVR");
    assert!(oovr[3] > oovr[2] * 0.95, "OO-VR keeps scaling to 8 GPMs ({oovr:?})");
    assert!(oovr[2] > 1.3, "OO-VR gains from 4 GPMs ({oovr:?})");
    assert!(oovr[3] > base[3], "OO-VR out-scales the baseline ({oovr:?} vs {base:?})");
}

#[test]
fn energy_follows_traffic() {
    let t = oovr::experiments::energy(&tiny_specs());
    let base = t.value("Avg.", "Baseline").expect("avg");
    let oovr = t.value("Avg.", "OOVR").expect("avg");
    assert!(oovr < base, "OO-VR link energy {oovr} below baseline {base}");
    let node = t.value("Avg.", "node ×").expect("avg");
    assert!((node - 25.0).abs() < 1e-9, "250/10 pJ per bit, got {node}");
}

#[test]
fn sort_middle_extension_runs_and_reduces_traffic() {
    let t = oovr::experiments::ext_sort_middle(&tiny_specs());
    // At tiny scale the per-primitive shipping dominates (exactly the §4.3
    // synchronization-cost argument); just require sane, nonzero results
    // and OO-VR staying ahead.
    let sm_traffic = t.value("Avg.", "SM traffic").expect("avg");
    assert!(sm_traffic > 0.05 && sm_traffic < 4.0, "traffic ratio sane ({sm_traffic})");
    let sm = t.value("Avg.", "SM speedup").expect("avg");
    let oovr = t.value("Avg.", "OOVR speedup").expect("avg");
    assert!(sm > 0.2 && sm < 5.0, "sane speedup range ({sm})");
    assert!(oovr > sm * 0.8, "OO-VR competitive with sort-middle ({oovr} vs {sm})");
}

#[test]
fn steady_state_table_shows_warm_frames_clean() {
    let t = oovr::experiments::steady_state(&tiny_specs());
    for (label, vals) in &t.rows {
        let [cold_mb, warm_mb, cold_pa, warm_pa, speedup] = vals[..] else {
            panic!("unexpected column count");
        };
        // Replication converges: a warm frame distributes strictly less new
        // data than the cold one (usually none at all).
        assert!(
            warm_pa < cold_pa * 0.6 + 1e-9,
            "{label}: warm PA {warm_pa} MB vs cold {cold_pa} MB"
        );
        assert!(warm_mb <= cold_mb * 1.05, "{label} warm traffic exceeds cold");
        assert!(speedup >= 0.95, "{label} warm frames should not be slower ({speedup})");
    }
}
