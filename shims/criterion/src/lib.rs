//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the small part of criterion's API its benches use: [`Criterion`] with
//! `bench_function`/`benchmark_group`, [`Bencher::iter`], [`black_box`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Differences from upstream, by design: no statistical regression analysis,
//! no HTML reports, no saved baselines. Each benchmark is calibrated during
//! warm-up to pick an iteration count, then timed for `sample_size` samples;
//! min/median/max time-per-iteration is printed to stdout. When the harness
//! is invoked by `cargo test` (a `--test` argument is present, as cargo
//! passes to `bench = false`-less targets), each benchmark body runs exactly
//! once as a smoke check.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Times a closure over a fixed number of iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for this sample's iteration count, timing the whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark driver: configuration plus run/registration entry points.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (upstream minimum is 10).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Target warm-up/calibration time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Applies harness CLI arguments. Only `--test` (run each body once, as
    /// `cargo test` does for bench targets) is honoured; filters and report
    /// flags are accepted and ignored.
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        if self.test_mode {
            let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
            f(&mut b);
            println!("{id}: ok (test mode)");
            return self;
        }

        // Calibration: double the batch size until one batch fills a share
        // of the warm-up budget, which also warms caches and branch state.
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            let enough = b.elapsed * (self.sample_size as u32)
                >= self.measurement_time.min(self.warm_up_time * 4);
            if enough || Instant::now() >= warm_deadline || iters >= 1 << 40 {
                break;
            }
            iters *= 2;
        }

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter_ns[per_iter_ns.len() / 2];
        println!(
            "{id}: [{} {} {}] ({} samples x {iters} iters)",
            fmt_ns(per_iter_ns[0]),
            fmt_ns(median),
            fmt_ns(*per_iter_ns.last().unwrap()),
            per_iter_ns.len(),
        );
        self
    }

    /// Starts a named group; benchmarks inside it print as `group/name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Prints the trailing summary line (upstream's `final_summary`).
    pub fn final_summary(&mut self) {}
}

/// Formats a nanosecond count with an adaptive unit.
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.bench_function(full, f);
        self
    }

    /// Ends the group. (No-op; exists for API compatibility.)
    pub fn finish(self) {}
}

/// Bundles benchmark functions with a shared [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut runs = 0u64;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs > 0, "body never executed");
    }

    #[test]
    fn groups_prefix_names_and_finish() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        let mut g = c.benchmark_group("grp");
        g.bench_function(format!("case_{}", 1), |b| b.iter(|| black_box(2 + 2)));
        g.bench_function("case_str", |b| b.iter(|| black_box(1u64.wrapping_mul(3))));
        g.finish();
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("us"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(12_000_000_000.0).ends_with(" s"));
    }
}
