//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the subset of proptest's API that its test-suites use: the [`proptest!`]
//! macro, range and tuple [`strategy::Strategy`]s, [`collection::vec`], and
//! the `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its inputs (via the assertion
//!   message) but is not minimized.
//! * **Deterministic seeding.** Each case derives its RNG from a hash of the
//!   fully-qualified test name and the case index, so failures reproduce
//!   exactly on re-run; `*.proptest-regressions` files are ignored.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Strategies: descriptions of how to generate random values.
pub mod strategy {
    use core::ops::Range;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A generator of values of type [`Self::Value`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use core::ops::Range;
    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::strategy::Strategy;

    /// Strategy producing `Vec`s of an element strategy's values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector of `size.start..size.end` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "vec size range must be non-empty");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner configuration and failure plumbing.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt;

    /// Number of cases to run per property (upstream's `ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// How many random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// A failed property-case, carrying the formatted assertion message.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic per-case RNG: FNV-1a of the test path mixed with the
    /// case index, so each `(test, case)` pair replays the same inputs.
    pub fn rng_for(test_path: &str, case: u32) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror of upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// expands to a `#[test]` that runs the body over `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests! { cfg = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_tests! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_tests {
    ( cfg = $cfg:expr; ) => {};
    (
        cfg = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::test_runner::rng_for(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(
                    let $arg = $crate::strategy::Strategy::generate(
                        &($strat),
                        &mut __proptest_rng,
                    );
                )+
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "proptest {} case {}/{} failed: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_tests! { cfg = $cfg; $($rest)* }
    };
}

/// `assert!` for property bodies: fails the case instead of panicking so the
/// harness can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)*);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, f in 0.5f64..1.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn vec_sizes_respect_range(v in prop::collection::vec(0u32..5, 2..9)) {
            prop_assert!((2..9).contains(&v.len()), "len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn tuples_compose(pair in (0u8..4, 10u64..20)) {
            let (a, b) = pair;
            prop_assert!(a < 4);
            prop_assert_eq!(b / 10, 1, "b was {}", b);
            prop_assert_ne!(b, 99);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::rng_for("t::x", 3);
        let mut b = crate::test_runner::rng_for("t::x", 3);
        let s = 0u64..1000;
        use crate::strategy::Strategy as _;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
        let mut c = crate::test_runner::rng_for("t::x", 4);
        // Different case index, different stream (overwhelmingly likely).
        assert_ne!(
            (0..8).map(|_| s.generate(&mut a)).collect::<Vec<_>>(),
            (0..8).map(|_| s.generate(&mut c)).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "proptest always_fails case 0")]
    fn failures_report_case_index() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(2))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x >= 10, "x was {}", x);
            }
        }
        always_fails();
    }
}
