//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the *small* part of rand's 0.8 API that it actually
//! uses: a seedable [`rngs::StdRng`], the [`Rng`]/[`SeedableRng`] traits with
//! `gen_range`/`gen_bool`, and [`distributions::Distribution`].
//!
//! The generator is xoshiro256\*\* seeded through SplitMix64 — not the same
//! stream as upstream `StdRng` (which is ChaCha12), but the workspace only
//! relies on *determinism* and *statistical quality*, never on a specific
//! stream: scenes are generated once per seed and all comparisons are within
//! this implementation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (the upper half of [`next_u64`](Self::next_u64),
    /// which are the strongest bits of xoshiro256\*\*).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability must be in [0,1], got {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits to `[0, 1)` with 53-bit resolution.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps 32 random bits to `[0, 1)` with 24-bit resolution.
fn unit_f32(bits: u32) -> f32 {
    (bits >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Unbiased-enough uniform draw in `[0, span)` via 128-bit multiply-shift
/// (Lemire's method without the rejection step; the bias is < 2^-64 per
/// draw, far below anything the statistical tests in this workspace see).
fn mul_shift(bits: u64, span: u64) -> u64 {
    ((u128::from(bits) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + mul_shift(rng.next_u64(), span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64) - (start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + mul_shift(rng.next_u64(), span + 1) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_float_sample_range {
    ($($t:ty, $unit:ident, $next:ident);*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let v = self.start + $unit(rng.$next()) * (self.end - self.start);
                // Guard against floating-point rounding landing exactly on
                // the excluded upper bound.
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}

impl_float_sample_range!(f64, unit_f64, next_u64; f32, unit_f32, next_u32);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256\*\* (Blackman &
    /// Vigna), seeded via SplitMix64. Fast, 256-bit state, passes BigCrush.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            // SplitMix64 never produces four zero words in a row from any
            // seed, so the xoshiro state is always valid.
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Distribution sampling, mirroring `rand::distributions`.
pub mod distributions {
    use super::Rng;

    /// A type that can produce values of `T` given a source of randomness.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&g));
            let h = rng.gen_range(0.0f32..1.0);
            assert!((0.0..1.0).contains(&h));
        }
    }

    #[test]
    fn range_values_cover_the_domain() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let p = hits as f64 / n as f64;
        assert!((p - 0.3).abs() < 0.02, "empirical p = {p}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = rng.gen_range(4u32..4);
    }
}
