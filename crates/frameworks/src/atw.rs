//! Asynchronous Time Warp (ATW) — the frame re-projection fallback.
//!
//! §2.2 of the paper: "the VR vendors today employ frame re-projection
//! technologies such as Asynchronous Time Warp to artificially fill in
//! dropped frames, \[but\] they cannot fundamentally solve the problem of
//! rendering deadline missing due to little consideration on users'
//! perception and interaction." This module models that fallback so the
//! motivation is quantifiable: given a scheme's frame time and the Table 1
//! deadline, how many displayed frames are *real* versus re-projected?
//!
//! ATW re-projects the previous frame at the vsync deadline: a cheap
//! pixel-space warp (one read + one write per pixel through the ROPs of a
//! single GPM), always completing in time, but showing stale content —
//! the judder/sickness §4.1 associates with long true-frame latency.

use oovr_gpu::{FrameReport, GpuConfig, VSYNC_90HZ_CYCLES};
use oovr_mem::Cycle;

/// The 90 Hz vsync deadline in milliseconds (Table 1).
pub const VSYNC_90HZ_MS: f64 = 1000.0 / 90.0;

/// Cycles one GPM needs to warp `pixels` displayed pixels (one read + one
/// write per pixel through its ROPs) — the per-object form the temporal
/// reuse layer charges for a reprojected object.
pub fn warp_cycles_for_pixels(pixels: u64, cfg: &GpuConfig) -> Cycle {
    // Warp touches each displayed pixel once; ROPs process 4 px/cycle each.
    (2 * pixels.max(1)) / (u64::from(cfg.rops_per_gpm) * 4).max(1)
}

/// Cycles one GPM needs to warp a full stereo frame (read + write every
/// pixel through its ROPs).
pub fn warp_cycles(report: &FrameReport, cfg: &GpuConfig) -> Cycle {
    warp_cycles_for_pixels(report.counts.pixels_out, cfg)
}

/// The vsync budget in cycles for a `deadline_ms` deadline at the 1 GHz
/// clock. The 90 Hz case routes through the shared
/// [`oovr_gpu::VSYNC_90HZ_CYCLES`] constant instead of re-deriving it; the
/// truncation arithmetic agrees exactly (tested), so the special case
/// changes provenance, not value.
pub fn budget_cycles(deadline_ms: f64) -> Cycle {
    if deadline_ms == VSYNC_90HZ_MS {
        VSYNC_90HZ_CYCLES
    } else {
        (deadline_ms * 1e6) as Cycle // 1 GHz
    }
}

/// Display statistics for a scheme running against a vsync deadline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtwStats {
    /// The vsync budget in cycles (deadline_ms at 1 GHz).
    pub budget_cycles: Cycle,
    /// True (freshly rendered) frames per displayed frame, in `(0, 1]`.
    pub real_frame_ratio: f64,
    /// Vsync intervals each true frame spans (1 = always on time).
    pub intervals_per_frame: u64,
    /// Whether ATW itself fits in the budget (it practically always does).
    pub warp_fits: bool,
}

/// Evaluates a scheme's frame time against a `deadline_ms` vsync budget.
///
/// If the true frame time exceeds the budget, ATW fills the missed vsyncs
/// with re-projected frames: the display never starves, but only
/// `1/intervals` of displayed frames carry fresh content — exactly the
/// "artificially fill in dropped frames" stopgap the paper argues cannot
/// replace faster true rendering.
///
/// # Panics
///
/// Panics if `deadline_ms` is not positive.
pub fn evaluate(report: &FrameReport, cfg: &GpuConfig, deadline_ms: f64) -> AtwStats {
    assert!(deadline_ms > 0.0, "deadline must be positive");
    let budget = budget_cycles(deadline_ms);
    let intervals = report.frame_cycles.div_ceil(budget).max(1);
    AtwStats {
        budget_cycles: budget,
        real_frame_ratio: 1.0 / intervals as f64,
        intervals_per_frame: intervals,
        warp_fits: warp_cycles(report, cfg) <= budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Baseline, RenderScheme};
    use oovr_scene::benchmarks;

    #[test]
    fn on_time_frames_need_no_warp() {
        let scene = benchmarks::hl2_640().scaled(0.12).build();
        let cfg = GpuConfig::default();
        let r = Baseline::new().render_frame(&scene, &cfg);
        // Tiny frames easily beat a generous deadline.
        let stats = evaluate(&r, &cfg, 100.0);
        assert_eq!(stats.intervals_per_frame, 1);
        assert_eq!(stats.real_frame_ratio, 1.0);
        assert!(stats.warp_fits);
    }

    #[test]
    fn missed_deadlines_are_filled_with_stale_frames() {
        let scene = benchmarks::hl2_640().scaled(0.12).build();
        let cfg = GpuConfig::default();
        let r = Baseline::new().render_frame(&scene, &cfg);
        // Force a deadline shorter than the frame: ATW covers the gap, but
        // the real-frame ratio drops below 1.
        let tight_ms = r.frame_cycles as f64 / 1e6 / 2.5;
        let stats = evaluate(&r, &cfg, tight_ms);
        assert!(stats.intervals_per_frame >= 3);
        assert!(stats.real_frame_ratio <= 1.0 / 3.0);
        assert!(stats.warp_fits, "the warp itself is cheap");
    }

    #[test]
    fn warp_cost_scales_with_pixels() {
        let scene = benchmarks::hl2_640().scaled(0.12).build();
        let cfg = GpuConfig::default();
        let r = Baseline::new().render_frame(&scene, &cfg);
        let w = warp_cycles(&r, &cfg);
        assert!(w > 0);
        assert!(w < r.frame_cycles, "warping is far cheaper than rendering");
    }

    #[test]
    fn ninety_hz_budget_routes_through_the_shared_constant() {
        // The special case and the general truncation arithmetic agree bit
        // for bit, so routing 90 Hz through the constant changes nothing.
        assert_eq!((VSYNC_90HZ_MS * 1e6) as Cycle, VSYNC_90HZ_CYCLES);
        assert_eq!(budget_cycles(VSYNC_90HZ_MS), VSYNC_90HZ_CYCLES);
        // Other deadlines keep the truncation path.
        assert_eq!(budget_cycles(100.0), 100_000_000);
        let scene = benchmarks::hl2_640().scaled(0.12).build();
        let cfg = GpuConfig::default();
        let r = Baseline::new().render_frame(&scene, &cfg);
        assert_eq!(evaluate(&r, &cfg, VSYNC_90HZ_MS).budget_cycles, VSYNC_90HZ_CYCLES);
    }

    #[test]
    fn per_pixel_warp_matches_the_frame_warp() {
        let scene = benchmarks::hl2_640().scaled(0.12).build();
        let cfg = GpuConfig::default();
        let r = Baseline::new().render_frame(&scene, &cfg);
        assert_eq!(warp_cycles_for_pixels(r.counts.pixels_out, &cfg), warp_cycles(&r, &cfg));
    }

    #[test]
    #[should_panic(expected = "deadline must be positive")]
    fn zero_deadline_rejected() {
        let scene = benchmarks::hl2_640().scaled(0.12).build();
        let cfg = GpuConfig::default();
        let r = Baseline::new().render_frame(&scene, &cfg);
        let _ = evaluate(&r, &cfg, 0.0);
    }
}
