//! Object-level Split Frame Rendering — sort-last (§4.3, Fig. 6d).
//!
//! Objects are distributed round-robin across GPMs at the start of the
//! pipeline; each GPM renders one object at a time into its local memory,
//! and a master node (GPM0) assembles the final frame from the workers'
//! color outputs. The paper's §4.3 findings all emerge here:
//!
//! * remote traffic drops vs. the baseline (the object's data is local),
//! * but the two eyes of the same object are *separate tasks* on (usually)
//!   different GPMs, so cross-eye texture sharing still crosses links,
//! * heterogeneous object sizes under round-robin produce the load
//!   imbalance of Fig. 10,
//! * and single-node composition wastes the other GPMs' ROPs.

use std::collections::VecDeque;

use oovr_gpu::{ColorMode, Composition, Executor, FbOrg, FrameReport, GpuConfig, RenderUnit};
use oovr_mem::{GpmId, Placement};
use oovr_scene::{Eye, Scene};
use oovr_trace::{Recorder, TraceConfig};

use crate::scheduling::run_interleaved;
use crate::traits::RenderScheme;

/// Object-level (sort-last) split frame rendering with master composition.
#[derive(Debug, Clone, Copy)]
pub struct ObjectSfr {
    /// The master/root node that distributes work and composes the frame.
    pub root: GpmId,
}

impl Default for ObjectSfr {
    fn default() -> Self {
        ObjectSfr { root: GpmId(0) }
    }
}

impl ObjectSfr {
    /// Creates the scheme with GPM0 as the master node.
    pub fn new() -> Self {
        Self::default()
    }

    /// Shared frame body; `trace` attaches the flight recorder.
    fn frame(
        &self,
        scene: &Scene,
        cfg: &GpuConfig,
        trace: Option<TraceConfig>,
    ) -> (FrameReport, Option<Recorder>) {
        let mut ex = Executor::new(
            cfg.clone(),
            scene,
            Placement::FirstTouch,
            FbOrg::Single(self.root),
            ColorMode::Deferred,
        );
        if let Some(tc) = trace {
            ex.enable_trace(tc);
        }
        let n = cfg.n_gpms;
        let mut queues = vec![VecDeque::new(); n];
        // The left and right views are separate tasks, issued in submission
        // order and assigned round-robin (§4.3: the state of the art "still
        // executes the objects from the left and right views separately").
        // The rotation step is coprime with the GPM count so neither eye
        // aliases onto a fixed GPM subset (the scheduler is locality-blind,
        // not systematically unlucky).
        let step = if n > 1 { n - 1 } else { 1 };
        for (k, obj) in scene.objects().iter().enumerate() {
            for eye in Eye::BOTH {
                let g = (k * step + eye.index()) % n;
                queues[g].push_back(RenderUnit::single(obj.id(), eye));
            }
        }
        run_interleaved(&mut ex, queues);
        ex.finish_traced(self.name(), Composition::Master(self.root))
    }
}

impl RenderScheme for ObjectSfr {
    fn name(&self) -> &'static str {
        "Object-Level"
    }

    fn render_frame(&self, scene: &Scene, cfg: &GpuConfig) -> FrameReport {
        self.frame(scene, cfg, None).0
    }

    fn render_frame_traced(
        &self,
        scene: &Scene,
        cfg: &GpuConfig,
        trace: TraceConfig,
    ) -> (FrameReport, Option<Recorder>) {
        self.frame(scene, cfg, Some(trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::Baseline;
    use oovr_scene::benchmarks;

    #[test]
    fn object_sfr_reduces_traffic_vs_baseline() {
        let scene = benchmarks::hl2_640().scaled(0.12).build();
        let cfg = GpuConfig::default();
        let base = Baseline::new().render_frame(&scene, &cfg);
        let obj = ObjectSfr::new().render_frame(&scene, &cfg);
        // At test scale the composition bytes dominate totals, so compare
        // the data-locality classes the scheme actually improves.
        let key = |r: &oovr_gpu::FrameReport| {
            r.traffic.remote_of(oovr_mem::TrafficClass::Texture)
                + r.traffic.remote_of(oovr_mem::TrafficClass::Vertex)
        };
        assert!(key(&obj) < key(&base), "object {} vs baseline {}", key(&obj), key(&base));
        assert_eq!(obj.counts.fragments, base.counts.fragments);
    }

    #[test]
    fn object_sfr_composes_at_master() {
        let scene = benchmarks::hl2_640().scaled(0.12).build();
        let cfg = GpuConfig::default();
        let r = ObjectSfr::new().render_frame(&scene, &cfg);
        assert!(r.composition_cycles > 0);
        assert!(r.traffic.remote_of(oovr_mem::TrafficClass::Composition) > 0);
    }

    #[test]
    fn round_robin_objects_imbalance() {
        let scene = benchmarks::nfs().scaled(0.1).build();
        let cfg = GpuConfig::default();
        let r = ObjectSfr::new().render_frame(&scene, &cfg);
        // Heavy-tailed object sizes under blind round-robin leave the GPMs
        // unevenly loaded (Fig. 10 reports ratios well above 1).
        assert!(r.imbalance_ratio() > 1.05, "ratio {}", r.imbalance_ratio());
    }
}
