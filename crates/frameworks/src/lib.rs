//! # oovr-frameworks
//!
//! The parallel rendering schemes the OO-VR paper characterizes in §4 on the
//! NUMA-based multi-GPU system, plus the baseline single-programming-model
//! execution of §2.3:
//!
//! * [`Baseline`] — the whole system acts as one big GPU: work is launched
//!   sequentially and distributed to GPMs without locality-aware scheduling
//!   (fine-grained round-robin), framebuffer pages interleaved. This is the
//!   normalization point of every figure.
//! * [`Afr`] — Alternate Frame Rendering (§4.1, Fig. 6a): each GPM renders
//!   whole frames out of its own replicated memory space.
//! * [`TileSfr`] — tile-level Split Frame Rendering (§4.2, Fig. 6b/6c) with
//!   vertical or horizontal strips.
//! * [`ObjectSfr`] — object-level SFR / sort-last (§4.3, Fig. 6d): objects
//!   round-robin across GPMs, master-node composition.
//!
//! The OO-VR schemes themselves (OO_APP and the full co-design) live in the
//! `oovr` crate; they implement the same [`RenderScheme`] trait.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod afr;
pub mod atw;
pub mod baseline;
pub mod object_sfr;
pub mod scheduling;
pub mod sequence;
pub mod sort_middle;
pub mod tile_sfr;
pub mod traits;

pub use afr::Afr;
pub use atw::AtwStats;
pub use baseline::Baseline;
pub use object_sfr::ObjectSfr;
pub use scheduling::run_interleaved;
pub use sequence::{render_sequence, SequenceReport};
pub use sort_middle::SortMiddle;
pub use tile_sfr::{Orientation, TileSfr};
pub use traits::RenderScheme;
