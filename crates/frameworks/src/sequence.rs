//! Multi-frame sequences: overall frame rate vs single-frame latency.
//!
//! VR quality hinges on *both* metrics (§4.1 of the paper): AFR maximizes
//! overall frame rate by pipelining whole frames across GPMs, but each
//! frame's motion-to-photon latency is a full single-GPM render — the
//! source of "judder, lagging and sickness". This module renders a frame
//! in steady state and derives sequence-level metrics, including whether
//! the scheme meets the stereo-VR deadline of Table 1.

use oovr_gpu::{FrameReport, GpuConfig};
use oovr_mem::Cycle;
use oovr_scene::vr::STEREO_VR;
use oovr_scene::Scene;

use crate::traits::RenderScheme;

/// Sequence-level metrics for a scheme in steady state.
#[derive(Debug, Clone)]
pub struct SequenceReport {
    /// Scheme name.
    pub scheme: String,
    /// Frames simulated (analytically pipelined).
    pub frames: u32,
    /// Cycles from first submission to last display.
    pub total_cycles: Cycle,
    /// Single-frame (motion-to-photon) latency in cycles.
    pub frame_latency: Cycle,
    /// Overall frames per second at the 1 GHz clock.
    pub overall_fps: f64,
    /// The steady-state frame report backing these numbers.
    pub frame: FrameReport,
}

impl SequenceReport {
    /// Single-frame latency in milliseconds at 1 GHz.
    pub fn latency_ms(&self) -> f64 {
        self.frame_latency as f64 / 1e6
    }

    /// Whether the scheme meets the stereo-VR frame deadline of Table 1
    /// (`strict` uses the 5 ms bound, otherwise 10 ms).
    ///
    /// The latency bound is what matters for motion anomalies: a scheme
    /// with high overall fps but long per-frame latency (AFR) still fails.
    pub fn meets_vr_deadline(&self, strict: bool) -> bool {
        let budget =
            if strict { STEREO_VR.frame_latency_ms.0 } else { STEREO_VR.frame_latency_ms.1 };
        self.latency_ms() <= budget
    }
}

/// Renders `frames` identical frames under `scheme`, pipelining frames
/// across GPMs where the scheme supports it (AFR's `frames_in_flight`).
///
/// The steady-state frame is simulated once; sequence totals are derived
/// analytically, which is exact for schemes whose concurrent frames share
/// no data paths (AFR's replicated memory spaces) and for serial schemes.
///
/// # Panics
///
/// Panics if `frames` is zero.
pub fn render_sequence(
    scheme: &dyn RenderScheme,
    scene: &Scene,
    cfg: &GpuConfig,
    frames: u32,
) -> SequenceReport {
    assert!(frames > 0, "need at least one frame");
    let frame = scheme.render_frame(scene, cfg);
    let fif = scheme.frames_in_flight(cfg).max(1);
    // With `fif` frames in flight, a new frame completes every
    // `frame_cycles / fif` in steady state; the pipeline drains after the
    // last wave.
    let waves = u64::from(frames.div_ceil(fif));
    let total_cycles = waves * frame.frame_cycles;
    let overall_fps = scheme.overall_fps(&frame, cfg);
    SequenceReport {
        scheme: frame.scheme.clone(),
        frames,
        total_cycles,
        frame_latency: frame.frame_cycles,
        overall_fps,
        frame,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Afr, Baseline};
    use oovr_scene::benchmarks;

    fn scene() -> Scene {
        benchmarks::hl2_640().scaled(0.12).build()
    }

    #[test]
    fn afr_pipelines_frames() {
        let s = scene();
        let cfg = GpuConfig::default();
        let afr = render_sequence(&Afr::new(), &s, &cfg, 8);
        let base = render_sequence(&Baseline::new(), &s, &cfg, 8);
        // 8 frames in 2 waves of 4 for AFR; 8 serial frames for baseline.
        assert_eq!(afr.total_cycles, 2 * afr.frame_latency);
        assert_eq!(base.total_cycles, 8 * base.frame_latency);
        assert!(afr.overall_fps > base.overall_fps);
    }

    #[test]
    fn partial_last_wave_rounds_up() {
        let s = scene();
        let cfg = GpuConfig::default();
        let afr = render_sequence(&Afr::new(), &s, &cfg, 5);
        assert_eq!(afr.total_cycles, 2 * afr.frame_latency, "5 frames need 2 waves of 4");
    }

    #[test]
    fn deadline_check_uses_latency_not_throughput() {
        let s = scene();
        let cfg = GpuConfig::default();
        let r = render_sequence(&Baseline::new(), &s, &cfg, 1);
        // Tiny test frames easily meet the 10 ms bound.
        assert!(r.meets_vr_deadline(false));
        assert!(r.latency_ms() > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_frames_rejected() {
        let s = scene();
        let _ = render_sequence(&Baseline::new(), &s, &GpuConfig::default(), 0);
    }
}
