//! Sort-middle rendering: cooperative primitive redistribution.
//!
//! §4.3 of the paper notes that object distribution "can also occur during
//! the rendering process (e.g., between rasterization and fragment
//! processing \[21\])" — Kim et al.'s GPUpd — but that it "typically
//! requires additional inter-GPM synchronization which may cause increasing
//! inter-GPM traffic". This module implements that alternative so the
//! claim can be measured rather than assumed:
//!
//! 1. **Geometry phase**: whole objects are distributed round-robin (with
//!    SMP merging both eyes), so vertex work is balanced and unduplicated.
//! 2. **Redistribution**: each post-SMP triangle is shipped to the GPM that
//!    owns the framebuffer column partition under its centroid — a
//!    synchronization barrier plus per-primitive link traffic.
//! 3. **Fragment phase**: each GPM rasterizes exactly its own screen
//!    partition, so depth/color traffic is local, but texture footprints
//!    are re-fetched per partition like any screen-space split.
//!
//! This is an *extension beyond the paper's evaluated schemes* (it
//! implements the \[21\] comparator the paper only cites); EXPERIMENTS.md
//! reports it alongside the paper's figures.

use std::collections::VecDeque;

use oovr_gpu::{
    partition_of_column, ColorMode, Composition, Executor, FbOrg, FrameReport, GpuConfig,
    RenderUnit,
};
use oovr_mem::{GpmId, Placement, TrafficClass};
use oovr_scene::{Eye, Scene};

use crate::scheduling::run_interleaved;
use crate::traits::RenderScheme;

/// Bytes shipped per redistributed primitive (post-transform vertex
/// attributes for one triangle).
pub const BYTES_PER_PRIMITIVE: u64 = 96;

/// Sort-middle (GPUpd-style) cooperative projection + distribution.
#[derive(Debug, Clone, Copy, Default)]
pub struct SortMiddle;

impl SortMiddle {
    /// Creates the scheme.
    pub fn new() -> Self {
        SortMiddle
    }
}

impl RenderScheme for SortMiddle {
    fn name(&self) -> &'static str {
        "Sort-Middle"
    }

    fn render_frame(&self, scene: &Scene, cfg: &GpuConfig) -> FrameReport {
        let mut ex = Executor::new(
            cfg.clone(),
            scene,
            Placement::FirstTouch,
            FbOrg::Columns,
            ColorMode::Direct,
        );
        let n = cfg.n_gpms;
        let res = scene.resolution();
        let stereo_w = res.stereo_width();

        // Phase 1+2 bookkeeping: count the primitives each geometry GPM
        // ships to each partition owner, and charge the redistribution.
        // The geometry GPM of object k is k % n (round-robin); the target
        // of a triangle is the column partition under its centroid.
        let mut shipped = vec![vec![0u64; n]; n];
        for (k, obj) in scene.objects().iter().enumerate() {
            let src = k % n;
            for eye in Eye::BOTH {
                for tri in obj.triangles(res, eye) {
                    let cx = (tri.v[0].x + tri.v[1].x + tri.v[2].x) / 3.0;
                    let dst = partition_of_column(
                        (cx.max(0.0) as u32).min(stereo_w.saturating_sub(1)),
                        stereo_w,
                        n,
                    );
                    shipped[src][dst] += 1;
                }
            }
        }
        for (src, row) in shipped.iter().enumerate() {
            for (dst, &prims) in row.iter().enumerate() {
                if src != dst && prims > 0 {
                    ex.charge_transfer(
                        GpmId(src as u8),
                        GpmId(dst as u8),
                        TrafficClass::Command,
                        prims * BYTES_PER_PRIMITIVE,
                    );
                }
            }
        }

        // Phase 3: every object's fragments execute on the partition owners
        // (clipped per strip). Geometry cost is charged once at the source
        // GPM via an un-clipped zero-fragment pass — modeled by letting the
        // source strip's unit carry the full command, and the strips each
        // re-run geometry for the primitives they received (their share).
        let mut queues = vec![VecDeque::new(); n];
        for obj in scene.objects() {
            let bounds = obj.stereo_bounds(res);
            let mut first = true;
            for (g, queue) in queues.iter_mut().enumerate() {
                // Integer strip edges so adjacent strips never overlap a
                // pixel (float division would double-rasterize borders).
                let w = (stereo_w as usize).div_ceil(n) as u32;
                let x0 = (g as u32) * w;
                let strip = oovr_scene::Rect::new(
                    x0 as f32,
                    0.0,
                    w.min(stereo_w.saturating_sub(x0)) as f32,
                    res.height as f32,
                );
                if !strip.overlaps(&bounds) {
                    continue;
                }
                let mut u = RenderUnit::smp(obj.id()).clipped(strip);
                if !first {
                    u = u.without_command();
                }
                first = false;
                queue.push_back(u);
            }
        }
        run_interleaved(&mut ex, queues);
        ex.finish(self.name(), Composition::None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::Baseline;
    use oovr_scene::benchmarks;

    #[test]
    fn sort_middle_renders_the_full_frame() {
        let scene = benchmarks::hl2_640().scaled(0.12).build();
        let cfg = GpuConfig::default();
        let base = Baseline::new().render_frame(&scene, &cfg);
        let sm = SortMiddle::new().render_frame(&scene, &cfg);
        assert_eq!(sm.counts.fragments, base.counts.fragments);
        assert!(sm.gpm_busy.iter().all(|&b| b > 0));
    }

    #[test]
    fn redistribution_shows_up_as_command_traffic() {
        let scene = benchmarks::hl2_640().scaled(0.12).build();
        let cfg = GpuConfig::default();
        let sm = SortMiddle::new().render_frame(&scene, &cfg);
        // Per-primitive shipping is the §4.3 synchronization cost.
        let cmd = sm.traffic.remote_of(TrafficClass::Command);
        let tris = scene.total_triangles_per_eye() * 2;
        assert!(
            cmd >= tris / 2 * BYTES_PER_PRIMITIVE,
            "most primitives cross GPMs: {cmd} bytes for {tris} triangles"
        );
    }

    #[test]
    fn depth_and_color_stay_local() {
        let scene = benchmarks::hl2_640().scaled(0.12).build();
        let cfg = GpuConfig::default();
        let sm = SortMiddle::new().render_frame(&scene, &cfg);
        let base = Baseline::new().render_frame(&scene, &cfg);
        // Partition-local FB: far less remote depth/color than the baseline.
        let rw = |r: &FrameReport| {
            r.traffic.remote_of(TrafficClass::Depth) + r.traffic.remote_of(TrafficClass::Color)
        };
        assert!(
            (rw(&sm) as f64) < 0.8 * rw(&base) as f64,
            "sort-middle {} vs baseline {}",
            rw(&sm),
            rw(&base)
        );
    }
}
