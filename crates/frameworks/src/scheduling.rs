//! Shared scheduling helpers for static-assignment schemes.

use std::collections::VecDeque;

use oovr_gpu::{Executor, RenderUnit};
use oovr_mem::GpmId;

/// Drains per-GPM work queues in global time order: at every step the GPM
/// with the earliest clock (among those with remaining work) executes one
/// *quantum* of its current unit. This is how concurrent GPMs interleave
/// their demand on the shared NVLinks, matching hardware arbitration —
/// executing whole units at once would skew GPM clocks and mis-serialize
/// the FIFO bandwidth servers.
pub fn run_interleaved(ex: &mut Executor<'_>, mut queues: Vec<VecDeque<RenderUnit>>) {
    assert_eq!(queues.len(), ex.n_gpms(), "one queue per GPM");
    let n = ex.n_gpms();
    let mut running: Vec<Option<oovr_gpu::RunningUnit>> = (0..n).map(|_| None).collect();
    loop {
        let mut best: Option<(usize, u64)> = None;
        for g in 0..n {
            if running[g].is_none() && queues[g].is_empty() {
                continue;
            }
            let now = ex.gpm(GpmId(g as u8)).now;
            if best.is_none_or(|(_, t)| now < t) {
                best = Some((g, now));
            }
        }
        let Some((g, _)) = best else { break };
        if running[g].is_none() {
            let unit = queues[g].pop_front().expect("queue checked non-empty");
            running[g] = Some(ex.start_unit(&unit));
        }
        let ru = running[g].as_mut().expect("running unit just ensured");
        if ex.step_unit(GpmId(g as u8), ru) {
            running[g] = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oovr_gpu::{ColorMode, Composition, FbOrg, GpuConfig};
    use oovr_mem::Placement;
    use oovr_scene::{ObjectId, SceneBuilder};

    #[test]
    fn all_queued_units_execute() {
        let scene = SceneBuilder::new(64, 64)
            .texture("t", 64, 64)
            .object("a", |o| {
                o.rect(0.0, 0.0, 0.4, 0.4).grid(2, 2).texture("t", 1.0);
            })
            .object("b", |o| {
                o.rect(0.5, 0.5, 0.4, 0.4).grid(2, 2).texture("t", 1.0);
            })
            .build();
        let cfg = GpuConfig::default();
        let mut ex = Executor::new(
            cfg,
            &scene,
            Placement::FirstTouch,
            FbOrg::InterleavedPages,
            ColorMode::Direct,
        );
        let mut queues = vec![VecDeque::new(); 4];
        queues[0].push_back(RenderUnit::smp(ObjectId(0)));
        queues[2].push_back(RenderUnit::smp(ObjectId(1)));
        run_interleaved(&mut ex, queues);
        let r = ex.finish("t", Composition::None);
        assert_eq!(r.counts.vertices, 2 * 9);
        assert!(r.gpm_busy[0] > 0 && r.gpm_busy[2] > 0);
        assert_eq!(r.gpm_busy[1], 0);
    }

    #[test]
    #[should_panic(expected = "one queue per GPM")]
    fn queue_count_must_match() {
        let scene = SceneBuilder::new(32, 32)
            .texture("t", 64, 64)
            .object("o", |o| {
                o.texture("t", 1.0);
            })
            .build();
        let mut ex = Executor::new(
            GpuConfig::default(),
            &scene,
            Placement::FirstTouch,
            FbOrg::InterleavedPages,
            ColorMode::Direct,
        );
        run_interleaved(&mut ex, vec![VecDeque::new(); 2]);
    }
}
