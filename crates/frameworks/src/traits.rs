//! The common interface all rendering schemes implement.

use oovr_gpu::{FrameReport, GpuConfig};
use oovr_scene::Scene;
use oovr_trace::{Recorder, TraceConfig};

/// A parallel rendering scheme: maps one frame of a scene onto the
/// multi-GPM system and reports the simulated result.
pub trait RenderScheme {
    /// Short display name (used in figure rows).
    fn name(&self) -> &'static str;

    /// Simulates one frame of `scene` under `cfg`.
    fn render_frame(&self, scene: &Scene, cfg: &GpuConfig) -> FrameReport;

    /// Simulates one frame with the flight recorder attached. The report
    /// must be bit-identical to [`render_frame`](Self::render_frame) —
    /// tracing observes, never perturbs. Schemes that do not support tracing
    /// fall back to an untraced render and return no recorder.
    fn render_frame_traced(
        &self,
        scene: &Scene,
        cfg: &GpuConfig,
        trace: TraceConfig,
    ) -> (FrameReport, Option<Recorder>) {
        let _ = trace;
        (self.render_frame(scene, cfg), None)
    }

    /// How many frames the scheme keeps in flight concurrently. AFR renders
    /// `n_gpms` frames at once, so its *overall* frame rate is this multiple
    /// of `1 / frame_cycles` even though single-frame latency is long
    /// (the distinction Fig. 7 draws).
    fn frames_in_flight(&self, cfg: &GpuConfig) -> u32 {
        let _ = cfg;
        1
    }

    /// Overall throughput in frames per billion cycles (1 second at 1 GHz),
    /// accounting for frames in flight.
    fn overall_fps(&self, report: &FrameReport, cfg: &GpuConfig) -> f64 {
        report.fps() * f64::from(self.frames_in_flight(cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oovr_gpu::WorkCounts;
    use oovr_mem::Traffic;

    struct Dummy;

    impl RenderScheme for Dummy {
        fn name(&self) -> &'static str {
            "dummy"
        }

        fn render_frame(&self, _scene: &Scene, cfg: &GpuConfig) -> FrameReport {
            FrameReport {
                scheme: self.name().into(),
                workload: "w".into(),
                frame_cycles: 1_000_000,
                composition_cycles: 0,
                gpm_busy: vec![0; cfg.n_gpms],
                traffic: Traffic::new(cfg.n_gpms),
                counts: WorkCounts::default(),
                l1_hit_rate: 0.0,
                l2_hit_rate: 0.0,
                resident_bytes: vec![0; cfg.n_gpms],
            }
        }
    }

    #[test]
    fn default_frames_in_flight_is_one() {
        let cfg = GpuConfig::default();
        let scene = oovr_scene::SceneBuilder::new(32, 32)
            .texture("t", 64, 64)
            .object("o", |o| {
                o.texture("t", 1.0);
            })
            .build();
        let d = Dummy;
        assert_eq!(d.frames_in_flight(&cfg), 1);
        let r = d.render_frame(&scene, &cfg);
        assert!((d.overall_fps(&r, &cfg) - r.fps()).abs() < 1e-12);
    }
}
