//! Tile-level Split Frame Rendering (§4.2, Figs. 6b/6c).
//!
//! The stereo frame is cut into per-GPM strips (sort-first). Every object
//! is rendered by each GPM whose strip its bounds overlap; geometry is
//! re-processed per strip (the overlap cost §4.2 attributes the extra
//! inter-GPM traffic to).
//!
//! * **Vertical** strips split the left and right views across different
//!   GPMs, so the two eyes' instances render on different modules and SMP's
//!   cross-eye sharing is lost — each eye is processed as a separate
//!   single-view pass.
//! * **Horizontal** strips span both eyes, so SMP applies within each strip,
//!   but wide objects (and all strips of tall ones) still duplicate work
//!   and texture footprints across GPMs.

use std::collections::VecDeque;

use oovr_gpu::{
    partition_of_column, partition_of_row, ColorMode, Composition, Executor, FbOrg, FrameReport,
    GpuConfig, RenderUnit,
};
use oovr_mem::Placement;
use oovr_scene::{Eye, Rect, Scene};

use crate::scheduling::run_interleaved;
use crate::traits::RenderScheme;

/// Strip orientation of the tile-level SFR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// Vertical strips (Fig. 6b): splits the two eyes across GPMs.
    Vertical,
    /// Horizontal strips (Fig. 6c): keeps both eyes on each GPM.
    Horizontal,
}

/// Tile-level split frame rendering.
#[derive(Debug, Clone, Copy)]
pub struct TileSfr {
    /// Strip orientation.
    pub orientation: Orientation,
}

impl TileSfr {
    /// Vertical-strip variant.
    pub fn vertical() -> Self {
        TileSfr { orientation: Orientation::Vertical }
    }

    /// Horizontal-strip variant.
    pub fn horizontal() -> Self {
        TileSfr { orientation: Orientation::Horizontal }
    }

    /// The strip rectangle owned by GPM `g`.
    fn strip(&self, g: usize, n: usize, stereo_w: u32, h: u32) -> Rect {
        match self.orientation {
            Orientation::Vertical => {
                let w = (stereo_w as usize).div_ceil(n) as f32;
                Rect::new(g as f32 * w, 0.0, w.min(stereo_w as f32 - g as f32 * w), h as f32)
            }
            Orientation::Horizontal => {
                let sh = (h as usize).div_ceil(n) as f32;
                Rect::new(0.0, g as f32 * sh, stereo_w as f32, sh.min(h as f32 - g as f32 * sh))
            }
        }
    }
}

impl RenderScheme for TileSfr {
    fn name(&self) -> &'static str {
        match self.orientation {
            Orientation::Vertical => "Tile-Level (V)",
            Orientation::Horizontal => "Tile-Level (H)",
        }
    }

    fn render_frame(&self, scene: &Scene, cfg: &GpuConfig) -> FrameReport {
        let fb_org = match self.orientation {
            Orientation::Vertical => FbOrg::Columns,
            Orientation::Horizontal => FbOrg::Rows,
        };
        let mut ex =
            Executor::new(cfg.clone(), scene, Placement::FirstTouch, fb_org, ColorMode::Direct);
        let n = cfg.n_gpms;
        let res = scene.resolution();
        let (sw, sh) = (res.stereo_width(), res.height);
        let mut queues = vec![VecDeque::new(); n];

        for obj in scene.objects() {
            let bounds = obj.stereo_bounds(res);
            let mut first = true;
            #[allow(clippy::needless_range_loop)] // g is both strip id and queue index
            for g in 0..n {
                let strip = self.strip(g, n, sw, sh);
                if !strip.overlaps(&bounds) {
                    continue;
                }
                match self.orientation {
                    Orientation::Vertical => {
                        // Each eye renders separately; a strip only processes
                        // the eyes whose viewport it intersects.
                        for eye in Eye::BOTH {
                            let vp = obj.viewport(res, eye);
                            let vp_rect = Rect::new(vp.x, vp.y, vp.width, vp.height);
                            if strip.overlaps(&vp_rect) {
                                let mut u = RenderUnit::single(obj.id(), eye).clipped(strip);
                                if !first {
                                    u = u.without_command();
                                }
                                first = false;
                                queues[g].push_back(u);
                            }
                        }
                    }
                    Orientation::Horizontal => {
                        let mut u = RenderUnit::smp(obj.id()).clipped(strip);
                        if !first {
                            u = u.without_command();
                        }
                        first = false;
                        queues[g].push_back(u);
                    }
                }
            }
        }
        run_interleaved(&mut ex, queues);
        ex.finish(self.name(), Composition::None)
    }
}

/// Strip owner of a pixel under an orientation (exported for tests and
/// composition reuse).
pub fn strip_owner(
    orientation: Orientation,
    x: u32,
    y: u32,
    stereo_w: u32,
    h: u32,
    n: usize,
) -> usize {
    match orientation {
        Orientation::Vertical => partition_of_column(x, stereo_w, n),
        Orientation::Horizontal => partition_of_row(y, h, n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::Baseline;
    use oovr_scene::benchmarks;

    #[test]
    fn strips_tile_the_frame() {
        let t = TileSfr::vertical();
        let mut covered = 0.0;
        for g in 0..4 {
            covered += t.strip(g, 4, 1280, 480).area();
        }
        assert_eq!(covered, 1280.0 * 480.0);
        let t = TileSfr::horizontal();
        let mut covered = 0.0;
        for g in 0..4 {
            covered += t.strip(g, 4, 1280, 480).area();
        }
        assert_eq!(covered, 1280.0 * 480.0);
    }

    #[test]
    fn tile_sfr_covers_same_fragments_as_baseline() {
        let scene = benchmarks::hl2_640().scaled(0.12).build();
        let cfg = GpuConfig::default();
        let base = Baseline::new().render_frame(&scene, &cfg);
        for scheme in [TileSfr::vertical(), TileSfr::horizontal()] {
            let r = scheme.render_frame(&scene, &cfg);
            assert_eq!(
                r.counts.fragments,
                base.counts.fragments,
                "{} must shade the same fragments",
                scheme.name()
            );
            assert!(r.gpm_busy.iter().all(|&b| b > 0));
        }
    }

    #[test]
    fn vertical_strips_redo_per_eye_geometry() {
        let scene = benchmarks::hl2_640().scaled(0.12).build();
        let cfg = GpuConfig::default();
        let v = TileSfr::vertical().render_frame(&scene, &cfg);
        let h = TileSfr::horizontal().render_frame(&scene, &cfg);
        // V processes each eye separately (no SMP sharing): more vertex work
        // than H, which shares geometry across eyes within a strip.
        assert!(
            v.counts.vertices > h.counts.vertices,
            "v {} vs h {}",
            v.counts.vertices,
            h.counts.vertices
        );
    }

    #[test]
    fn strip_owner_maps_extremes() {
        assert_eq!(strip_owner(Orientation::Vertical, 0, 0, 128, 64, 4), 0);
        assert_eq!(strip_owner(Orientation::Vertical, 127, 0, 128, 64, 4), 3);
        assert_eq!(strip_owner(Orientation::Horizontal, 0, 63, 128, 64, 4), 3);
    }
}
