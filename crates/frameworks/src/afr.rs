//! Alternate Frame Rendering (frame-level parallelism, §4.1 / Fig. 6a).
//!
//! Each GPM renders entire frames out of a *replicated* memory space
//! (software-level segmented allocation in the paper), eliminating
//! inter-GPM communication. Overall frame rate scales with GPM count, but
//! single-frame latency is a whole frame on one GPM — the motion-anomaly
//! problem §4.1 calls out — and memory capacity is multiplied by the
//! replication.

use oovr_gpu::{ColorMode, Composition, Executor, FbOrg, FrameReport, GpuConfig, RenderUnit};
use oovr_mem::{GpmId, Placement};
use oovr_scene::Scene;

use crate::traits::RenderScheme;

/// Frame-level parallel rendering.
#[derive(Debug, Clone, Copy, Default)]
pub struct Afr;

impl Afr {
    /// Creates the AFR scheme.
    pub fn new() -> Self {
        Afr
    }
}

impl RenderScheme for Afr {
    fn name(&self) -> &'static str {
        "Frame-Level"
    }

    fn render_frame(&self, scene: &Scene, cfg: &GpuConfig) -> FrameReport {
        // One frame on one GPM, everything replicated locally. The other
        // GPMs render other frames concurrently (see `frames_in_flight`);
        // they share no data and no links, so one GPM's timeline is exact.
        let mut ex = Executor::new(
            cfg.clone(),
            scene,
            Placement::Replicated,
            FbOrg::Single(GpmId(0)),
            ColorMode::Direct,
        );
        for obj in scene.objects() {
            ex.exec_unit(GpmId(0), &RenderUnit::smp(obj.id()));
        }
        ex.finish(self.name(), Composition::None)
    }

    fn frames_in_flight(&self, cfg: &GpuConfig) -> u32 {
        cfg.n_gpms as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::Baseline;
    use oovr_scene::benchmarks;

    #[test]
    fn afr_has_zero_inter_gpm_traffic() {
        let scene = benchmarks::hl2_640().scaled(0.12).build();
        let cfg = GpuConfig::default();
        let r = Afr::new().render_frame(&scene, &cfg);
        assert_eq!(r.inter_gpm_bytes(), 0);
        assert_eq!(Afr::new().frames_in_flight(&cfg), 4);
    }

    #[test]
    fn afr_replicates_memory_footprint() {
        let scene = benchmarks::hl2_640().scaled(0.12).build();
        let cfg = GpuConfig::default();
        let afr = Afr::new().render_frame(&scene, &cfg);
        let base = Baseline::new().render_frame(&scene, &cfg);
        let afr_resident: u64 = afr.resident_bytes.iter().sum();
        let base_resident: u64 = base.resident_bytes.iter().sum();
        // AFR is resident everywhere it touched data; near-linear increase
        // in capacity requirement (§4.1).
        assert!(
            afr_resident as f64 > 2.0 * base_resident as f64,
            "afr {afr_resident} vs base {base_resident}"
        );
    }

    #[test]
    fn afr_single_frame_latency_exceeds_baseline_but_throughput_wins() {
        // The latency penalty of single-GPM frames only materializes once
        // fragment work dominates fixed costs, so this test runs at a
        // larger scale than the rest.
        let scene = benchmarks::hl2_640().scaled(0.45).build();
        let cfg = GpuConfig::default();
        let afr = Afr::new();
        let r_afr = afr.render_frame(&scene, &cfg);
        let r_base = Baseline::new().render_frame(&scene, &cfg);
        // One GPM doing a whole frame takes longer than four GPMs sharing it.
        assert!(
            r_afr.frame_cycles > r_base.frame_cycles,
            "afr {} base {}",
            r_afr.frame_cycles,
            r_base.frame_cycles
        );
        // But four frames in flight gives higher overall fps.
        assert!(afr.overall_fps(&r_afr, &cfg) > r_base.fps());
    }
}
