//! The baseline: single programming model over the whole multi-GPU system.
//!
//! §2.3 of the paper: "the VR rendering workloads are sequentially launched
//! and distributed to different GPMs without specific scheduling", which
//! "greatly hurts the data locality among rendering workloads and incurs
//! huge inter-GPM memory accesses". Per §2.3 and Fig. 3, the two eye views
//! are balanced across different *islands* of GPMs (left view on the first
//! half, right view on the second half), then each view is broken into
//! small pieces distributed round-robin within its island. The cross-eye
//! redundancy of the SMP model is therefore lost, framebuffer/depth pages
//! are interleaved, and every GPM ends up touching most textures — the
//! shared texture stream crosses the links continuously.

use std::collections::VecDeque;

use oovr_gpu::{ColorMode, Composition, Executor, FbOrg, FrameReport, GpuConfig, RenderUnit};
use oovr_mem::Placement;
use oovr_scene::Scene;
use oovr_trace::{Recorder, TraceConfig};

use crate::scheduling::run_interleaved;
use crate::traits::RenderScheme;

/// The baseline single-programming-model scheme. SMP hardware exists per
/// GPM, but the naive distribution separates the two views so nothing about
/// the scheduling is locality- or VR-aware.
#[derive(Debug, Clone, Default)]
pub struct Baseline;

impl Baseline {
    /// Creates the baseline scheme.
    pub fn new() -> Self {
        Self
    }

    /// Shared frame body; `trace` attaches the flight recorder.
    fn frame(
        &self,
        scene: &Scene,
        cfg: &GpuConfig,
        trace: Option<TraceConfig>,
    ) -> (FrameReport, Option<Recorder>) {
        let mut ex = Executor::new(
            cfg.clone(),
            scene,
            Placement::FirstTouch,
            FbOrg::InterleavedPages,
            ColorMode::Direct,
        );
        if let Some(tc) = trace {
            ex.enable_trace(tc);
        }
        let n = cfg.n_gpms;
        let mut queues = vec![VecDeque::new(); n];
        // Left view on the first island of GPMs, right view on the second
        // (Fig. 3's LT/LB vs RT/RB quadrants). With one GPM there is a
        // single island.
        let split = (n / 2).max(1);
        let islands: [&[usize]; 2] = {
            static IDX: [usize; 16] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15];
            if n == 1 {
                [&IDX[..1], &IDX[..1]]
            } else {
                [&IDX[..split], &IDX[split..n]]
            }
        };
        for obj in scene.objects() {
            let mut first = true;
            for eye in oovr_scene::Eye::BOTH {
                let island = islands[eye.index()];
                let step = island.len() as u64;
                // Affinity-free interleave: GPM j of the island gets every
                // step-th triangle of the view, like warp-level balancing on
                // a real single-image GPU.
                for (j, &g) in island.iter().enumerate() {
                    if j as u64 >= obj.triangle_count() {
                        break;
                    }
                    let mut unit = RenderUnit::single(obj.id(), eye).with_stride(j as u64, step);
                    if !first {
                        unit = unit.without_command();
                    }
                    first = false;
                    queues[g].push_back(unit);
                }
            }
        }
        run_interleaved(&mut ex, queues);
        ex.finish_traced(self.name(), Composition::None)
    }
}

impl RenderScheme for Baseline {
    fn name(&self) -> &'static str {
        "Baseline"
    }

    fn render_frame(&self, scene: &Scene, cfg: &GpuConfig) -> FrameReport {
        self.frame(scene, cfg, None).0
    }

    fn render_frame_traced(
        &self,
        scene: &Scene,
        cfg: &GpuConfig,
        trace: TraceConfig,
    ) -> (FrameReport, Option<Recorder>) {
        self.frame(scene, cfg, Some(trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oovr_scene::benchmarks;

    #[test]
    fn baseline_spreads_work_and_generates_remote_traffic() {
        let scene = benchmarks::hl2_640().scaled(0.12).build();
        let cfg = GpuConfig::default();
        let r = Baseline::new().render_frame(&scene, &cfg);
        assert!(r.frame_cycles > 0);
        // All four GPMs participated.
        assert!(r.gpm_busy.iter().all(|&b| b > 0), "busy: {:?}", r.gpm_busy);
        // The naive distribution crosses the links heavily.
        assert!(r.inter_gpm_bytes() > 0);
        let remote_share =
            r.inter_gpm_bytes() as f64 / (r.traffic.local_bytes() + r.inter_gpm_bytes()) as f64;
        assert!(remote_share > 0.2, "baseline should be remote-heavy, got {remote_share}");
    }

    #[test]
    fn higher_link_bandwidth_speeds_up_baseline() {
        let scene = benchmarks::hl2_640().scaled(0.12).build();
        let slow = Baseline::new().render_frame(&scene, &GpuConfig::default().with_link_gbps(32.0));
        let fast =
            Baseline::new().render_frame(&scene, &GpuConfig::default().with_link_gbps(1000.0));
        assert!(
            fast.frame_cycles < slow.frame_cycles,
            "fast {} vs slow {}",
            fast.frame_cycles,
            slow.frame_cycles
        );
    }
}
