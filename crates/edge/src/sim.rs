//! The split client–edge simulator.
//!
//! [`simulate_edge`] runs one deterministic split-rendering experiment in
//! three passes, all in simulated cycles:
//!
//! 1. **Edge render pass** — a faithful replay of the `oovr-serve` §11
//!    EDF vsync scheduler (arrivals, Eq. 3 admission, stale drops,
//!    shedding, temporal reuse), with one addition: the link byte budget
//!    is a *second* admission constraint, checked before the compute
//!    controller is even offered the session. A session whose steady
//!    encoded-byte rate does not fit in the remaining link headroom is
//!    rejected with reason `"link"` and never touches the Eq. 3 budget.
//!    The link check draws no randomness, so over an unbounded link the
//!    pass is bit-identical to local [`oovr_serve::simulate`].
//! 2. **Encode + link pass** — every rendered frame is encoded on the
//!    edge (priced per shaded pixel at the frame's shade scale) and
//!    enters the [`NetworkLink`] in encode-completion order. The link
//!    serializes, queues, degrades, and loses frames per its compiled
//!    fault schedule; lost frames still burn bandwidth. The renderer
//!    never observes the link (open loop), so both client policies below
//!    can be compared on identical deliveries.
//! 3. **Client pass** — at each frame's vsync deadline the thin client
//!    presents the fresh frame if it arrived in time, presents it late
//!    if it arrived after the deadline, or — when ATW reprojection is on
//!    — covers the vsync by warping the most recent delivered frame
//!    within the staleness cap ([`warp_cycles_for_pixels`]). Past the
//!    cap the frame is a hard miss (dark vsync).
//!
//! [`NetworkLink`]: crate::link::NetworkLink
//! [`warp_cycles_for_pixels`]: oovr_frameworks::atw::warp_cycles_for_pixels

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use oovr_frameworks::atw::warp_cycles_for_pixels;
use oovr_gpu::GpuConfig;
use oovr_metrics::Registry;
use oovr_scene::BenchmarkSpec;
use oovr_serve::{
    calibrate_discounted, cost_stream, AdmissionController, AdmissionDecision, FrameRecord, Pose,
    PoseTrajectory, Reject, ServeConfig, ServeScheme,
};
use oovr_trace::{Cycle, Recorder, TraceEvent, TraceSink};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::link::{LinkConfig, NetworkLink};
use crate::qos::{edge_qos, motion_to_photon, AggregateQos, MotionToPhoton};

/// Configuration of one split client–edge run.
#[derive(Debug, Clone, Default)]
pub struct EdgeConfig {
    /// The edge server's serving configuration (vsync grid, arrivals,
    /// admission headroom, shedding, temporal reuse).
    pub serve: ServeConfig,
    /// The client–edge link.
    pub link: LinkConfig,
    /// The thin client.
    pub client: ClientConfig,
}

impl EdgeConfig {
    /// The degenerate split: ideal link, reprojection off. Bit-identical
    /// to local-only serving under `serve` (pinned by `prop_edge`).
    pub fn degenerate(serve: ServeConfig) -> Self {
        EdgeConfig {
            serve,
            link: LinkConfig::degenerate(),
            client: ClientConfig { reproject: false, ..ClientConfig::default() },
        }
    }
}

/// Configuration of the thin client.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Whether the client covers missing frames by ATW reprojection.
    pub reproject: bool,
    /// Maximum age (in frames) of a delivered frame the client will
    /// still reproject; beyond it the vsync is a hard miss.
    pub stale_cap: u32,
    /// Multiplier on the one-GPM ATW warp cost — the thin client's ROPs
    /// are assumed this many times slower than an edge GPM's.
    pub warp_factor: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig { reproject: true, stale_cap: 4, warp_factor: 4 }
    }
}

/// How the client covered one vsync.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Display {
    /// The frame arrived before its deadline and was presented on time.
    Fresh,
    /// The frame arrived after its deadline and was presented late
    /// (a missed vsync, like a late local frame).
    Late,
    /// The client warped a delivered frame `age` frames old over the
    /// vsync (not a miss — ATW is the designed loss response).
    Reprojected {
        /// Age of the warped source frame, in frames.
        age: u32,
    },
    /// Nothing within the staleness cap was available: a dark vsync,
    /// accounted like a dropped local frame.
    Stale {
        /// Frames since the last delivered frame (`frame + 1` if none).
        age: u32,
    },
}

/// One frame's journey through the split pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeFrame {
    /// The edge-side schedule record (render pass).
    pub record: FrameRecord,
    /// Cycle the encoded frame entered the link (render end + encode);
    /// equals `record.end` for frames dropped before rendering.
    pub encode_end: Cycle,
    /// Encoded size in bytes (0 for dropped frames).
    pub bytes: u64,
    /// Whether the link lost the frame.
    pub lost: bool,
    /// Client-side arrival cycle of a delivered frame.
    pub delivery: Option<Cycle>,
    /// How the client covered this frame's vsync.
    pub display: Display,
    /// Photon cycle: delivery for presented frames, `deadline + warp`
    /// for reprojections, `deadline + vsync` for dark vsyncs.
    pub photon: Cycle,
}

/// One admitted session's split-pipeline outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeSession {
    /// Global session id (arrival order, shared with rejects).
    pub id: u32,
    /// Arrival (= admission) cycle.
    pub arrival: Cycle,
    /// Predicted per-vsync compute demand at admission (Eq. 3).
    pub predicted: f64,
    /// Frames in frame order.
    pub frames: Vec<EdgeFrame>,
}

/// Everything a split run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeOutcome {
    /// Scheme the edge server multiplexed under.
    pub scheme: ServeScheme,
    /// Workload name.
    pub workload: String,
    /// Vsync interval used.
    pub vsync: Cycle,
    /// Client-side ATW warp cost per frame, in cycles.
    pub warp_cycles: Cycle,
    /// Admitted sessions in arrival order.
    pub sessions: Vec<EdgeSession>,
    /// Rejected sessions in arrival order (compute- and link-rejects).
    pub rejects: Vec<Reject>,
    /// How many of [`rejects`](Self::rejects) were link-budget rejects.
    pub link_rejected: u32,
}

impl EdgeOutcome {
    /// Aggregate QoS in the local-serving vocabulary: latencies over
    /// delivered paced frames, late frames count as missed, dark vsyncs
    /// as dropped. Over the degenerate link this equals
    /// [`oovr_serve::ServeOutcome::qos`] bit-for-bit.
    pub fn qos(&self) -> AggregateQos {
        edge_qos(self)
    }

    /// Motion-to-photon latency summary over all paced frames.
    pub fn motion_to_photon(&self) -> MotionToPhoton {
        motion_to_photon(self)
    }
}

/// Runs one deterministic split client–edge experiment. `trace`, when
/// given, receives the full session + link + client lifecycle in cycle
/// order.
pub fn simulate_edge(
    scheme: ServeScheme,
    spec: &BenchmarkSpec,
    gpu: &GpuConfig,
    cfg: &EdgeConfig,
    trace: Option<&mut Recorder>,
) -> EdgeOutcome {
    simulate_edge_metered(scheme, spec, gpu, cfg, trace, None)
}

/// [`simulate_edge`] with an optional [`Registry`] receiving edge-layer
/// metrics: paced frame counts, edge-level misses, link deliveries/
/// losses, reprojections, dark vsyncs, and the `motion_to_photon_cycles`
/// histogram behind [`crate::chaos::edge_slos`]. The registry is a pure
/// observer — a metered run is bit-identical to an unmetered one.
pub fn simulate_edge_metered(
    scheme: ServeScheme,
    spec: &BenchmarkSpec,
    gpu: &GpuConfig,
    cfg: &EdgeConfig,
    trace: Option<&mut Recorder>,
    mut metrics: Option<&mut Registry>,
) -> EdgeOutcome {
    let stream = cost_stream(scheme, spec, gpu);
    let serve = &cfg.serve;
    let v = serve.vsync_cycles.max(1);
    let total_frames = serve.frames_per_session + 1; // warmup + paced

    // ---- Pass 1: edge render (the §11 EDF pipeline + link admission).
    //
    // This replays `oovr_serve::simulate` decision-for-decision — same
    // RNG stream, same integer tie-breaks — so the degenerate link is
    // bit-identical to local serving. The only addition is the link byte
    // budget at the door, which draws no randomness.
    let threshold = serve.temporal.reuse_threshold;
    let discount = if scheme.temporal() {
        stream.mean_temporal_saving(threshold, serve.seed, serve.frames_per_session.max(1))
    } else {
        0
    };
    let report_refs: Vec<_> = stream.reports.iter().collect();
    let mut admission =
        AdmissionController::new(calibrate_discounted(&report_refs, discount), v, serve.headroom);
    let steady_tris = stream.steady().counts.triangles;
    let steady_px = stream.steady().counts.pixels_out;
    let bytes_of = |px: u64| px * cfg.link.bytes_per_kpixel / 1000;
    // One session's steady encoded-byte demand per cycle — the unit the
    // link is provisioned in and admission charges per session.
    let session_rate = bytes_of(steady_px) as f64 / v as f64;
    let mut net = NetworkLink::new(&cfg.link, session_rate, serve.sessions, serve.seed);
    let link_capacity = net.bytes_per_cycle();

    let mut rng = StdRng::seed_from_u64(serve.seed);
    let mut events: Vec<TraceEvent> = Vec::new();
    let mut sessions: Vec<EdgeSession> = Vec::new();
    let mut frames: Vec<Vec<FrameRecord>> = Vec::new();
    let mut poses: Vec<Vec<Pose>> = Vec::new();
    let mut rejects: Vec<Reject> = Vec::new();
    let mut link_rejected = 0u32;
    let mut link_load: Vec<(Cycle, f64)> = Vec::new(); // (departure, rate)

    let mut arrival: Cycle = 0;
    for id in 0..serve.sessions {
        if id > 0 {
            let mean = serve.mean_interarrival;
            arrival += rng.gen_range(mean / 2..=mean + mean / 2);
        }
        let departure = arrival + Cycle::from(total_frames + 1) * v;
        // The link budget gates first: a session the link cannot carry
        // must not consume compute headroom rendering undeliverable
        // frames. Unbounded links always pass.
        if let Some(capacity) = link_capacity {
            link_load.retain(|&(dep, _)| dep > arrival);
            let load: f64 = link_load.iter().map(|&(_, r)| r).sum();
            if load + session_rate > serve.headroom * capacity {
                events.push(TraceEvent::SessionReject {
                    cycle: arrival,
                    session: id,
                    predicted: session_rate,
                    reason: "link",
                });
                rejects.push(Reject { id, arrival, predicted: session_rate });
                link_rejected += 1;
                continue;
            }
        }
        match admission.offer(arrival, steady_tris, departure) {
            AdmissionDecision::Admitted { active, predicted } => {
                events.push(TraceEvent::SessionAdmit {
                    cycle: arrival,
                    session: id,
                    predicted,
                    active,
                });
                link_load.push((departure, session_rate));
                let mut traj = PoseTrajectory::new(
                    serve.seed ^ (id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let mut path = vec![traj.current()];
                path.extend((0..serve.frames_per_session).map(|_| traj.step()));
                poses.push(path);
                sessions.push(EdgeSession {
                    id,
                    arrival,
                    predicted,
                    frames: Vec::with_capacity(total_frames as usize),
                });
                frames.push(Vec::with_capacity(total_frames as usize));
            }
            AdmissionDecision::Rejected { predicted, reason } => {
                events.push(TraceEvent::SessionReject {
                    cycle: arrival,
                    session: id,
                    predicted,
                    reason,
                });
                rejects.push(Reject { id, arrival, predicted });
            }
        }
    }

    let mut releases: Vec<(Cycle, u32, u32)> = Vec::new();
    for (slot, s) in sessions.iter().enumerate() {
        for f in 0..total_frames {
            releases.push((s.arrival + Cycle::from(f) * v, slot as u32, f));
        }
    }
    releases.sort_unstable();

    let temporal = if scheme.temporal() { stream.temporal.as_deref() } else { None };
    let sheds = scheme.sheds();
    let (step, floor) = (serve.resilience.shed_step, serve.resilience.shed_floor);
    let mut scales = vec![1.0f64; sessions.len()];
    let mut heap: BinaryHeap<Reverse<(Cycle, u32, u32, Cycle)>> = BinaryHeap::new();
    let mut now: Cycle = 0;
    let mut next = 0usize;
    while next < releases.len() || !heap.is_empty() {
        while next < releases.len() && releases[next].0 <= now {
            let (release, slot, frame) = releases[next];
            heap.push(Reverse((release + v, slot, frame, release)));
            next += 1;
        }
        let Some(Reverse((deadline, slot, frame, release))) = heap.pop() else {
            now = releases[next].0;
            continue;
        };
        let id = sessions[slot as usize].id;
        let report_index = stream.report_index(frame);
        let pose = poses[slot as usize][frame as usize];

        if now > deadline + v {
            events.push(TraceEvent::FrameDrop { cycle: now, session: id, frame, reason: "stale" });
            frames[slot as usize].push(FrameRecord {
                frame,
                report_index,
                release,
                deadline,
                start: now,
                end: now,
                scale: scales[slot as usize],
                missed: true,
                dropped: true,
                pose,
            });
            continue;
        }

        let tdec = temporal.filter(|_| frame > 0).map(|profile| {
            profile.decide(&poses[slot as usize][frame as usize - 1], &pose, threshold)
        });
        let base = stream.cost_for(frame);
        let base = tdec.as_ref().map_or(base, |d| d.apply(base));
        let mut scale = scales[slot as usize];
        let cost_at = |s: f64| (((base as f64) * s).round() as Cycle).max(1);
        if sheds {
            let before = scale;
            while scale > floor && now + cost_at(scale) > deadline {
                scale = (scale * step).max(floor);
            }
            if scale < before {
                scales[slot as usize] = scale;
                events.push(TraceEvent::FrameShed { cycle: now, session: id, frame, scale });
            }
        }
        let cost = if sheds { cost_at(scale) } else { base };
        let (start, end) = (now, now + cost);
        events.push(TraceEvent::FrameStart { cycle: start, session: id, frame, deadline });
        events.push(TraceEvent::FrameSpan { session: id, frame, start, end, scale });
        if let Some(d) = &tdec {
            events.push(TraceEvent::TemporalReuse {
                cycle: start,
                session: id,
                frame,
                reused: d.reused,
                rerendered: d.rerendered,
                saved: d.saved,
            });
        }
        let missed = end > deadline;
        if missed {
            events.push(TraceEvent::DeadlineMiss { cycle: end, session: id, frame, deadline });
        } else if sheds && scale < 1.0 {
            scales[slot as usize] = (scale / step).min(1.0);
        }
        frames[slot as usize].push(FrameRecord {
            frame,
            report_index,
            release,
            deadline,
            start,
            end,
            scale,
            missed,
            dropped: false,
            pose,
        });
        now = end;
    }
    for f in &mut frames {
        f.sort_by_key(|r| r.frame);
    }

    // ---- Pass 2: encode + link. Rendered frames enter the link in
    // encode-completion order (ties broken by (slot, frame)); the
    // renderer never observes the link, so deliveries are identical
    // under either client policy.
    let mut sends: Vec<(Cycle, u32, u32)> = Vec::new(); // (encode_end, slot, frame)
    let mut edge_frames: Vec<Vec<EdgeFrame>> = frames
        .iter()
        .enumerate()
        .map(|(slot, recs)| {
            recs.iter()
                .map(|rec| {
                    let (encode_end, bytes) = if rec.dropped {
                        (rec.end, 0)
                    } else {
                        let px = stream.reports[rec.report_index].counts.pixels_out;
                        let px = ((px as f64) * rec.scale).round() as u64;
                        let encode = px * cfg.link.encode_cycles_per_kpixel / 1000;
                        sends.push((rec.end + encode, slot as u32, rec.frame));
                        (rec.end + encode, bytes_of(px))
                    };
                    EdgeFrame {
                        record: rec.clone(),
                        encode_end,
                        bytes,
                        lost: false,
                        delivery: None,
                        display: Display::Stale { age: rec.frame + 1 },
                        photon: 0,
                    }
                })
                .collect()
        })
        .collect();
    sends.sort_unstable();
    for &(encode_end, slot, frame) in &sends {
        let id = sessions[slot as usize].id;
        let ef = &mut edge_frames[slot as usize][frame as usize];
        events.push(TraceEvent::FrameSent {
            cycle: encode_end,
            session: id,
            frame,
            bytes: ef.bytes,
        });
        // Lost frames are drawn per (session, frame) at link entry and
        // still consume bandwidth — the air time was spent either way.
        let delivery = net.transfer(encode_end, ef.bytes);
        if net.is_lost(id, frame, encode_end) {
            ef.lost = true;
            events.push(TraceEvent::FrameLost { cycle: encode_end, session: id, frame });
        } else {
            ef.delivery = Some(delivery);
            events.push(TraceEvent::FrameDelivered {
                cycle: delivery,
                session: id,
                frame,
                latency: delivery - encode_end,
            });
        }
    }

    // ---- Pass 3: the thin client. Pure post-processing over the
    // delivery schedule — classification per vsync, ATW coverage, and
    // the motion-to-photon accounting.
    let warp_cycles = warp_cycles_for_pixels(steady_px.max(1), gpu) * cfg.client.warp_factor.max(1);
    for (slot, session_frames) in edge_frames.iter_mut().enumerate() {
        let id = sessions[slot].id;
        // delivery[g] of each frame, for the reprojection predecessor scan.
        let deliveries: Vec<Option<Cycle>> = session_frames.iter().map(|f| f.delivery).collect();
        for ef in session_frames.iter_mut() {
            let frame = ef.record.frame;
            let deadline = ef.record.deadline;
            let (display, photon) = match ef.delivery {
                Some(d) if d <= deadline => (Display::Fresh, d),
                Some(d) => (Display::Late, d),
                None => {
                    // Most recent predecessor already delivered by this
                    // frame's deadline (the client can only warp what it
                    // holds at the vsync).
                    let pred = (0..frame)
                        .rev()
                        .find(|&g| deliveries[g as usize].is_some_and(|d| d <= deadline));
                    let age = pred.map_or(frame + 1, |g| frame - g);
                    if cfg.client.reproject && pred.is_some() && age <= cfg.client.stale_cap {
                        events.push(TraceEvent::FrameReprojected {
                            cycle: deadline,
                            session: id,
                            frame,
                            age,
                        });
                        (Display::Reprojected { age }, deadline + warp_cycles)
                    } else {
                        events.push(TraceEvent::FrameStale {
                            cycle: deadline,
                            session: id,
                            frame,
                            age,
                        });
                        (Display::Stale { age }, deadline + v)
                    }
                }
            };
            ef.display = display;
            ef.photon = photon;
            if frame > 0 {
                if let Some(reg) = metrics.as_deref_mut() {
                    reg.inc("frames", "", photon, 1);
                    reg.observe("motion_to_photon_cycles", "", photon, photon - ef.record.release);
                    match display {
                        Display::Fresh => {
                            reg.inc("frames_delivered", "", photon, 1);
                        }
                        Display::Late => {
                            reg.inc("frames_delivered", "", photon, 1);
                            reg.inc("frames_missed", "", photon, 1);
                        }
                        Display::Reprojected { .. } => {
                            reg.inc("frames_reprojected", "", photon, 1);
                        }
                        Display::Stale { .. } => {
                            reg.inc("frames_stale", "", photon, 1);
                            reg.inc("frames_missed", "", photon, 1);
                        }
                    }
                    if ef.lost {
                        reg.inc("frames_lost", "", photon, 1);
                    }
                }
            }
        }
    }

    for (slot, f) in edge_frames.into_iter().enumerate() {
        sessions[slot].frames = f;
    }

    if let Some(rec) = trace {
        events.sort_by_key(|e| e.cycle());
        for e in events {
            rec.record(e);
        }
    }
    if let Some(reg) = metrics {
        let min_scale = sessions
            .iter()
            .flat_map(|s| s.frames.iter())
            .filter(|f| !f.record.dropped)
            .map(|f| f.record.scale)
            .fold(1.0f64, f64::min);
        reg.set_gauge("min_scale", "", min_scale);
    }

    EdgeOutcome {
        scheme,
        workload: spec.name.clone(),
        vsync: v,
        warp_cycles,
        sessions,
        rejects,
        link_rejected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oovr_scene::benchmarks;
    use oovr_serve::simulate;
    use oovr_trace::TraceConfig;

    fn spec() -> BenchmarkSpec {
        benchmarks::hl2_640().scaled(0.05)
    }

    fn small(sessions: u32, frames: u32) -> ServeConfig {
        ServeConfig { sessions, frames_per_session: frames, ..ServeConfig::default() }
    }

    #[test]
    fn degenerate_link_matches_local_serving_exactly() {
        let serve_cfg = small(6, 8);
        let gpu = GpuConfig::default();
        let local = simulate(ServeScheme::OoVr, &spec(), &gpu, &serve_cfg, None);
        let edge = simulate_edge(
            ServeScheme::OoVr,
            &spec(),
            &gpu,
            &EdgeConfig::degenerate(serve_cfg),
            None,
        );
        assert_eq!(edge.qos(), local.qos());
        assert_eq!(edge.sessions.len(), local.sessions.len());
        for (e, l) in edge.sessions.iter().zip(&local.sessions) {
            assert_eq!(e.id, l.id);
            let recs: Vec<&FrameRecord> = e.frames.iter().map(|f| &f.record).collect();
            let want: Vec<&FrameRecord> = l.frames.iter().collect();
            assert_eq!(recs, want, "degenerate schedule must be bit-identical");
            for f in &e.frames {
                assert!(!f.lost);
                assert_eq!(f.encode_end, f.record.end);
                if !f.record.dropped {
                    assert_eq!(f.delivery, Some(f.record.end));
                }
            }
        }
        assert_eq!(edge.link_rejected, 0);
    }

    #[test]
    fn same_config_replays_bit_identically() {
        let cfg = EdgeConfig {
            serve: small(6, 8),
            link: LinkConfig {
                fault: Some(oovr_gpu::FaultPlan::new(oovr_gpu::FaultScenario::LinkDown, 0.8, 5)),
                ..LinkConfig::default()
            },
            client: ClientConfig::default(),
        };
        let gpu = GpuConfig::default();
        let a = simulate_edge(ServeScheme::OoVr, &spec(), &gpu, &cfg, None);
        let b = simulate_edge(ServeScheme::OoVr, &spec(), &gpu, &cfg, None);
        assert_eq!(a, b);
    }

    #[test]
    fn latency_shifts_deliveries_without_changing_the_schedule() {
        let gpu = GpuConfig::default();
        let base = EdgeConfig { serve: small(4, 8), ..EdgeConfig::default() };
        let near = simulate_edge(ServeScheme::OoVr, &spec(), &gpu, &base, None);
        let far_cfg = EdgeConfig {
            link: LinkConfig { latency: base.link.latency * 4, ..base.link.clone() },
            ..base.clone()
        };
        let far = simulate_edge(ServeScheme::OoVr, &spec(), &gpu, &far_cfg, None);
        for (n, f) in near.sessions.iter().zip(&far.sessions) {
            for (nf, ff) in n.frames.iter().zip(&f.frames) {
                // Render schedule and loss are latency-independent.
                assert_eq!(nf.record, ff.record);
                assert_eq!(nf.lost, ff.lost);
                if let (Some(dn), Some(df)) = (nf.delivery, ff.delivery) {
                    assert!(df >= dn, "latency can only delay deliveries");
                }
                assert!(ff.photon >= nf.photon, "photon time is monotone in link latency");
            }
        }
        let p99 = |o: &EdgeOutcome| o.motion_to_photon().p99;
        assert!(p99(&far) >= p99(&near));
    }

    #[test]
    fn atw_covers_losses_the_bare_client_misses() {
        // A violently lossy link: every frame after the first few is at
        // risk, so reprojection has plenty to cover.
        let cfg = EdgeConfig {
            serve: small(4, 12),
            link: LinkConfig { base_loss: 0.4, ..LinkConfig::default() },
            client: ClientConfig::default(),
        };
        let gpu = GpuConfig::default();
        let atw = simulate_edge(ServeScheme::OoVr, &spec(), &gpu, &cfg, None);
        let bare_cfg = EdgeConfig {
            client: ClientConfig { reproject: false, ..cfg.client.clone() },
            ..cfg.clone()
        };
        let bare = simulate_edge(ServeScheme::OoVr, &spec(), &gpu, &bare_cfg, None);
        let reprojected: usize = atw
            .sessions
            .iter()
            .flat_map(|s| &s.frames)
            .filter(|f| matches!(f.display, Display::Reprojected { .. }))
            .count();
        assert!(reprojected > 0, "40% loss must force reprojections");
        assert!(
            atw.qos().miss_rate < bare.qos().miss_rate,
            "ATW must strictly beat the bare client ({} vs {})",
            atw.qos().miss_rate,
            bare.qos().miss_rate
        );
        // Same deliveries on both sides — the policies only differ in
        // how uncovered vsyncs are classified.
        for (a, b) in atw.sessions.iter().zip(&bare.sessions) {
            for (fa, fb) in a.frames.iter().zip(&b.frames) {
                assert_eq!(fa.lost, fb.lost);
                assert_eq!(fa.delivery, fb.delivery);
            }
        }
    }

    #[test]
    fn undersized_link_rejects_sessions_with_reason_link() {
        let mut rec = Recorder::new(TraceConfig::default());
        let cfg = EdgeConfig {
            serve: small(8, 6),
            // Capacity for two sessions' aggregate demand across eight
            // arrivals with 90% headroom: most must bounce off the link.
            link: LinkConfig { provision: 2.0 / 8.0, ..LinkConfig::default() },
            client: ClientConfig::default(),
        };
        let gpu = GpuConfig::default();
        let out = simulate_edge(ServeScheme::OoVr, &spec(), &gpu, &cfg, Some(&mut rec));
        assert!(out.link_rejected > 0, "the link budget must turn sessions away");
        assert_eq!(out.sessions.len() + out.rejects.len(), 8, "every offer is decided");
        let link_rejects = rec
            .events()
            .filter(|e| matches!(e, TraceEvent::SessionReject { reason, .. } if *reason == "link"))
            .count();
        assert_eq!(link_rejects as u32, out.link_rejected);
    }

    #[test]
    fn metered_run_reconciles_with_qos() {
        let cfg = EdgeConfig {
            serve: small(5, 10),
            link: LinkConfig { base_loss: 0.2, ..LinkConfig::default() },
            client: ClientConfig::default(),
        };
        let gpu = GpuConfig::default();
        let mut reg = Registry::new(cfg.serve.vsync_cycles);
        let out =
            simulate_edge_metered(ServeScheme::OoVr, &spec(), &gpu, &cfg, None, Some(&mut reg));
        let qos = out.qos();
        assert_eq!(reg.counter_sum("frames"), u64::from(qos.frames));
        assert_eq!(reg.counter_sum("frames_missed"), u64::from(qos.missed + qos.dropped));
        let mtp = out.motion_to_photon();
        assert_eq!(mtp.samples, u64::from(qos.frames));
        // The metered run is a pure observation of the unmetered one.
        let plain = simulate_edge(ServeScheme::OoVr, &spec(), &gpu, &cfg, None);
        assert_eq!(plain, out);
    }
}
