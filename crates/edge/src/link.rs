//! The client–edge network link: bandwidth, latency, and seeded loss.
//!
//! The link is deliberately "just another bandwidth server": the same
//! [`BandwidthServer`] queueing model the memory system uses for DRAM
//! and inter-GPM fabric, provisioned against the aggregate encoded-frame
//! demand and shaped by the same compiled [`FaultPlan`] schedules the
//! cluster tier applies to its servers ([`FaultPlan::server_schedule`]).
//! Loss rides the same schedule: while the fault plan degrades the link
//! multiplier below 1.0, the per-frame loss probability rises from
//! [`LinkConfig::base_loss`] toward `base_loss + fault_loss`. Every loss
//! draw is seeded per `(session, frame)`, so the link replays
//! bit-identically and is independent of propagation latency and of the
//! client's reprojection policy.

use oovr_gpu::FaultPlan;
use oovr_mem::{BandwidthServer, RateSchedule};
use oovr_trace::Cycle;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the client–edge link.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Link capacity as a multiple of the aggregate steady encoded-frame
    /// demand (`sessions × steady_bytes / V`). `f64::INFINITY` models an
    /// ideal unbounded link (no queueing, no byte-budget admission).
    pub provision: f64,
    /// Fixed propagation latency in cycles, added after queueing.
    pub latency: Cycle,
    /// Encoded frame size per 1000 shaded pixels, in bytes.
    pub bytes_per_kpixel: u64,
    /// Edge-side encode cost per 1000 shaded pixels, in cycles. The
    /// default (1.2 cycles/px, a hardware-class encoder) is sized so the
    /// heaviest paper workload's encode + serialization + propagation
    /// still fits inside its measured full-scale EDF slack (~11M cycles
    /// at 4.5 Mpx): 2 cycles/px would push every DM3-1600 delivery past
    /// its deadline on an otherwise healthy link.
    pub encode_cycles_per_kpixel: Cycle,
    /// Frame loss probability on the healthy link.
    pub base_loss: f64,
    /// Additional loss probability at full link degradation (scaled by
    /// `1 - multiplier` of the compiled fault schedule).
    pub fault_loss: f64,
    /// Fault plan compiled onto the link (the plan's victim-server
    /// schedule shapes both bandwidth and loss, so every scenario bites).
    pub fault: Option<FaultPlan>,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            provision: 2.0,
            latency: oovr_gpu::VSYNC_90HZ_CYCLES / 8,
            bytes_per_kpixel: 200,
            encode_cycles_per_kpixel: 1200,
            base_loss: 0.01,
            fault_loss: 0.5,
            fault: None,
        }
    }
}

impl LinkConfig {
    /// The degenerate (ideal) link: unbounded bandwidth, zero latency,
    /// zero encode cost, zero bytes, zero loss, no fault plan. A split
    /// run over this link is bit-identical to local-only serving
    /// (pinned by `prop_edge`).
    pub fn degenerate() -> Self {
        LinkConfig {
            provision: f64::INFINITY,
            latency: 0,
            bytes_per_kpixel: 0,
            encode_cycles_per_kpixel: 0,
            base_loss: 0.0,
            fault_loss: 0.0,
            fault: None,
        }
    }

    /// The fault schedule compiled onto the link, if any: the plan's
    /// victim server in a 2-node (client, edge) world, so link-degrade,
    /// link-down, GPM-throttle, stall, and mixed scenarios all surface
    /// as link capacity/loss windows.
    pub fn compiled_schedule(&self) -> Option<RateSchedule> {
        let plan = self.fault.as_ref()?;
        plan.server_schedule(plan.victim(2).index(), 2)
    }
}

/// The simulated link: a seeded lossy bandwidth server.
#[derive(Debug, Clone)]
pub struct NetworkLink {
    server: Option<BandwidthServer>,
    schedule: Option<RateSchedule>,
    latency: Cycle,
    base_loss: f64,
    fault_loss: f64,
    seed: u64,
}

impl NetworkLink {
    /// Builds the link for one run. `session_rate` is one session's
    /// steady encoded-byte demand per cycle; the capacity is
    /// `provision × sessions × session_rate` (bounded links only). A
    /// bounded link with zero demand carries nothing worth queueing and
    /// degrades to a pure-latency link.
    pub fn new(cfg: &LinkConfig, session_rate: f64, sessions: u32, seed: u64) -> Self {
        let schedule = cfg.compiled_schedule();
        let capacity = cfg.provision * session_rate * f64::from(sessions.max(1));
        let server = if cfg.provision.is_finite() && capacity > 0.0 {
            let mut srv = BandwidthServer::new(capacity, cfg.latency);
            srv.set_schedule(schedule.clone());
            Some(srv)
        } else {
            None
        };
        NetworkLink {
            server,
            schedule,
            latency: cfg.latency,
            base_loss: cfg.base_loss,
            fault_loss: cfg.fault_loss,
            seed,
        }
    }

    /// Bytes-per-cycle capacity of a bounded link (`None` = unbounded).
    pub fn bytes_per_cycle(&self) -> Option<f64> {
        self.server.as_ref().map(BandwidthServer::bytes_per_cycle)
    }

    /// Queues `bytes` at `now` and returns the client-side arrival cycle
    /// (serialization + queueing + propagation). Lost frames are charged
    /// through here too — a dropped packet still burned the air time.
    pub fn transfer(&mut self, now: Cycle, bytes: u64) -> Cycle {
        match &mut self.server {
            Some(srv) => srv.transfer(now, bytes),
            None => now + self.latency,
        }
    }

    /// Loss probability for a frame entering the link at `at`.
    pub fn loss_probability(&self, at: Cycle) -> f64 {
        let mult = self.schedule.as_ref().map_or(1.0, |s| s.multiplier_at(at));
        (self.base_loss + self.fault_loss * (1.0 - mult)).clamp(0.0, 1.0)
    }

    /// Seeded loss draw for `(session, frame)` entering the link at
    /// `at`. Zero-probability windows draw nothing, so an all-zero loss
    /// config is bit-free (no RNG state is ever created).
    pub fn is_lost(&self, session: u32, frame: u32, at: Cycle) -> bool {
        let p = self.loss_probability(at);
        if p <= 0.0 {
            return false;
        }
        let key = ((u64::from(session) << 32) | u64::from(frame)).wrapping_add(1);
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ 0x00ED_6E11 ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        rng.gen_bool(p.min(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oovr_gpu::FaultScenario;

    #[test]
    fn degenerate_link_is_free_and_lossless() {
        let cfg = LinkConfig::degenerate();
        let mut link = NetworkLink::new(&cfg, 0.0, 8, 42);
        assert_eq!(link.transfer(1234, 999_999), 1234);
        assert_eq!(link.loss_probability(0), 0.0);
        assert!(!link.is_lost(0, 1, 0));
        assert!(link.bytes_per_cycle().is_none());
    }

    #[test]
    fn bounded_link_serializes_and_adds_latency() {
        let cfg = LinkConfig { provision: 1.0, latency: 100, ..LinkConfig::default() };
        // One session at 2 bytes/cycle steady demand → capacity 2 B/cyc.
        let mut link = NetworkLink::new(&cfg, 2.0, 1, 0);
        // 200 bytes at 2 B/cyc = 100 cycles serialization + 100 latency.
        assert_eq!(link.transfer(0, 200), 200);
        // Queued behind the first transfer.
        assert_eq!(link.transfer(0, 200), 300);
    }

    #[test]
    fn fault_plan_raises_loss_inside_degraded_windows() {
        let plan = FaultPlan::new(FaultScenario::LinkDown, 1.0, 3).with_horizon(1_000_000);
        let cfg = LinkConfig { fault: Some(plan), ..LinkConfig::default() };
        let link = NetworkLink::new(&cfg, 1.0, 4, 7);
        let sched = cfg.compiled_schedule().expect("link-down compiles a schedule");
        // Find an outage window and a healthy window.
        let outage = (0..1_000_000u64).step_by(1000).find(|&t| sched.multiplier_at(t) == 0.0);
        let t_down = outage.expect("severity-1.0 link-down must have an outage");
        assert!(link.loss_probability(t_down) > cfg.base_loss + 0.4);
        let t_up = (0..1_000_000u64)
            .step_by(1000)
            .find(|&t| sched.multiplier_at(t) == 1.0)
            .expect("link recovers between outages");
        assert!((link.loss_probability(t_up) - cfg.base_loss).abs() < 1e-12);
    }

    #[test]
    fn loss_draws_replay_per_seed_and_key() {
        let cfg = LinkConfig { base_loss: 0.5, ..LinkConfig::default() };
        let a = NetworkLink::new(&cfg, 1.0, 4, 99);
        let b = NetworkLink::new(&cfg, 1.0, 4, 99);
        for s in 0..4 {
            for f in 0..16 {
                assert_eq!(a.is_lost(s, f, 0), b.is_lost(s, f, 0));
            }
        }
        // Across many keys both outcomes occur at p=0.5.
        let lost = (0..256).filter(|&f| a.is_lost(0, f, 0)).count();
        assert!(lost > 64 && lost < 192, "loss rate should be near 0.5, got {lost}/256");
    }
}
