//! # oovr-edge
//!
//! A deterministic *split-rendering* tier over the OO-VR reproduction:
//! the paper's NUMA argument — keep object work local, pay for the link
//! only when you must — extended one level up the hierarchy. A thin VR
//! client (display + ATW reprojection only) tethers to an edge server
//! over a bandwidth/latency-constrained, lossy network; the edge server
//! runs the existing `oovr-serve` EDF pipeline and streams encoded
//! frames down the link.
//!
//! Everything runs in simulated cycles; no wall clock is ever read, so a
//! `(scheme, workload, config)` tuple replays bit-identically (pinned by
//! `prop_edge`). The pieces:
//!
//! * [`link`] — the [`NetworkLink`]: an `oovr-mem` [`BandwidthServer`]
//!   (serialization + queueing) plus fixed propagation latency and
//!   seeded per-window loss, both compiled from the same
//!   `oovr_gpu::fault` plans the cluster tier uses
//!   ([`FaultPlan::server_schedule`]).
//! * [`sim`] — [`simulate_edge`]: the edge server replays the §11 EDF
//!   scheduler (render + per-pixel encode) with a *second* admission
//!   constraint (the link byte budget joins the Eq. 3 compute budget),
//!   frames transit the link in encode-completion order, and the client
//!   either presents the fresh frame, presents it late, covers the vsync
//!   by ATW-reprojecting the last delivered frame
//!   ([`warp_cycles_for_pixels`]), or goes dark past the staleness cap.
//! * [`qos`] — motion-to-photon latency (pose sample → photon,
//!   p50/p99/p99.9) and an [`AggregateQos`] view that degenerates
//!   bit-exactly to local-only serving when the link is ideal.
//! * [`chaos`] — the `figures -- edge` latency ladder and
//!   scenario×severity link-chaos tables, plus the [`edge_slos`]
//!   catalogue gated by `figures -- health`.
//!
//! [`BandwidthServer`]: oovr_mem::BandwidthServer
//! [`FaultPlan::server_schedule`]: oovr_gpu::FaultPlan::server_schedule
//! [`warp_cycles_for_pixels`]: oovr_frameworks::atw::warp_cycles_for_pixels
//! [`AggregateQos`]: oovr_serve::AggregateQos
//! [`NetworkLink`]: link::NetworkLink

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod link;
pub mod qos;
pub mod sim;

pub use chaos::{
    edge_chaos_cell, edge_chaos_table, edge_health_table, edge_ladder, edge_ladder_table,
    edge_nominal_mtp_target, edge_scenario_table, edge_slos, EdgeChaosCell, EdgeHealthCell,
    EDGE_FAULT_MISS_BUDGET, EDGE_FAULT_MTP_VSYNCS, EDGE_NOMINAL_MISS_BUDGET, EDGE_REPROJECT_BUDGET,
    EDGE_SEVERITIES,
};
pub use link::{LinkConfig, NetworkLink};
pub use qos::{edge_qos, MotionToPhoton};
pub use sim::{
    simulate_edge, simulate_edge_metered, ClientConfig, Display, EdgeConfig, EdgeFrame,
    EdgeOutcome, EdgeSession,
};
