//! Edge chaos sweeps, the latency ladder, and the edge SLO catalogue.
//!
//! The `figures -- edge` family lives here:
//!
//! * [`edge_ladder`] / [`edge_ladder_table`] — motion-to-photon p99 as a
//!   function of link propagation latency. Delivered photons shift
//!   pointwise with latency while the ATW/dark anchors are constants, so
//!   the p99 column is monotone non-decreasing by construction — and the
//!   figure gate re-verifies it empirically on every workload.
//! * [`edge_chaos_cell`] / [`edge_chaos_table`] — the link-down
//!   scenario×severity sweep comparing the ATW client against a
//!   reprojection-free client on *identical* deliveries (the renderer
//!   and link never observe the client policy). Each cell's fault seed
//!   is scanned, like `oovr_serve::chaos`, until the plan actually
//!   bites (at least one lost frame and one reprojection) so no cell
//!   silently tests nothing.
//! * [`edge_scenario_table`] — every fault scenario × severity on one
//!   workload, for scenario coverage.
//! * [`edge_slos`] / [`edge_health_table`] — the SLO catalogue over the
//!   metrics [`simulate_edge_metered`] emits, evaluated nominal and
//!   under the seed-scanned severity-1.0 link-down plan per workload;
//!   `figures -- health` gates on every cell being healthy.

use oovr::experiments::{par_map, FigureTable};
use oovr_gpu::{FaultPlan, FaultScenario, GpuConfig};
use oovr_metrics::slo::{evaluate, Objective, Slo, SloEval};
use oovr_metrics::Registry;
use oovr_scene::BenchmarkSpec;
use oovr_serve::ServeScheme;
use oovr_trace::Cycle;

use crate::qos::MotionToPhoton;
use crate::sim::{
    simulate_edge, simulate_edge_metered, ClientConfig, Display, EdgeConfig, EdgeOutcome,
};

/// Fault severities the edge chaos sweep exercises (matching the
/// cluster chaos sweep's ladder).
pub const EDGE_SEVERITIES: [f64; 3] = [0.4, 0.7, 1.0];

/// Edge missed-vsync budget on the healthy (nominal) link: base loss
/// only, ATW covering. Measured 0% on every workload at smoke scale;
/// the budget leaves room for the encode + propagation tail to push a
/// few full-scale deliveries past their deadline.
pub const EDGE_NOMINAL_MISS_BUDGET: f64 = 0.10;

/// Edge missed-vsync budget under the severity-1.0 link-down plan: the
/// ATW client rides out outage windows by reprojecting, so the budget
/// sits well below the bare client's measured miss rate in the same
/// cells (asserted strictly, per cell, by the `figures -- edge` gate).
/// Measured worst ATW miss rate is ≈47%.
pub const EDGE_FAULT_MISS_BUDGET: f64 = 0.55;

/// Reprojection-rate budget: ATW is the designed loss response, but a
/// client living on warped frames has effectively lost the stream.
/// Measured ≈15% under the severity-1.0 link-down plan.
pub const EDGE_REPROJECT_BUDGET: f64 = 0.25;

/// Motion-to-photon p99 budget under the severity-1.0 link-down plan,
/// in vsync intervals. Late frames queue behind outage windows, so the
/// faulted tail is bounded by the worst run of outages the plan can
/// generate, not by the healthy-link delivery path; measured worst is
/// ≈8.2 V (histogram overestimate included), budgeted at 2×.
pub const EDGE_FAULT_MTP_VSYNCS: f64 = 16.0;

/// Seeds scanned per chaos cell for a plan that provably bites.
const SEED_SCAN: u64 = 256;

/// Nominal motion-to-photon p99 target: `2·(2V + latency)` — the
/// dark-vsync anchor (`2V`) plus the configured propagation latency,
/// doubled for the log2 histogram's strictly-less-than-one-octave
/// overestimate.
pub fn edge_nominal_mtp_target(vsync: Cycle, link_latency: Cycle) -> f64 {
    2.0 * (2.0 * vsync as f64 + link_latency as f64)
}

/// The edge-tier objectives over the metrics
/// [`simulate_edge_metered`](crate::sim::simulate_edge_metered) emits.
/// `mtp_target` is the p99 motion-to-photon budget in cycles:
/// [`edge_nominal_mtp_target`] for healthy-link runs,
/// [`EDGE_FAULT_MTP_VSYNCS`]`·V` for runs under a fault plan (outage
/// queueing stretches the tail far past the delivery path).
pub fn edge_slos(miss_budget: f64, mtp_target: f64) -> Vec<Slo> {
    vec![
        Slo {
            name: "edge-missed-vsync-rate",
            objective: Objective::BadFraction { bad: "frames_missed", total: "frames" },
            target: miss_budget,
        },
        Slo {
            name: "p99-motion-to-photon",
            objective: Objective::QuantileAtMost { hist: "motion_to_photon_cycles", p: 99.0 },
            target: mtp_target,
        },
        Slo {
            name: "reprojection-rate",
            objective: Objective::BadFraction { bad: "frames_reprojected", total: "frames" },
            target: EDGE_REPROJECT_BUDGET,
        },
    ]
}

/// Span of one run in cycles: the last possible arrival plus every
/// frame's grid slot and the departure slack — the horizon fault plans
/// are stretched to so their windows cover the whole experiment.
fn run_horizon(cfg: &EdgeConfig) -> Cycle {
    let s = &cfg.serve;
    let v = s.vsync_cycles.max(1);
    u64::from(s.sessions.saturating_sub(1)) * (s.mean_interarrival + s.mean_interarrival / 2)
        + u64::from(s.frames_per_session + 2) * v
}

fn count(out: &EdgeOutcome, pred: impl Fn(&crate::sim::EdgeFrame) -> bool) -> u32 {
    out.sessions.iter().flat_map(|s| s.frames.iter()).filter(|f| pred(f)).count() as u32
}

/// One cell of the edge chaos sweep.
#[derive(Debug, Clone)]
pub struct EdgeChaosCell {
    /// Workload name.
    pub workload: String,
    /// Fault scenario of the cell.
    pub scenario: FaultScenario,
    /// Fault severity of the cell.
    pub severity: f64,
    /// Settled (seed-scanned) fault-plan seed.
    pub fault_seed: u64,
    /// Frames the link lost.
    pub lost: u32,
    /// Paced vsyncs the ATW client covered by reprojection.
    pub reprojected: u32,
    /// Paced dark vsyncs of the ATW client.
    pub stale: u32,
    /// Missed-vsync rate of the ATW client.
    pub miss_atw: f64,
    /// Missed-vsync rate of the reprojection-free client on the same
    /// deliveries.
    pub miss_bare: f64,
    /// ATW client's motion-to-photon summary.
    pub mtp: MotionToPhoton,
}

/// Runs one chaos cell: seed-scan the fault plan until it bites (≥ 1
/// lost frame and, for scenarios that lose anything, ≥ 1 reprojection),
/// then compare the ATW client against the bare client under the
/// settled plan.
pub fn edge_chaos_cell(
    spec: &BenchmarkSpec,
    gpu: &GpuConfig,
    cfg: &EdgeConfig,
    scenario: FaultScenario,
    severity: f64,
) -> EdgeChaosCell {
    let horizon = run_horizon(cfg);
    let idx =
        FaultScenario::ALL.iter().position(|s| s.name() == scenario.name()).unwrap_or(0) as u64 * 8
            + (severity * 10.0) as u64;
    let base_seed = cfg.serve.seed ^ idx.wrapping_mul(0x9E37_79B9);
    let mut settled: Option<(FaultPlan, EdgeOutcome)> = None;
    for s in 0..SEED_SCAN {
        let plan =
            FaultPlan::new(scenario, severity, base_seed.wrapping_add(s)).with_horizon(horizon);
        let run_cfg = EdgeConfig {
            link: crate::link::LinkConfig { fault: Some(plan.clone()), ..cfg.link.clone() },
            client: ClientConfig { reproject: true, ..cfg.client.clone() },
            serve: cfg.serve.clone(),
        };
        let atw = simulate_edge(ServeScheme::OoVr, spec, gpu, &run_cfg, None);
        let lost = count(&atw, |f| f.lost);
        let reproj =
            count(&atw, |f| f.record.frame > 0 && matches!(f.display, Display::Reprojected { .. }));
        let bites = lost >= 1 && reproj >= 1;
        if bites || (s == SEED_SCAN - 1 && settled.is_none()) {
            settled = Some((plan, atw));
            if bites {
                break;
            }
        }
    }
    let (plan, atw) = settled.expect("seed scan always settles on the last candidate");
    let bare_cfg = EdgeConfig {
        link: crate::link::LinkConfig { fault: Some(plan.clone()), ..cfg.link.clone() },
        client: ClientConfig { reproject: false, ..cfg.client.clone() },
        serve: cfg.serve.clone(),
    };
    let bare = simulate_edge(ServeScheme::OoVr, spec, gpu, &bare_cfg, None);
    EdgeChaosCell {
        workload: spec.name.clone(),
        scenario,
        severity,
        fault_seed: plan.seed,
        lost: count(&atw, |f| f.lost),
        reprojected: count(&atw, |f| {
            f.record.frame > 0 && matches!(f.display, Display::Reprojected { .. })
        }),
        stale: count(&atw, |f| f.record.frame > 0 && matches!(f.display, Display::Stale { .. })),
        miss_atw: atw.qos().miss_rate,
        miss_bare: bare.qos().miss_rate,
        mtp: atw.motion_to_photon(),
    }
}

/// The link-down chaos table: every workload × severity, ATW vs bare
/// client. The `figures -- edge` gate asserts `miss_atw < miss_bare`
/// strictly in every row.
pub fn edge_chaos_table(
    specs: &[BenchmarkSpec],
    gpu: &GpuConfig,
    cfg: &EdgeConfig,
) -> (FigureTable, Vec<EdgeChaosCell>) {
    let grid: Vec<(BenchmarkSpec, f64)> = specs
        .iter()
        .flat_map(|s| EDGE_SEVERITIES.iter().map(move |&sev| (s.clone(), sev)))
        .collect();
    let cells = par_map(&grid, |(spec, sev)| {
        edge_chaos_cell(spec, gpu, cfg, FaultScenario::LinkDown, *sev)
    });
    let rows = cells
        .iter()
        .map(|c| {
            (
                format!("{} @{:.1}", c.workload, c.severity),
                vec![
                    f64::from(c.lost),
                    f64::from(c.reprojected),
                    f64::from(c.stale),
                    c.miss_bare * 100.0,
                    c.miss_atw * 100.0,
                    c.mtp.p99 as f64 / 1_000.0,
                ],
            )
        })
        .collect();
    let table = FigureTable {
        id: "edge_chaos",
        title: "Edge link-down chaos: ATW client vs reprojection-free client on identical \
                deliveries (seed-scanned plans; miss rates in percent)"
            .to_string(),
        columns: ["lost", "reproj", "stale", "bare_miss%", "atw_miss%", "mtp_p99_kcyc"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    };
    (table, cells)
}

/// Scenario-coverage table on one workload: every fault scenario ×
/// severity through the link compiler.
pub fn edge_scenario_table(
    spec: &BenchmarkSpec,
    gpu: &GpuConfig,
    cfg: &EdgeConfig,
) -> (FigureTable, Vec<EdgeChaosCell>) {
    let grid: Vec<(FaultScenario, f64)> = FaultScenario::ALL
        .iter()
        .flat_map(|&sc| EDGE_SEVERITIES.iter().map(move |&sev| (sc, sev)))
        .collect();
    let cells = par_map(&grid, |(sc, sev)| edge_chaos_cell(spec, gpu, cfg, *sc, *sev));
    let rows = cells
        .iter()
        .map(|c| {
            (
                format!("{} @{:.1}", c.scenario.name(), c.severity),
                vec![
                    f64::from(c.lost),
                    f64::from(c.reprojected),
                    f64::from(c.stale),
                    c.miss_atw * 100.0,
                    c.mtp.p99 as f64 / 1_000.0,
                ],
            )
        })
        .collect();
    let table = FigureTable {
        id: "edge_scenarios",
        title: format!(
            "Edge fault-scenario coverage on {}: ATW client under every compiled link fault",
            spec.name
        ),
        columns: ["lost", "reproj", "stale", "atw_miss%", "mtp_p99_kcyc"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    };
    (table, cells)
}

/// Propagation-latency rungs of the motion-to-photon ladder, as
/// fractions of the vsync interval.
fn ladder_rungs(v: Cycle) -> [Cycle; 5] {
    [0, v / 64, v / 8, v / 2, 2 * v]
}

/// Runs one workload up the latency ladder, returning
/// `(latency, motion-to-photon)` per rung. Every other knob (including
/// the loss draws) is held fixed, so the p99 column is monotone.
pub fn edge_ladder(
    spec: &BenchmarkSpec,
    gpu: &GpuConfig,
    cfg: &EdgeConfig,
) -> Vec<(Cycle, MotionToPhoton)> {
    ladder_rungs(cfg.serve.vsync_cycles.max(1))
        .iter()
        .map(|&latency| {
            let run_cfg = EdgeConfig {
                link: crate::link::LinkConfig { latency, ..cfg.link.clone() },
                ..cfg.clone()
            };
            let out = simulate_edge(ServeScheme::OoVr, spec, gpu, &run_cfg, None);
            (latency, out.motion_to_photon())
        })
        .collect()
}

/// The ladder table: one row per workload, motion-to-photon p99 (in
/// kilocycles) per latency rung, plus a monotone verdict column.
pub fn edge_ladder_table(
    specs: &[BenchmarkSpec],
    gpu: &GpuConfig,
    cfg: &EdgeConfig,
) -> (FigureTable, Vec<Vec<(Cycle, MotionToPhoton)>>) {
    let ladders = par_map(specs, |spec| edge_ladder(spec, gpu, cfg));
    let rows = specs
        .iter()
        .zip(&ladders)
        .map(|(spec, ladder)| {
            let mut cols: Vec<f64> =
                ladder.iter().map(|(_, mtp)| mtp.p99 as f64 / 1_000.0).collect();
            let monotone = ladder.windows(2).all(|w| w[0].1.p99 <= w[1].1.p99);
            cols.push(f64::from(u8::from(monotone)));
            (spec.name.clone(), cols)
        })
        .collect();
    let v = cfg.serve.vsync_cycles.max(1);
    let table = FigureTable {
        id: "edge_ladder",
        title: "Edge motion-to-photon p99 (kilocycles) vs link propagation latency \
                (rungs as fractions of the vsync interval)"
            .to_string(),
        columns: ladder_rungs(v)
            .iter()
            .map(|&l| format!("{:.3}V", l as f64 / v as f64))
            .chain(std::iter::once("monotone".to_string()))
            .collect(),
        rows,
    };
    (table, ladders)
}

/// One workload's edge health evaluation.
#[derive(Debug, Clone)]
pub struct EdgeHealthCell {
    /// Workload name.
    pub workload: String,
    /// Seed of the settled severity-1.0 link-down plan.
    pub fault_seed: u64,
    /// SLO rows of the nominal (fault-free link) run.
    pub nominal: Vec<SloEval>,
    /// SLO rows under the link-down plan.
    pub faulted: Vec<SloEval>,
}

impl EdgeHealthCell {
    /// Whether every row of both runs holds its budget.
    pub fn healthy(&self) -> bool {
        self.nominal.iter().chain(self.faulted.iter()).all(|e| e.healthy)
    }

    /// Largest budget consumption across both runs.
    pub fn worst_budget(&self) -> f64 {
        self.nominal
            .iter()
            .chain(self.faulted.iter())
            .map(|e| e.budget_consumed)
            .fold(0.0, f64::max)
    }

    fn achieved(rows: &[SloEval], slo: &str) -> f64 {
        rows.iter().find(|e| e.slo == slo).map_or(0.0, |e| e.achieved)
    }
}

/// The `figures -- health` edge gate: per workload, evaluate
/// [`edge_slos`] on a metered nominal run and a metered run under the
/// seed-scanned severity-1.0 link-down plan.
pub fn edge_health_table(
    specs: &[BenchmarkSpec],
    gpu: &GpuConfig,
    cfg: &EdgeConfig,
) -> (FigureTable, Vec<EdgeHealthCell>) {
    let cells = par_map(specs, |spec| {
        let v = cfg.serve.vsync_cycles.max(1);
        let run = |fault: Option<FaultPlan>, miss_budget: f64, mtp_target: f64| -> Vec<SloEval> {
            let run_cfg = EdgeConfig {
                link: crate::link::LinkConfig { fault, ..cfg.link.clone() },
                ..cfg.clone()
            };
            let mut reg = Registry::new(v);
            simulate_edge_metered(ServeScheme::OoVr, spec, gpu, &run_cfg, None, Some(&mut reg));
            evaluate(&reg, &edge_slos(miss_budget, mtp_target))
        };
        // Reuse the chaos cell's scan so health and chaos agree on the
        // plan that actually bites this workload.
        let cell = edge_chaos_cell(spec, gpu, cfg, FaultScenario::LinkDown, 1.0);
        let horizon = run_horizon(cfg);
        let plan =
            FaultPlan::new(FaultScenario::LinkDown, 1.0, cell.fault_seed).with_horizon(horizon);
        EdgeHealthCell {
            workload: spec.name.clone(),
            fault_seed: cell.fault_seed,
            nominal: run(
                None,
                EDGE_NOMINAL_MISS_BUDGET,
                edge_nominal_mtp_target(v, cfg.link.latency),
            ),
            faulted: run(Some(plan), EDGE_FAULT_MISS_BUDGET, EDGE_FAULT_MTP_VSYNCS * v as f64),
        }
    });
    let rows = cells
        .iter()
        .map(|c| {
            (
                c.workload.clone(),
                vec![
                    EdgeHealthCell::achieved(&c.nominal, "edge-missed-vsync-rate") * 100.0,
                    EdgeHealthCell::achieved(&c.faulted, "edge-missed-vsync-rate") * 100.0,
                    EdgeHealthCell::achieved(&c.faulted, "reprojection-rate") * 100.0,
                    c.worst_budget(),
                    f64::from(u8::from(c.healthy())),
                ],
            )
        })
        .collect();
    let table = FigureTable {
        id: "edge_health",
        title: format!(
            "Edge health gate: nominal vs severity-1.0 link-down (budgets: nominal {:.0}%, \
             faulted {:.0}% missed vsyncs, {:.0}% reprojection)",
            EDGE_NOMINAL_MISS_BUDGET * 100.0,
            EDGE_FAULT_MISS_BUDGET * 100.0,
            EDGE_REPROJECT_BUDGET * 100.0
        ),
        columns: ["nom_miss%", "fault_miss%", "reproj%", "budget", "healthy"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    };
    (table, cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oovr_scene::benchmarks;

    fn cfg() -> EdgeConfig {
        EdgeConfig {
            serve: oovr_serve::ServeConfig {
                sessions: 4,
                frames_per_session: 10,
                ..oovr_serve::ServeConfig::default()
            },
            ..EdgeConfig::default()
        }
    }

    #[test]
    fn link_down_cell_bites_and_atw_wins() {
        let spec = benchmarks::hl2_640().scaled(0.05);
        let gpu = GpuConfig::default();
        let cell = edge_chaos_cell(&spec, &gpu, &cfg(), FaultScenario::LinkDown, 1.0);
        assert!(cell.lost >= 1, "the settled plan must lose at least one frame");
        assert!(cell.reprojected >= 1, "the ATW client must reproject at least once");
        assert!(
            cell.miss_atw < cell.miss_bare,
            "ATW must strictly beat the bare client ({} vs {})",
            cell.miss_atw,
            cell.miss_bare
        );
    }

    #[test]
    fn ladder_p99_is_monotone_in_latency() {
        let spec = benchmarks::hl2_640().scaled(0.05);
        let gpu = GpuConfig::default();
        let ladder = edge_ladder(&spec, &gpu, &cfg());
        assert_eq!(ladder.len(), 5);
        for w in ladder.windows(2) {
            assert!(
                w[0].1.p99 <= w[1].1.p99,
                "p99 must not decrease with latency ({} @{} vs {} @{})",
                w[0].1.p99,
                w[0].0,
                w[1].1.p99,
                w[1].0
            );
        }
    }

    #[test]
    fn edge_slo_catalogue_names_the_metered_counters() {
        let spec = benchmarks::hl2_640().scaled(0.05);
        let gpu = GpuConfig::default();
        let c = cfg();
        let v = c.serve.vsync_cycles;
        let mut reg = Registry::new(v);
        simulate_edge_metered(ServeScheme::OoVr, &spec, &gpu, &c, None, Some(&mut reg));
        let evals = evaluate(
            &reg,
            &edge_slos(EDGE_NOMINAL_MISS_BUDGET, edge_nominal_mtp_target(v, c.link.latency)),
        );
        assert_eq!(evals.len(), 3);
        let mtp = evals.iter().find(|e| e.slo == "p99-motion-to-photon").unwrap();
        assert!(mtp.achieved > 0.0, "the histogram must have samples");
    }
}
