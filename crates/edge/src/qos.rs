//! Edge-tier QoS: the local-serving vocabulary plus motion-to-photon.
//!
//! [`edge_qos`] folds a split run into the exact [`AggregateQos`] shape
//! local serving reports, so the two tiers compare cell-for-cell:
//! frames delivered late count as missed vsyncs, dark vsyncs count as
//! drops, and ATW-covered vsyncs count as on time (reprojection is the
//! *designed* loss response, not a failure). Over the degenerate link
//! the mapping is the identity — every field equals
//! [`oovr_serve::ServeOutcome::qos`] bit-for-bit (pinned by
//! `prop_edge`).
//!
//! [`motion_to_photon`] is the split tier's headline metric: pose
//! sample → photon, over *every* paced frame. Presented frames (fresh
//! or late) anchor the photon at delivery; reprojected vsyncs at
//! `deadline + warp`; dark vsyncs at `deadline + vsync`. The covering
//! anchors are constants in the link latency while delivered photons
//! shift pointwise with it, which is what makes the `figures -- edge`
//! p99 ladder provably monotone.

use oovr_serve::percentile;
pub use oovr_serve::AggregateQos;
use oovr_trace::Cycle;

use crate::sim::{Display, EdgeOutcome};

/// Motion-to-photon latency summary over all paced frames of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MotionToPhoton {
    /// Paced frames sampled (every paced frame has a photon anchor).
    pub samples: u64,
    /// Median pose-to-photon latency in cycles.
    pub p50: Cycle,
    /// 99th-percentile pose-to-photon latency in cycles.
    pub p99: Cycle,
    /// 99.9th-percentile pose-to-photon latency in cycles.
    pub p999: Cycle,
}

/// Motion-to-photon percentiles of `outcome` (nearest-rank, matching
/// [`oovr_serve::percentile`]).
pub fn motion_to_photon(outcome: &EdgeOutcome) -> MotionToPhoton {
    let samples: Vec<Cycle> = outcome
        .sessions
        .iter()
        .flat_map(|s| s.frames.iter())
        .filter(|f| f.record.frame > 0)
        .map(|f| f.photon - f.record.release)
        .collect();
    MotionToPhoton {
        samples: samples.len() as u64,
        p50: percentile(&samples, 50.0),
        p99: percentile(&samples, 99.0),
        p999: percentile(&samples, 99.9),
    }
}

/// Aggregates a split run into the local-serving QoS shape.
pub fn edge_qos(outcome: &EdgeOutcome) -> AggregateQos {
    let all = || outcome.sessions.iter().flat_map(|s| s.frames.iter());
    let paced = || all().filter(|f| f.record.frame > 0);
    // Latencies over *delivered* paced frames (fresh or late), release →
    // client arrival — the split analogue of release → retire, and equal
    // to it over the degenerate link.
    let latencies: Vec<Cycle> =
        paced().filter_map(|f| f.delivery.map(|d| d - f.record.release)).collect();
    let frames = paced().count() as u32;
    let missed = paced().filter(|f| f.display == Display::Late).count() as u32;
    let dropped = paced().filter(|f| matches!(f.display, Display::Stale { .. })).count() as u32;
    // Quality degradation is reported wherever it happens, warmup
    // included, over frames the edge actually rendered.
    let shed_frames = all().filter(|f| !f.record.dropped && f.record.scale < 1.0).count() as u32;
    let min_scale =
        all().filter(|f| !f.record.dropped).map(|f| f.record.scale).fold(1.0f64, f64::min);
    let on_time = frames - missed - dropped;
    let rate = |num: u32| if frames == 0 { 0.0 } else { f64::from(num) / f64::from(frames) };
    AggregateQos {
        admitted: outcome.sessions.len() as u32,
        rejected: outcome.rejects.len() as u32,
        frames,
        p50: percentile(&latencies, 50.0),
        p99: percentile(&latencies, 99.0),
        p999: percentile(&latencies, 99.9),
        missed,
        dropped,
        miss_rate: rate(missed + dropped),
        shed_frames,
        min_scale,
        goodput: rate(on_time),
    }
}
