//! Declarative service-level objectives with error budgets and
//! multi-window burn rates.
//!
//! An [`Slo`] binds a named objective to registry metrics. Two shapes
//! exist:
//!
//! * [`Objective::BadFraction`] — the ratio of a "bad" counter to a
//!   "total" counter must stay at or below `target` (e.g. missed-vsync
//!   rate <= 5%). The error budget is the target itself; *budget
//!   consumed* is `achieved / target`, so 1.0 means the budget is exactly
//!   exhausted. Burn rates are the same ratio evaluated over two
//!   alignments of the counter time series: the *fast* window (the last
//!   [`FAST_WINDOWS`] vsync intervals) catches an active incident, the
//!   *slow* window (the whole run) catches a slow bleed. A burn rate of
//!   `B` means the budget would be exhausted in `1/B` of the evaluation
//!   window.
//! * [`Objective::QuantileAtMost`] — a histogram quantile must stay at or
//!   below `target` cycles (e.g. release-to-retire p99 motion-to-photon
//!   latency <= one vsync). Histograms carry no window series, so both
//!   burn rates equal the budget consumption.
//!
//! Evaluation is per label (per server, per session class) plus an
//! aggregate `*` row folding every label together, in deterministic order.

use crate::{Hist, Registry};

/// Number of trailing vsync intervals in the fast burn-rate window.
pub const FAST_WINDOWS: u64 = 8;

/// The measurable shape of an objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// `counter(bad) / counter(total)` must stay `<= target`.
    BadFraction {
        /// Counter of bad events (misses, sheds, ...).
        bad: &'static str,
        /// Counter of all events the bad ones are drawn from.
        total: &'static str,
    },
    /// `hist.quantile(p)` must stay `<= target` (target in cycles).
    QuantileAtMost {
        /// Histogram the quantile is read from.
        hist: &'static str,
        /// Percentile in 0..=100 (e.g. 99.0).
        p: f64,
    },
}

/// A declarative service-level objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Slo {
    /// Stable objective name (reported verbatim).
    pub name: &'static str,
    /// What is measured.
    pub objective: Objective,
    /// The budget: maximum allowed bad fraction, or maximum cycles.
    pub target: f64,
}

/// One evaluated (objective, label) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct SloEval {
    /// Objective name.
    pub slo: &'static str,
    /// Label the row covers (`*` = aggregate across all labels).
    pub label: String,
    /// Measured value: bad fraction or quantile cycles.
    pub achieved: f64,
    /// The objective's budget.
    pub target: f64,
    /// `achieved / target`; `> 1.0` means the error budget is exhausted.
    pub budget_consumed: f64,
    /// Burn rate over the last [`FAST_WINDOWS`] vsync intervals.
    pub burn_fast: f64,
    /// Burn rate over the whole run.
    pub burn_slow: f64,
    /// True while the budget is not exhausted.
    pub healthy: bool,
}

fn fraction(bad: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        bad as f64 / total as f64
    }
}

fn eval_fraction(
    slo: &Slo,
    label: &str,
    bad: u64,
    total: u64,
    bad_fast: u64,
    total_fast: u64,
) -> SloEval {
    let achieved = fraction(bad, total);
    let budget_consumed = achieved / slo.target;
    SloEval {
        slo: slo.name,
        label: label.to_owned(),
        achieved,
        target: slo.target,
        budget_consumed,
        burn_fast: fraction(bad_fast, total_fast) / slo.target,
        burn_slow: budget_consumed,
        healthy: budget_consumed <= 1.0,
    }
}

fn eval_quantile(slo: &Slo, label: &str, h: &Hist, p: f64) -> SloEval {
    let achieved = h.quantile(p) as f64;
    let budget_consumed = achieved / slo.target;
    SloEval {
        slo: slo.name,
        label: label.to_owned(),
        achieved,
        target: slo.target,
        budget_consumed,
        burn_fast: budget_consumed,
        burn_slow: budget_consumed,
        healthy: budget_consumed <= 1.0,
    }
}

/// Evaluate every objective against the registry: one row per label the
/// underlying metric carries, plus a `*` aggregate row, in deterministic
/// order. An objective whose metrics were never touched evaluates as
/// healthy with zero budget consumed (one `*` row).
pub fn evaluate(reg: &Registry, slos: &[Slo]) -> Vec<SloEval> {
    let fast_from = (reg.horizon_window() + 1).saturating_sub(FAST_WINDOWS);
    let mut out = Vec::new();
    for slo in slos {
        match slo.objective {
            Objective::BadFraction { bad, total } => {
                let labels = reg.counter_labels(total);
                let (mut ab, mut at, mut abf, mut atf) = (0, 0, 0, 0);
                let per: Vec<SloEval> = labels
                    .iter()
                    .map(|l| {
                        let b = reg.counter(bad, l);
                        let t = reg.counter(total, l);
                        let bf = reg.counter_since(bad, l, fast_from);
                        let tf = reg.counter_since(total, l, fast_from);
                        ab += b;
                        at += t;
                        abf += bf;
                        atf += tf;
                        eval_fraction(slo, l, b, t, bf, tf)
                    })
                    .collect();
                out.push(eval_fraction(slo, "*", ab, at, abf, atf));
                // Per-label rows only when labels are in use (a single
                // unlabelled series would duplicate the aggregate).
                if labels != [""] {
                    out.extend(per);
                }
            }
            Objective::QuantileAtMost { hist, p } => {
                let labels = reg.hist_labels(hist);
                let mut agg = Hist::default();
                let per: Vec<SloEval> = labels
                    .iter()
                    .filter_map(|l| reg.hist(hist, l).map(|h| (l, h)))
                    .map(|(l, h)| {
                        agg.merge(h);
                        eval_quantile(slo, l, h, p)
                    })
                    .collect();
                out.push(eval_quantile(slo, "*", &agg, p));
                if labels != [""] {
                    out.extend(per);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const MISS: Slo = Slo {
        name: "missed-vsync-rate",
        objective: Objective::BadFraction { bad: "frames_missed", total: "frames_total" },
        target: 0.05,
    };

    #[test]
    fn budget_consumption_and_burn_rates() {
        let mut r = Registry::new(100);
        // 100 frames, 2 missed, all in window 0 (outside any fast window
        // once the horizon moves past FAST_WINDOWS).
        for i in 0..100u64 {
            r.inc("frames_total", "srv0", i, 1);
        }
        r.inc("frames_missed", "srv0", 0, 2);
        // Push the horizon far past the misses.
        r.inc("frames_total", "srv0", 100 * FAST_WINDOWS * 100, 1);
        let evals = evaluate(&r, &[MISS]);
        let agg = &evals[0];
        assert_eq!(agg.label, "*");
        assert!(agg.healthy);
        assert!((agg.achieved - 2.0 / 101.0).abs() < 1e-12);
        assert!(agg.burn_slow > 0.0);
        // The fast window only sees the final clean frame.
        assert_eq!(agg.burn_fast, 0.0);
    }

    #[test]
    fn exhausted_budget_reports_unhealthy_per_label() {
        let mut r = Registry::new(100);
        for i in 0..10u64 {
            r.inc("frames_total", "srv0", i, 1);
            r.inc("frames_total", "srv1", i, 1);
        }
        r.inc("frames_missed", "srv1", 5, 4);
        let evals = evaluate(&r, &[MISS]);
        assert_eq!(evals.len(), 3);
        assert!(!evals[0].healthy, "aggregate busts the 5% budget");
        assert!(evals[1].healthy, "srv0 is clean");
        assert!(!evals[2].healthy, "srv1 busts the budget");
        assert!(evals[2].budget_consumed > 1.0);
    }

    #[test]
    fn quantile_objective_reads_histogram() {
        let slo = Slo {
            name: "p99-latency",
            objective: Objective::QuantileAtMost { hist: "frame_latency_cycles", p: 99.0 },
            target: 1000.0,
        };
        let mut r = Registry::new(100);
        for _ in 0..99 {
            r.observe("frame_latency_cycles", "", 0, 300);
        }
        let ok = evaluate(&r, &[slo]);
        assert!(ok[0].healthy);
        for _ in 0..5 {
            r.observe("frame_latency_cycles", "", 0, 4_000);
        }
        let bad = evaluate(&r, &[slo]);
        assert!(!bad[0].healthy, "p99 now lands on the 4000-cycle samples");
    }

    #[test]
    fn untouched_metrics_evaluate_healthy() {
        let r = Registry::new(100);
        let evals = evaluate(&r, &[MISS]);
        assert_eq!(evals.len(), 1);
        assert!(evals[0].healthy);
        assert_eq!(evals[0].budget_consumed, 0.0);
    }
}
