//! Deterministic metrics plane for the OO-VR reproduction.
//!
//! This crate is the aggregation counterpart of `oovr-trace`: where the
//! flight recorder answers "what happened inside one frame," the registry
//! here answers "how is the fleet doing" — counters, gauges, and
//! log2-bucketed histograms, all keyed by *simulated* cycles and bucketed
//! into per-vsync-interval time-series windows. The same two invariants
//! that govern tracing govern metering:
//!
//! 1. **Observers read, never perturb.** Nothing in this crate can mutate
//!    simulation state; every hook in the simulator is `Option`-gated, so a
//!    metered run is bit-identical to an unmetered one (pinned by proptest
//!    in `tests/prop_metrics.rs`).
//! 2. **Simulated cycles only.** Wall-clock time never enters the registry,
//!    so two runs of the same configuration export byte-identical metrics.
//!
//! On top of the registry sits [`slo`]: declarative objectives (missed-vsync
//! rate, p99 motion-to-photon latency, shed-time fraction) with error
//! budgets and multi-window burn rates, and [`export`]: Prometheus text
//! exposition plus a per-window CSV. [`ingest_trace`] derives registry
//! counters from a drained flight-recorder stream, which is how the GPU
//! executor and memory-window samplers feed the metrics plane without a new
//! set of hooks in the hot path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod hist;
pub mod slo;

use std::collections::BTreeMap;

pub use hist::Hist;
pub use oovr_trace::Cycle;
use oovr_trace::TraceEvent;

/// Metric key: a static metric name plus a free-form label (server index,
/// session class, pipeline phase, ...). The empty label is the unlabelled
/// series. `BTreeMap` keying makes every iteration order — and therefore
/// every export — deterministic.
pub type Key = (&'static str, String);

/// A monotonically increasing counter with a per-window time series.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Counter {
    total: u64,
    /// Sparse per-vsync-window increments, keyed by window index.
    windows: BTreeMap<u64, u64>,
}

/// Deterministic metrics registry.
///
/// All mutation is keyed by a simulated [`Cycle`] timestamp; the registry
/// slots each increment into the vsync interval (`cycle / window_cycles`)
/// it occurred in, building the time series the SLO burn-rate evaluation
/// reads. Creation allocates nothing until the first metric is touched.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    window_cycles: Cycle,
    counters: BTreeMap<Key, Counter>,
    gauges: BTreeMap<Key, f64>,
    hists: BTreeMap<Key, Hist>,
    horizon_window: u64,
}

impl Registry {
    /// A registry whose time-series windows are `window_cycles` long —
    /// pass the vsync interval so windows line up with scheduler quanta.
    /// A zero length is clamped to one cycle.
    pub fn new(window_cycles: Cycle) -> Self {
        Registry { window_cycles: window_cycles.max(1), ..Registry::default() }
    }

    /// The configured window length in cycles.
    pub fn window_cycles(&self) -> Cycle {
        self.window_cycles
    }

    /// Window index a cycle timestamp falls into.
    pub fn window_of(&self, now: Cycle) -> u64 {
        now / self.window_cycles.max(1)
    }

    /// Highest window index any increment has landed in.
    pub fn horizon_window(&self) -> u64 {
        self.horizon_window
    }

    /// True when no metric has been touched.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Increment counter `name{label}` by `by` at simulated cycle `now`.
    pub fn inc(&mut self, name: &'static str, label: &str, now: Cycle, by: u64) {
        let w = self.window_of(now);
        self.horizon_window = self.horizon_window.max(w);
        let c = self.counters.entry((name, label.to_owned())).or_default();
        c.total += by;
        *c.windows.entry(w).or_insert(0) += by;
    }

    /// Set gauge `name{label}` to `value` (last write wins).
    pub fn set_gauge(&mut self, name: &'static str, label: &str, value: f64) {
        self.gauges.insert((name, label.to_owned()), value);
    }

    /// Record `value` into the log2 histogram `name{label}` at cycle `now`.
    pub fn observe(&mut self, name: &'static str, label: &str, now: Cycle, value: u64) {
        let w = self.window_of(now);
        self.horizon_window = self.horizon_window.max(w);
        self.hists.entry((name, label.to_owned())).or_default().observe(value);
    }

    /// Current total of counter `name{label}` (0 when untouched).
    pub fn counter(&self, name: &'static str, label: &str) -> u64 {
        self.counters.get(&(name, label.to_owned())).map_or(0, |c| c.total)
    }

    /// Sum of counter `name` across every label.
    pub fn counter_sum(&self, name: &'static str) -> u64 {
        self.counters.iter().filter(|((n, _), _)| *n == name).map(|(_, c)| c.total).sum()
    }

    /// Counter total accumulated in windows `>= from_window`.
    pub fn counter_since(&self, name: &'static str, label: &str, from_window: u64) -> u64 {
        self.counters
            .get(&(name, label.to_owned()))
            .map_or(0, |c| c.windows.range(from_window..).map(|(_, v)| v).sum())
    }

    /// Gauge value, if set.
    pub fn gauge(&self, name: &'static str, label: &str) -> Option<f64> {
        self.gauges.get(&(name, label.to_owned())).copied()
    }

    /// Histogram for `name{label}`, if any sample landed in it.
    pub fn hist(&self, name: &'static str, label: &str) -> Option<&Hist> {
        self.hists.get(&(name, label.to_owned()))
    }

    /// All labels present on counter `name`, in deterministic order.
    pub fn counter_labels(&self, name: &'static str) -> Vec<&str> {
        self.counters.keys().filter(|(n, _)| *n == name).map(|(_, l)| l.as_str()).collect()
    }

    /// All labels present on histogram `name`, in deterministic order.
    pub fn hist_labels(&self, name: &'static str) -> Vec<&str> {
        self.hists.keys().filter(|(n, _)| *n == name).map(|(_, l)| l.as_str()).collect()
    }

    /// Iterate every counter as `(name, label, total)`.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, &str, u64)> {
        self.counters.iter().map(|((n, l), c)| (*n, l.as_str(), c.total))
    }

    /// Iterate every counter's window series as `(name, label, window, value)`.
    pub fn counter_windows(&self) -> impl Iterator<Item = (&'static str, &str, u64, u64)> {
        self.counters
            .iter()
            .flat_map(|((n, l), c)| c.windows.iter().map(move |(w, v)| (*n, l.as_str(), *w, *v)))
    }

    /// Iterate every gauge as `(name, label, value)`.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, &str, f64)> {
        self.gauges.iter().map(|((n, l), v)| (*n, l.as_str(), *v))
    }

    /// Iterate every histogram as `(name, label, hist)`.
    pub fn hists(&self) -> impl Iterator<Item = (&'static str, &str, &Hist)> {
        self.hists.iter().map(|((n, l), h)| (*n, l.as_str(), h))
    }
}

/// Derive registry counters from a drained flight-recorder stream.
///
/// This is how the GPU executor and the memory-window samplers feed the
/// metrics plane: the executor already emits phase spans, cache windows,
/// and bandwidth-server windows when traced, and this adapter folds that
/// stream into counters and histograms without adding a second set of
/// hooks to the render hot path. Serve-layer events fold too, so a trace
/// captured from the scheduler or cluster tier yields the same counter
/// families the direct metering hooks produce.
pub fn ingest_trace(reg: &mut Registry, events: &[TraceEvent]) {
    for e in events {
        match *e {
            TraceEvent::PhaseSpan { phase, start, end, stall, .. } => {
                reg.inc("gpu_phase_cycles", phase.name(), start, end - start);
                reg.inc("gpu_stall_cycles", phase.name(), start, stall);
            }
            TraceEvent::CompositionSpan { start, end } => {
                reg.inc("gpu_composition_cycles", "", start, end - start);
            }
            TraceEvent::PreAlloc { cycle, bytes, .. } => {
                reg.inc("gpu_prealloc_bytes", "", cycle, bytes);
            }
            TraceEvent::Shed { cycle, .. } => reg.inc("gpu_sheds", "", cycle, 1),
            TraceEvent::Migrate { cycle, .. } => reg.inc("gpu_migrations", "", cycle, 1),
            TraceEvent::PaRetry { cycle, .. } => reg.inc("gpu_pa_retries", "", cycle, 1),
            TraceEvent::PaFallback { cycle, .. } => reg.inc("gpu_pa_fallbacks", "", cycle, 1),
            TraceEvent::LinkWindow { end, bytes, .. } => {
                reg.inc("mem_link_bytes", "", end, bytes);
                reg.observe("mem_link_window_bytes", "", end, bytes);
            }
            TraceEvent::DramWindow { end, bytes, .. } => {
                reg.inc("mem_dram_bytes", "", end, bytes);
            }
            TraceEvent::CacheWindow { end, l1_accesses, l1_hits, l2_accesses, l2_hits, .. } => {
                reg.inc("mem_l1_accesses", "", end, l1_accesses);
                reg.inc("mem_l1_hits", "", end, l1_hits);
                reg.inc("mem_l2_accesses", "", end, l2_accesses);
                reg.inc("mem_l2_hits", "", end, l2_hits);
            }
            TraceEvent::SessionAdmit { cycle, .. } => reg.inc("sessions_admitted", "", cycle, 1),
            TraceEvent::SessionReject { cycle, .. } => reg.inc("sessions_rejected", "", cycle, 1),
            TraceEvent::FrameSpan { start, end, .. } => {
                reg.observe("frame_service_cycles", "", start, end - start);
            }
            TraceEvent::DeadlineMiss { cycle, .. } => reg.inc("frames_missed", "", cycle, 1),
            TraceEvent::FrameShed { cycle, .. } => reg.inc("frames_shed", "", cycle, 1),
            TraceEvent::FrameDrop { cycle, .. } => reg.inc("frames_dropped", "", cycle, 1),
            TraceEvent::TemporalReuse { cycle, reused, rerendered, saved, .. } => {
                reg.inc("temporal_frames", "", cycle, 1);
                reg.inc("temporal_objects_reused", "", cycle, u64::from(reused));
                reg.inc("temporal_objects_rerendered", "", cycle, u64::from(rerendered));
                reg.inc("temporal_saved_cycles", "", cycle, saved);
            }
            TraceEvent::ServerUp { cycle, server } => {
                reg.inc("server_up_transitions", &format!("srv{server}"), cycle, 1);
            }
            TraceEvent::ServerDown { cycle, server, .. } => {
                reg.inc("server_down_transitions", &format!("srv{server}"), cycle, 1);
            }
            TraceEvent::SessionRoute { cycle, server, .. } => {
                reg.inc("sessions_routed", &format!("srv{server}"), cycle, 1);
            }
            TraceEvent::RouteRetry { cycle, .. } => reg.inc("route_retries", "", cycle, 1),
            TraceEvent::SessionMigrate { cycle, .. } => {
                reg.inc("session_migrations", "", cycle, 1);
            }
            TraceEvent::SessionFailover { cycle, .. } => {
                reg.inc("session_failovers", "", cycle, 1);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_window() {
        let mut r = Registry::new(100);
        r.inc("frames_total", "srv0", 10, 1);
        r.inc("frames_total", "srv0", 150, 2);
        r.inc("frames_total", "srv1", 250, 4);
        assert_eq!(r.counter("frames_total", "srv0"), 3);
        assert_eq!(r.counter_sum("frames_total"), 7);
        assert_eq!(r.counter_since("frames_total", "srv0", 1), 2);
        assert_eq!(r.horizon_window(), 2);
        assert_eq!(r.counter_labels("frames_total"), vec!["srv0", "srv1"]);
    }

    #[test]
    fn gauges_and_hists_are_retrievable() {
        let mut r = Registry::new(1_000);
        r.set_gauge("min_scale", "", 0.5);
        r.set_gauge("min_scale", "", 0.25);
        r.observe("frame_latency_cycles", "", 0, 7);
        assert_eq!(r.gauge("min_scale", ""), Some(0.25));
        assert_eq!(r.hist("frame_latency_cycles", "").unwrap().count(), 1);
        assert!(r.gauge("min_scale", "srv0").is_none());
    }

    #[test]
    fn zero_window_is_clamped() {
        let mut r = Registry::new(0);
        r.inc("x", "", 5, 1);
        assert_eq!(r.window_of(5), 5);
    }

    #[test]
    fn ingest_folds_serve_and_memory_events() {
        let mut r = Registry::new(1_000);
        let events = vec![
            TraceEvent::SessionAdmit { cycle: 0, session: 0, predicted: 1.0, active: 1 },
            TraceEvent::DeadlineMiss { cycle: 1_500, session: 0, frame: 1, deadline: 1_000 },
            TraceEvent::CacheWindow {
                gpm: 0,
                start: 0,
                end: 500,
                l1_accesses: 10,
                l1_hits: 8,
                l2_accesses: 2,
                l2_hits: 1,
            },
            TraceEvent::ServerDown { cycle: 2_000, server: 3, reason: "link-down" },
        ];
        ingest_trace(&mut r, &events);
        assert_eq!(r.counter("sessions_admitted", ""), 1);
        assert_eq!(r.counter("frames_missed", ""), 1);
        assert_eq!(r.counter("mem_l1_hits", ""), 8);
        assert_eq!(r.counter("server_down_transitions", "srv3"), 1);
    }
}
