//! Log2-bucketed histogram with nearest-rank quantile estimation.
//!
//! Bucket 0 holds the value 0; bucket `i >= 1` holds values in
//! `[2^(i-1), 2^i)`. Quantiles use the same nearest-rank convention as
//! `oovr_serve::qos::percentile` and return the *inclusive upper bound* of
//! the rank bucket, clamped to the largest observed sample. The estimate
//! `e` therefore brackets the exact nearest-rank value `t` as
//! `t <= e < 2*t` for `t >= 1` (exactly 0 for `t == 0`): never an
//! underestimate, and overestimates by strictly less than one octave. The
//! differential test in `tests/prop_metrics.rs` pins this bound against
//! the exact quantiles on identical sample sets.

/// Number of log2 buckets: one for zero plus one per bit of `u64`.
pub const BUCKETS: usize = 65;

/// A log2-bucketed histogram over `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist { counts: [0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl Hist {
    /// Bucket index a value falls into.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive upper bound of bucket `i` (0 for the zero bucket).
    pub fn bucket_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Record one sample.
    pub fn observe(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean of all recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Per-bucket counts, for the Prometheus exporter.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Nearest-rank `p`-th percentile estimate (`p` in 0..=100).
    ///
    /// Uses the rank convention of `oovr_serve::qos::percentile`
    /// (`rank = ceil(p/100 * n)` clamped to `1..=n`), locates the bucket
    /// holding that rank, and returns its inclusive upper bound clamped
    /// to the observed maximum. Returns 0 for an empty histogram.
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Fold another histogram into this one (used for aggregate SLO rows).
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_powers_of_two() {
        assert_eq!(Hist::bucket_of(0), 0);
        assert_eq!(Hist::bucket_of(1), 1);
        assert_eq!(Hist::bucket_of(2), 2);
        assert_eq!(Hist::bucket_of(3), 2);
        assert_eq!(Hist::bucket_of(4), 3);
        assert_eq!(Hist::bucket_of(u64::MAX), 64);
        assert_eq!(Hist::bucket_bound(1), 1);
        assert_eq!(Hist::bucket_bound(2), 3);
        assert_eq!(Hist::bucket_bound(64), u64::MAX);
    }

    #[test]
    fn quantile_brackets_exact_value_within_one_octave() {
        let samples = [3u64, 9, 17, 17, 100, 250, 251, 1000, 1001, 4096];
        let mut h = Hist::default();
        for &s in &samples {
            h.observe(s);
        }
        let mut sorted = samples;
        sorted.sort_unstable();
        for p in [50.0, 90.0, 99.0, 99.9] {
            let n = sorted.len();
            let rank = (((p / 100.0) * n as f64).ceil() as usize).clamp(1, n);
            let exact = sorted[rank - 1];
            let est = h.quantile(p);
            assert!(est >= exact, "p{p}: {est} < exact {exact}");
            assert!(est < exact * 2, "p{p}: {est} >= 2x exact {exact}");
        }
    }

    #[test]
    fn empty_and_single_sample_edges() {
        let mut h = Hist::default();
        assert_eq!(h.quantile(99.0), 0);
        assert_eq!(h.min(), 0);
        h.observe(0);
        assert_eq!(h.quantile(50.0), 0);
        h.observe(7);
        assert_eq!(h.max(), 7);
        assert_eq!(h.quantile(100.0), 7);
    }

    #[test]
    fn merge_matches_joint_observation() {
        let mut a = Hist::default();
        let mut b = Hist::default();
        let mut joint = Hist::default();
        for v in [1u64, 5, 9] {
            a.observe(v);
            joint.observe(v);
        }
        for v in [2u64, 300] {
            b.observe(v);
            joint.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, joint);
    }
}
