//! Exporters: Prometheus text exposition format and per-window CSV.
//!
//! Both are pure functions of a [`Registry`] and inherit its determinism:
//! `BTreeMap` iteration order means the same run always serializes to the
//! same bytes, which is what lets CI pin a golden exposition file for a
//! fixed workload.

use std::fmt::Write as _;

use crate::Registry;

fn series(name: &str, suffix: &str, label: &str, extra: Option<(&str, &str)>) -> String {
    let mut out = format!("oovr_{name}{suffix}");
    let mut pairs = Vec::new();
    if !label.is_empty() {
        pairs.push(format!("scope=\"{label}\""));
    }
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if !pairs.is_empty() {
        let _ = write!(out, "{{{}}}", pairs.join(","));
    }
    out
}

/// Render the registry in the Prometheus text exposition format.
///
/// Counters gain the conventional `_total` suffix, histograms expose
/// cumulative `_bucket{le=...}` series at the log2 bucket bounds (only
/// non-empty buckets are emitted, plus the mandatory `le="+Inf"`), and
/// non-empty labels render as `scope="..."`. Output is byte-deterministic
/// for a given registry.
pub fn prometheus(reg: &Registry) -> String {
    let mut out = String::new();
    let mut last_type: Option<(&str, &str)> = None;
    let mut type_line = |out: &mut String, name: &'static str, kind: &'static str| {
        if last_type != Some((name, kind)) {
            let _ = writeln!(out, "# TYPE oovr_{name} {kind}");
            last_type = Some((name, kind));
        }
    };
    for (name, label, total) in reg.counters() {
        type_line(&mut out, name, "counter");
        let _ = writeln!(out, "{} {total}", series(name, "_total", label, None));
    }
    for (name, label, value) in reg.gauges() {
        type_line(&mut out, name, "gauge");
        let _ = writeln!(out, "{} {value}", series(name, "", label, None));
    }
    for (name, label, h) in reg.hists() {
        type_line(&mut out, name, "histogram");
        let mut cum = 0u64;
        for (i, &c) in h.buckets().iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            let le = crate::Hist::bucket_bound(i).to_string();
            let _ = writeln!(out, "{} {cum}", series(name, "_bucket", label, Some(("le", &le))));
        }
        let _ =
            writeln!(out, "{} {}", series(name, "_bucket", label, Some(("le", "+Inf"))), h.count());
        let _ = writeln!(out, "{} {}", series(name, "_sum", label, None), h.sum());
        let _ = writeln!(out, "{} {}", series(name, "_count", label, None), h.count());
    }
    out
}

/// Render every counter's per-vsync-window time series as CSV
/// (`metric,label,window,value`), in deterministic order.
pub fn window_csv(reg: &Registry) -> String {
    let mut out = String::from("metric,label,window,value\n");
    for (name, label, window, value) in reg.counter_windows() {
        let _ = writeln!(out, "{name},{label},{window},{value}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> Registry {
        let mut r = Registry::new(100);
        r.inc("frames", "srv0", 10, 3);
        r.inc("frames", "srv0", 150, 1);
        r.inc("frames_missed", "", 150, 1);
        r.set_gauge("min_scale", "", 0.5);
        r.observe("frame_latency_cycles", "", 10, 3);
        r.observe("frame_latency_cycles", "", 10, 900);
        r
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = prometheus(&sample_registry());
        assert!(text.contains("# TYPE oovr_frames counter"));
        assert!(text.contains("oovr_frames_total{scope=\"srv0\"} 4"));
        assert!(text.contains("oovr_frames_missed_total 1"));
        assert!(text.contains("# TYPE oovr_min_scale gauge"));
        assert!(text.contains("oovr_min_scale 0.5"));
        assert!(text.contains("# TYPE oovr_frame_latency_cycles histogram"));
        assert!(text.contains("oovr_frame_latency_cycles_bucket{le=\"3\"} 1"));
        assert!(text.contains("oovr_frame_latency_cycles_bucket{le=\"1023\"} 2"));
        assert!(text.contains("oovr_frame_latency_cycles_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("oovr_frame_latency_cycles_sum 903"));
        assert!(text.contains("oovr_frame_latency_cycles_count 2"));
    }

    #[test]
    fn exports_are_deterministic() {
        let a = sample_registry();
        let b = sample_registry();
        assert_eq!(prometheus(&a), prometheus(&b));
        assert_eq!(window_csv(&a), window_csv(&b));
    }

    #[test]
    fn window_csv_lists_per_window_series() {
        let csv = window_csv(&sample_registry());
        assert!(csv.starts_with("metric,label,window,value\n"));
        assert!(csv.contains("frames,srv0,0,3"));
        assert!(csv.contains("frames,srv0,1,1"));
        assert!(csv.contains("frames_missed,,1,1"));
    }
}
