//! Unified typed errors for the `oovr` crate.
//!
//! The substrate crates each expose their own error enum
//! ([`SceneError`], [`MemError`], [`GpuError`]); this module folds them into
//! one [`OovrError`] so harness code (the `figures` binary, integration
//! tests) can propagate any failure with `?` instead of unwrapping.

use std::error::Error;
use std::fmt;

use oovr_gpu::GpuError;
use oovr_mem::MemError;
use oovr_scene::SceneError;

/// Any error the OO-VR reproduction can report on a fallible path.
#[derive(Debug, Clone, PartialEq)]
pub enum OovrError {
    /// Scene construction or workload-spec validation failed.
    Scene(SceneError),
    /// GPU configuration, fault-plan, or executor construction failed.
    Gpu(GpuError),
    /// Memory-system construction failed.
    Mem(MemError),
    /// The predictor was asked to fit coefficients with no calibration
    /// samples.
    EmptyCalibration,
}

impl fmt::Display for OovrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OovrError::Scene(e) => write!(f, "scene error: {e}"),
            OovrError::Gpu(e) => write!(f, "gpu error: {e}"),
            OovrError::Mem(e) => write!(f, "memory error: {e}"),
            OovrError::EmptyCalibration => {
                write!(f, "need at least one calibration sample")
            }
        }
    }
}

impl Error for OovrError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OovrError::Scene(e) => Some(e),
            OovrError::Gpu(e) => Some(e),
            OovrError::Mem(e) => Some(e),
            OovrError::EmptyCalibration => None,
        }
    }
}

impl From<SceneError> for OovrError {
    fn from(e: SceneError) -> Self {
        OovrError::Scene(e)
    }
}

impl From<GpuError> for OovrError {
    fn from(e: GpuError) -> Self {
        OovrError::Gpu(e)
    }
}

impl From<MemError> for OovrError {
    fn from(e: MemError) -> Self {
        OovrError::Mem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: OovrError = SceneError::DuplicateTexture("t".into()).into();
        assert!(matches!(e, OovrError::Scene(_)));
        assert!(format!("{e}").contains("duplicate texture"));

        let e: OovrError = MemError::TooManyGpms { requested: 99 }.into();
        assert!(format!("{e}").contains("99"));
        assert!(e.source().is_some());

        let e: OovrError = GpuError::InvalidConfig("bad".into()).into();
        assert!(format!("{e}").contains("bad"));

        assert!(format!("{}", OovrError::EmptyCalibration).contains("calibration sample"));
        assert!(OovrError::EmptyCalibration.source().is_none());
    }
}
