//! The OO-VR rendering schemes: `OO_APP` (software-only) and full `OO-VR`.

use std::collections::VecDeque;

use oovr_frameworks::{run_interleaved, RenderScheme};
use oovr_gpu::{ColorMode, Composition, Executor, FbOrg, FrameReport, GpuConfig, RenderUnit};
use oovr_mem::{GpmId, Placement};
use oovr_scene::Scene;
use oovr_trace::{Recorder, TraceConfig};

use crate::distribution::{run_distribution, DistributionConfig, DistributionStats};
use crate::middleware::{build_batches, MiddlewareConfig};

/// `OO_APP`: the object-oriented programming model and middleware alone
/// (§5.1), with no hardware support — batches are distributed round-robin
/// by software and the frame is composed at a master node, exactly like
/// conventional object-level SFR. This is the "without hardware
/// modifications" configuration of Fig. 15.
#[derive(Debug, Clone)]
pub struct OoApp {
    /// Middleware (TSL batching) configuration.
    pub middleware: MiddlewareConfig,
    /// Master node for software distribution and composition.
    pub root: GpmId,
}

impl Default for OoApp {
    fn default() -> Self {
        OoApp { middleware: MiddlewareConfig::default(), root: GpmId(0) }
    }
}

impl OoApp {
    /// Creates OO_APP with the paper's defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Shared frame body; `trace` attaches the flight recorder.
    fn frame(
        &self,
        scene: &Scene,
        cfg: &GpuConfig,
        trace: Option<TraceConfig>,
    ) -> (FrameReport, Option<Recorder>) {
        let mut ex = Executor::new(
            cfg.clone(),
            scene,
            Placement::FirstTouch,
            FbOrg::Single(self.root),
            ColorMode::Deferred,
        );
        if let Some(tc) = trace {
            ex.enable_trace(tc);
        }
        let batches = build_batches(scene, self.middleware);
        let n = cfg.n_gpms;
        let mut queues = vec![VecDeque::new(); n];
        for (i, b) in batches.iter().enumerate() {
            for &obj in &b.objects {
                queues[i % n].push_back(RenderUnit::smp(obj));
            }
        }
        run_interleaved(&mut ex, queues);
        ex.finish_traced(self.name(), Composition::Master(self.root))
    }
}

impl RenderScheme for OoApp {
    fn name(&self) -> &'static str {
        "OO_APP"
    }

    fn render_frame(&self, scene: &Scene, cfg: &GpuConfig) -> FrameReport {
        self.frame(scene, cfg, None).0
    }

    fn render_frame_traced(
        &self,
        scene: &Scene,
        cfg: &GpuConfig,
        trace: TraceConfig,
    ) -> (FrameReport, Option<Recorder>) {
        self.frame(scene, cfg, Some(trace))
    }
}

/// The full OO-VR framework (§5): OO programming model + TSL middleware +
/// object-aware runtime distribution engine (Eq. 3 predictor, PA
/// pre-allocation, fine-grained stealing) + distributed hardware
/// composition over a column-partitioned framebuffer.
#[derive(Debug, Clone)]
pub struct OoVr {
    /// Middleware (TSL batching) configuration.
    pub middleware: MiddlewareConfig,
    /// Distribution engine configuration (ablation toggles live here).
    pub distribution: DistributionConfig,
    /// Use the distributed hardware composition unit; `false` falls back to
    /// master-node composition (ablation).
    pub dhc: bool,
}

impl Default for OoVr {
    fn default() -> Self {
        OoVr {
            middleware: MiddlewareConfig::default(),
            distribution: DistributionConfig::default(),
            dhc: true,
        }
    }
}

impl OoVr {
    /// Creates OO-VR with the paper's defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates OO-VR with the runtime fault countermeasures enabled
    /// (drift re-calibration, rate-factor steering, early stealing, PA
    /// retry/fallback, deadline shedding) at their default tuning.
    pub fn resilient() -> Self {
        OoVr {
            distribution: DistributionConfig {
                resilience: crate::distribution::ResilienceConfig::on(),
                ..DistributionConfig::default()
            },
            ..Self::default()
        }
    }

    /// Like [`resilient`](Self::resilient) but with an explicit frame
    /// budget for the deadline monitor.
    pub fn resilient_with_deadline(deadline_cycles: u64) -> Self {
        OoVr {
            distribution: DistributionConfig {
                resilience: crate::distribution::ResilienceConfig {
                    deadline_cycles,
                    ..crate::distribution::ResilienceConfig::on()
                },
                ..DistributionConfig::default()
            },
            ..Self::default()
        }
    }
}

impl OoVr {
    /// Renders `frames` consecutive frames of `scene` in one *warm*
    /// executor and returns each frame's isolated report.
    ///
    /// The first frame pays the PA units' one-time data distribution; later
    /// frames render from steady-state page placement with warm caches —
    /// this is the empirical backing for the steady-state traffic metric
    /// used in the Fig. 16 reproduction.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is zero.
    pub fn render_frames(&self, scene: &Scene, cfg: &GpuConfig, frames: u32) -> Vec<FrameReport> {
        assert!(frames > 0, "need at least one frame");
        let (fb_org, comp) = if self.dhc {
            (FbOrg::Columns, Composition::Distributed)
        } else {
            (FbOrg::Single(GpmId(0)), Composition::Master(GpmId(0)))
        };
        let mut ex =
            Executor::new(cfg.clone(), scene, Placement::FirstTouch, fb_org, ColorMode::Deferred);
        let batches = build_batches(scene, self.middleware);
        let mut reports = Vec::with_capacity(frames as usize);
        for _ in 0..frames {
            let mark = ex.begin_frame();
            run_distribution(&mut ex, &batches, &self.distribution);
            reports.push(ex.finish_frame(&mark, self.name(), comp));
        }
        reports
    }

    /// Like [`render_frames`](Self::render_frames), but also profiles the
    /// final (steady-state) frame into a per-object
    /// [`TemporalProfile`](crate::temporal::TemporalProfile): each object's
    /// busy cycles per GPM, its shaded pixels (the ATW warp size), and its
    /// reprojection probe. The reports are bit-identical to what
    /// `render_frames` returns — attribution only reads counters the
    /// executor already maintains.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is zero.
    pub fn render_frames_profiled(
        &self,
        scene: &Scene,
        cfg: &GpuConfig,
        frames: u32,
    ) -> (Vec<FrameReport>, crate::temporal::TemporalProfile) {
        assert!(frames > 0, "need at least one frame");
        let (fb_org, comp) = if self.dhc {
            (FbOrg::Columns, Composition::Distributed)
        } else {
            (FbOrg::Single(GpmId(0)), Composition::Master(GpmId(0)))
        };
        let mut ex =
            Executor::new(cfg.clone(), scene, Placement::FirstTouch, fb_org, ColorMode::Deferred);
        let batches = build_batches(scene, self.middleware);
        let mut reports = Vec::with_capacity(frames as usize);
        let mut busy0 = Vec::new();
        let mut px0 = Vec::new();
        for i in 0..frames {
            if i + 1 == frames {
                busy0 = ex.object_busy().to_vec();
                px0 = ex.object_pixels().to_vec();
            }
            let mark = ex.begin_frame();
            run_distribution(&mut ex, &batches, &self.distribution);
            reports.push(ex.finish_frame(&mark, self.name(), comp));
        }
        let busy: Vec<u64> = ex.object_busy().iter().zip(&busy0).map(|(a, b)| a - b).collect();
        let pixels: Vec<u64> = ex.object_pixels().iter().zip(&px0).map(|(a, b)| a - b).collect();
        let steady = reports.last().expect("frames > 0").frame_cycles;
        let profile =
            crate::temporal::TemporalProfile::new(scene, cfg, cfg.n_gpms, busy, &pixels, steady);
        (reports, profile)
    }

    /// Shared frame body; `trace` attaches the flight recorder. Also
    /// returns the distribution-engine statistics for the frame.
    fn frame(
        &self,
        scene: &Scene,
        cfg: &GpuConfig,
        trace: Option<TraceConfig>,
    ) -> (FrameReport, Option<Recorder>, DistributionStats) {
        let (fb_org, comp) = if self.dhc {
            (FbOrg::Columns, Composition::Distributed)
        } else {
            (FbOrg::Single(GpmId(0)), Composition::Master(GpmId(0)))
        };
        let mut ex =
            Executor::new(cfg.clone(), scene, Placement::FirstTouch, fb_org, ColorMode::Deferred);
        if let Some(tc) = trace {
            ex.enable_trace(tc);
        }
        let batches = build_batches(scene, self.middleware);
        let stats = run_distribution(&mut ex, &batches, &self.distribution);
        let (report, rec) = ex.finish_traced(self.name(), comp);
        (report, rec, stats)
    }

    /// Renders one frame and returns the distribution-engine statistics
    /// alongside the report (prediction-error summary, steal/migration
    /// counters, …).
    pub fn render_frame_with_stats(
        &self,
        scene: &Scene,
        cfg: &GpuConfig,
    ) -> (FrameReport, DistributionStats) {
        let (report, _, stats) = self.frame(scene, cfg, None);
        (report, stats)
    }
}

impl RenderScheme for OoVr {
    fn name(&self) -> &'static str {
        "OOVR"
    }

    fn render_frame(&self, scene: &Scene, cfg: &GpuConfig) -> FrameReport {
        self.frame(scene, cfg, None).0
    }

    fn render_frame_traced(
        &self,
        scene: &Scene,
        cfg: &GpuConfig,
        trace: TraceConfig,
    ) -> (FrameReport, Option<Recorder>) {
        let (report, rec, _) = self.frame(scene, cfg, Some(trace));
        (report, rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oovr_frameworks::{Baseline, ObjectSfr};
    use oovr_scene::benchmarks;

    fn scene() -> Scene {
        benchmarks::hl2_640().scaled(0.15).build()
    }

    #[test]
    fn oovr_renders_the_same_frame_as_baseline() {
        let s = scene();
        let cfg = GpuConfig::default();
        let base = Baseline::new().render_frame(&s, &cfg);
        let oovr = OoVr::new().render_frame(&s, &cfg);
        assert_eq!(oovr.counts.fragments, base.counts.fragments);
        // Depth-test survival depends on render order, so color output may
        // differ between schemes, but both resolve the same final image and
        // must emit at least every finally-visible pixel.
        let ratio = oovr.counts.pixels_out as f64 / base.counts.pixels_out as f64;
        assert!(ratio > 0.5 && ratio < 2.0, "pixels_out ratio {ratio}");
    }

    #[test]
    fn oovr_outperforms_baseline_and_object_sfr() {
        let s = scene();
        let cfg = GpuConfig::default();
        let base = Baseline::new().render_frame(&s, &cfg);
        let object = ObjectSfr::new().render_frame(&s, &cfg);
        let ooapp = OoApp::new().render_frame(&s, &cfg);
        let oovr = OoVr::new().render_frame(&s, &cfg);
        assert!(
            oovr.frame_cycles < base.frame_cycles,
            "oovr {} vs baseline {}",
            oovr.frame_cycles,
            base.frame_cycles
        );
        assert!(
            oovr.frame_cycles < object.frame_cycles,
            "oovr {} vs object {}",
            oovr.frame_cycles,
            object.frame_cycles
        );
        assert!(
            oovr.frame_cycles <= ooapp.frame_cycles,
            "oovr {} vs ooapp {}",
            oovr.frame_cycles,
            ooapp.frame_cycles
        );
    }

    #[test]
    fn oovr_cuts_inter_gpm_texture_traffic() {
        let s = scene();
        let cfg = GpuConfig::default();
        let base = Baseline::new().render_frame(&s, &cfg);
        let oovr = OoVr::new().render_frame(&s, &cfg);
        let tex = |r: &FrameReport| r.traffic.remote_of(oovr_mem::TrafficClass::Texture);
        assert!(
            (tex(&oovr) as f64) < 0.7 * tex(&base) as f64,
            "oovr {} vs baseline {}",
            tex(&oovr),
            tex(&base)
        );
    }

    #[test]
    fn steady_state_frames_pay_no_prealloc() {
        let s = scene();
        let cfg = GpuConfig::default();
        let frames = OoVr::new().render_frames(&s, &cfg, 3);
        assert_eq!(frames.len(), 3);
        let pa = |r: &FrameReport| r.traffic.remote_of(oovr_mem::TrafficClass::PreAlloc);
        assert!(pa(&frames[0]) > 0, "cold frame distributes batch data");
        assert_eq!(pa(&frames[2]), 0, "steady frame finds its pages in place");
        // Steady frames are no slower than the cold one and shade the same
        // work.
        assert!(frames[2].frame_cycles <= frames[0].frame_cycles);
        assert_eq!(frames[2].counts.fragments, frames[0].counts.fragments);
        // Warm caches: the cumulative hit rate never degrades.
        assert!(frames[2].l1_hit_rate >= frames[0].l1_hit_rate - 0.01);
    }

    #[test]
    fn dhc_composes_faster_than_master() {
        let s = scene();
        let cfg = GpuConfig::default();
        let with_dhc = OoVr::new().render_frame(&s, &cfg);
        let without = OoVr { dhc: false, ..OoVr::new() }.render_frame(&s, &cfg);
        assert!(
            with_dhc.composition_cycles <= without.composition_cycles,
            "dhc {} vs master {}",
            with_dhc.composition_cycles,
            without.composition_cycles
        );
    }
}
