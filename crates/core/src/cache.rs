//! Content-addressed render cache shared by every experiment runner.
//!
//! The `figures` harness regenerates 14+ tables, and many of them render the
//! identical (scene, scheme, config) combination: fig15's per-workload
//! Baseline render is also fig16's traffic reference, fig17's 64 GB/s cell,
//! fig18's 4-GPM cell, and the resilience grid's fault-free reference. The
//! paper's own insight — exploit sharing instead of recomputing (§4.2 TSL
//! batching) — applies to the harness too, so this module memoizes at two
//! levels:
//!
//! * **Scenes** are built once per [`BenchmarkSpec`] and shared as
//!   `Arc<Scene>` across all tables. The cache key is a SHA-256 digest of
//!   every spec field; `BenchmarkSpec::build` is deterministic, so the spec
//!   digest is a content fingerprint of the scene itself.
//! * **Frame renders** are memoized by a digest of (scene fingerprint,
//!   scheme tag, full [`GpuConfig`] — every model parameter and the fault
//!   plan, floats hashed via `to_bits`). Renders are deterministic, so a
//!   cache hit returns a bit-identical [`FrameReport`].
//!
//! Invalidation is structural: any change to a spec, scheme or config field
//! lands in the digest and misses. Nothing is ever evicted within a process
//! (a full `figures` run retains a few hundred small reports). Experiments
//! that construct bespoke executors or render warm multi-frame sequences
//! (`smp_validation`, the ablations, `steady_state`) bypass the cache.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use oovr_frameworks::RenderScheme as _;
use oovr_gpu::{FaultPlan, FrameReport, GpuConfig};
use oovr_scene::{BenchmarkSpec, Scene};

use crate::experiments::SchemeKind;
use crate::schemes::OoVr;

/// A scene plus its content fingerprint, shared across experiments.
#[derive(Debug, Clone)]
pub struct SceneHandle {
    scene: Arc<Scene>,
    fingerprint: [u8; 32],
}

impl SceneHandle {
    /// The content fingerprint (SHA-256 of the generating spec).
    pub fn fingerprint(&self) -> &[u8; 32] {
        &self.fingerprint
    }
}

impl std::ops::Deref for SceneHandle {
    type Target = Scene;

    fn deref(&self) -> &Scene {
        &self.scene
    }
}

/// Hit/miss counters for the process-wide cache (observability + tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenderCacheStats {
    /// Scenes built (scene-cache misses).
    pub scene_builds: u64,
    /// Frame renders answered from the memo table.
    pub frame_hits: u64,
    /// Frame renders actually executed.
    pub frame_misses: u64,
}

struct Store {
    scenes: Mutex<HashMap<[u8; 32], Arc<Scene>>>,
    frames: Mutex<HashMap<[u8; 32], FrameReport>>,
    scene_builds: AtomicU64,
    frame_hits: AtomicU64,
    frame_misses: AtomicU64,
}

fn store() -> &'static Store {
    static STORE: OnceLock<Store> = OnceLock::new();
    STORE.get_or_init(|| Store {
        scenes: Mutex::new(HashMap::new()),
        frames: Mutex::new(HashMap::new()),
        scene_builds: AtomicU64::new(0),
        frame_hits: AtomicU64::new(0),
        frame_misses: AtomicU64::new(0),
    })
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A poisoned lock only means a sibling experiment thread panicked while
    // inserting; the map itself is still a valid memo table.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Current cache counters.
pub fn stats() -> RenderCacheStats {
    let s = store();
    RenderCacheStats {
        scene_builds: s.scene_builds.load(Ordering::Relaxed),
        frame_hits: s.frame_hits.load(Ordering::Relaxed),
        frame_misses: s.frame_misses.load(Ordering::Relaxed),
    }
}

/// The scene for `spec`, built on first use and shared thereafter.
pub fn scene_for(spec: &BenchmarkSpec) -> SceneHandle {
    let fp = spec_digest(spec);
    if let Some(scene) = lock(&store().scenes).get(&fp) {
        return SceneHandle { scene: Arc::clone(scene), fingerprint: fp };
    }
    // Build outside the lock; a concurrent duplicate build is benign (both
    // produce identical scenes) and the first insert wins.
    let built = Arc::new(spec.build());
    store().scene_builds.fetch_add(1, Ordering::Relaxed);
    let scene = Arc::clone(lock(&store().scenes).entry(fp).or_insert(built));
    SceneHandle { scene, fingerprint: fp }
}

/// Renders `scene` under `kind`/`cfg`, memoized. Cache hits return a clone
/// of the first render's report; determinism makes that bit-identical to
/// re-rendering.
pub fn render(kind: SchemeKind, scene: &SceneHandle, cfg: &GpuConfig) -> FrameReport {
    let key = frame_key(scene.fingerprint(), scheme_tag(kind), None, cfg);
    memoized(key, || kind.render(scene, cfg))
}

/// Renders `scene` under OO-VR with runtime countermeasures and the given
/// frame deadline, memoized (the deadline participates in the key).
pub fn render_resilient(deadline_cycles: u64, scene: &SceneHandle, cfg: &GpuConfig) -> FrameReport {
    let key = frame_key(scene.fingerprint(), RESILIENT_TAG, Some(deadline_cycles), cfg);
    memoized(key, || OoVr::resilient_with_deadline(deadline_cycles).render_frame(scene, cfg))
}

fn memoized(key: [u8; 32], f: impl FnOnce() -> FrameReport) -> FrameReport {
    if let Some(r) = lock(&store().frames).get(&key) {
        store().frame_hits.fetch_add(1, Ordering::Relaxed);
        return r.clone();
    }
    let r = f();
    store().frame_misses.fetch_add(1, Ordering::Relaxed);
    lock(&store().frames).entry(key).or_insert_with(|| r.clone());
    r
}

// ---------------------------------------------------------------------------
// Key construction. Every field of the spec/config is serialized into the
// digest (floats via to_bits), with domain-separation prefixes so a spec
// digest can never collide with a frame key.
// ---------------------------------------------------------------------------

/// Tag for the resilient OO-VR variant, disjoint from [`scheme_tag`] values.
const RESILIENT_TAG: u8 = 0x80;

fn scheme_tag(kind: SchemeKind) -> u8 {
    match kind {
        SchemeKind::Baseline => 0,
        SchemeKind::FrameLevel => 1,
        SchemeKind::TileV => 2,
        SchemeKind::TileH => 3,
        SchemeKind::ObjectLevel => 4,
        SchemeKind::OoApp => 5,
        SchemeKind::OoVr => 6,
        SchemeKind::SortMiddle => 7,
    }
}

struct Digest(oovr_hash::Sha256);

impl Digest {
    fn new(domain: &[u8]) -> Self {
        let mut h = oovr_hash::Sha256::new();
        h.update(domain);
        Digest(h)
    }

    fn u8(&mut self, v: u8) {
        self.0.update(&[v]);
    }

    fn u32(&mut self, v: u32) {
        self.0.update(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.0.update(&v.to_le_bytes());
    }

    fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.0.update(s.as_bytes());
    }

    fn finish(self) -> [u8; 32] {
        self.0.finalize()
    }
}

/// Content fingerprint of a workload spec (and, by determinism of
/// `BenchmarkSpec::build`, of the scene it generates).
pub fn spec_digest(spec: &BenchmarkSpec) -> [u8; 32] {
    let mut d = Digest::new(b"oovr:spec:v1");
    d.str(&spec.name);
    d.u32(spec.resolution.width);
    d.u32(spec.resolution.height);
    d.u32(spec.draws);
    d.u64(spec.seed);
    let p = &spec.personality;
    d.u32(p.texture_pool);
    d.f64(p.zipf_s);
    d.f64(p.overdraw);
    d.u64(p.tri_total);
    d.f64(p.secondary_tex_prob);
    d.f64(p.size_sigma);
    d.f64(p.dep_prob);
    d.f32(p.uv_scale.0);
    d.f32(p.uv_scale.1);
    d.f32(p.disparity);
    d.u32(p.tex_log2.0);
    d.u32(p.tex_log2.1);
    d.finish()
}

/// Digest of every `GpuConfig` field, including the fault plan.
pub fn config_digest(cfg: &GpuConfig) -> [u8; 32] {
    let mut d = Digest::new(b"oovr:cfg:v1");
    put_config(&mut d, cfg);
    d.finish()
}

fn put_config(d: &mut Digest, cfg: &GpuConfig) {
    d.u64(cfg.n_gpms as u64);
    d.u32(cfg.sms_per_gpm);
    d.u32(cfg.cores_per_sm);
    d.u32(cfg.rops_per_gpm);
    d.f64(cfg.link_gbps);
    d.u32(cfg.ports_per_gpm);
    d.f64(cfg.dram_gbps);
    d.u64(cfg.mem.l1_bytes);
    d.u64(cfg.mem.l1_ways as u64);
    d.u64(cfg.mem.l2_bytes);
    d.u64(cfg.mem.l2_ways as u64);
    let m = &cfg.model;
    d.f64(m.vertex_rate);
    d.f64(m.triangle_rate);
    d.f64(m.smp_rate);
    d.f64(m.raster_quad_rate);
    d.f64(m.cycles_per_fragment);
    d.u64(m.bytes_per_vertex);
    d.u32(m.texel_samples_per_quad);
    d.f32(m.aniso_spread);
    d.f64(m.txu_samples_per_cycle);
    d.u64(m.cmd_bytes_per_draw);
    d.u64(m.quantum_quads);
    d.u64(m.quantum_vertices);
    match &cfg.fault {
        None => d.u8(0),
        Some(plan) => {
            d.u8(1);
            put_fault(d, plan);
        }
    }
}

fn put_fault(d: &mut Digest, plan: &FaultPlan) {
    d.str(plan.scenario.name());
    d.f64(plan.severity);
    d.u64(plan.seed);
    d.u64(plan.horizon);
}

fn frame_key(
    scene_fp: &[u8; 32],
    scheme: u8,
    deadline_cycles: Option<u64>,
    cfg: &GpuConfig,
) -> [u8; 32] {
    let mut d = Digest::new(b"oovr:frame:v1");
    d.0.update(scene_fp);
    d.u8(scheme);
    match deadline_cycles {
        None => d.u8(0),
        Some(c) => {
            d.u8(1);
            d.u64(c);
        }
    }
    put_config(&mut d, cfg);
    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oovr_scene::benchmarks;

    fn spec() -> BenchmarkSpec {
        benchmarks::hl2_640().scaled(0.05)
    }

    #[test]
    fn spec_digest_is_field_sensitive() {
        let a = spec();
        let mut b = spec();
        assert_eq!(spec_digest(&a), spec_digest(&a));
        b.seed ^= 1;
        assert_ne!(spec_digest(&a), spec_digest(&b));
        let mut c = spec();
        c.personality.zipf_s += 0.001;
        assert_ne!(spec_digest(&a), spec_digest(&c));
    }

    #[test]
    fn config_digest_covers_fault_plan_and_floats() {
        use oovr_gpu::FaultScenario;
        let base = GpuConfig::default();
        assert_eq!(config_digest(&base), config_digest(&GpuConfig::default()));
        let bw = GpuConfig::default().with_link_gbps(64.0 + 1e-9);
        assert_ne!(config_digest(&base), config_digest(&bw));
        let f1 = base.clone().with_fault(FaultPlan::new(FaultScenario::LinkDegrade, 0.5, 1));
        let f2 = base.clone().with_fault(FaultPlan::new(FaultScenario::LinkDegrade, 0.5, 2));
        assert_ne!(config_digest(&base), config_digest(&f1));
        assert_ne!(config_digest(&f1), config_digest(&f2));
    }

    #[test]
    fn identical_config_expressions_share_a_key() {
        // figures relies on this: fig4's 64 GB/s cell and fig15's default
        // cell are the same render and must hit the same memo entry.
        assert_eq!(
            config_digest(&GpuConfig::default()),
            config_digest(&GpuConfig::default().with_link_gbps(64.0))
        );
    }

    #[test]
    fn scene_cache_shares_and_render_cache_hits() {
        let s1 = scene_for(&spec());
        let s2 = scene_for(&spec());
        assert!(Arc::ptr_eq(&s1.scene, &s2.scene));

        let cfg = GpuConfig::default();
        let before = stats();
        let a = render(SchemeKind::Baseline, &s1, &cfg);
        let b = render(SchemeKind::Baseline, &s2, &cfg);
        let after = stats();
        assert_eq!(a.frame_cycles, b.frame_cycles);
        assert_eq!(a.inter_gpm_bytes(), b.inter_gpm_bytes());
        assert_eq!(after.frame_misses - before.frame_misses, 1);
        assert!(after.frame_hits > before.frame_hits);
    }

    #[test]
    fn resilient_renders_key_on_deadline() {
        let s = scene_for(&spec());
        let cfg = GpuConfig::default();
        let before = stats();
        let _ = render_resilient(1_000_000, &s, &cfg);
        let _ = render_resilient(2_000_000, &s, &cfg);
        let after = stats();
        assert_eq!(after.frame_misses - before.frame_misses, 2);
    }
}
