//! Hardware overhead accounting for the distribution engine (§5.4).
//!
//! The paper sizes the added hardware as: a 64-bit counter pair per GPM for
//! predicted-total/elapsed rendering time, a 16-bit batch id per batch-queue
//! entry, and twelve 32-bit registers tracking `#triangle`, `#tv` and
//! `#pixel` for the current batches — 960 bits total on the 4-GPM baseline,
//! evaluated with McPAT at 0.59 mm² / 0.3 W on 24 nm (0.18% area and 0.16%
//! TDP of a GTX 1080). We reproduce the arithmetic; the McPAT-derived area
//! and power are retained as published constants with their cited ratios.

/// Storage overhead of the distribution engine, in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOverhead {
    /// Bits in the per-GPM time counters.
    pub counter_bits: u64,
    /// Bits in the batch queue ids.
    pub batch_queue_bits: u64,
    /// Bits in the rate-tracking registers.
    pub register_bits: u64,
}

/// Counter width (bits) used by §5.4.
pub const COUNTER_BITS: u64 = 64;

/// Batch-id width (bits) used by §5.4.
pub const BATCH_ID_BITS: u64 = 16;

/// Rate-register width (bits) used by §5.4.
pub const REGISTER_BITS: u64 = 32;

/// Rate registers in §5.4 ("twelve 32-bit registers").
pub const N_REGISTERS: u64 = 12;

/// Batch queue entries (§5.2 limits the queue to 4).
pub const BATCH_QUEUE_ENTRIES: u64 = 4;

/// Published McPAT area estimate (mm², 24 nm).
pub const AREA_MM2: f64 = 0.59;

/// Published McPAT power estimate (W).
pub const POWER_W: f64 = 0.3;

/// GTX 1080 die area (mm²) implied by the paper's 0.18% ratio.
pub const GTX1080_AREA_MM2: f64 = 314.0;

/// GTX 1080 TDP (W) implied by the paper's 0.16% ratio.
pub const GTX1080_TDP_W: f64 = 180.0;

impl EngineOverhead {
    /// Computes the storage for an `n_gpms` system: two 64-bit counters per
    /// GPM, the 4-entry batch queue, and the twelve rate registers.
    pub fn for_gpms(n_gpms: u64) -> Self {
        EngineOverhead {
            counter_bits: 2 * COUNTER_BITS * n_gpms,
            batch_queue_bits: BATCH_ID_BITS * BATCH_QUEUE_ENTRIES,
            register_bits: REGISTER_BITS * N_REGISTERS,
        }
    }

    /// Total storage bits.
    pub fn total_bits(&self) -> u64 {
        self.counter_bits + self.batch_queue_bits + self.register_bits
    }

    /// Area as a fraction of a GTX 1080 die.
    pub fn area_fraction(&self) -> f64 {
        AREA_MM2 / GTX1080_AREA_MM2
    }

    /// Power as a fraction of a GTX 1080 TDP.
    pub fn power_fraction(&self) -> f64 {
        POWER_W / GTX1080_TDP_W
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_total_is_960_bits() {
        let o = EngineOverhead::for_gpms(4);
        assert_eq!(o.counter_bits, 512);
        assert_eq!(o.batch_queue_bits, 64);
        assert_eq!(o.register_bits, 384);
        assert_eq!(o.total_bits(), 960);
    }

    #[test]
    fn ratios_match_the_published_percentages() {
        let o = EngineOverhead::for_gpms(4);
        assert!((o.area_fraction() - 0.0018).abs() < 0.0005);
        assert!((o.power_fraction() - 0.0016).abs() < 0.0005);
    }

    #[test]
    fn overhead_scales_with_gpm_count() {
        assert!(
            EngineOverhead::for_gpms(8).total_bits() > EngineOverhead::for_gpms(4).total_bits()
        );
    }
}
