//! # oovr
//!
//! A full reproduction of **OO-VR: NUMA Friendly Object-Oriented VR
//! Rendering Framework For Future NUMA-Based Multi-GPU Systems** (Xie, Fu,
//! Chen, Song — ISCA 2019) as a Rust library, on top of a discrete-event
//! multi-GPM graphics simulator (`oovr-gpu`), a NUMA memory substrate
//! (`oovr-mem`), synthetic Table 3 workloads (`oovr-scene`), and the
//! parallel-rendering baselines of the paper's §4 (`oovr-frameworks`).
//!
//! This crate implements the paper's contribution:
//!
//! * [`programming_model`] — the object-oriented VR programming model
//!   (`OO_Application`, §5.1): one merged task per object covering both eye
//!   views via SMP.
//! * [`middleware`] — `OO_Middleware` (§5.1): texture-sharing-level (TSL)
//!   batching, Eq. 1, with the 4096-triangle cap and dependency merging.
//! * [`predictor`] + [`distribution`] — the object-aware runtime batch
//!   distribution engine (§5.2): the Eq. 3 rendering-time predictor
//!   calibrated on the first 8 batches, per-GPM total/elapsed counters,
//!   PA-unit pre-allocation, and fine-grained stealing for stragglers.
//! * Distributed hardware composition (§5.3) lives in the executor's
//!   [`oovr_gpu::Composition::Distributed`] mode; [`schemes::OoVr`] wires
//!   it to a column-partitioned framebuffer.
//! * [`overhead`] — the §5.4 hardware-cost accounting (960 bits).
//! * [`experiments`] — runners regenerating every evaluation table/figure.
//! * [`cache`] — the content-addressed scene/render cache the runners share
//!   (scenes built once per spec, frame renders memoized by fingerprint).
//! * [`temporal`] — pose-correlated temporal reuse: per-object memoization
//!   with ATW reprojection, profiled from a steady OO-VR frame.
//!
//! # Quickstart
//!
//! ```
//! use oovr::schemes::OoVr;
//! use oovr_frameworks::{Baseline, RenderScheme};
//! use oovr_gpu::GpuConfig;
//! use oovr_scene::benchmarks;
//!
//! let scene = benchmarks::hl2_640().scaled(0.1).build();
//! let cfg = GpuConfig::default(); // Table 2: 4 GPMs, 64 GB/s NVLink
//! let base = Baseline::new().render_frame(&scene, &cfg);
//! let oovr = OoVr::new().render_frame(&scene, &cfg);
//! assert!(oovr.frame_cycles < base.frame_cycles);
//! // Steady-state link traffic (a frame sequence pays the PA units' data
//! // distribution only on the first frame).
//! assert!(oovr.steady_inter_gpm_bytes() < base.steady_inter_gpm_bytes());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod distribution;
pub mod error;
pub mod experiments;
pub mod middleware;
pub mod overhead;
pub mod predictor;
pub mod programming_model;
pub mod schemes;
pub mod temporal;

pub use distribution::{run_distribution, DistributionConfig, DistributionStats, ResilienceConfig};
pub use error::OovrError;
pub use middleware::{build_batches, tsl, Batch, MiddlewareConfig};
pub use overhead::EngineOverhead;
pub use predictor::{BatchSample, Coefficients, EngineCounters, CALIBRATION_BATCHES};
pub use programming_model::{OoApplication, VrObjectTask};
pub use schemes::{OoApp, OoVr};
pub use temporal::{TemporalConfig, TemporalDecision, TemporalProfile, DEFAULT_REUSE_THRESHOLD};

// Re-export the substrate crates so downstream users need only `oovr`.
pub use oovr_frameworks as frameworks;
pub use oovr_gpu as gpu;
pub use oovr_mem as mem;
pub use oovr_scene as scene;
