//! The rendering-time predictor of the runtime distribution engine (§5.2).
//!
//! The paper replaces Wimmer & Wonka's full model (Eq. 2) with a simple
//! linear memorization-based estimate (Eq. 3):
//!
//! ```text
//! t(X) = c0 · #triangle_X = c1 · #tv_X + c2 · #pixel_X
//! ```
//!
//! The engine calibrates `c0, c1, c2` from the first 8 batches (which are
//! distributed round-robin), then tracks two counters per GPM — predicted
//! *total* time of everything assigned, and *elapsed* time accumulated from
//! the runtime `#tv`/`#pixel` counters — and predicts the earliest-available
//! GPM by comparing the two.

/// Number of calibration batches distributed round-robin before the
/// predictor takes over (the paper's "first 8 batches").
pub const CALIBRATION_BATCHES: usize = 8;

/// One completed batch observation used for calibration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchSample {
    /// Triangles in the batch (known before rendering, from the OO app).
    pub triangles: u64,
    /// Transformed vertices counted during rendering.
    pub tv: u64,
    /// Pixels rendered.
    pub pixels: u64,
    /// Cycles the batch took.
    pub cycles: u64,
}

/// Calibrated Eq. 3 coefficients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Coefficients {
    /// Cycles per triangle (total-time estimate).
    pub c0: f64,
    /// Cycles per transformed vertex (elapsed-time term).
    pub c1: f64,
    /// Cycles per rendered pixel (elapsed-time term).
    pub c2: f64,
}

impl Coefficients {
    /// Fits coefficients from calibration samples.
    ///
    /// `c0` is the aggregate cycles-per-triangle rate. `c1`/`c2` solve the
    /// 2×2 least-squares system `cycles ≈ c1·tv + c2·pixels`; a singular
    /// system falls back to splitting the observed rate evenly between the
    /// two terms.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn fit(samples: &[BatchSample]) -> Self {
        match Self::try_fit(samples) {
            Ok(c) => c,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`fit`](Self::fit): reports an empty sample set
    /// as [`OovrError::EmptyCalibration`](crate::error::OovrError) instead
    /// of panicking.
    pub fn try_fit(samples: &[BatchSample]) -> Result<Self, crate::error::OovrError> {
        if samples.is_empty() {
            return Err(crate::error::OovrError::EmptyCalibration);
        }
        let tot_cycles: f64 = samples.iter().map(|s| s.cycles as f64).sum();
        let tot_tris: f64 = samples.iter().map(|s| s.triangles as f64).sum();
        let c0 = tot_cycles / tot_tris.max(1.0);

        let (mut a11, mut a12, mut a22, mut b1, mut b2) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for s in samples {
            let tv = s.tv as f64;
            let px = s.pixels as f64;
            let cy = s.cycles as f64;
            a11 += tv * tv;
            a12 += tv * px;
            a22 += px * px;
            b1 += tv * cy;
            b2 += px * cy;
        }
        let det = a11 * a22 - a12 * a12;
        let (c1, c2) = if det.abs() > 1e-6 * a11.max(a22).max(1.0) {
            (((b1 * a22 - b2 * a12) / det), ((b2 * a11 - b1 * a12) / det))
        } else {
            let tot_tv: f64 = samples.iter().map(|s| s.tv as f64).sum();
            let tot_px: f64 = samples.iter().map(|s| s.pixels as f64).sum();
            (0.5 * tot_cycles / tot_tv.max(1.0), 0.5 * tot_cycles / tot_px.max(1.0))
        };
        // Negative coefficients can fall out of ill-conditioned fits; clamp
        // to zero (the hardware would do the same with unsigned rates).
        Ok(Coefficients { c0, c1: c1.max(0.0), c2: c2.max(0.0) })
    }

    /// Predicted total rendering time of a batch with `triangles` (Eq. 3
    /// left side).
    pub fn predict_total(&self, triangles: u64) -> f64 {
        self.c0 * triangles as f64
    }

    /// Elapsed-time estimate from counter deltas (Eq. 3 right side).
    pub fn elapsed(&self, tv: u64, pixels: u64) -> f64 {
        self.c1 * tv as f64 + self.c2 * pixels as f64
    }
}

/// The per-GPM counter pair of the distribution engine: predicted total
/// cycles of assigned work vs. elapsed cycles estimated from runtime
/// counters. The hardware cost of these counters is accounted in
/// [`crate::overhead`].
#[derive(Debug, Clone, Default)]
pub struct EngineCounters {
    totals: Vec<f64>,
    /// Counter snapshots (#tv, #pixel) at calibration end per GPM.
    baselines: Vec<(u64, u64)>,
}

impl EngineCounters {
    /// Creates counters for `n` GPMs with the given post-calibration
    /// counter baselines.
    pub fn new(baselines: Vec<(u64, u64)>) -> Self {
        EngineCounters { totals: vec![0.0; baselines.len()], baselines }
    }

    /// Records the assignment of a batch predicted to take `cycles`.
    pub fn assign(&mut self, gpm: usize, cycles: f64) {
        self.totals[gpm] += cycles;
    }

    /// Predicted remaining cycles on `gpm`, given its current counters.
    pub fn remaining(&self, gpm: usize, coeff: &Coefficients, tv: u64, pixels: u64) -> f64 {
        let (tv0, px0) = self.baselines[gpm];
        let elapsed = coeff.elapsed(tv.saturating_sub(tv0), pixels.saturating_sub(px0));
        (self.totals[gpm] - elapsed).max(0.0)
    }

    /// GPM predicted to become available first.
    pub fn earliest_available(
        &self,
        coeff: &Coefficients,
        counters: impl Fn(usize) -> (u64, u64),
    ) -> usize {
        (0..self.totals.len())
            .map(|g| {
                let (tv, px) = counters(g);
                (g, self.remaining(g, coeff, tv, px))
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(g, _)| g)
            .expect("at least one GPM")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<BatchSample> {
        // cycles = 2·tv + 0.5·pixels exactly.
        vec![
            BatchSample { triangles: 100, tv: 60, pixels: 1000, cycles: 620 },
            BatchSample { triangles: 200, tv: 120, pixels: 1500, cycles: 990 },
            BatchSample { triangles: 50, tv: 30, pixels: 4000, cycles: 2060 },
            BatchSample { triangles: 400, tv: 250, pixels: 200, cycles: 600 },
        ]
    }

    #[test]
    fn fit_recovers_exact_linear_model() {
        let c = Coefficients::fit(&samples());
        assert!((c.c1 - 2.0).abs() < 1e-6, "c1 = {}", c.c1);
        assert!((c.c2 - 0.5).abs() < 1e-6, "c2 = {}", c.c2);
        assert!(c.c0 > 0.0);
    }

    #[test]
    fn fit_handles_degenerate_samples() {
        let s = vec![BatchSample { triangles: 10, tv: 0, pixels: 0, cycles: 100 }];
        let c = Coefficients::fit(&s);
        assert_eq!(c.predict_total(20), 200.0);
        assert!(c.c1 >= 0.0 && c.c2 >= 0.0);
    }

    #[test]
    #[should_panic(expected = "calibration sample")]
    fn fit_rejects_empty() {
        let _ = Coefficients::fit(&[]);
    }

    #[test]
    fn try_fit_reports_empty_samples() {
        use crate::error::OovrError;
        assert_eq!(Coefficients::try_fit(&[]), Err(OovrError::EmptyCalibration));
        assert_eq!(Coefficients::try_fit(&samples()), Ok(Coefficients::fit(&samples())));
    }

    #[test]
    fn earliest_available_tracks_remaining_work() {
        let coeff = Coefficients { c0: 1.0, c1: 1.0, c2: 0.0 };
        let mut eng = EngineCounters::new(vec![(0, 0); 2]);
        eng.assign(0, 1000.0);
        eng.assign(1, 1000.0);
        // GPM1 has transformed more vertices → less remaining.
        let pick = eng.earliest_available(&coeff, |g| if g == 1 { (800, 0) } else { (100, 0) });
        assert_eq!(pick, 1);
        assert_eq!(eng.remaining(1, &coeff, 800, 0), 200.0);
        // Remaining never goes negative.
        assert_eq!(eng.remaining(1, &coeff, 5000, 0), 0.0);
    }

    #[test]
    fn prediction_is_linear_in_triangles() {
        let c = Coefficients { c0: 2.5, c1: 0.0, c2: 0.0 };
        assert_eq!(c.predict_total(0), 0.0);
        assert_eq!(c.predict_total(100), 250.0);
        assert_eq!(c.predict_total(200), 2.0 * c.predict_total(100));
    }

    #[test]
    fn assignment_accumulates_remaining() {
        let coeff = Coefficients { c0: 1.0, c1: 1.0, c2: 1.0 };
        let mut eng = EngineCounters::new(vec![(0, 0); 3]);
        eng.assign(2, 500.0);
        eng.assign(2, 300.0);
        assert_eq!(eng.remaining(2, &coeff, 0, 0), 800.0);
        // Un-assigned GPMs show zero remaining and win earliest-available.
        assert_eq!(eng.earliest_available(&coeff, |_| (0, 0)), 0);
    }

    #[test]
    fn baselines_offset_counters() {
        let coeff = Coefficients { c0: 1.0, c1: 1.0, c2: 1.0 };
        let eng = EngineCounters::new(vec![(100, 100)]);
        // Counters below baseline contribute nothing.
        assert_eq!(eng.remaining(0, &coeff, 50, 50), 0.0);
    }
}
