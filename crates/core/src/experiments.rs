//! Canned experiment runners: one per table/figure of the paper's
//! evaluation. The `oovr-bench` `figures` binary prints these; integration
//! tests assert their shapes at reduced scale.
//!
//! Every runner takes the workload specs to evaluate (use
//! [`paper_workloads`] for the nine points of the evaluation) so tests can
//! run scaled-down versions of exactly the same code path.

use std::fmt;

use oovr_frameworks::{Afr, Baseline, ObjectSfr, RenderScheme, SortMiddle, TileSfr};
use oovr_gpu::{FrameReport, GpuConfig};
use oovr_scene::{benchmarks, BenchmarkSpec, Eye, Scene};

use crate::cache::{self, SceneHandle};
use crate::schemes::{OoApp, OoVr};

/// The nine evaluation workloads (Table 3), scaled by `scale` in `(0,1]`
/// (1.0 reproduces the paper's resolutions and draw counts).
pub fn paper_workloads(scale: f64) -> Vec<BenchmarkSpec> {
    benchmarks::all().into_iter().map(|s| if scale >= 1.0 { s } else { s.scaled(scale) }).collect()
}

/// Identifies a rendering scheme for experiment matrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeKind {
    /// Baseline single programming model.
    Baseline,
    /// Frame-level AFR.
    FrameLevel,
    /// Vertical tile SFR.
    TileV,
    /// Horizontal tile SFR.
    TileH,
    /// Object-level SFR.
    ObjectLevel,
    /// OO programming model + middleware only.
    OoApp,
    /// Full OO-VR.
    OoVr,
    /// Sort-middle primitive redistribution (GPUpd-style, extension).
    SortMiddle,
}

impl SchemeKind {
    /// Runs one frame of `scene` under this scheme.
    pub fn render(self, scene: &Scene, cfg: &GpuConfig) -> FrameReport {
        match self {
            SchemeKind::Baseline => Baseline::new().render_frame(scene, cfg),
            SchemeKind::FrameLevel => Afr::new().render_frame(scene, cfg),
            SchemeKind::TileV => TileSfr::vertical().render_frame(scene, cfg),
            SchemeKind::TileH => TileSfr::horizontal().render_frame(scene, cfg),
            SchemeKind::ObjectLevel => ObjectSfr::new().render_frame(scene, cfg),
            SchemeKind::OoApp => OoApp::new().render_frame(scene, cfg),
            SchemeKind::OoVr => OoVr::new().render_frame(scene, cfg),
            SchemeKind::SortMiddle => SortMiddle::new().render_frame(scene, cfg),
        }
    }

    /// Display label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::Baseline => "Baseline",
            SchemeKind::FrameLevel => "Frame-Level",
            SchemeKind::TileV => "Tile-Level (V)",
            SchemeKind::TileH => "Tile-Level (H)",
            SchemeKind::ObjectLevel => "Object-Level",
            SchemeKind::OoApp => "OO_APP",
            SchemeKind::OoVr => "OOVR",
            SchemeKind::SortMiddle => "Sort-Middle",
        }
    }
}

/// A results table: one row per workload (plus an average), one column per
/// configuration/scheme.
#[derive(Debug, Clone)]
pub struct FigureTable {
    /// Figure/table id, e.g. `"fig15"`.
    pub id: &'static str,
    /// Human-readable description.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// `(row label, values)` pairs.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl FigureTable {
    /// Appends a geometric-mean row across existing rows (the paper reports
    /// averages of normalized metrics, for which the geomean is the
    /// appropriate aggregate).
    pub fn with_geomean(mut self) -> Self {
        if self.rows.is_empty() {
            return self;
        }
        let avg = (0..self.columns.len())
            .map(|c| Self::geomean(self.rows.iter().map(|(_, vals)| vals[c])))
            .collect();
        self.rows.push(("Avg.".to_string(), avg));
        self
    }

    /// The geometric mean of `vals` with the same clamping
    /// [`with_geomean`](Self::with_geomean) applies (values clamp up to
    /// `1e-12` before the log; an empty input yields 1.0). Shared by every
    /// runner that aggregates across workloads.
    pub fn geomean(vals: impl IntoIterator<Item = f64>) -> f64 {
        let (mut acc, mut count) = (0.0f64, 0usize);
        for v in vals {
            acc += v.max(1e-12).ln();
            count += 1;
        }
        (acc / count.max(1) as f64).exp()
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("workload");
        for c in &self.columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for (label, vals) in &self.rows {
            out.push_str(label);
            for v in vals {
                out.push_str(&format!(",{v:.4}"));
            }
            out.push('\n');
        }
        out
    }

    /// The value at `(row_label, column)` if present.
    pub fn value(&self, row_label: &str, column: &str) -> Option<f64> {
        let col = self.columns.iter().position(|c| c == column)?;
        let (_, vals) = self.rows.iter().find(|(l, _)| l == row_label)?;
        vals.get(col).copied()
    }
}

impl fmt::Display for FigureTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        write!(f, "{:<12}", "workload")?;
        for c in &self.columns {
            write!(f, " {c:>16}")?;
        }
        writeln!(f)?;
        for (label, vals) in &self.rows {
            write!(f, "{label:<12}")?;
            for v in vals {
                write!(f, " {v:>16.3}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Maps items through `f` on a bounded pool of OS threads (the experiments
/// are embarrassingly parallel across workloads and grid cells).
///
/// Spawns `min(available_parallelism, items.len())` workers that pull from a
/// shared atomic work queue, so oversubscription never forces memory-heavy
/// renders to timeshare a core and thrash each other's cache working sets.
/// Output order matches input order. With one core (or one item) it runs
/// serially on the calling thread.
pub fn par_map<T: Sync, U: Send>(items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
    let order: Vec<usize> = (0..items.len()).collect();
    par_map_in_order(items, &order, f)
}

/// [`par_map`] with cost-aware scheduling: items are *processed* in
/// descending `cost` order (longest-expected-first), so a long straggler is
/// started early instead of serializing the tail of the pool after the
/// cheap items drain. Output order still matches input order, and every
/// item is mapped exactly once, so results are identical to [`par_map`] for
/// any order-independent `f`.
pub fn par_map_by_cost<T: Sync, U: Send>(
    items: &[T],
    cost: impl Fn(&T) -> u64,
    f: impl Fn(&T) -> U + Sync,
) -> Vec<U> {
    let mut order: Vec<usize> = (0..items.len()).collect();
    // Stable sort: equal-cost items keep input order, so scheduling is
    // deterministic.
    order.sort_by_key(|&i| std::cmp::Reverse(cost(&items[i])));
    par_map_in_order(items, &order, f)
}

fn par_map_in_order<T: Sync, U: Send>(
    items: &[T],
    order: &[usize],
    f: impl Fn(&T) -> U + Sync,
) -> Vec<U> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let n = items.len();
    let workers =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get).min(n);
    if workers <= 1 {
        let mut out: Vec<Option<U>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        for &i in order {
            out[i] = Some(f(&items[i]));
        }
        return out.into_iter().map(|o| o.expect("order covers every index")).collect();
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut got = Vec::new();
                    loop {
                        let slot = next.fetch_add(1, Ordering::Relaxed);
                        if slot >= n {
                            break;
                        }
                        let i = order[slot];
                        got.push((i, f(&items[i])));
                    }
                    got
                })
            })
            .collect();
        let mut out: Vec<Option<U>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        for h in handles {
            for (i, u) in h.join().expect("experiment thread panicked") {
                out[i] = Some(u);
            }
        }
        out.into_iter().map(|o| o.expect("work queue covered every index")).collect()
    })
}

/// Fig. 4: baseline performance sensitivity to inter-GPM link bandwidth,
/// normalized to the 1 TB/s configuration (values ≤ 1 are slowdowns).
pub fn fig4(specs: &[BenchmarkSpec]) -> FigureTable {
    let bws = [1000.0, 256.0, 128.0, 64.0, 32.0];
    let rows = par_map(specs, |spec| {
        let scene = cache::scene_for(spec);
        let cycles: Vec<f64> = bws
            .iter()
            .map(|&bw| {
                let cfg = GpuConfig::default().with_link_gbps(bw);
                cache::render(SchemeKind::Baseline, &scene, &cfg).frame_cycles as f64
            })
            .collect();
        let base = cycles[0];
        (spec.name.clone(), cycles.into_iter().map(|c| base / c).collect())
    });
    FigureTable {
        id: "fig4",
        title: "Baseline perf vs inter-GPM link bandwidth (normalized to 1TB/s)".into(),
        columns: vec![
            "1TB/s".into(),
            "256GB/s".into(),
            "128GB/s".into(),
            "64GB/s".into(),
            "32GB/s".into(),
        ],
        rows,
    }
    .with_geomean()
}

/// §3 validation: SMP-enabled rendering speedup over sequential two-view
/// rendering on a single GPM (the paper measures ~1.27×).
pub fn smp_validation(specs: &[BenchmarkSpec]) -> FigureTable {
    use oovr_gpu::{ColorMode, Composition, Executor, FbOrg, RenderUnit};
    use oovr_mem::{GpmId, Placement};
    let cfg = GpuConfig::default().with_n_gpms(1);
    let rows = par_map(specs, |spec| {
        let scene = spec.build();
        let mut smp = Executor::new(
            cfg.clone(),
            &scene,
            Placement::FirstTouch,
            FbOrg::Single(GpmId(0)),
            ColorMode::Direct,
        );
        for o in scene.objects() {
            smp.exec_unit(GpmId(0), &RenderUnit::smp(o.id()));
        }
        let smp_cycles = smp.finish("smp", Composition::None).frame_cycles;

        let mut seq = Executor::new(
            cfg.clone(),
            &scene,
            Placement::FirstTouch,
            FbOrg::Single(GpmId(0)),
            ColorMode::Direct,
        );
        for eye in Eye::BOTH {
            for o in scene.objects() {
                seq.exec_unit(GpmId(0), &RenderUnit::single(o.id(), eye));
            }
        }
        let seq_cycles = seq.finish("seq", Composition::None).frame_cycles;
        (spec.name.clone(), vec![seq_cycles as f64 / smp_cycles as f64])
    });
    FigureTable {
        id: "smp",
        title: "SMP speedup over sequential stereo rendering (§3, ~1.27x)".into(),
        columns: vec!["SMP speedup".into()],
        rows,
    }
    .with_geomean()
}

/// Fig. 7: AFR overall performance (left) and single-frame latency (right),
/// both normalized to the baseline.
pub fn fig7(specs: &[BenchmarkSpec]) -> FigureTable {
    let cfg = GpuConfig::default();
    let rows = par_map(specs, |spec| {
        let scene = cache::scene_for(spec);
        let base = cache::render(SchemeKind::Baseline, &scene, &cfg);
        let afr = cache::render(SchemeKind::FrameLevel, &scene, &cfg);
        let overall = Afr::new().overall_fps(&afr, &cfg) / base.fps();
        let latency = afr.frame_cycles as f64 / base.frame_cycles as f64;
        (spec.name.clone(), vec![overall, latency])
    });
    FigureTable {
        id: "fig7",
        title: "AFR: overall performance and single-frame latency vs baseline".into(),
        columns: vec!["Overall perf".into(), "Frame latency".into()],
        rows,
    }
    .with_geomean()
}

/// Fig. 8: SFR scheme performance normalized to the baseline.
pub fn fig8(specs: &[BenchmarkSpec]) -> FigureTable {
    scheme_speedups(
        specs,
        "fig8",
        "SFR performance normalized to baseline",
        &[SchemeKind::TileV, SchemeKind::TileH, SchemeKind::ObjectLevel],
        &GpuConfig::default(),
    )
}

/// Fig. 9: SFR inter-GPM memory traffic normalized to the baseline.
pub fn fig9(specs: &[BenchmarkSpec]) -> FigureTable {
    scheme_traffic(
        specs,
        "fig9",
        "SFR inter-GPM traffic normalized to baseline",
        &[SchemeKind::TileV, SchemeKind::TileH, SchemeKind::ObjectLevel],
    )
}

/// Fig. 10: best-to-worst GPM busy-time ratio under object-level SFR.
pub fn fig10(specs: &[BenchmarkSpec]) -> FigureTable {
    let cfg = GpuConfig::default();
    let rows = par_map(specs, |spec| {
        let scene = cache::scene_for(spec);
        let r = cache::render(SchemeKind::ObjectLevel, &scene, &cfg);
        (spec.name.clone(), vec![r.imbalance_ratio()])
    });
    FigureTable {
        id: "fig10",
        title: "Object-level SFR best-to-worst GPM time ratio".into(),
        columns: vec!["Best-to-worst".into()],
        rows,
    }
    .with_geomean()
}

/// Fig. 10 companion: accuracy of the Eq. 3 execution-time predictor under
/// full OO-VR — mean and max relative error of predicted vs actual batch
/// cycles, plus the number of predicted batches sampled. Complements the
/// imbalance ratio story: the predictor is what turns Fig. 10's imbalance
/// into Fig. 15's speedup, so its error bounds matter.
pub fn prediction_error(specs: &[BenchmarkSpec]) -> FigureTable {
    let cfg = GpuConfig::default();
    let rows = par_map(specs, |spec| {
        let scene = spec.build();
        let (_, stats) = OoVr::new().render_frame_with_stats(&scene, &cfg);
        (
            spec.name.clone(),
            vec![
                stats.prediction_error_mean,
                stats.prediction_error_max,
                stats.prediction_samples as f64,
            ],
        )
    });
    FigureTable {
        id: "fig10_pred",
        title: "Eq. 3 predictor relative error (predicted vs actual batch cycles)".into(),
        columns: vec!["mean rel err".into(), "max rel err".into(), "samples".into()],
        rows,
    }
}

/// Fig. 15: single-frame speedup of the design scenarios over the baseline.
/// Frame-Level is reported as *overall* throughput (its single-frame story
/// is Fig. 7's right panel), matching the paper's framing.
pub fn fig15(specs: &[BenchmarkSpec]) -> FigureTable {
    let cfg = GpuConfig::default();
    let cfg_1tb = GpuConfig::default().with_link_gbps(1000.0);
    let rows = par_map(specs, |spec| {
        let scene = cache::scene_for(spec);
        let base = cache::render(SchemeKind::Baseline, &scene, &cfg);
        let object = cache::render(SchemeKind::ObjectLevel, &scene, &cfg);
        let afr = cache::render(SchemeKind::FrameLevel, &scene, &cfg);
        let bw1tb = cache::render(SchemeKind::Baseline, &scene, &cfg_1tb);
        let ooapp = cache::render(SchemeKind::OoApp, &scene, &cfg);
        let oovr = cache::render(SchemeKind::OoVr, &scene, &cfg);
        let s = |r: &FrameReport| base.frame_cycles as f64 / r.frame_cycles as f64;
        (
            spec.name.clone(),
            vec![
                s(&object),
                Afr::new().overall_fps(&afr, &cfg) / base.fps(),
                s(&bw1tb),
                s(&ooapp),
                s(&oovr),
            ],
        )
    });
    FigureTable {
        id: "fig15",
        title: "Speedup over baseline (single frame)".into(),
        columns: vec![
            "Object-Level".into(),
            "Frame-Level".into(),
            "1TB/s-BW".into(),
            "OO_APP".into(),
            "OOVR".into(),
        ],
        rows,
    }
    .with_geomean()
}

/// Fig. 16: inter-GPM traffic of Baseline / Object-level / OO-VR,
/// normalized to the baseline.
pub fn fig16(specs: &[BenchmarkSpec]) -> FigureTable {
    let mut t = scheme_traffic(
        specs,
        "fig16",
        "Inter-GPM traffic normalized to baseline",
        &[SchemeKind::ObjectLevel, SchemeKind::OoVr],
    );
    // Present with an explicit Baseline=1 column like the paper's bars.
    t.columns.insert(0, "Baseline".into());
    for (_, vals) in &mut t.rows {
        vals.insert(0, 1.0);
    }
    t
}

/// Fig. 17: average speedup (over all workloads) of Baseline / Object-level
/// / OO-VR under different link bandwidths, normalized to Baseline@64GB/s.
pub fn fig17(specs: &[BenchmarkSpec]) -> FigureTable {
    let bws = [32.0, 64.0, 128.0, 256.0];
    let schemes = [SchemeKind::Baseline, SchemeKind::ObjectLevel, SchemeKind::OoVr];
    let scenes = par_map(specs, cache::scene_for);
    // Flatten the workload × scheme × bandwidth grid so the pool schedules
    // every render independently instead of serializing each inner sweep.
    let mut grid = Vec::new();
    for wi in 0..specs.len() {
        for si in 0..schemes.len() {
            for bi in 0..bws.len() {
                grid.push((wi, si, bi));
            }
        }
    }
    let cells = par_map(&grid, |&(wi, si, bi)| {
        let cfg = GpuConfig::default().with_link_gbps(bws[bi]);
        cache::render(schemes[si], &scenes[wi], &cfg).frame_cycles as f64
    });
    // cycles[workload][scheme][bw]
    let mut all = vec![[[0.0f64; 4]; 3]; specs.len()];
    for (&(wi, si, bi), c) in grid.iter().zip(&cells) {
        all[wi][si][bi] = *c;
    }
    let mut rows = Vec::new();
    for (si, k) in schemes.iter().enumerate() {
        let mut vals = Vec::new();
        for (bi, _) in bws.iter().enumerate() {
            // Geometric mean across workloads of cycles(base@64)/cycles(k@bw).
            vals.push(FigureTable::geomean(all.iter().map(|w| w[0][1] / w[si][bi])));
        }
        rows.push((k.label().to_string(), vals));
    }
    FigureTable {
        id: "fig17",
        title: "Speedup vs inter-GPM bandwidth (normalized to Baseline@64GB/s)".into(),
        columns: bws.iter().map(|b| format!("{b:.0}GB/s")).collect(),
        rows,
    }
}

/// Fig. 18: average speedup over a single GPM as the GPM count scales
/// (1, 2, 4, 8) for Baseline / Object-level / OO-VR.
pub fn fig18(specs: &[BenchmarkSpec]) -> FigureTable {
    let ns = [1usize, 2, 4, 8];
    let schemes = [SchemeKind::Baseline, SchemeKind::ObjectLevel, SchemeKind::OoVr];
    let scenes = par_map(specs, cache::scene_for);
    // Flatten the workload × scheme × GPM-count grid (same shape as fig17).
    let mut grid = Vec::new();
    for wi in 0..specs.len() {
        for si in 0..schemes.len() {
            for ni in 0..ns.len() {
                grid.push((wi, si, ni));
            }
        }
    }
    let cells = par_map(&grid, |&(wi, si, ni)| {
        let cfg = GpuConfig::default().with_n_gpms(ns[ni]);
        cache::render(schemes[si], &scenes[wi], &cfg).frame_cycles as f64
    });
    // cycles[workload][scheme][gpm-count]
    let mut all = vec![[[0.0f64; 4]; 3]; specs.len()];
    for (&(wi, si, ni), c) in grid.iter().zip(&cells) {
        all[wi][si][ni] = *c;
    }
    let mut rows = Vec::new();
    for (si, k) in schemes.iter().enumerate() {
        let mut vals = Vec::new();
        for (ni, _) in ns.iter().enumerate() {
            // Normalize to the same scheme at 1 GPM (single-GPU system).
            vals.push(FigureTable::geomean(all.iter().map(|w| w[si][0] / w[si][ni])));
        }
        rows.push((k.label().to_string(), vals));
    }
    FigureTable {
        id: "fig18",
        title: "Speedup over single GPU vs number of GPMs".into(),
        columns: ns.iter().map(|n| format!("{n} GPM")).collect(),
        rows,
    }
}

fn scheme_speedups(
    specs: &[BenchmarkSpec],
    id: &'static str,
    title: &str,
    schemes: &[SchemeKind],
    cfg: &GpuConfig,
) -> FigureTable {
    let rows = par_map(specs, |spec| {
        let scene = cache::scene_for(spec);
        let base = cache::render(SchemeKind::Baseline, &scene, cfg);
        let vals = schemes
            .iter()
            .map(|&k| base.frame_cycles as f64 / cache::render(k, &scene, cfg).frame_cycles as f64)
            .collect();
        (spec.name.clone(), vals)
    });
    FigureTable {
        id,
        title: title.into(),
        columns: schemes.iter().map(|k| k.label().to_string()).collect(),
        rows,
    }
    .with_geomean()
}

fn scheme_traffic(
    specs: &[BenchmarkSpec],
    id: &'static str,
    title: &str,
    schemes: &[SchemeKind],
) -> FigureTable {
    let cfg = GpuConfig::default();
    let rows = par_map(specs, |spec| {
        let scene = cache::scene_for(spec);
        // Steady-state traffic: excludes the PA units' one-time data
        // distribution, which a frame sequence pays only on the first frame.
        let base =
            cache::render(SchemeKind::Baseline, &scene, &cfg).steady_inter_gpm_bytes().max(1);
        let vals = schemes
            .iter()
            .map(|&k| cache::render(k, &scene, &cfg).steady_inter_gpm_bytes() as f64 / base as f64)
            .collect();
        (spec.name.clone(), vals)
    });
    FigureTable {
        id,
        title: title.into(),
        columns: schemes.iter().map(|k| k.label().to_string()).collect(),
        rows,
    }
    .with_geomean()
}

/// §6.2 energy companion to Fig. 16: inter-GPM link energy per frame (µJ)
/// at board-level integration (10 pJ/bit), for Baseline / Object-level /
/// OO-VR, plus the node-level (250 pJ/bit) multiplier in the last column.
pub fn energy(specs: &[BenchmarkSpec]) -> FigureTable {
    use oovr_gpu::energy::{BOARD_PJ_PER_BIT, NODE_PJ_PER_BIT};
    let cfg = GpuConfig::default();
    // Steady-state link bytes (PA warm-up copies amortize to zero across a
    // frame sequence; see the `steady` experiment).
    let uj = |bytes: u64| bytes as f64 * 8.0 * BOARD_PJ_PER_BIT * 1e-6;
    let rows = par_map(specs, |spec| {
        let scene = cache::scene_for(spec);
        let base = cache::render(SchemeKind::Baseline, &scene, &cfg);
        let object = cache::render(SchemeKind::ObjectLevel, &scene, &cfg);
        let oovr = cache::render(SchemeKind::OoVr, &scene, &cfg);
        (
            spec.name.clone(),
            vec![
                uj(base.steady_inter_gpm_bytes()),
                uj(object.steady_inter_gpm_bytes()),
                uj(oovr.steady_inter_gpm_bytes()),
                NODE_PJ_PER_BIT / BOARD_PJ_PER_BIT,
            ],
        )
    });
    FigureTable {
        id: "energy",
        title: "Inter-GPM link energy per frame, µJ at 10 pJ/bit (§6.2)".into(),
        columns: vec!["Baseline".into(), "Object-Level".into(), "OOVR".into(), "node ×".into()],
        rows,
    }
    .with_geomean()
}

/// Ablation: OO-VR frame cycles (normalized to the paper's default
/// configuration) across TSL thresholds (paper: 0.5).
pub fn ablation_tsl(specs: &[BenchmarkSpec]) -> FigureTable {
    use crate::middleware::MiddlewareConfig;
    let thresholds = [0.1, 0.3, 0.5, 0.7, 0.9];
    ablation(
        specs,
        "ablation_tsl",
        "OO-VR cycles vs TSL threshold (normalized to 0.5)",
        &thresholds.map(|t| format!("tsl={t}")),
        2,
        |i| OoVr {
            middleware: MiddlewareConfig { tsl_threshold: thresholds[i], ..Default::default() },
            ..OoVr::new()
        },
    )
}

/// Ablation: OO-VR frame cycles across batch triangle caps (paper: 4096).
pub fn ablation_batch_cap(specs: &[BenchmarkSpec]) -> FigureTable {
    use crate::middleware::MiddlewareConfig;
    let caps = [512u64, 2048, 4096, 16384, 1 << 20];
    ablation(
        specs,
        "ablation_batch_cap",
        "OO-VR cycles vs batch triangle cap (normalized to 4096)",
        &caps.map(|c| format!("cap={c}")),
        2,
        |i| OoVr {
            middleware: MiddlewareConfig { triangle_cap: caps[i], ..Default::default() },
            ..OoVr::new()
        },
    )
}

/// Ablation: OO-VR frame cycles across calibration lengths (paper: 8).
pub fn ablation_calibration(specs: &[BenchmarkSpec]) -> FigureTable {
    use crate::distribution::DistributionConfig;
    let lens = [2usize, 4, 8, 16, 32];
    ablation(
        specs,
        "ablation_calibration",
        "OO-VR cycles vs calibration batches (normalized to 8)",
        &lens.map(|n| format!("cal={n}")),
        2,
        |i| OoVr {
            distribution: DistributionConfig { calibration: lens[i], ..Default::default() },
            ..OoVr::new()
        },
    )
}

/// Ablation: each OO-VR component disabled in turn (normalized to full).
pub fn ablation_components(specs: &[BenchmarkSpec]) -> FigureTable {
    use crate::distribution::DistributionConfig;
    let labels = [
        "full".to_string(),
        "no predictor".into(),
        "no prealloc".into(),
        "no stealing".into(),
        "no DHC".into(),
    ];
    ablation(
        specs,
        "ablation_components",
        "OO-VR cycles with components disabled (normalized to full)",
        &labels,
        0,
        |i| match i {
            0 => OoVr::new(),
            1 => OoVr {
                distribution: DistributionConfig { predictor: false, ..Default::default() },
                ..OoVr::new()
            },
            2 => OoVr {
                distribution: DistributionConfig { prealloc: false, ..Default::default() },
                ..OoVr::new()
            },
            3 => OoVr {
                distribution: DistributionConfig { stealing: false, ..Default::default() },
                ..OoVr::new()
            },
            _ => OoVr { dhc: false, ..OoVr::new() },
        },
    )
}

/// Shared ablation scaffolding: run variant `i` per column and normalize
/// row-wise to the reference column (values > 1 mean the variant is
/// slower than the reference).
fn ablation(
    specs: &[BenchmarkSpec],
    id: &'static str,
    title: &str,
    labels: &[String],
    reference: usize,
    make: impl Fn(usize) -> OoVr + Sync,
) -> FigureTable {
    use oovr_frameworks::RenderScheme as _;
    let cfg = GpuConfig::default();
    let rows = par_map(specs, |spec| {
        let scene = spec.build();
        let cycles: Vec<f64> = (0..labels.len())
            .map(|i| make(i).render_frame(&scene, &cfg).frame_cycles as f64)
            .collect();
        let base = cycles[reference];
        (spec.name.clone(), cycles.into_iter().map(|c| c / base).collect())
    });
    FigureTable { id, title: title.into(), columns: labels.to_vec(), rows }.with_geomean()
}

/// Extension beyond the paper: sort-middle (GPUpd-style \[21\]) primitive
/// redistribution vs the paper's schemes — performance and steady traffic
/// normalized to the baseline. The paper dismisses mid-pipeline
/// redistribution for its synchronization traffic (§4.3); this measures it.
pub fn ext_sort_middle(specs: &[BenchmarkSpec]) -> FigureTable {
    let cfg = GpuConfig::default();
    let rows = par_map(specs, |spec| {
        let scene = cache::scene_for(spec);
        let base = cache::render(SchemeKind::Baseline, &scene, &cfg);
        let sm = cache::render(SchemeKind::SortMiddle, &scene, &cfg);
        let oovr = cache::render(SchemeKind::OoVr, &scene, &cfg);
        (
            spec.name.clone(),
            vec![
                base.frame_cycles as f64 / sm.frame_cycles as f64,
                base.frame_cycles as f64 / oovr.frame_cycles as f64,
                sm.steady_inter_gpm_bytes() as f64 / base.steady_inter_gpm_bytes().max(1) as f64,
                oovr.steady_inter_gpm_bytes() as f64 / base.steady_inter_gpm_bytes().max(1) as f64,
            ],
        )
    });
    FigureTable {
        id: "ext_sort_middle",
        title: "Extension: sort-middle (GPUpd-style) vs OO-VR (normalized to baseline)".into(),
        columns: vec![
            "SM speedup".into(),
            "OOVR speedup".into(),
            "SM traffic".into(),
            "OOVR traffic".into(),
        ],
        rows,
    }
    .with_geomean()
}

/// Resilience sweep (robustness extension): fault scenario × severity grid
/// over the workloads for Baseline / Object-level / OO-VR / OO-VR with the
/// runtime countermeasures enabled.
///
/// Per grid cell the table reports, geomean-aggregated across workloads:
///
/// * **retained speedup** per scheme — the scheme's fault-free cycles over
///   its faulted cycles (1.0 = no performance lost to the fault). The
///   OO-VR+resilience column is normalized against *plain* OO-VR's
///   fault-free cycles: both variants answer "how much of OO-VR's
///   fault-free performance survives the fault", so countermeasure
///   overhead counts against the resilient variant rather than being
///   absorbed into its own reference,
/// * **deadline-miss rate** for OO-VR and OO-VR+resilience — the fraction
///   of workloads whose faulted frame overruns a per-workload budget of
///   1.25× the fault-free OO-VR frame time,
/// * **inter-GPM traffic** for OO-VR and OO-VR+resilience, normalized to
///   the same scheme's fault-free traffic.
///
/// Fault plans are seeded deterministically from the grid position, so the
/// table is identical across runs.
pub fn resilience(specs: &[BenchmarkSpec]) -> FigureTable {
    resilience_grid(specs, &oovr_gpu::FaultScenario::ALL, &[0.25, 0.5, 0.9])
}

/// [`resilience`] over an explicit scenario/severity grid (tests run
/// reduced grids through exactly this code path).
pub fn resilience_grid(
    specs: &[BenchmarkSpec],
    scenarios: &[oovr_gpu::FaultScenario],
    severities: &[f64],
) -> FigureTable {
    use oovr_gpu::FaultPlan;

    let scenes: Vec<SceneHandle> = par_map(specs, cache::scene_for);
    let base_cfg = GpuConfig::default();
    let nw = scenes.len();
    let nsev = severities.len().max(1);

    let plain = |si: usize, scene: &SceneHandle, cfg: &GpuConfig| match si {
        0 => cache::render(SchemeKind::Baseline, scene, cfg),
        1 => cache::render(SchemeKind::ObjectLevel, scene, cfg),
        _ => cache::render(SchemeKind::OoVr, scene, cfg),
    };

    // Fault-free references. The resilient scheme needs the per-workload
    // deadline budget (1.25× fault-free OO-VR), so it renders second.
    let mut ff_grid = Vec::new();
    for wi in 0..nw {
        for si in 0..3 {
            ff_grid.push((wi, si));
        }
    }
    let ff_cells = par_map(&ff_grid, |&(wi, si)| plain(si, &scenes[wi], &base_cfg));
    let mut ff_cycles = vec![[0u64; 4]; nw];
    let mut ff_traffic = vec![[0u64; 4]; nw];
    for (&(wi, si), r) in ff_grid.iter().zip(&ff_cells) {
        ff_cycles[wi][si] = r.frame_cycles;
        ff_traffic[wi][si] = r.inter_gpm_bytes();
    }
    let deadlines: Vec<u64> = (0..nw).map(|w| (ff_cycles[w][2] as f64 * 1.25) as u64).collect();
    let windices: Vec<usize> = (0..nw).collect();
    let res_ff =
        par_map(&windices, |&wi| cache::render_resilient(deadlines[wi], &scenes[wi], &base_cfg));
    for (wi, r) in res_ff.iter().enumerate() {
        ff_cycles[wi][3] = r.frame_cycles;
        ff_traffic[wi][3] = r.inter_gpm_bytes();
    }

    // Faulted grid: workload × (scenario, severity) × scheme.
    let ncells = scenarios.len() * nsev;
    let mut grid = Vec::new();
    for wi in 0..nw {
        for ci in 0..ncells {
            for si in 0..4 {
                grid.push((wi, ci, si));
            }
        }
    }
    // Longest-expected-first: a workload's fault-free baseline cycles are a
    // good proxy for its faulted render cost, so the heaviest cells start
    // first instead of serializing the pool's tail.
    let cells = par_map_by_cost(
        &grid,
        |&(wi, _, _)| ff_cycles[wi][0],
        |&(wi, ci, si)| {
            let (sci, vi) = (ci / nsev, ci % nsev);
            // Deterministic per-cell seed; shared by all schemes in the cell
            // so they face the identical fault trace.
            let seed = 11 * ci as u64 + 3;
            // Scale the fault schedule's horizon to this workload's actual
            // frame length so the piecewise windows land inside the frame.
            let plan = FaultPlan::new(scenarios[sci], severities[vi], seed)
                .with_horizon(ff_cycles[wi][0].max(1));
            let cfg = base_cfg.clone().with_fault(plan);
            let r = if si == 3 {
                cache::render_resilient(deadlines[wi], &scenes[wi], &cfg)
            } else {
                plain(si, &scenes[wi], &cfg)
            };
            (r.frame_cycles, r.inter_gpm_bytes())
        },
    );
    let mut faulted = vec![vec![[(0u64, 0u64); 4]; ncells]; nw];
    for (&(wi, ci, si), &cell) in grid.iter().zip(&cells) {
        faulted[wi][ci][si] = cell;
    }

    let mut rows = Vec::new();
    // Indexing is [workload][cell][scheme] with the workload axis inside
    // the geomean closures; enumerating would obscure that symmetry.
    #[allow(clippy::needless_range_loop)]
    for ci in 0..ncells {
        let (sci, vi) = (ci / nsev, ci % nsev);
        let label = format!("{}/{:.2}", scenarios[sci].name(), severities[vi]);
        let mut vals = Vec::new();
        for si in 0..4 {
            // The resilient variant shares plain OO-VR's fault-free
            // reference (see the module docs on retained speedup).
            let refsi = if si == 3 { 2 } else { si };
            vals.push(FigureTable::geomean(
                (0..nw).map(|w| ff_cycles[w][refsi] as f64 / faulted[w][ci][si].0.max(1) as f64),
            ));
        }
        for si in [2usize, 3] {
            let misses = (0..nw).filter(|&w| faulted[w][ci][si].0 > deadlines[w]).count();
            vals.push(misses as f64 / nw.max(1) as f64);
        }
        for si in [2usize, 3] {
            vals.push(FigureTable::geomean(
                (0..nw)
                    .map(|w| faulted[w][ci][si].1.max(1) as f64 / ff_traffic[w][si].max(1) as f64),
            ));
        }
        rows.push((label, vals));
    }
    FigureTable {
        id: "resilience",
        title: "Retained speedup, deadline misses, traffic under injected faults".into(),
        columns: vec![
            "Baseline".into(),
            "Object-Level".into(),
            "OOVR".into(),
            "OOVR+RES".into(),
            "miss OOVR".into(),
            "miss RES".into(),
            "traffic OOVR".into(),
            "traffic RES".into(),
        ],
        rows,
    }
}

/// Steady-state validation: OO-VR frame 1 (cold page placement, PA copies)
/// vs frame 3 (warm) — total inter-GPM MB per frame and the warm frame's
/// PA bytes (which must be ~0). Empirically backs the steady-state traffic
/// metric used in the Fig. 16 reproduction.
pub fn steady_state(specs: &[BenchmarkSpec]) -> FigureTable {
    let cfg = GpuConfig::default();
    let rows = par_map(specs, |spec| {
        let scene = spec.build();
        let frames = OoVr::new().render_frames(&scene, &cfg, 3);
        let mb = |r: &FrameReport| r.inter_gpm_bytes() as f64 / 1e6;
        let pa =
            |r: &FrameReport| r.traffic.remote_of(oovr_mem::TrafficClass::PreAlloc) as f64 / 1e6;
        (
            spec.name.clone(),
            vec![
                mb(&frames[0]),
                mb(&frames[2]),
                pa(&frames[0]),
                pa(&frames[2]),
                frames[0].frame_cycles as f64 / frames[2].frame_cycles as f64,
            ],
        )
    });
    FigureTable {
        id: "steady",
        title: "OO-VR cold vs warm frames: inter-GPM MB, PA MB, warm speedup".into(),
        columns: vec![
            "frame1 MB".into(),
            "frame3 MB".into(),
            "frame1 PA MB".into(),
            "frame3 PA MB".into(),
            "warm speedup".into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Vec<BenchmarkSpec> {
        vec![benchmarks::hl2_640().scaled(0.1), benchmarks::we().scaled(0.1)]
    }

    #[test]
    fn figure_table_display_and_csv() {
        let t = FigureTable {
            id: "t",
            title: "test".into(),
            columns: vec!["a".into(), "b".into()],
            rows: vec![("w1".into(), vec![1.0, 2.0]), ("w2".into(), vec![4.0, 8.0])],
        }
        .with_geomean();
        assert_eq!(t.value("Avg.", "a"), Some(2.0));
        assert_eq!(t.value("Avg.", "b"), Some(4.0));
        assert!(t.to_csv().contains("w1,1.0000,2.0000"));
        assert!(format!("{t}").contains("Avg."));
    }

    #[test]
    fn par_map_preserves_order() {
        let items = vec![3u64, 1, 2];
        let out = par_map(&items, |&x| x * 10);
        assert_eq!(out, vec![30, 10, 20]);
    }

    #[test]
    fn fig4_normalizes_to_one_at_1tbs() {
        let t = fig4(&tiny());
        for (label, vals) in &t.rows {
            assert!((vals[0] - 1.0).abs() < 1e-9, "{label} first col normalized");
            // Lower bandwidth never helps.
            assert!(vals[3] <= vals[0] + 1e-9, "{label}: 64GB/s ≤ 1TB/s");
        }
    }

    #[test]
    fn resilience_grid_is_deterministic_and_countermeasures_retain_speedup() {
        use oovr_gpu::FaultScenario;
        let specs = tiny();
        let grid = [FaultScenario::LinkDegrade, FaultScenario::GpmThrottle];
        let t = resilience_grid(&specs, &grid, &[0.9]);
        let t2 = resilience_grid(&specs, &grid, &[0.9]);
        assert_eq!(t.rows, t2.rows, "same seed must reproduce the table exactly");
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.columns.len(), 8);
        for (label, vals) in &t.rows {
            assert!(vals.iter().all(|v| v.is_finite()), "{label}: {vals:?}");
            let oovr = t.value(label, "OOVR").unwrap();
            let resil = t.value(label, "OOVR+RES").unwrap();
            // The acceptance bar: countermeasures retain strictly more of
            // the fault-free speedup than plain OO-VR under degraded links
            // and throttled GPMs.
            assert!(resil > oovr, "{label}: resilient retained {resil:.4} vs plain {oovr:.4}");
        }
    }

    #[test]
    fn paper_workloads_scale() {
        assert_eq!(paper_workloads(1.0).len(), 9);
        let w = paper_workloads(0.25);
        assert_eq!(w.len(), 9);
        assert!(w[0].resolution.width < 640);
    }
}
