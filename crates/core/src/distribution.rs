//! The object-aware runtime batch distribution engine (§5.2, Fig. 13).
//!
//! The engine replaces the master–slave software distribution of
//! conventional object-level SFR with a hardware micro-controller that:
//!
//! 1. distributes the first [`CALIBRATION_BATCHES`] round-robin under the
//!    baseline First-Touch mapping and uses their measured times to fit the
//!    Eq. 3 coefficients ([`Coefficients::fit`]),
//! 2. thereafter assigns each batch to the GPM predicted to become
//!    available first (two counters per GPM: predicted-total vs. elapsed),
//! 3. lets the PA units *pre-allocate* the batch's pages to the chosen GPM
//!    so the data copy overlaps rendering, and
//! 4. when all batches are assigned and some GPMs idle, splits leftover
//!    large batches' triangles across idle GPMs (fine-grained stealing),
//!    with the PA units duplicating the required data.
//!
//! # Resilience
//!
//! With [`ResilienceConfig::enabled`] the engine additionally defends the
//! frame against degraded links and throttled GPMs (injected via
//! [`oovr_gpu::FaultPlan`]):
//!
//! * **drift re-calibration** — each completed batch's actual cycles are
//!   compared against its prediction; repeated large relative errors
//!   re-fit the Eq. 3 coefficients on a sliding window of recent samples,
//! * **per-GPM rate factors** — an EWMA of actual/predicted per batch
//!   scales each GPM's predicted-remaining counter, steering new
//!   assignments away from throttled or link-degraded GPMs,
//! * **early stealing** — a GPM whose weighted backlog is a small fraction
//!   of the worst GPM's may steal split work *before* going fully idle,
//! * **PA retry + remote fallback** — pre-allocation to a GPM whose links
//!   are down retries reachability with exponential backoff and falls back
//!   to remote rendering (data stays put) if the links never come back,
//! * **deadline shedding** — when the predicted frame finish exceeds the
//!   VR budget, fragment shading is progressively scaled down
//!   ([`Executor::set_shade_scale`]), modeling foveated degradation.
//!
//! When `enabled` is `false` (the default) every countermeasure is inert
//! and the engine's arithmetic is bit-identical to the fault-free original.

use std::collections::VecDeque;

use oovr_gpu::{Executor, RenderUnit};
use oovr_mem::GpmId;
use oovr_trace::{TraceEvent, TraceSink};

use crate::middleware::Batch;
use crate::predictor::{BatchSample, Coefficients, EngineCounters, CALIBRATION_BATCHES};

/// Distribution engine configuration (component toggles drive the ablation
/// benches).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributionConfig {
    /// Use the Eq. 3 predictor for assignment; `false` degrades to
    /// round-robin (the OO_APP software baseline).
    pub predictor: bool,
    /// Pre-allocate batch data to the assigned GPM (PA units).
    pub prealloc: bool,
    /// Split straggler batches across idle GPMs.
    pub stealing: bool,
    /// Batches queued ahead per GPM (the 4-entry batch queue of §5.2,
    /// spread over the GPMs).
    pub queue_depth: usize,
    /// Minimum triangles for a unit to be worth splitting when stealing.
    pub steal_threshold: u64,
    /// Number of calibration batches (paper: 8).
    pub calibration: usize,
    /// Fault countermeasures (inert unless [`ResilienceConfig::enabled`]).
    pub resilience: ResilienceConfig,
}

impl Default for DistributionConfig {
    fn default() -> Self {
        DistributionConfig {
            predictor: true,
            prealloc: true,
            stealing: true,
            queue_depth: 2,
            steal_threshold: 1024,
            calibration: CALIBRATION_BATCHES,
            resilience: ResilienceConfig::default(),
        }
    }
}

/// Configuration of the engine's fault countermeasures. All of them are
/// strictly gated on [`enabled`](Self::enabled): the default (disabled)
/// configuration leaves the engine bit-identical to the fault-free design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceConfig {
    /// Master switch; `false` disables every countermeasure.
    pub enabled: bool,
    /// Relative prediction error above which a completed batch counts as a
    /// drift event.
    pub drift_threshold: f64,
    /// Consecutive-ish drift events required before re-fitting the
    /// coefficients on the sliding sample window.
    pub drift_events: usize,
    /// Sliding window length (recent batch samples) for re-calibration.
    pub window: usize,
    /// EWMA weight of the newest actual/predicted ratio in each GPM's rate
    /// factor.
    pub rate_alpha: f64,
    /// A GPM whose weighted backlog is below this fraction of the worst
    /// GPM's backlog may steal before going fully idle.
    pub early_steal_frac: f64,
    /// Queued (unstarted) batches migrate from the worst GPM to the best
    /// when the worst's weighted drain estimate exceeds this multiple of
    /// the best's.
    pub migrate_ratio: f64,
    /// Minimum triangles for a steal split while resilience is active
    /// (finer than [`DistributionConfig::steal_threshold`]: with a sick
    /// GPM, even small splits beat leaving peers idle).
    pub steal_threshold: u64,
    /// Reachability probes attempted (with exponential backoff) before a
    /// pre-allocation falls back to remote rendering.
    pub pa_retries: u32,
    /// First retry backoff in cycles; doubles per attempt.
    pub pa_backoff_cycles: u64,
    /// Frame budget for the deadline monitor (VR: 11.1 ms).
    pub deadline_cycles: u64,
    /// Multiplicative fragment-rate reduction per shed event.
    pub shed_step: f64,
    /// Lower bound on the fragment-rate scale (foveation floor).
    pub shed_floor: f64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            enabled: false,
            drift_threshold: 0.5,
            drift_events: 2,
            window: CALIBRATION_BATCHES,
            rate_alpha: 0.5,
            early_steal_frac: 0.5,
            migrate_ratio: 1.5,
            steal_threshold: 256,
            pa_retries: 3,
            pa_backoff_cycles: 50_000,
            deadline_cycles: oovr_gpu::VR_DEADLINE_CYCLES,
            shed_step: 0.8,
            shed_floor: 0.4,
        }
    }
}

impl ResilienceConfig {
    /// An enabled configuration with the default tuning.
    pub fn on() -> Self {
        ResilienceConfig { enabled: true, ..ResilienceConfig::default() }
    }
}

/// Result of driving a frame through the distribution engine.
#[derive(Debug, Clone)]
pub struct DistributionStats {
    /// Batches assigned by the predictor (after calibration).
    pub predicted_assignments: usize,
    /// Bytes moved by PA pre-allocation.
    pub prealloc_bytes: u64,
    /// Stealing splits performed.
    pub steals: usize,
    /// Fitted coefficients (if calibration ran; updated by re-calibration).
    pub coefficients: Option<Coefficients>,
    /// Drift-triggered coefficient re-fits.
    pub recalibrations: usize,
    /// Steals granted to GPMs that were not yet fully idle.
    pub early_steals: usize,
    /// Queued batches migrated away from degraded/throttled GPMs.
    pub migrations: usize,
    /// PA reachability probes taken because the target's links were down.
    pub pa_retries: usize,
    /// Pre-allocations abandoned in favor of remote rendering.
    pub pa_fallbacks: usize,
    /// Deadline-monitor shed events (each scales fragment shading down).
    pub shed_events: usize,
    /// Smallest fragment-rate scale reached (1.0 = nothing shed).
    pub min_shade_scale: f64,
    /// Whether the frame still overran the deadline budget.
    pub deadline_missed: bool,
    /// Final per-GPM rate factors (empty when resilience is off); values
    /// above 1.0 mark GPMs observed running slower than predicted.
    pub rates: Vec<f64>,
    /// Completed predictor-assigned batches with a measured actual time
    /// (the population behind the prediction-error summary below).
    pub prediction_samples: usize,
    /// Mean relative error of Eq. 3, `|actual - predicted| / predicted`,
    /// over the tracked batches (0.0 when none were tracked).
    pub prediction_error_mean: f64,
    /// Worst relative error of Eq. 3 over the tracked batches.
    pub prediction_error_max: f64,
}

impl Default for DistributionStats {
    fn default() -> Self {
        DistributionStats {
            predicted_assignments: 0,
            prealloc_bytes: 0,
            steals: 0,
            coefficients: None,
            recalibrations: 0,
            early_steals: 0,
            migrations: 0,
            pa_retries: 0,
            pa_fallbacks: 0,
            shed_events: 0,
            min_shade_scale: 1.0,
            deadline_missed: false,
            rates: Vec::new(),
            prediction_samples: 0,
            prediction_error_mean: 0.0,
            prediction_error_max: 0.0,
        }
    }
}

/// One queued batch: the units awaiting execution plus the index of its
/// completion-tracking record (`None` for steal splits, which are not
/// predictor assignments).
#[derive(Debug)]
struct QueuedBatch {
    units: VecDeque<RenderUnit>,
    track: Option<usize>,
}

/// Completion tracking for one predicted batch: compares the batch's actual
/// wall cycles on its GPM against the prediction. Pure observation (the
/// prediction-error summary and trace events); only the resilience
/// countermeasures *act* on it.
#[derive(Debug)]
struct BatchTrack {
    /// Frame-wide batch index (calibration batches counted).
    batch: u32,
    predicted: f64,
    triangles: u64,
    /// `(now, #tv, #pixel)` on the assigned GPM when its first unit starts.
    start: Option<(u64, u64, u64)>,
    remaining_units: usize,
}

/// The GPM's predicted remaining work, scaled by its resilience rate
/// factor (all 1.0 when resilience is off, leaving the value untouched).
fn weighted_remaining(
    ex: &Executor<'_>,
    counters: &EngineCounters,
    coeff: &Coefficients,
    rate: &[f64],
    g: usize,
) -> f64 {
    let s = ex.gpm(GpmId(g as u8));
    counters.remaining(g, coeff, s.transformed_vertices, s.shaded_pixels) * rate[g]
}

/// Resilient drain-time estimate for GPM `g`: the nominal predicted
/// remaining, floored at the predicted cost of the triangles physically
/// sitting in its queue (the nominal counter saturates at zero when the
/// elapsed estimate overshoots), scaled by the GPM's rate factor.
fn resilient_drain(
    ex: &Executor<'_>,
    counters: &EngineCounters,
    coeff: &Coefficients,
    rate: &[f64],
    queues: &[VecDeque<QueuedBatch>],
    g: usize,
) -> f64 {
    let s = ex.gpm(GpmId(g as u8));
    let nominal = counters.remaining(g, coeff, s.transformed_vertices, s.shaded_pixels);
    let queued: u64 = queues[g]
        .iter()
        .flat_map(|b| b.units.iter())
        .map(|u| {
            u.tri_range
                .map(|(a, b)| b - a)
                .unwrap_or_else(|| ex.scene().object(u.object).triangle_count())
        })
        .sum();
    rate[g] * nominal.max(coeff.c0 * queued as f64)
}

/// Whether any GPM's frame-elapsed cycles exceed the deadline budget.
fn deadline_missed(ex: &Executor<'_>, frame_start: &[u64], budget: u64) -> bool {
    (0..frame_start.len())
        .any(|g| ex.gpm(GpmId(g as u8)).now.saturating_sub(frame_start[g]) > budget)
}

/// Drives all `batches` through `ex` under the engine's policy.
///
/// Every unit of every batch is executed exactly once; the function returns
/// engine statistics (the executor accumulates the frame report as usual).
pub fn run_distribution(
    ex: &mut Executor<'_>,
    batches: &[Batch],
    cfg: &DistributionConfig,
) -> DistributionStats {
    let n = ex.n_gpms();
    let res = cfg.resilience;
    let mut stats = DistributionStats::default();
    let frame_start: Vec<u64> = (0..n).map(|g| ex.gpm(GpmId(g as u8)).now).collect();

    let units_of = |b: &Batch| -> VecDeque<RenderUnit> {
        b.objects.iter().map(|&o| RenderUnit::smp(o)).collect()
    };

    // --- Phase 1: calibration, round-robin, First-Touch mapping. ---
    // Units are pumped in global time order across GPMs (so the shared
    // links see interleaved demand); batches stay contiguous per GPM, so
    // batch boundaries are exact despite the interleaving.
    let n_cal = cfg.calibration.min(batches.len());
    let mut cal_queues: Vec<VecDeque<(usize, RenderUnit)>> =
        (0..n).map(|_| VecDeque::new()).collect();
    let mut remaining_units = vec![0usize; n_cal];
    for (i, b) in batches[..n_cal].iter().enumerate() {
        for u in units_of(b) {
            cal_queues[i % n].push_back((i, u));
        }
        remaining_units[i] = b.objects.len();
    }
    let mut started: Vec<Option<(u64, u64, u64)>> = vec![None; n_cal];
    let mut samples = Vec::with_capacity(n_cal);
    let mut sample_gpms = Vec::with_capacity(n_cal);
    let mut cal_running: Vec<Option<(usize, oovr_gpu::RunningUnit)>> =
        (0..n).map(|_| None).collect();
    loop {
        let mut best: Option<(usize, u64)> = None;
        for g in 0..n {
            if cal_running[g].is_none() && cal_queues[g].is_empty() {
                continue;
            }
            let now = ex.gpm(GpmId(g as u8)).now;
            if best.is_none_or(|(_, t)| now < t) {
                best = Some((g, now));
            }
        }
        let Some((g, _)) = best else { break };
        let gid = GpmId(g as u8);
        if cal_running[g].is_none() {
            let (bi, unit) = cal_queues[g].pop_front().expect("queue non-empty");
            let s = ex.gpm(gid);
            if started[bi].is_none() {
                started[bi] = Some((s.now, s.transformed_vertices, s.shaded_pixels));
            }
            cal_running[g] = Some((bi, ex.start_unit(&unit)));
        }
        let (bi, ru) = cal_running[g].as_mut().expect("running unit just ensured");
        let bi = *bi;
        if ex.step_unit(gid, ru) {
            cal_running[g] = None;
            remaining_units[bi] -= 1;
            if remaining_units[bi] == 0 {
                let s1 = ex.gpm(gid);
                let (t0, tv0, px0) = started[bi].expect("batch started before finishing");
                samples.push(BatchSample {
                    triangles: batches[bi].triangles,
                    tv: s1.transformed_vertices - tv0,
                    pixels: s1.shaded_pixels - px0,
                    cycles: s1.now - t0,
                });
                sample_gpms.push(g);
            }
        }
    }

    let rest = &batches[n_cal..];
    if rest.is_empty() {
        if res.enabled {
            stats.deadline_missed = deadline_missed(ex, &frame_start, res.deadline_cycles);
        }
        return stats;
    }

    let mut coeff = if samples.is_empty() {
        Coefficients { c0: 1.0, c1: 1.0, c2: 1.0 }
    } else {
        Coefficients::fit(&samples)
    };
    stats.coefficients = Some(coeff);
    let fit_cycle = ex.makespan();
    if let Some(tr) = ex.tracer_mut() {
        tr.record(TraceEvent::CalibrationFit {
            cycle: fit_cycle,
            c0: coeff.c0,
            c1: coeff.c1,
            c2: coeff.c2,
            samples: samples.len() as u32,
            refit: false,
        });
    }
    let baselines: Vec<(u64, u64)> = (0..n)
        .map(|g| {
            let s = ex.gpm(GpmId(g as u8));
            (s.transformed_vertices, s.shaded_pixels)
        })
        .collect();
    let mut counters = EngineCounters::new(baselines);

    // Resilience state: per-GPM rate factors, the sliding sample window
    // (seeded with the calibration samples), drift event counter, and
    // per-batch completion tracks. The rate factors start from the
    // calibration observations themselves — each calibration batch ran on
    // a known GPM, so a GPM already limping during calibration is flagged
    // before the predictor makes a single assignment.
    let mut rate = vec![1.0f64; n];
    if res.enabled {
        let mut acc = vec![(0.0f64, 0usize); n];
        for (s, &g) in samples.iter().zip(&sample_gpms) {
            let predicted = coeff.predict_total(s.triangles).max(1.0);
            acc[g].0 += (s.cycles as f64 / predicted).clamp(0.25, 4.0);
            acc[g].1 += 1;
        }
        for g in 0..n {
            if acc[g].1 > 0 {
                rate[g] = acc[g].0 / acc[g].1 as f64;
            }
        }
    }
    let mut recent: VecDeque<BatchSample> = samples.iter().copied().collect();
    while recent.len() > res.window.max(1) {
        recent.pop_front();
    }
    let mut drift_count = 0usize;
    let mut tracks: Vec<BatchTrack> = Vec::new();
    let mut pred_err_sum = 0.0f64;

    // --- Phases 2–4: predictive assignment + execution pump. ---
    let mut pending: VecDeque<(usize, &Batch)> =
        rest.iter().enumerate().map(|(i, b)| (n_cal + i, b)).collect();
    let mut queues: Vec<VecDeque<QueuedBatch>> = (0..n).map(|_| VecDeque::new()).collect();
    let mut running: Vec<Option<(Option<usize>, oovr_gpu::RunningUnit)>> =
        (0..n).map(|_| None).collect();
    let mut rr = 0usize;

    loop {
        // Top-up: assign pending batches to predicted-earliest GPMs with
        // queue space.
        while let Some(&(batch_id, batch)) = pending.front() {
            let candidates: Vec<usize> =
                (0..n).filter(|&g| queues[g].len() < cfg.queue_depth).collect();
            if candidates.is_empty() {
                break;
            }
            let g = if cfg.predictor {
                *candidates
                    .iter()
                    .min_by(|&&a, &&b| {
                        let (ra, rb) = if res.enabled {
                            (
                                resilient_drain(ex, &counters, &coeff, &rate, &queues, a),
                                resilient_drain(ex, &counters, &coeff, &rate, &queues, b),
                            )
                        } else {
                            (
                                weighted_remaining(ex, &counters, &coeff, &rate, a),
                                weighted_remaining(ex, &counters, &coeff, &rate, b),
                            )
                        };
                        ra.total_cmp(&rb)
                    })
                    .expect("nonempty candidates")
            } else {
                let g = candidates[rr % candidates.len()];
                rr += 1;
                g
            };
            pending.pop_front();
            let predicted = coeff.predict_total(batch.triangles);
            counters.assign(g, predicted);
            stats.predicted_assignments += usize::from(cfg.predictor);
            let assign_cycle = ex.gpm(GpmId(g as u8)).now;
            if let Some(tr) = ex.tracer_mut() {
                tr.record(TraceEvent::Assign {
                    cycle: assign_cycle,
                    gpm: g as u32,
                    batch: batch_id as u32,
                    triangles: batch.triangles,
                    predicted,
                });
            }
            if cfg.prealloc {
                let gid = GpmId(g as u8);
                let mut do_prealloc = true;
                if res.enabled && !ex.gpm_reachable(gid, ex.gpm(gid).now) {
                    // Links to the target are down: probe the fault horizon
                    // with exponential backoff; if they never retrain in
                    // time, leave the data where it is and render remotely.
                    let mut probe = ex.gpm(gid).now;
                    let mut backoff = res.pa_backoff_cycles.max(1);
                    let mut reachable = false;
                    for attempt in 1..=res.pa_retries {
                        stats.pa_retries += 1;
                        probe = probe.saturating_add(backoff);
                        backoff = backoff.saturating_mul(2);
                        if let Some(tr) = ex.tracer_mut() {
                            tr.record(TraceEvent::PaRetry { cycle: probe, gpm: g as u32, attempt });
                        }
                        if ex.gpm_reachable(gid, probe) {
                            reachable = true;
                            break;
                        }
                    }
                    if !reachable {
                        do_prealloc = false;
                        stats.pa_fallbacks += 1;
                        if let Some(tr) = ex.tracer_mut() {
                            tr.record(TraceEvent::PaFallback {
                                cycle: probe,
                                gpm: g as u32,
                                reason: "links-down",
                            });
                        }
                    }
                }
                if do_prealloc {
                    for &obj in &batch.objects {
                        stats.prealloc_bytes += ex.prealloc_object(obj, gid);
                    }
                }
            }
            // Tracks are pure observation (prediction-error summary, trace
            // events), so every predicted batch gets one regardless of the
            // resilience switch; only the countermeasures consult them for
            // action.
            tracks.push(BatchTrack {
                batch: batch_id as u32,
                predicted,
                triangles: batch.triangles,
                start: None,
                remaining_units: batch.objects.len(),
            });
            let track = Some(tracks.len() - 1);
            queues[g].push_back(QueuedBatch { units: units_of(batch), track });
        }

        // Migration: when a GPM's weighted drain estimate dwarfs the best
        // GPM's, its rearmost queued (unstarted) batch moves to the best
        // GPM, with the PA units chasing the data. This is what actually
        // relieves a throttled or link-degraded GPM mid-frame: the rate
        // factor alone only steers *new* assignments.
        if res.enabled {
            let mut moves = 0usize;
            while moves < n {
                let drains: Vec<f64> = (0..n)
                    .map(|g| resilient_drain(ex, &counters, &coeff, &rate, &queues, g))
                    .collect();
                let worst = (0..n)
                    .max_by(|&a, &b| drains[a].total_cmp(&drains[b]))
                    .expect("at least one GPM");
                let best = (0..n)
                    .min_by(|&a, &b| drains[a].total_cmp(&drains[b]))
                    .expect("at least one GPM");
                if worst == best
                    || queues[worst].len() < 2
                    || drains[worst] <= res.migrate_ratio * drains[best] + 1.0
                {
                    break;
                }
                let rear = queues[worst].back().expect("worst queue has a rear batch");
                let batch_pred = match rear.track {
                    Some(ti) => tracks[ti].predicted,
                    None => {
                        let tris: u64 = rear
                            .units
                            .iter()
                            .map(|u| {
                                u.tri_range
                                    .map(|(a, b)| b - a)
                                    .unwrap_or_else(|| ex.scene().object(u.object).triangle_count())
                            })
                            .sum();
                        coeff.c0 * tris as f64
                    }
                };
                // Only migrate if the receiver stays strictly below the
                // donor's current drain — otherwise the batch would just
                // ping-pong between the two.
                if drains[best] + rate[best] * batch_pred + 1.0 >= drains[worst] {
                    break;
                }
                let batch = queues[worst].pop_back().expect("worst queue has a rear batch");
                if let Some(ti) = batch.track {
                    let p = tracks[ti].predicted;
                    counters.assign(worst, -p);
                    counters.assign(best, p);
                }
                if cfg.prealloc {
                    for u in &batch.units {
                        stats.prealloc_bytes += ex.prealloc_object(u.object, GpmId(best as u8));
                    }
                }
                queues[best].push_back(batch);
                stats.migrations += 1;
                moves += 1;
                let cycle = ex.gpm(GpmId(best as u8)).now;
                if let Some(tr) = ex.tracer_mut() {
                    tr.record(TraceEvent::Migrate {
                        cycle,
                        from: worst as u32,
                        to: best as u32,
                        predicted: batch_pred,
                        reason: "drain-imbalance",
                    });
                }
            }
        }

        // Stealing: once nothing is pending, idle GPMs carve triangles off
        // the largest queued unit elsewhere. With resilience, a GPM whose
        // weighted backlog is a small fraction of the worst GPM's may steal
        // while its last unit is still running (straggler escalation).
        if cfg.stealing && pending.is_empty() {
            let empty_q: Vec<bool> =
                (0..n).map(|g| queues[g].iter().all(|b| b.units.is_empty())).collect();
            let idle: Vec<bool> = (0..n).map(|g| running[g].is_none() && empty_q[g]).collect();
            let mut early = vec![false; n];
            if res.enabled {
                let rems: Vec<f64> = (0..n)
                    .map(|g| resilient_drain(ex, &counters, &coeff, &rate, &queues, g))
                    .collect();
                let max_rem = rems.iter().copied().fold(0.0f64, f64::max);
                if max_rem > 0.0 {
                    for g in 0..n {
                        if !idle[g] && empty_q[g] && rems[g] < res.early_steal_frac * max_rem {
                            early[g] = true;
                        }
                    }
                }
            }
            let mask: Vec<bool> = (0..n).map(|g| idle[g] || early[g]).collect();
            steal_for_idle(ex, &mut queues, &mask, &early, cfg, &mut stats);
        }

        // Execute one quantum on the GPM with the earliest clock among
        // those with work (running or queued).
        let mut best: Option<(usize, u64)> = None;
        for g in 0..n {
            let has_work = running[g].is_some() || queues[g].iter().any(|b| !b.units.is_empty());
            if !has_work {
                continue;
            }
            let now = ex.gpm(GpmId(g as u8)).now;
            if best.is_none_or(|(_, t)| now < t) {
                best = Some((g, now));
            }
        }
        let Some((g, _)) = best else {
            if pending.is_empty() {
                break;
            }
            continue;
        };
        let gid = GpmId(g as u8);
        if running[g].is_none() {
            // Pop the next unit of the front batch (drop exhausted batches).
            while queues[g].front().is_some_and(|b| b.units.is_empty()) {
                queues[g].pop_front();
            }
            if let Some(front) = queues[g].front_mut() {
                let tag = front.track;
                let unit = front.units.pop_front().expect("front batch has units");
                if let Some(ti) = tag {
                    if tracks[ti].start.is_none() {
                        let s = ex.gpm(gid);
                        tracks[ti].start = Some((s.now, s.transformed_vertices, s.shaded_pixels));
                    }
                }
                running[g] = Some((tag, ex.start_unit(&unit)));
            }
        }
        if let Some((tag, ru)) = running[g].as_mut() {
            let tag = *tag;
            if ex.step_unit(gid, ru) {
                running[g] = None;
                while queues[g].front().is_some_and(|b| b.units.is_empty()) {
                    queues[g].pop_front();
                }
                if let Some(ti) = tag {
                    tracks[ti].remaining_units -= 1;
                    if tracks[ti].remaining_units == 0 {
                        let track = &tracks[ti];
                        let s1 = *ex.gpm(gid);
                        let (t0, tv0, px0) =
                            track.start.expect("tracked batch started before finishing");
                        let sample = BatchSample {
                            triangles: track.triangles,
                            tv: s1.transformed_vertices - tv0,
                            pixels: s1.shaded_pixels - px0,
                            cycles: s1.now - t0,
                        };
                        let actual = sample.cycles as f64;
                        let predicted = track.predicted.max(1.0);
                        let rel = (actual - predicted).abs() / predicted;
                        stats.prediction_samples += 1;
                        pred_err_sum += rel;
                        stats.prediction_error_max = stats.prediction_error_max.max(rel);
                        let (done_batch, done_pred) = (track.batch, track.predicted);
                        if let Some(tr) = ex.tracer_mut() {
                            tr.record(TraceEvent::BatchDone {
                                cycle: s1.now,
                                gpm: g as u32,
                                batch: done_batch,
                                predicted: done_pred,
                                actual,
                            });
                        }
                        if res.enabled {
                            on_batch_done(
                                ex,
                                g,
                                sample,
                                predicted,
                                &res,
                                &counters,
                                &frame_start,
                                &pending,
                                &mut coeff,
                                &mut rate,
                                &mut recent,
                                &mut drift_count,
                                &mut stats,
                            );
                        }
                    }
                }
            }
        }
    }

    if stats.prediction_samples > 0 {
        stats.prediction_error_mean = pred_err_sum / stats.prediction_samples as f64;
    }
    if res.enabled {
        stats.rates = rate;
        stats.deadline_missed = deadline_missed(ex, &frame_start, res.deadline_cycles);
        if stats.min_shade_scale < 1.0 {
            // The deadline monitor is per-frame: restore full-rate shading
            // so a following frame starts unshed.
            ex.set_shade_scale(1.0);
        }
    }
    stats
}

/// Resilience bookkeeping when a tracked batch finishes on GPM `g`: update
/// the rate factor and sliding window, re-calibrate on sustained drift, and
/// shed fragment rate if the predicted frame finish busts the deadline.
/// `sample` is the batch's measured sample and `predicted` its (floored)
/// predicted cycles, both computed by the caller.
#[allow(clippy::too_many_arguments)]
fn on_batch_done(
    ex: &mut Executor<'_>,
    g: usize,
    sample: BatchSample,
    predicted: f64,
    res: &ResilienceConfig,
    counters: &EngineCounters,
    frame_start: &[u64],
    pending: &VecDeque<(usize, &Batch)>,
    coeff: &mut Coefficients,
    rate: &mut [f64],
    recent: &mut VecDeque<BatchSample>,
    drift_count: &mut usize,
    stats: &mut DistributionStats,
) {
    let n = rate.len();
    if recent.len() >= res.window.max(1) {
        recent.pop_front();
    }
    recent.push_back(sample);

    let actual = sample.cycles as f64;
    let ratio = (actual / predicted).clamp(0.25, 4.0);
    rate[g] = (1.0 - res.rate_alpha) * rate[g] + res.rate_alpha * ratio;

    if (actual - predicted).abs() / predicted > res.drift_threshold {
        *drift_count += 1;
        if *drift_count >= res.drift_events.max(1) {
            *drift_count = 0;
            let window: Vec<BatchSample> = recent.iter().copied().collect();
            *coeff = Coefficients::fit(&window);
            stats.coefficients = Some(*coeff);
            stats.recalibrations += 1;
            let cycle = ex.makespan();
            let (c0, c1, c2) = (coeff.c0, coeff.c1, coeff.c2);
            if let Some(tr) = ex.tracer_mut() {
                tr.record(TraceEvent::CalibrationFit {
                    cycle,
                    c0,
                    c1,
                    c2,
                    samples: window.len() as u32,
                    refit: true,
                });
            }
        }
    }

    // Deadline monitor: predicted finish = worst GPM's elapsed + weighted
    // backlog, plus the unassigned backlog spread across the GPMs.
    let backlog: f64 =
        pending.iter().map(|(_, b)| coeff.predict_total(b.triangles)).sum::<f64>() / n as f64;
    let mut worst = 0.0f64;
    for g2 in 0..n {
        let s = ex.gpm(GpmId(g2 as u8));
        let rem = counters.remaining(g2, coeff, s.transformed_vertices, s.shaded_pixels) * rate[g2];
        worst = worst.max(s.now.saturating_sub(frame_start[g2]) as f64 + rem);
    }
    if worst + backlog > res.deadline_cycles as f64 {
        let cur = ex.shade_scale();
        if cur > res.shed_floor {
            let next = (cur * res.shed_step).max(res.shed_floor);
            ex.set_shade_scale(next);
            stats.shed_events += 1;
            stats.min_shade_scale = stats.min_shade_scale.min(next);
            let cycle = ex.makespan();
            if let Some(tr) = ex.tracer_mut() {
                tr.record(TraceEvent::Shed { cycle, scale: next, reason: "deadline" });
            }
        }
    }
}

/// Splits the largest queued unit for each idle GPM (the "fine-grained task
/// mapping" of §5.2): half the triangles stay, half move to the idle GPM,
/// and the PA units duplicate the object's data there. `early_mask` marks
/// thieves admitted by the resilience early-steal rule (counted
/// separately); it is all-`false` on the fault-free path.
fn steal_for_idle(
    ex: &mut Executor<'_>,
    queues: &mut [VecDeque<QueuedBatch>],
    idle_mask: &[bool],
    early_mask: &[bool],
    cfg: &DistributionConfig,
    stats: &mut DistributionStats,
) {
    let n = queues.len();
    // With a sick GPM in play, even small splits beat leaving peers idle.
    let threshold =
        if cfg.resilience.enabled { cfg.resilience.steal_threshold } else { cfg.steal_threshold };
    let mut given_work = vec![false; n];
    loop {
        let idle: Vec<usize> = (0..n)
            .filter(|&g| {
                idle_mask[g] && !given_work[g] && queues[g].iter().all(|b| b.units.is_empty())
            })
            .collect();
        if idle.is_empty() {
            return;
        }
        // Find the largest splittable unit across all queues.
        let mut donor: Option<(usize, usize, usize, u64)> = None; // (gpm, batch, unit, tris)
        for (g, q) in queues.iter().enumerate() {
            for (bi, b) in q.iter().enumerate() {
                for (ui, u) in b.units.iter().enumerate() {
                    let tris = u
                        .tri_range
                        .map(|(s, e)| e - s)
                        .unwrap_or_else(|| ex.scene().object(u.object).triangle_count());
                    if tris >= threshold && donor.is_none_or(|(_, _, _, best)| tris > best) {
                        donor = Some((g, bi, ui, tris));
                    }
                }
            }
        }
        let Some((g, bi, ui, _tris)) = donor else {
            return;
        };
        let unit = queues[g][bi].units.remove(ui).expect("donor unit exists");
        let (s, e) = unit.tri_range.unwrap_or((0, ex.scene().object(unit.object).triangle_count()));
        let mid = (s + e) / 2;
        if mid == s || mid == e {
            // Too small to split after all; put it back and stop.
            queues[g][bi].units.insert(ui, unit);
            return;
        }
        let thief = idle[0];
        ex.replicate_object(unit.object, GpmId(thief as u8));
        let cycle = ex.gpm(GpmId(thief as u8)).now;
        let object = unit.object.0;
        if let Some(tr) = ex.tracer_mut() {
            tr.record(TraceEvent::Steal {
                cycle,
                thief: thief as u32,
                victim: g as u32,
                object,
                triangles: e - mid,
                early: early_mask[thief],
            });
        }
        let keep = unit.clone().with_tri_range(s, mid);
        let give = unit.with_tri_range(mid, e).without_command();
        queues[g][bi].units.insert(ui, keep);
        queues[thief].push_back(QueuedBatch { units: VecDeque::from([give]), track: None });
        given_work[thief] = true;
        stats.steals += 1;
        if early_mask[thief] {
            stats.early_steals += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::middleware::{build_batches, MiddlewareConfig};
    use oovr_gpu::{ColorMode, Composition, FaultPlan, FaultScenario, FbOrg, GpuConfig};
    use oovr_mem::Placement;
    use oovr_scene::BenchmarkSpec;

    fn run(cfg: DistributionConfig) -> (oovr_gpu::FrameReport, DistributionStats) {
        run_on(GpuConfig::default(), cfg)
    }

    fn run_on(
        gpu: GpuConfig,
        cfg: DistributionConfig,
    ) -> (oovr_gpu::FrameReport, DistributionStats) {
        let scene = BenchmarkSpec::new("dist-test", 160, 120, 160, 11).build();
        let batches = build_batches(&scene, MiddlewareConfig::default());
        let mut ex =
            Executor::new(gpu, &scene, Placement::FirstTouch, FbOrg::Columns, ColorMode::Deferred);
        let stats = run_distribution(&mut ex, &batches, &cfg);
        (ex.finish("OOVR", Composition::Distributed), stats)
    }

    #[test]
    fn all_work_executes_under_every_toggle_combo() {
        let scene = BenchmarkSpec::new("dist-test", 160, 120, 160, 11).build();
        let expected_tris = 2 * scene.total_triangles_per_eye();
        for (predictor, prealloc, stealing) in
            [(true, true, true), (false, false, false), (true, false, false), (false, true, true)]
        {
            let (r, _) = run(DistributionConfig {
                predictor,
                prealloc,
                stealing,
                ..DistributionConfig::default()
            });
            assert_eq!(
                r.counts.triangles, expected_tris,
                "toggles ({predictor},{prealloc},{stealing}) must render everything"
            );
        }
    }

    #[test]
    fn predictor_improves_balance_over_round_robin() {
        let (rr, _) = run(DistributionConfig {
            predictor: false,
            stealing: false,
            ..DistributionConfig::default()
        });
        let (pred, stats) = run(DistributionConfig {
            predictor: true,
            stealing: false,
            ..DistributionConfig::default()
        });
        assert!(stats.coefficients.is_some());
        assert!(stats.predicted_assignments > 0);
        // At test scale the effect is modest; the predictor must not be
        // materially worse than blind round-robin on balance or time.
        assert!(
            pred.imbalance_ratio() <= rr.imbalance_ratio() * 1.25,
            "predictor {} vs rr {}",
            pred.imbalance_ratio(),
            rr.imbalance_ratio()
        );
        assert!(
            (pred.frame_cycles as f64) <= rr.frame_cycles as f64 * 1.10,
            "predictor {} vs rr {} cycles",
            pred.frame_cycles,
            rr.frame_cycles
        );
    }

    #[test]
    fn prealloc_moves_bytes_and_reduces_remote_texture_reads() {
        let (no_pa, _) = run(DistributionConfig { prealloc: false, ..Default::default() });
        let (pa, stats) = run(DistributionConfig { prealloc: true, ..Default::default() });
        assert!(stats.prealloc_bytes > 0);
        let tex = |r: &oovr_gpu::FrameReport| r.traffic.remote_of(oovr_mem::TrafficClass::Texture);
        assert!(
            tex(&pa) <= tex(&no_pa),
            "prealloc texture remote {} vs without {}",
            tex(&pa),
            tex(&no_pa)
        );
    }

    #[test]
    fn calibration_shorter_than_batch_list_is_fine() {
        let scene = BenchmarkSpec::new("tiny", 96, 96, 6, 3).build();
        let batches = build_batches(&scene, MiddlewareConfig::default());
        let mut ex = Executor::new(
            GpuConfig::default(),
            &scene,
            Placement::FirstTouch,
            FbOrg::Columns,
            ColorMode::Deferred,
        );
        let stats = run_distribution(&mut ex, &batches, &DistributionConfig::default());
        let r = ex.finish("OOVR", Composition::Distributed);
        assert_eq!(r.counts.triangles, 2 * scene.total_triangles_per_eye());
        // Few batches: maybe everything fit in calibration.
        assert!(stats.predicted_assignments <= batches.len());
    }

    #[test]
    fn resilience_disabled_runs_are_reproducible_under_faults() {
        let plan = FaultPlan::new(FaultScenario::Mixed, 1.0, 5);
        let gpu = GpuConfig::default().with_fault(plan);
        let (a, sa) = run_on(gpu.clone(), DistributionConfig::default());
        let (b, sb) = run_on(gpu, DistributionConfig::default());
        assert_eq!(a.frame_cycles, b.frame_cycles);
        assert_eq!(a.counts.triangles, b.counts.triangles);
        // No countermeasure fires while resilience is off.
        for s in [&sa, &sb] {
            assert_eq!(s.recalibrations, 0);
            assert_eq!(s.early_steals, 0);
            assert_eq!(s.pa_retries, 0);
            assert_eq!(s.shed_events, 0);
            assert_eq!(s.min_shade_scale, 1.0);
            assert!(!s.deadline_missed);
        }
    }

    /// Fault-free frame length of the `run_on` test scene; fault plans in
    /// these tests scale their schedule horizon to it so the piecewise
    /// windows actually land inside the (short) test frame.
    fn fault_free_cycles() -> u64 {
        let (r, _) = run(DistributionConfig::default());
        r.frame_cycles
    }

    #[test]
    fn resilient_engine_renders_everything_under_every_scenario() {
        let scene = BenchmarkSpec::new("dist-test", 160, 120, 160, 11).build();
        let expected_tris = 2 * scene.total_triangles_per_eye();
        let horizon = fault_free_cycles();
        for scenario in FaultScenario::ALL {
            let gpu = GpuConfig::default()
                .with_fault(FaultPlan::new(scenario, 1.0, 7).with_horizon(horizon));
            let (r, _) = run_on(
                gpu,
                DistributionConfig { resilience: ResilienceConfig::on(), ..Default::default() },
            );
            assert_eq!(
                r.counts.triangles,
                expected_tris,
                "{} must render everything",
                scenario.name()
            );
        }
    }

    #[test]
    fn resilience_recovers_speed_under_gpm_throttle() {
        let plan =
            FaultPlan::new(FaultScenario::GpmThrottle, 0.9, 1).with_horizon(fault_free_cycles());
        let gpu = GpuConfig::default().with_fault(plan);
        let (plain, _) = run_on(gpu.clone(), DistributionConfig::default());
        let (hard, stats) = run_on(
            gpu,
            DistributionConfig { resilience: ResilienceConfig::on(), ..Default::default() },
        );
        assert!(
            hard.frame_cycles < plain.frame_cycles,
            "resilient {} vs plain {} cycles under throttle",
            hard.frame_cycles,
            plain.frame_cycles
        );
        assert!(
            stats.recalibrations > 0 || stats.early_steals > 0,
            "countermeasures fired: {stats:?}"
        );
    }

    #[test]
    fn deadline_monitor_sheds_and_reports_misses() {
        let tight = ResilienceConfig { deadline_cycles: 10_000, ..ResilienceConfig::on() };
        let scene = BenchmarkSpec::new("dist-test", 160, 120, 160, 11).build();
        let expected_tris = 2 * scene.total_triangles_per_eye();
        let (r, stats) =
            run(DistributionConfig { resilience: tight, ..DistributionConfig::default() });
        assert!(stats.shed_events > 0, "tight budget must shed: {stats:?}");
        assert!(stats.min_shade_scale < 1.0);
        assert!(stats.min_shade_scale >= tight.shed_floor);
        assert!(stats.deadline_missed, "10k cycles is unmeetable");
        // Shedding cheapens fragments; it never drops geometry.
        assert_eq!(r.counts.triangles, expected_tris);
    }

    #[test]
    fn pa_falls_back_to_remote_rendering_when_links_are_down() {
        let plan =
            FaultPlan::new(FaultScenario::LinkDown, 1.0, 3).with_horizon(fault_free_cycles());
        let gpu = GpuConfig::default().with_fault(plan);
        let (_, stats) = run_on(
            gpu,
            DistributionConfig { resilience: ResilienceConfig::on(), ..Default::default() },
        );
        assert!(stats.pa_retries > 0, "severity-1 link outages must trigger PA retries: {stats:?}");
    }
}
