//! The object-aware runtime batch distribution engine (§5.2, Fig. 13).
//!
//! The engine replaces the master–slave software distribution of
//! conventional object-level SFR with a hardware micro-controller that:
//!
//! 1. distributes the first [`CALIBRATION_BATCHES`] round-robin under the
//!    baseline First-Touch mapping and uses their measured times to fit the
//!    Eq. 3 coefficients ([`Coefficients::fit`]),
//! 2. thereafter assigns each batch to the GPM predicted to become
//!    available first (two counters per GPM: predicted-total vs. elapsed),
//! 3. lets the PA units *pre-allocate* the batch's pages to the chosen GPM
//!    so the data copy overlaps rendering, and
//! 4. when all batches are assigned and some GPMs idle, splits leftover
//!    large batches' triangles across idle GPMs (fine-grained stealing),
//!    with the PA units duplicating the required data.

use std::collections::VecDeque;

use oovr_gpu::{Executor, RenderUnit};
use oovr_mem::GpmId;

use crate::middleware::Batch;
use crate::predictor::{BatchSample, Coefficients, EngineCounters, CALIBRATION_BATCHES};

/// Distribution engine configuration (component toggles drive the ablation
/// benches).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributionConfig {
    /// Use the Eq. 3 predictor for assignment; `false` degrades to
    /// round-robin (the OO_APP software baseline).
    pub predictor: bool,
    /// Pre-allocate batch data to the assigned GPM (PA units).
    pub prealloc: bool,
    /// Split straggler batches across idle GPMs.
    pub stealing: bool,
    /// Batches queued ahead per GPM (the 4-entry batch queue of §5.2,
    /// spread over the GPMs).
    pub queue_depth: usize,
    /// Minimum triangles for a unit to be worth splitting when stealing.
    pub steal_threshold: u64,
    /// Number of calibration batches (paper: 8).
    pub calibration: usize,
}

impl Default for DistributionConfig {
    fn default() -> Self {
        DistributionConfig {
            predictor: true,
            prealloc: true,
            stealing: true,
            queue_depth: 2,
            steal_threshold: 1024,
            calibration: CALIBRATION_BATCHES,
        }
    }
}

/// Result of driving a frame through the distribution engine.
#[derive(Debug, Clone, Default)]
pub struct DistributionStats {
    /// Batches assigned by the predictor (after calibration).
    pub predicted_assignments: usize,
    /// Bytes moved by PA pre-allocation.
    pub prealloc_bytes: u64,
    /// Stealing splits performed.
    pub steals: usize,
    /// Fitted coefficients (if calibration ran).
    pub coefficients: Option<Coefficients>,
}

/// One queued batch: the units awaiting execution.
#[derive(Debug)]
struct QueuedBatch {
    units: VecDeque<RenderUnit>,
}

/// Drives all `batches` through `ex` under the engine's policy.
///
/// Every unit of every batch is executed exactly once; the function returns
/// engine statistics (the executor accumulates the frame report as usual).
pub fn run_distribution(
    ex: &mut Executor<'_>,
    batches: &[Batch],
    cfg: &DistributionConfig,
) -> DistributionStats {
    let n = ex.n_gpms();
    let mut stats = DistributionStats::default();

    let units_of = |b: &Batch| -> VecDeque<RenderUnit> {
        b.objects.iter().map(|&o| RenderUnit::smp(o)).collect()
    };

    // --- Phase 1: calibration, round-robin, First-Touch mapping. ---
    // Units are pumped in global time order across GPMs (so the shared
    // links see interleaved demand); batches stay contiguous per GPM, so
    // batch boundaries are exact despite the interleaving.
    let n_cal = cfg.calibration.min(batches.len());
    let mut cal_queues: Vec<VecDeque<(usize, RenderUnit)>> =
        (0..n).map(|_| VecDeque::new()).collect();
    let mut remaining_units = vec![0usize; n_cal];
    for (i, b) in batches[..n_cal].iter().enumerate() {
        for u in units_of(b) {
            cal_queues[i % n].push_back((i, u));
        }
        remaining_units[i] = b.objects.len();
    }
    let mut started: Vec<Option<(u64, u64, u64)>> = vec![None; n_cal];
    let mut samples = Vec::with_capacity(n_cal);
    let mut cal_running: Vec<Option<(usize, oovr_gpu::RunningUnit)>> =
        (0..n).map(|_| None).collect();
    loop {
        let mut best: Option<(usize, u64)> = None;
        for g in 0..n {
            if cal_running[g].is_none() && cal_queues[g].is_empty() {
                continue;
            }
            let now = ex.gpm(GpmId(g as u8)).now;
            if best.is_none_or(|(_, t)| now < t) {
                best = Some((g, now));
            }
        }
        let Some((g, _)) = best else { break };
        let gid = GpmId(g as u8);
        if cal_running[g].is_none() {
            let (bi, unit) = cal_queues[g].pop_front().expect("queue non-empty");
            let s = ex.gpm(gid);
            if started[bi].is_none() {
                started[bi] = Some((s.now, s.transformed_vertices, s.shaded_pixels));
            }
            cal_running[g] = Some((bi, ex.start_unit(&unit)));
        }
        let (bi, ru) = cal_running[g].as_mut().expect("running unit just ensured");
        let bi = *bi;
        if ex.step_unit(gid, ru) {
            cal_running[g] = None;
            remaining_units[bi] -= 1;
            if remaining_units[bi] == 0 {
                let s1 = ex.gpm(gid);
                let (t0, tv0, px0) = started[bi].expect("batch started before finishing");
                samples.push(BatchSample {
                    triangles: batches[bi].triangles,
                    tv: s1.transformed_vertices - tv0,
                    pixels: s1.shaded_pixels - px0,
                    cycles: s1.now - t0,
                });
            }
        }
    }

    let rest = &batches[n_cal..];
    if rest.is_empty() {
        return stats;
    }

    let coeff = if samples.is_empty() {
        Coefficients { c0: 1.0, c1: 1.0, c2: 1.0 }
    } else {
        Coefficients::fit(&samples)
    };
    stats.coefficients = Some(coeff);
    let baselines: Vec<(u64, u64)> = (0..n)
        .map(|g| {
            let s = ex.gpm(GpmId(g as u8));
            (s.transformed_vertices, s.shaded_pixels)
        })
        .collect();
    let mut counters = EngineCounters::new(baselines);

    // --- Phases 2–4: predictive assignment + execution pump. ---
    let mut pending: VecDeque<&Batch> = rest.iter().collect();
    let mut queues: Vec<VecDeque<QueuedBatch>> = (0..n).map(|_| VecDeque::new()).collect();
    let mut running: Vec<Option<oovr_gpu::RunningUnit>> = (0..n).map(|_| None).collect();
    let mut rr = 0usize;

    loop {
        // Top-up: assign pending batches to predicted-earliest GPMs with
        // queue space.
        while let Some(&batch) = pending.front() {
            let candidates: Vec<usize> =
                (0..n).filter(|&g| queues[g].len() < cfg.queue_depth).collect();
            if candidates.is_empty() {
                break;
            }
            let g = if cfg.predictor {
                *candidates
                    .iter()
                    .min_by(|&&a, &&b| {
                        let ra = {
                            let s = ex.gpm(GpmId(a as u8));
                            counters.remaining(a, &coeff, s.transformed_vertices, s.shaded_pixels)
                        };
                        let rb = {
                            let s = ex.gpm(GpmId(b as u8));
                            counters.remaining(b, &coeff, s.transformed_vertices, s.shaded_pixels)
                        };
                        ra.total_cmp(&rb)
                    })
                    .expect("nonempty candidates")
            } else {
                let g = candidates[rr % candidates.len()];
                rr += 1;
                g
            };
            pending.pop_front();
            counters.assign(g, coeff.predict_total(batch.triangles));
            stats.predicted_assignments += usize::from(cfg.predictor);
            if cfg.prealloc {
                for &obj in &batch.objects {
                    stats.prealloc_bytes += ex.prealloc_object(obj, GpmId(g as u8));
                }
            }
            queues[g].push_back(QueuedBatch { units: units_of(batch) });
        }

        // Stealing: once nothing is pending, idle GPMs carve triangles off
        // the largest queued unit elsewhere.
        if cfg.stealing && pending.is_empty() {
            let idle: Vec<bool> = (0..n)
                .map(|g| running[g].is_none() && queues[g].iter().all(|b| b.units.is_empty()))
                .collect();
            steal_for_idle(ex, &mut queues, &idle, cfg, &mut stats);
        }

        // Execute one quantum on the GPM with the earliest clock among
        // those with work (running or queued).
        let mut best: Option<(usize, u64)> = None;
        for g in 0..n {
            let has_work = running[g].is_some() || queues[g].iter().any(|b| !b.units.is_empty());
            if !has_work {
                continue;
            }
            let now = ex.gpm(GpmId(g as u8)).now;
            if best.is_none_or(|(_, t)| now < t) {
                best = Some((g, now));
            }
        }
        let Some((g, _)) = best else {
            if pending.is_empty() {
                break;
            }
            continue;
        };
        if running[g].is_none() {
            // Pop the next unit of the front batch (drop exhausted batches).
            while queues[g].front().is_some_and(|b| b.units.is_empty()) {
                queues[g].pop_front();
            }
            if let Some(front) = queues[g].front_mut() {
                let unit = front.units.pop_front().expect("front batch has units");
                running[g] = Some(ex.start_unit(&unit));
            }
        }
        if let Some(ru) = running[g].as_mut() {
            if ex.step_unit(GpmId(g as u8), ru) {
                running[g] = None;
                while queues[g].front().is_some_and(|b| b.units.is_empty()) {
                    queues[g].pop_front();
                }
            }
        }
    }
    stats
}

/// Splits the largest queued unit for each idle GPM (the "fine-grained task
/// mapping" of §5.2): half the triangles stay, half move to the idle GPM,
/// and the PA units duplicate the object's data there.
fn steal_for_idle(
    ex: &mut Executor<'_>,
    queues: &mut [VecDeque<QueuedBatch>],
    idle_mask: &[bool],
    cfg: &DistributionConfig,
    stats: &mut DistributionStats,
) {
    let n = queues.len();
    let mut given_work = vec![false; n];
    loop {
        let idle: Vec<usize> = (0..n)
            .filter(|&g| {
                idle_mask[g] && !given_work[g] && queues[g].iter().all(|b| b.units.is_empty())
            })
            .collect();
        if idle.is_empty() {
            return;
        }
        // Find the largest splittable unit across all queues.
        let mut donor: Option<(usize, usize, usize, u64)> = None; // (gpm, batch, unit, tris)
        for (g, q) in queues.iter().enumerate() {
            for (bi, b) in q.iter().enumerate() {
                for (ui, u) in b.units.iter().enumerate() {
                    let tris = u
                        .tri_range
                        .map(|(s, e)| e - s)
                        .unwrap_or_else(|| ex.scene().object(u.object).triangle_count());
                    if tris >= cfg.steal_threshold
                        && donor.is_none_or(|(_, _, _, best)| tris > best)
                    {
                        donor = Some((g, bi, ui, tris));
                    }
                }
            }
        }
        let Some((g, bi, ui, _tris)) = donor else {
            return;
        };
        let unit = queues[g][bi].units.remove(ui).expect("donor unit exists");
        let (s, e) = unit.tri_range.unwrap_or((0, ex.scene().object(unit.object).triangle_count()));
        let mid = (s + e) / 2;
        if mid == s || mid == e {
            // Too small to split after all; put it back and stop.
            queues[g][bi].units.insert(ui, unit);
            return;
        }
        let thief = idle[0];
        ex.replicate_object(unit.object, GpmId(thief as u8));
        let keep = unit.clone().with_tri_range(s, mid);
        let give = unit.with_tri_range(mid, e).without_command();
        queues[g][bi].units.insert(ui, keep);
        queues[thief].push_back(QueuedBatch { units: VecDeque::from([give]) });
        given_work[thief] = true;
        stats.steals += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::middleware::{build_batches, MiddlewareConfig};
    use oovr_gpu::{ColorMode, Composition, FbOrg, GpuConfig};
    use oovr_mem::Placement;
    use oovr_scene::BenchmarkSpec;

    fn run(cfg: DistributionConfig) -> (oovr_gpu::FrameReport, DistributionStats) {
        let scene = BenchmarkSpec::new("dist-test", 160, 120, 160, 11).build();
        let batches = build_batches(&scene, MiddlewareConfig::default());
        let mut ex = Executor::new(
            GpuConfig::default(),
            &scene,
            Placement::FirstTouch,
            FbOrg::Columns,
            ColorMode::Deferred,
        );
        let stats = run_distribution(&mut ex, &batches, &cfg);
        (ex.finish("OOVR", Composition::Distributed), stats)
    }

    #[test]
    fn all_work_executes_under_every_toggle_combo() {
        let scene = BenchmarkSpec::new("dist-test", 160, 120, 160, 11).build();
        let expected_tris = 2 * scene.total_triangles_per_eye();
        for (predictor, prealloc, stealing) in
            [(true, true, true), (false, false, false), (true, false, false), (false, true, true)]
        {
            let (r, _) = run(DistributionConfig {
                predictor,
                prealloc,
                stealing,
                ..DistributionConfig::default()
            });
            assert_eq!(
                r.counts.triangles, expected_tris,
                "toggles ({predictor},{prealloc},{stealing}) must render everything"
            );
        }
    }

    #[test]
    fn predictor_improves_balance_over_round_robin() {
        let (rr, _) = run(DistributionConfig {
            predictor: false,
            stealing: false,
            ..DistributionConfig::default()
        });
        let (pred, stats) = run(DistributionConfig {
            predictor: true,
            stealing: false,
            ..DistributionConfig::default()
        });
        assert!(stats.coefficients.is_some());
        assert!(stats.predicted_assignments > 0);
        // At test scale the effect is modest; the predictor must not be
        // materially worse than blind round-robin on balance or time.
        assert!(
            pred.imbalance_ratio() <= rr.imbalance_ratio() * 1.25,
            "predictor {} vs rr {}",
            pred.imbalance_ratio(),
            rr.imbalance_ratio()
        );
        assert!(
            (pred.frame_cycles as f64) <= rr.frame_cycles as f64 * 1.10,
            "predictor {} vs rr {} cycles",
            pred.frame_cycles,
            rr.frame_cycles
        );
    }

    #[test]
    fn prealloc_moves_bytes_and_reduces_remote_texture_reads() {
        let (no_pa, _) = run(DistributionConfig { prealloc: false, ..Default::default() });
        let (pa, stats) = run(DistributionConfig { prealloc: true, ..Default::default() });
        assert!(stats.prealloc_bytes > 0);
        let tex = |r: &oovr_gpu::FrameReport| r.traffic.remote_of(oovr_mem::TrafficClass::Texture);
        assert!(
            tex(&pa) <= tex(&no_pa),
            "prealloc texture remote {} vs without {}",
            tex(&pa),
            tex(&no_pa)
        );
    }

    #[test]
    fn calibration_shorter_than_batch_list_is_fine() {
        let scene = BenchmarkSpec::new("tiny", 96, 96, 6, 3).build();
        let batches = build_batches(&scene, MiddlewareConfig::default());
        let mut ex = Executor::new(
            GpuConfig::default(),
            &scene,
            Placement::FirstTouch,
            FbOrg::Columns,
            ColorMode::Deferred,
        );
        let stats = run_distribution(&mut ex, &batches, &DistributionConfig::default());
        let r = ex.finish("OOVR", Composition::Distributed);
        assert_eq!(r.counts.triangles, 2 * scene.total_triangles_per_eye());
        // Few batches: maybe everything fit in calibration.
        assert!(stats.predicted_assignments <= batches.len());
    }
}
