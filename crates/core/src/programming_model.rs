//! The object-oriented VR programming model (`OO_Application`, §5.1).
//!
//! The conventional object-level SFR treats the left and right views of an
//! object as independent rendering tasks. The OO-VR programming model
//! replaces the object's single viewport with a `viewportL`/`viewportR`
//! pair (via the `GL_OVR_multiview2`-style interface) so both views become
//! *one* task rendered through the SMP engine with shared texture data.
//!
//! [`OoApplication`] is the software interface: it wraps a scene and yields
//! one [`VrObjectTask`] per object, either with explicit per-eye viewports
//! or through the *auto-model* that derives the two viewports by shifting
//! the original along X (the paper's fallback for unmodified applications).

use oovr_gpu::RenderUnit;
use oovr_scene::{Eye, ObjectId, Scene, Viewport};

/// One merged multi-view rendering task: an object plus both eye viewports.
#[derive(Debug, Clone, PartialEq)]
pub struct VrObjectTask {
    /// The object rendered by this task.
    pub object: ObjectId,
    /// Left-eye viewport (`viewportL` of §5.1).
    pub viewport_l: Viewport,
    /// Right-eye viewport (`viewportR` of §5.1).
    pub viewport_r: Viewport,
    /// Triangles per eye (used by the middleware's batch cap and by the
    /// distribution engine's Eq. 3 predictor).
    pub triangles: u64,
}

impl VrObjectTask {
    /// The render unit executing this task (SMP merged views).
    pub fn unit(&self) -> RenderUnit {
        RenderUnit::smp(self.object)
    }
}

/// The object-oriented VR application layer over a scene.
///
/// In contrast to single-pass stereo in modern VR SDKs, `OO_Application`
/// does *not* decompose the views at initialization: the merged task still
/// follows the object-level SFR execution model, which is what lets the
/// middleware group tasks into locality batches.
#[derive(Debug, Clone)]
pub struct OoApplication<'s> {
    scene: &'s Scene,
}

impl<'s> OoApplication<'s> {
    /// Wraps a scene in the OO programming model.
    pub fn new(scene: &'s Scene) -> Self {
        OoApplication { scene }
    }

    /// The underlying scene.
    pub fn scene(&self) -> &'s Scene {
        self.scene
    }

    /// Merged multi-view tasks in submission order, with per-eye viewports
    /// produced by the auto-model (viewport shift along X, §5.1).
    pub fn tasks(&self) -> Vec<VrObjectTask> {
        let res = self.scene.resolution();
        self.scene
            .objects()
            .iter()
            .map(|o| VrObjectTask {
                object: o.id(),
                viewport_l: o.viewport(res, Eye::Left),
                viewport_r: o.viewport(res, Eye::Right),
                triangles: o.triangle_count(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oovr_gpu::EyeMode;
    use oovr_scene::SceneBuilder;

    fn scene() -> Scene {
        SceneBuilder::new(64, 64)
            .texture("t", 64, 64)
            .object("a", |o| {
                o.rect(0.2, 0.2, 0.4, 0.4).grid(3, 3).texture("t", 1.0);
            })
            .build()
    }

    #[test]
    fn tasks_merge_both_views() {
        let s = scene();
        let app = OoApplication::new(&s);
        let tasks = app.tasks();
        assert_eq!(tasks.len(), 1);
        let t = &tasks[0];
        assert_eq!(t.triangles, 18);
        // Auto-model viewports: right eye sits one eye-width to the right.
        assert!(t.viewport_r.x > t.viewport_l.x);
        assert_eq!(t.unit().mode, EyeMode::BothSmp);
    }

    #[test]
    fn tasks_preserve_submission_order() {
        let s = SceneBuilder::new(64, 64)
            .texture("t", 64, 64)
            .object("a", |o| {
                o.texture("t", 1.0);
            })
            .object("b", |o| {
                o.texture("t", 1.0);
            })
            .build();
        let app = OoApplication::new(&s);
        let ids: Vec<_> = app.tasks().iter().map(|t| t.object).collect();
        assert_eq!(ids, vec![ObjectId(0), ObjectId(1)]);
    }
}
