//! `OO_Middleware` (§5.1): texture-sharing-level batching.
//!
//! The middleware bridges the OO application and the multi-GPU system. It
//! walks the object queue in submission order, repeatedly picking the head
//! as a batch *root* and folding in later objects whose **texture sharing
//! level** with the batch exceeds a threshold:
//!
//! ```text
//! TSL = Σ_t Pr(t)·Pn(t) / Σ_t Pr(t)          (Eq. 1)
//! ```
//!
//! where `t` ranges over textures shared between the batch (`Pr`) and the
//! candidate (`Pn`), each `P` being the texture's share of its side's
//! sampling. Batches are capped at 4096 triangles to prevent load
//! imbalance from an inflated batch; objects that *depend* on a batch
//! member are merged unconditionally (raising the cap) so the
//! programmer-defined order is preserved.

use std::collections::HashMap;

use oovr_scene::{ObjectId, Scene, TextureId};

/// Default TSL threshold for grouping (the paper groups when TSL > 0.5).
pub const DEFAULT_TSL_THRESHOLD: f64 = 0.5;

/// Default batch triangle cap (the paper's 4096).
pub const DEFAULT_TRIANGLE_CAP: u64 = 4096;

/// Texture-sharing level between a root's texture mix and a target's
/// (Eq. 1). Both slices are `(texture, share)` with shares summing to ~1.
/// Returns a value in `[0, 1]`: 1 when the target's sampling is entirely
/// covered by the root's textures in proportion, 0 when they share nothing.
///
/// ```
/// use oovr::middleware::tsl;
/// use oovr_scene::TextureId;
///
/// let stone_pillar = vec![(TextureId(0), 1.0)];
/// let mossy_pillar = vec![(TextureId(0), 0.6), (TextureId(1), 0.4)];
/// let cloth_flag = vec![(TextureId(2), 1.0)];
/// assert!(tsl(&stone_pillar, &mossy_pillar) > 0.5); // grouped
/// assert_eq!(tsl(&stone_pillar, &cloth_flag), 0.0); // not grouped
/// ```
pub fn tsl(root: &[(TextureId, f64)], target: &[(TextureId, f64)]) -> f64 {
    let denom: f64 = root.iter().map(|(_, p)| p).sum();
    if denom <= 0.0 {
        return 0.0;
    }
    let mut num = 0.0;
    for (t, pr) in root {
        if let Some((_, pn)) = target.iter().find(|(tt, _)| tt == t) {
            num += pr * pn;
        }
    }
    num / denom
}

/// A batch: the smallest scheduling unit on the multi-GPU system.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// Member objects in submission order.
    pub objects: Vec<ObjectId>,
    /// Total triangles per eye across members.
    pub triangles: u64,
    /// Merged texture mix of the batch, triangle-weighted.
    pub textures: Vec<(TextureId, f64)>,
}

impl Batch {
    /// Number of member objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the batch has no members (never true for produced batches).
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

/// Batching configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MiddlewareConfig {
    /// Group when TSL exceeds this (paper: 0.5).
    pub tsl_threshold: f64,
    /// Base triangle cap per batch (paper: 4096).
    pub triangle_cap: u64,
}

impl Default for MiddlewareConfig {
    fn default() -> Self {
        MiddlewareConfig {
            tsl_threshold: DEFAULT_TSL_THRESHOLD,
            triangle_cap: DEFAULT_TRIANGLE_CAP,
        }
    }
}

/// Groups a scene's objects into batches (Fig. 12's middleware loop).
///
/// Every object appears in exactly one batch; batch order follows the
/// submission order of each batch's root.
pub fn build_batches(scene: &Scene, cfg: MiddlewareConfig) -> Vec<Batch> {
    struct Item {
        id: ObjectId,
        triangles: u64,
        textures: Vec<(TextureId, f64)>,
        depends_on: Option<ObjectId>,
    }
    let mut queue: Vec<Item> = scene
        .objects()
        .iter()
        .map(|o| Item {
            id: o.id(),
            triangles: o.triangle_count(),
            textures: o.textures().iter().map(|tu| (tu.texture, f64::from(tu.share))).collect(),
            depends_on: o.depends_on(),
        })
        .collect();

    let mut batches = Vec::new();
    while !queue.is_empty() {
        let root = queue.remove(0);
        let mut members = vec![root.id];
        let mut tris = root.triangles;
        let mut cap = cfg.triangle_cap;
        // Triangle-weighted merged texture mix.
        let mut mix: HashMap<TextureId, f64> = HashMap::new();
        for (t, p) in &root.textures {
            *mix.entry(*t).or_insert(0.0) += p * root.triangles as f64;
        }
        let mix_vec = |mix: &HashMap<TextureId, f64>, tris: u64| -> Vec<(TextureId, f64)> {
            let w = tris.max(1) as f64;
            mix.iter().map(|(t, v)| (*t, v / w)).collect()
        };

        let mut i = 0;
        while i < queue.len() {
            let cand = &queue[i];
            let depends_on_batch = cand.depends_on.is_some_and(|d| members.contains(&d));
            let merge = if depends_on_batch {
                // Forced merge: programmer-defined order; raise the cap.
                cap += cand.triangles;
                true
            } else if tris >= cap {
                // Batch full: keep scanning only for dependents.
                i += 1;
                continue;
            } else {
                tsl(&mix_vec(&mix, tris), &cand.textures) > cfg.tsl_threshold
            };
            if merge {
                let cand = queue.remove(i);
                for (t, p) in &cand.textures {
                    *mix.entry(*t).or_insert(0.0) += p * cand.triangles as f64;
                }
                tris += cand.triangles;
                members.push(cand.id);
            } else {
                i += 1;
            }
        }
        let textures = mix_vec(&mix, tris);
        batches.push(Batch { objects: members, triangles: tris, textures });
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;
    use oovr_scene::SceneBuilder;

    #[test]
    fn tsl_identical_textures_is_one() {
        let a = vec![(TextureId(0), 1.0)];
        let b = vec![(TextureId(0), 1.0)];
        assert!((tsl(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tsl_disjoint_is_zero() {
        let a = vec![(TextureId(0), 1.0)];
        let b = vec![(TextureId(1), 1.0)];
        assert_eq!(tsl(&a, &b), 0.0);
    }

    #[test]
    fn tsl_partial_share() {
        // Root all-stone; target half stone half cloth → 0.5.
        let a = vec![(TextureId(0), 1.0)];
        let b = vec![(TextureId(0), 0.5), (TextureId(1), 0.5)];
        assert!((tsl(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tsl_is_bounded() {
        let a = vec![(TextureId(0), 0.7), (TextureId(1), 0.3)];
        let b = vec![(TextureId(0), 0.2), (TextureId(2), 0.8)];
        let v = tsl(&a, &b);
        assert!((0.0..=1.0).contains(&v));
    }

    fn pillars_scene() -> oovr_scene::Scene {
        // The paper's Fig. 12 example: two stone pillars share a texture,
        // the flag between them does not.
        SceneBuilder::new(64, 64)
            .texture("stone", 128, 128)
            .texture("cloth", 64, 64)
            .object("pillar1", |o| {
                o.grid(4, 4).texture("stone", 1.0);
            })
            .object("flag", |o| {
                o.grid(2, 2).texture("cloth", 1.0);
            })
            .object("pillar2", |o| {
                o.grid(4, 4).texture("stone", 1.0);
            })
            .build()
    }

    #[test]
    fn pillars_group_across_the_flag() {
        let batches = build_batches(&pillars_scene(), MiddlewareConfig::default());
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].objects, vec![ObjectId(0), ObjectId(2)], "pillars share stone");
        assert_eq!(batches[1].objects, vec![ObjectId(1)], "flag alone");
        assert_eq!(batches[0].triangles, 64);
    }

    #[test]
    fn every_object_in_exactly_one_batch() {
        let scene = oovr_scene::BenchmarkSpec::new("t", 128, 128, 60, 5).build();
        let batches = build_batches(&scene, MiddlewareConfig::default());
        let mut seen: Vec<ObjectId> = batches.iter().flat_map(|b| b.objects.clone()).collect();
        seen.sort();
        let expect: Vec<ObjectId> = scene.objects().iter().map(|o| o.id()).collect();
        assert_eq!(seen, expect);
        let total: u64 = batches.iter().map(|b| b.triangles).sum();
        assert_eq!(total, scene.total_triangles_per_eye());
    }

    #[test]
    fn triangle_cap_limits_batches() {
        let scene = SceneBuilder::new(64, 64)
            .texture("t", 64, 64)
            .object("a", |o| {
                o.grid(40, 40).texture("t", 1.0); // 3200 tris
            })
            .object("b", |o| {
                o.grid(40, 40).texture("t", 1.0);
            })
            .object("c", |o| {
                o.grid(40, 40).texture("t", 1.0);
            })
            .build();
        let batches = build_batches(&scene, MiddlewareConfig::default());
        // a+b exceed 4096 after merge; c starts a new batch.
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].objects.len(), 2);
        assert!(batches[0].triangles > DEFAULT_TRIANGLE_CAP);
    }

    #[test]
    fn dependents_merge_even_without_sharing() {
        let scene = SceneBuilder::new(64, 64)
            .texture("t", 64, 64)
            .texture("u", 64, 64)
            .object("base", |o| {
                o.grid(2, 2).texture("t", 1.0);
            })
            .object("decal", |o| {
                o.grid(2, 2).texture("u", 1.0).depends_on(ObjectId(0));
            })
            .build();
        let batches = build_batches(&scene, MiddlewareConfig::default());
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].objects, vec![ObjectId(0), ObjectId(1)]);
    }

    #[test]
    fn zero_threshold_groups_everything_sharing_anything() {
        let scene = pillars_scene();
        let loose =
            build_batches(&scene, MiddlewareConfig { tsl_threshold: -0.1, triangle_cap: 1 << 30 });
        assert_eq!(loose.len(), 1, "negative threshold merges all");
        let strict =
            build_batches(&scene, MiddlewareConfig { tsl_threshold: 1.1, triangle_cap: 4096 });
        assert_eq!(strict.len(), 3, "impossible threshold keeps objects separate");
    }

    #[test]
    fn batches_respect_submission_order_of_roots() {
        let scene = oovr_scene::BenchmarkSpec::new("t", 128, 128, 40, 9).build();
        let batches = build_batches(&scene, MiddlewareConfig::default());
        // Roots (first member of each batch) appear in ascending id order —
        // the middleware walks the queue front to back.
        let roots: Vec<u32> = batches.iter().map(|b| b.objects[0].0).collect();
        let mut sorted = roots.clone();
        sorted.sort();
        assert_eq!(roots, sorted);
        for b in &batches {
            assert!(!b.is_empty());
            assert_eq!(b.len(), b.objects.len());
        }
    }

    #[test]
    fn higher_threshold_never_produces_fewer_batches() {
        let scene = oovr_scene::BenchmarkSpec::new("t", 128, 128, 60, 21).build();
        let mut last = 0;
        for threshold in [0.1, 0.5, 0.9] {
            let n = build_batches(
                &scene,
                MiddlewareConfig { tsl_threshold: threshold, ..Default::default() },
            )
            .len();
            assert!(n >= last, "threshold {threshold}: {n} batches < {last}");
            last = n;
        }
    }

    #[test]
    fn merged_mix_shares_sum_to_one() {
        let batches = build_batches(&pillars_scene(), MiddlewareConfig::default());
        for b in &batches {
            let sum: f64 = b.textures.iter().map(|(_, p)| p).sum();
            assert!((sum - 1.0).abs() < 1e-9, "shares sum to {sum}");
        }
    }
}
