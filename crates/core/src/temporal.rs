//! Pose-correlated temporal reuse: per-object memoization with ATW-style
//! reprojection for objects whose projected bound barely moved.
//!
//! Real head motion at 90 Hz is strongly frame-to-frame correlated: most
//! objects' projected footprints move by a pixel or two between vsyncs.
//! This module turns that correlation into a cost model. A steady-state
//! OO-VR frame is profiled once into per-object, per-GPM busy cycles
//! ([`OoVr::render_frames_profiled`](crate::schemes::OoVr::render_frames_profiled)),
//! and each subsequent frame is costed by *deciding*, per object, whether
//! its projected viewport bound moved past a reuse threshold under the
//! session's pose delta:
//!
//! * **moved** (`motion >= reuse_threshold`) — the object re-renders at its
//!   profiled cost on every GPM that worked on it;
//! * **still** (`motion < reuse_threshold`) — the object is memoized: its
//!   resident GPM (the one that did most of its work, where its scratch
//!   pixels live) pays only the ATW pixel-warp cost
//!   [`atw::warp_cycles_for_pixels`] for its shaded pixels.
//!
//! The frame saving is the drop in the *critical-path* GPM load:
//! `saved = max_g full_g − max_g reduced_g`, where `full_g` is the profiled
//! per-GPM busy total and `reduced_g` replaces each reused object's busy
//! with its (clamped) warp cost at its resident GPM. A session's temporal
//! frame cost is then `steady_cost − saved`, floored at 1 cycle.
//!
//! # Exactness at threshold 0
//!
//! Reuse requires `motion < reuse_threshold` *strictly*; motion is
//! non-negative, so at `reuse_threshold == 0.0` no object ever reuses, the
//! reduced loads equal the full loads, `saved == 0`, and every consumer
//! sees bit-identical costs to the non-temporal path. The differential
//! proptest in `tests/prop_temporal.rs` pins this.
//!
//! # Monotonicity in the threshold
//!
//! Raising the threshold only grows the reuse set (strict comparison
//! against a larger bound). Moving one object from "re-render" to "reuse"
//! removes its busy from every GPM and adds its warp — clamped to never
//! exceed the busy it replaces — at one GPM, so every per-GPM load is
//! pointwise non-increasing, the critical path is non-increasing, and
//! `saved` is non-decreasing. Reuse ratio up, frame cost down, always.

use oovr_frameworks::atw;
use oovr_gpu::GpuConfig;
use oovr_mem::Cycle;
use oovr_scene::{MotionProbe, Pose, Scene};

/// Default reuse threshold in pixels of projected-bound motion.
///
/// The default OU pose model jitters ~0.035 rad/frame, which projects to
/// roughly a dozen pixels at the Table 3 resolutions; 16 px reuses the
/// slow-moving bulk of a scene while re-rendering anything the eye tracks.
pub const DEFAULT_REUSE_THRESHOLD: f64 = 16.0;

/// The temporal-reuse axis of a scheme: how far (in pixels) an object's
/// projected bound may move before it must re-render.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemporalConfig {
    /// Projected-bound motion below which an object is reused (strict).
    /// `0.0` disables reuse exactly (bit-identical to full re-render).
    pub reuse_threshold: f64,
}

impl TemporalConfig {
    /// The exact configuration: no reuse, bit-identical to the existing
    /// full re-render path.
    pub fn exact() -> Self {
        TemporalConfig { reuse_threshold: 0.0 }
    }
}

impl Default for TemporalConfig {
    fn default() -> Self {
        TemporalConfig { reuse_threshold: DEFAULT_REUSE_THRESHOLD }
    }
}

/// Outcome of one per-frame reuse decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemporalDecision {
    /// Objects memoized (charged the ATW warp only).
    pub reused: u32,
    /// Objects re-rendered at full cost.
    pub rerendered: u32,
    /// Critical-path cycles saved versus a full re-render.
    pub saved: Cycle,
}

impl TemporalDecision {
    /// Fraction of objects reused this frame, in `[0, 1]`.
    pub fn reuse_ratio(&self) -> f64 {
        let n = self.reused + self.rerendered;
        if n == 0 {
            0.0
        } else {
            f64::from(self.reused) / f64::from(n)
        }
    }

    /// Applies the saving to a full-re-render frame cost.
    pub fn apply(&self, base: Cycle) -> Cycle {
        base.saturating_sub(self.saved).max(1)
    }
}

/// A steady-state OO-VR frame decomposed per object: what skipping each
/// object would save on each GPM, and what warping it instead would cost.
///
/// Built by
/// [`OoVr::render_frames_profiled`](crate::schemes::OoVr::render_frames_profiled);
/// consumed per frame via [`decide`](Self::decide) under a session's pose
/// delta.
#[derive(Debug, Clone)]
pub struct TemporalProfile {
    probes: Vec<MotionProbe>,
    /// Steady-frame busy attribution, flattened `[object × n_gpms + gpm]`.
    busy: Vec<Cycle>,
    /// Per-object ATW warp cost, clamped to the busy it would replace.
    warp: Vec<Cycle>,
    /// Per-object resident GPM (argmax busy, ties to the lowest index).
    resident: Vec<u8>,
    n_gpms: usize,
    /// Per-GPM full-re-render busy totals.
    full: Vec<Cycle>,
    /// Critical-path GPM load of a full re-render.
    full_max: Cycle,
    /// The profiled steady frame's total cost (busy max + composition).
    steady_cycles: Cycle,
}

impl TemporalProfile {
    /// Builds a profile from a steady frame's per-object attribution.
    ///
    /// `busy` is the executor's flattened `[object × n_gpms + gpm]` busy
    /// delta over the frame; `pixels` its per-object shaded-pixel delta.
    ///
    /// # Panics
    ///
    /// Panics if the attribution extents disagree with the scene.
    pub fn new(
        scene: &Scene,
        cfg: &GpuConfig,
        n_gpms: usize,
        busy: Vec<Cycle>,
        pixels: &[u64],
        steady_cycles: Cycle,
    ) -> Self {
        let n = scene.objects().len();
        assert_eq!(busy.len(), n * n_gpms, "busy attribution extent");
        assert_eq!(pixels.len(), n, "pixel attribution extent");
        let mut full = vec![0; n_gpms];
        for o in 0..n {
            for (f, b) in full.iter_mut().zip(&busy[o * n_gpms..(o + 1) * n_gpms]) {
                *f += b;
            }
        }
        let full_max = full.iter().copied().max().unwrap_or(0);
        let resident: Vec<u8> = (0..n)
            .map(|o| {
                let row = &busy[o * n_gpms..(o + 1) * n_gpms];
                let (g, _) = row
                    .iter()
                    .enumerate()
                    .max_by(|(ga, a), (gb, b)| a.cmp(b).then(gb.cmp(ga)))
                    .expect("at least one GPM");
                g as u8
            })
            .collect();
        // Clamp each warp to the busy it replaces: reusing an object must
        // never cost more than rendering it, or the threshold sweep would
        // lose its monotonicity (and a degenerate off-screen object could
        // make reuse a pessimization).
        let warp: Vec<Cycle> = pixels
            .iter()
            .enumerate()
            .map(|(o, &px)| {
                atw::warp_cycles_for_pixels(px, cfg).min(busy[o * n_gpms + resident[o] as usize])
            })
            .collect();
        TemporalProfile {
            probes: scene.motion_probes(),
            busy,
            warp,
            resident,
            n_gpms,
            full,
            full_max,
            steady_cycles,
        }
    }

    /// Number of profiled objects.
    pub fn n_objects(&self) -> usize {
        self.probes.len()
    }

    /// The profiled steady frame's full-re-render cost.
    pub fn steady_cycles(&self) -> Cycle {
        self.steady_cycles
    }

    /// Critical-path GPM busy of a full re-render (excludes composition).
    pub fn busy_max(&self) -> Cycle {
        self.full_max
    }

    /// Decides reuse for one frame under the pose delta `from → to`.
    ///
    /// Deterministic f64 throughout — same poses and threshold, same
    /// decision, on every call and every host.
    pub fn decide(&self, from: &Pose, to: &Pose, threshold: f64) -> TemporalDecision {
        let n = self.probes.len() as u32;
        if threshold <= 0.0 || n == 0 {
            // Motion is non-negative and the comparison strict: nothing can
            // reuse. Skip the probe walk so the exact path costs nothing.
            return TemporalDecision { reused: 0, rerendered: n, saved: 0 };
        }
        let mut loads = self.full.clone();
        let mut reused = 0u32;
        for (o, probe) in self.probes.iter().enumerate() {
            if probe.motion(from, to) < threshold {
                reused += 1;
                for (l, b) in loads.iter_mut().zip(&self.busy[o * self.n_gpms..]) {
                    *l -= b;
                }
                loads[self.resident[o] as usize] += self.warp[o];
            }
        }
        let reduced_max = loads.iter().copied().max().unwrap_or(0);
        TemporalDecision { reused, rerendered: n - reused, saved: self.full_max - reduced_max }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::OoVr;
    use oovr_scene::{benchmarks, PoseTrajectory};

    fn profiled() -> (Scene, TemporalProfile) {
        let scene = benchmarks::hl2_640().scaled(0.12).build();
        let cfg = GpuConfig::default();
        let (_, profile) = OoVr::new().render_frames_profiled(&scene, &cfg, 2);
        (scene, profile)
    }

    #[test]
    fn profile_accounts_for_the_whole_steady_frame() {
        let scene = benchmarks::hl2_640().scaled(0.12).build();
        let cfg = GpuConfig::default();
        let (reports, profile) = OoVr::new().render_frames_profiled(&scene, &cfg, 2);
        let steady = reports.last().unwrap();
        assert_eq!(profile.steady_cycles(), steady.frame_cycles);
        // Every steady busy cycle was attributed to some object, so the
        // per-GPM totals reconstruct the report's critical path exactly.
        assert_eq!(
            profile.busy_max() + steady.composition_cycles,
            steady.frame_cycles,
            "busy max {} + composition {}",
            profile.busy_max(),
            steady.composition_cycles
        );
        assert_eq!(profile.n_objects(), scene.objects().len());
    }

    #[test]
    fn profiled_reports_match_the_unprofiled_render() {
        let scene = benchmarks::hl2_640().scaled(0.12).build();
        let cfg = GpuConfig::default();
        let plain = OoVr::new().render_frames(&scene, &cfg, 2);
        let (profiled, _) = OoVr::new().render_frames_profiled(&scene, &cfg, 2);
        for (a, b) in plain.iter().zip(&profiled) {
            assert_eq!(a.frame_cycles, b.frame_cycles);
            assert_eq!(a.gpm_busy, b.gpm_busy);
            assert_eq!(a.counts.pixels_out, b.counts.pixels_out);
        }
    }

    #[test]
    fn threshold_zero_never_reuses() {
        let (_, profile) = profiled();
        let mut traj = PoseTrajectory::new(7);
        let from = traj.current();
        let to = traj.step();
        let d = profile.decide(&from, &to, 0.0);
        assert_eq!(d.reused, 0);
        assert_eq!(d.rerendered, profile.n_objects() as u32);
        assert_eq!(d.saved, 0);
        assert_eq!(d.apply(123_456), 123_456);
        assert_eq!(d.reuse_ratio(), 0.0);
    }

    #[test]
    fn infinite_threshold_reuses_everything() {
        let (_, profile) = profiled();
        let mut traj = PoseTrajectory::new(7);
        let from = traj.current();
        let to = traj.step();
        let d = profile.decide(&from, &to, f64::INFINITY);
        assert_eq!(d.reused, profile.n_objects() as u32);
        assert!(d.saved > 0, "warping everything beats rendering everything");
        assert!(d.apply(profile.steady_cycles()) < profile.steady_cycles());
        assert_eq!(d.reuse_ratio(), 1.0);
    }

    #[test]
    fn still_pose_reuses_under_any_positive_threshold() {
        let (_, profile) = profiled();
        let p = Pose::identity();
        let d = profile.decide(&p, &p, 1e-9);
        assert_eq!(d.reused, profile.n_objects() as u32, "zero motion reuses all");
    }

    #[test]
    fn decision_is_monotone_in_threshold() {
        let (_, profile) = profiled();
        let mut traj = PoseTrajectory::new(42);
        let from = traj.current();
        let to = traj.step();
        let mut last = profile.decide(&from, &to, 0.0);
        for t in [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 64.0, f64::INFINITY] {
            let d = profile.decide(&from, &to, t);
            assert!(d.reused >= last.reused, "reuse grows with threshold");
            assert!(d.saved >= last.saved, "saving grows with threshold");
            last = d;
        }
    }

    #[test]
    fn default_threshold_reuses_but_not_everything_under_real_motion() {
        let (_, profile) = profiled();
        let mut traj = PoseTrajectory::new(3);
        let from = traj.current();
        let to = traj.step();
        let d = profile.decide(&from, &to, TemporalConfig::default().reuse_threshold);
        assert!(d.reused > 0, "a 90 Hz pose delta leaves most bounds nearly still");
        assert!(d.saved > 0);
    }
}
