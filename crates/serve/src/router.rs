//! The cluster session router: placement policies and retry/repair knobs.
//!
//! The router is the piece of the cluster tier that decides *where* a
//! session lives and *what happens* when that choice goes bad. Placement
//! is a pure function from a session key plus a snapshot of per-server
//! state to a preference order over servers, so every policy is trivially
//! deterministic and testable in isolation from the cluster simulation.
//!
//! Three policies ship:
//!
//! * [`Placement::LeastLoaded`] — classic greedy: try servers in ascending
//!   predicted-load order. Spreads everything, ignores what is *on* each
//!   server.
//! * [`Placement::Affinity`] — workload-affinity packing: prefer servers
//!   already hosting sessions that replay the *same memoized cost stream*,
//!   then empty servers, then the rest. Co-located sessions share warm
//!   per-stream state, so a packed server avoids the cross-stream
//!   working-set tax the cluster model charges per extra resident stream.
//! * [`Placement::ConsistentHash`] — rendezvous (highest-random-weight)
//!   hashing of the session key: placement is stable under server-set
//!   churn without any coordination state, the classic stateless-router
//!   choice.
//!
//! [`RouterConfig`] gates the robustness features separately from
//! placement: admission retry with capped exponential backoff across
//! candidate servers, failover of in-flight sessions off dead servers,
//! overload migration behind an anti-ping-pong residency guard, and
//! cluster-wide quality shedding before any session is dropped. The
//! [`baseline`](RouterConfig::baseline) configuration turns all of them
//! off — that is the no-retry/no-migration arm every chaos cell is
//! measured against.

/// Snapshot of one server the router places against.
#[derive(Debug, Clone, Default)]
pub struct ServerView {
    /// Whether the server is currently serving (rate above zero).
    pub alive: bool,
    /// Aggregate Eq. 3 predicted demand (cycles/vsync) of resident
    /// sessions.
    pub load: f64,
    /// Resident active sessions.
    pub active: u32,
    /// Distinct cost-stream ids resident on the server.
    pub streams: Vec<usize>,
}

/// Pluggable placement policy of the session router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Ascending predicted-load order.
    LeastLoaded,
    /// Pack sessions sharing a cost stream onto the same servers.
    Affinity,
    /// Rendezvous (highest-random-weight) hash of the session key.
    ConsistentHash,
}

impl Placement {
    /// All policies, in table column order.
    pub const ALL: [Placement; 3] =
        [Placement::LeastLoaded, Placement::Affinity, Placement::ConsistentHash];

    /// Short stable name for tables and CLI arguments.
    pub fn label(self) -> &'static str {
        match self {
            Placement::LeastLoaded => "least-loaded",
            Placement::Affinity => "affinity",
            Placement::ConsistentHash => "hash",
        }
    }

    /// Parses the labels accepted by the `figures` CLI.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "least-loaded" | "ll" => Some(Placement::LeastLoaded),
            "affinity" | "af" => Some(Placement::Affinity),
            "hash" | "ch" => Some(Placement::ConsistentHash),
            _ => None,
        }
    }

    /// Preference order over server indices for a session identified by
    /// `key` replaying cost stream `stream`. Dead servers are *not*
    /// filtered here — liveness awareness is a router feature
    /// ([`RouterConfig::failover`]), not a placement one.
    pub fn order(self, key: u64, stream: usize, servers: &[ServerView]) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..servers.len()).collect();
        match self {
            Placement::LeastLoaded => {
                idx.sort_by(|&a, &b| cmp_f64(servers[a].load, servers[b].load).then(a.cmp(&b)));
            }
            Placement::Affinity => {
                // Same-stream hosts first, then empty servers (fresh
                // packing targets), then mixed servers — each tier in
                // ascending-load order.
                let tier = |s: &ServerView| {
                    if s.streams.contains(&stream) {
                        0u8
                    } else if s.active == 0 {
                        1
                    } else {
                        2
                    }
                };
                idx.sort_by(|&a, &b| {
                    tier(&servers[a])
                        .cmp(&tier(&servers[b]))
                        .then(cmp_f64(servers[a].load, servers[b].load))
                        .then(a.cmp(&b))
                });
            }
            Placement::ConsistentHash => {
                // Rendezvous hashing: weight(server) = mix(key, server);
                // descending weight gives each key its own stable server
                // preference list, uniformly spread across keys.
                idx.sort_by(|&a, &b| {
                    rendezvous_weight(key, b as u64)
                        .cmp(&rendezvous_weight(key, a as u64))
                        .then(a.cmp(&b))
                });
            }
        }
        idx
    }
}

/// Total order on finite floats (loads are finite sums of predictions).
fn cmp_f64(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal)
}

/// SplitMix64-style avalanche mix of (key, server) for rendezvous hashing.
fn rendezvous_weight(key: u64, server: u64) -> u64 {
    let mut z = key ^ server.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Robustness knobs of the session router.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterConfig {
    /// Retry rejected admissions on other candidate servers.
    pub retry: bool,
    /// Total admission attempts per session (1 = no retry).
    pub max_attempts: u32,
    /// First retry backoff, in vsync intervals; doubles per attempt.
    pub backoff_intervals: u32,
    /// Cap on the per-attempt backoff, in vsync intervals.
    pub backoff_cap: u32,
    /// Fail sessions over off dead servers (also makes admission
    /// liveness-aware: the router health-checks candidates).
    pub failover: bool,
    /// Migrate sessions off overloaded/degraded servers.
    pub migrate: bool,
    /// Minimum intervals a session stays put after a move before it may be
    /// migrated again (anti-ping-pong guard; failover ignores it — a dead
    /// host overrides stability).
    pub min_residency: u32,
    /// Shed quality cluster-wide before dropping sessions.
    pub shed: bool,
    /// Evict sessions stuck missing at the shedding floor (last resort).
    pub evict: bool,
}

impl RouterConfig {
    /// The fully resilient router: retry + failover + migration + shed.
    pub fn resilient() -> Self {
        RouterConfig {
            retry: true,
            max_attempts: 4,
            backoff_intervals: 1,
            backoff_cap: 8,
            failover: true,
            migrate: true,
            min_residency: 4,
            shed: true,
            evict: true,
        }
    }

    /// The retry-free/no-migration baseline every chaos cell compares
    /// against: one admission attempt, sessions pinned to their server.
    pub fn baseline() -> Self {
        RouterConfig {
            retry: false,
            max_attempts: 1,
            backoff_intervals: 1,
            backoff_cap: 8,
            failover: false,
            migrate: false,
            min_residency: 4,
            shed: false,
            evict: false,
        }
    }

    /// Backoff before attempt `attempt + 1` (after failed attempt
    /// `attempt`, 1-based), in vsync intervals: capped exponential.
    pub fn backoff_for(&self, attempt: u32) -> u32 {
        let exp = attempt.saturating_sub(1).min(16);
        (self.backoff_intervals.max(1) << exp).min(self.backoff_cap.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views(loads: &[f64]) -> Vec<ServerView> {
        loads
            .iter()
            .map(|&load| ServerView { alive: true, load, active: 1, streams: vec![0] })
            .collect()
    }

    #[test]
    fn least_loaded_sorts_by_load_then_id() {
        let v = views(&[3.0, 1.0, 2.0, 1.0]);
        assert_eq!(Placement::LeastLoaded.order(7, 0, &v), vec![1, 3, 2, 0]);
    }

    #[test]
    fn affinity_prefers_stream_hosts_then_empty_servers() {
        let v = vec![
            ServerView { alive: true, load: 5.0, active: 2, streams: vec![1] },
            ServerView { alive: true, load: 0.0, active: 0, streams: vec![] },
            ServerView { alive: true, load: 9.0, active: 3, streams: vec![0, 1] },
            ServerView { alive: true, load: 2.0, active: 1, streams: vec![2] },
        ];
        // Stream 0 lives on server 2 → it leads despite the highest load;
        // empty server 1 beats the mixed servers 0 and 3.
        assert_eq!(Placement::Affinity.order(7, 0, &v), vec![2, 1, 3, 0]);
    }

    #[test]
    fn rendezvous_hash_is_stable_under_server_removal() {
        let four = views(&[0.0; 4]);
        let order4 = Placement::ConsistentHash.order(42, 0, &four);
        let three = views(&[0.0; 3]);
        let order3 = Placement::ConsistentHash.order(42, 0, &three);
        // Dropping server 3 must keep the relative order of servers 0..3.
        let filtered: Vec<usize> = order4.into_iter().filter(|&s| s < 3).collect();
        assert_eq!(filtered, order3);
    }

    #[test]
    fn rendezvous_hash_spreads_keys() {
        let v = views(&[0.0; 4]);
        let mut first = [0u32; 4];
        for key in 0..256u64 {
            first[Placement::ConsistentHash.order(key, 0, &v)[0]] += 1;
        }
        for (s, &count) in first.iter().enumerate() {
            assert!(count > 20, "server {s} got only {count}/256 keys");
        }
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let r = RouterConfig::resilient();
        assert_eq!(r.backoff_for(1), 1);
        assert_eq!(r.backoff_for(2), 2);
        assert_eq!(r.backoff_for(3), 4);
        assert_eq!(r.backoff_for(4), 8);
        assert_eq!(r.backoff_for(10), 8, "backoff saturates at the cap");
    }

    #[test]
    fn baseline_turns_every_countermeasure_off() {
        let b = RouterConfig::baseline();
        assert!(!b.retry && !b.failover && !b.migrate && !b.shed && !b.evict);
        assert_eq!(b.max_attempts, 1);
    }
}
