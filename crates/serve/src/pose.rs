//! Seeded head-pose trajectories — re-exported from [`oovr_scene::pose`].
//!
//! The pose model moved into `oovr-scene` so the scene layer can expose
//! projected-bound motion metrics under a [`Pose`] pair (temporal reuse
//! needs the view transform next to the object bounds it moves). The
//! serving layer keeps its original paths — `oovr_serve::pose::Pose`,
//! `oovr_serve::{Pose, PoseModel, PoseTrajectory}` — as aliases of the
//! scene-level types.

pub use oovr_scene::pose::{Pose, PoseModel, PoseTrajectory};
