//! Admission control built on the paper's Eq. 3 rendering-time predictor.
//!
//! The distribution engine predicts a batch's total rendering time from its
//! triangle count alone (`t(X) = c0 · #triangle_X`, §5.2). The serving
//! layer reuses exactly that estimate one level up: a session's per-vsync
//! demand is the predicted rendering time of its steady-state frame, and a
//! new session is admitted only while the sum of predicted demands of all
//! live sessions — plus the newcomer — fits inside one vsync interval,
//! scaled by a headroom factor that reserves slack for cold-frame
//! transients and scheduling granularity.
//!
//! Calibration is honest to the paper's protocol: the coefficients are fit
//! from observed `(triangles, tv, pixels, cycles)` samples of the measured
//! cost stream ([`calibrate`]), not from oracle knowledge of future frames.

use oovr::predictor::{BatchSample, Coefficients};
use oovr_gpu::FrameReport;
use oovr_trace::Cycle;

/// Default fraction of a vsync interval the controller is willing to
/// promise to steady-state demand.
pub const DEFAULT_HEADROOM: f64 = 0.90;

/// Fits Eq. 3 coefficients from measured frame reports (one
/// [`BatchSample`] per report, whole-frame granularity).
///
/// # Panics
///
/// Panics if `reports` is empty.
pub fn calibrate(reports: &[&FrameReport]) -> Coefficients {
    calibrate_discounted(reports, 0)
}

/// Fits Eq. 3 coefficients for a temporal-reuse stream: every warm frame
/// (index ≥ 1) is costed at its measured cycles minus `warm_discount` —
/// the mean per-frame saving of pose-correlated reuse over a reference
/// trajectory — so admission prices sessions at their temporally-reused
/// demand rather than the full re-render cost. A discount of zero is
/// bit-identical to [`calibrate`].
///
/// # Panics
///
/// Panics if `reports` is empty.
pub fn calibrate_discounted(reports: &[&FrameReport], warm_discount: Cycle) -> Coefficients {
    let samples: Vec<BatchSample> = reports
        .iter()
        .enumerate()
        .map(|(i, r)| BatchSample {
            triangles: r.counts.triangles.max(1),
            tv: r.counts.vertices,
            pixels: r.counts.pixels_out,
            cycles: if i == 0 || warm_discount == 0 {
                r.frame_cycles
            } else {
                r.frame_cycles.saturating_sub(warm_discount).max(1)
            },
        })
        .collect();
    Coefficients::fit(&samples)
}

/// Outcome of one admission test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionDecision {
    /// Session admitted; `active` is the number of live sessions after
    /// admission and `predicted` the session's per-vsync demand in cycles.
    Admitted {
        /// Live sessions including the newcomer.
        active: u32,
        /// Predicted steady-state cycles per vsync for this session.
        predicted: f64,
    },
    /// Session rejected; the aggregate predicted demand would overflow the
    /// headroom budget.
    Rejected {
        /// Predicted steady-state cycles per vsync for the rejected session.
        predicted: f64,
        /// Human-readable rejection reason (stable, used in traces).
        reason: &'static str,
    },
}

struct Live {
    departure: Cycle,
    predicted: f64,
}

/// Eq. 3-based admission controller over one vsync budget.
pub struct AdmissionController {
    coeff: Coefficients,
    vsync: Cycle,
    headroom: f64,
    live: Vec<Live>,
}

impl AdmissionController {
    /// Creates a controller for a vsync interval of `vsync` cycles with
    /// calibrated `coeff` and a headroom fraction in `(0, 1]`.
    pub fn new(coeff: Coefficients, vsync: Cycle, headroom: f64) -> Self {
        AdmissionController { coeff, vsync, headroom: headroom.clamp(0.05, 1.0), live: Vec::new() }
    }

    /// The calibrated predictor.
    pub fn coefficients(&self) -> &Coefficients {
        &self.coeff
    }

    /// Predicted per-vsync demand (cycles) of a session whose steady frame
    /// carries `triangles`.
    pub fn predict(&self, triangles: u64) -> f64 {
        self.coeff.predict_total(triangles.max(1))
    }

    /// Aggregate predicted demand of sessions still live at `now`.
    pub fn load(&mut self, now: Cycle) -> f64 {
        self.live.retain(|s| s.departure > now);
        self.live.iter().map(|s| s.predicted).sum()
    }

    /// Number of sessions still live at the last [`load`](Self::load) or
    /// [`offer`](Self::offer) call.
    pub fn active(&self) -> u32 {
        self.live.len() as u32
    }

    /// Tests a session arriving at `now` whose steady frame carries
    /// `triangles` and which, if admitted, departs at `departure`. Admits
    /// (registering the session) or rejects.
    pub fn offer(&mut self, now: Cycle, triangles: u64, departure: Cycle) -> AdmissionDecision {
        let predicted = self.predict(triangles);
        let budget = self.headroom * self.vsync as f64;
        let load = self.load(now);
        if load + predicted <= budget {
            self.live.push(Live { departure, predicted });
            AdmissionDecision::Admitted { active: self.live.len() as u32, predicted }
        } else {
            AdmissionDecision::Rejected { predicted, reason: "capacity" }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_coeff() -> Coefficients {
        // 100 cycles per triangle, exactly.
        Coefficients::fit(&[BatchSample { triangles: 10, tv: 10, pixels: 10, cycles: 1_000 }])
    }

    #[test]
    fn admits_until_the_headroom_budget_is_full() {
        // vsync 1000, headroom 1.0, each session predicts 100 cycles → 10 fit.
        let mut ac = AdmissionController::new(unit_coeff(), 1_000, 1.0);
        for i in 0..10 {
            match ac.offer(0, 1, 10_000) {
                AdmissionDecision::Admitted { active, .. } => assert_eq!(active, i + 1),
                other => panic!("session {i} unexpectedly rejected: {other:?}"),
            }
        }
        assert!(matches!(ac.offer(0, 1, 10_000), AdmissionDecision::Rejected { .. }));
    }

    #[test]
    fn headroom_reserves_slack() {
        let mut ac = AdmissionController::new(unit_coeff(), 1_000, 0.5);
        for _ in 0..5 {
            assert!(matches!(ac.offer(0, 1, 10_000), AdmissionDecision::Admitted { .. }));
        }
        assert!(matches!(ac.offer(0, 1, 10_000), AdmissionDecision::Rejected { .. }));
    }

    #[test]
    fn departed_sessions_free_their_budget() {
        let mut ac = AdmissionController::new(unit_coeff(), 1_000, 1.0);
        for _ in 0..10 {
            assert!(matches!(ac.offer(0, 1, 500), AdmissionDecision::Admitted { .. }));
        }
        assert!(matches!(ac.offer(100, 1, 2_000), AdmissionDecision::Rejected { .. }));
        // All ten depart at cycle 500; the controller has room again.
        assert!(matches!(ac.offer(600, 1, 2_000), AdmissionDecision::Admitted { .. }));
        assert_eq!(ac.active(), 1);
    }

    #[test]
    fn warm_discount_lowers_predicted_demand() {
        use oovr_gpu::GpuConfig;
        let spec = oovr_scene::benchmarks::hl2_640().scaled(0.05);
        let scene = oovr::cache::scene_for(&spec);
        let reports = oovr::schemes::OoVr::new().render_frames(&scene, &GpuConfig::default(), 3);
        let refs: Vec<&FrameReport> = reports.iter().collect();
        let plain = calibrate(&refs);
        let zero = calibrate_discounted(&refs, 0);
        let tris = reports[0].counts.triangles;
        assert_eq!(plain.predict_total(tris).to_bits(), zero.predict_total(tris).to_bits());
        let saved = reports.last().expect("non-empty").frame_cycles / 2;
        let cheap = calibrate_discounted(&refs, saved);
        assert!(cheap.predict_total(tris) < plain.predict_total(tris));
    }

    #[test]
    fn prediction_matches_single_sample_rate() {
        let ac = AdmissionController::new(unit_coeff(), 1_000, 1.0);
        assert!((ac.predict(10) - 1_000.0).abs() < 1e-9);
        assert!((ac.coefficients().predict_total(5) - 500.0).abs() < 1e-9);
    }
}
