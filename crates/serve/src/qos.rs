//! Per-session and aggregate quality-of-service summaries.
//!
//! VR serving QoS is tail-dominated: a session at 90 Hz with a great median
//! but a bad p99 judders visibly (one missed vsync every ~1.1 s). The
//! summaries here therefore report nearest-rank p50/p99/p99.9 frame
//! latencies in cycles alongside missed-vsync rate, dropped/shed frame
//! counts, and goodput (fraction of paced frames completed on time).
//!
//! The warmup (cold, PA-paying) frame of each session is excluded from the
//! SLO accounting — admission deliberately reserves headroom for it, and
//! clients see it as connection setup, not a presented frame.

use oovr_trace::Cycle;

use crate::scheduler::{ServeOutcome, SessionOutcome};

/// Nearest-rank percentile of an unsorted sample set (`p` in `(0, 100]`).
/// Returns 0 for an empty set.
pub fn percentile(samples: &[Cycle], p: f64) -> Cycle {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// QoS summary of one admitted session (paced frames only).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionQos {
    /// Session id.
    pub session: u32,
    /// Paced frames the session scheduled (excludes warmup).
    pub frames: u32,
    /// Paced frames actually executed (not dropped).
    pub completed: u32,
    /// Median frame latency (release → retire) in cycles.
    pub p50: Cycle,
    /// 99th-percentile frame latency in cycles.
    pub p99: Cycle,
    /// 99.9th-percentile frame latency in cycles.
    pub p999: Cycle,
    /// Executed paced frames that retired after their vsync deadline.
    pub missed: u32,
    /// Paced frames dropped as stale without executing.
    pub dropped: u32,
    /// `(missed + dropped) / frames` — the missed-vsync rate.
    pub miss_rate: f64,
    /// Frames (warmup included) that ran at a degraded shade scale.
    pub shed_frames: u32,
    /// Minimum shade scale any frame ran at (1.0 = never shed).
    pub min_scale: f64,
    /// Fraction of paced frames presented on time at any scale.
    pub goodput: f64,
}

/// QoS aggregated over every admitted session of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateQos {
    /// Sessions admitted.
    pub admitted: u32,
    /// Sessions rejected at admission.
    pub rejected: u32,
    /// Total paced frames scheduled.
    pub frames: u32,
    /// Median paced-frame latency across all sessions (cycles).
    pub p50: Cycle,
    /// 99th-percentile paced-frame latency (cycles).
    pub p99: Cycle,
    /// 99.9th-percentile paced-frame latency (cycles).
    pub p999: Cycle,
    /// Executed paced frames that retired late.
    pub missed: u32,
    /// Paced frames dropped as stale.
    pub dropped: u32,
    /// `(missed + dropped) / frames`.
    pub miss_rate: f64,
    /// Frames run at degraded shade scale.
    pub shed_frames: u32,
    /// Minimum shade scale across the run.
    pub min_scale: f64,
    /// Fraction of paced frames presented on time.
    pub goodput: f64,
}

fn rate(num: u32, den: u32) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Summarizes one session's paced frames.
pub fn session_qos(s: &SessionOutcome) -> SessionQos {
    let paced: Vec<_> = s.frames.iter().filter(|f| f.frame > 0).collect();
    let latencies: Vec<Cycle> =
        paced.iter().filter(|f| !f.dropped).map(|f| f.end - f.release).collect();
    let missed = paced.iter().filter(|f| !f.dropped && f.missed).count() as u32;
    let dropped = paced.iter().filter(|f| f.dropped).count() as u32;
    // Quality degradation is reported wherever it happens, warmup included
    // (the SLO filters above are about timeliness, not quality).
    let shed_frames = s.frames.iter().filter(|f| !f.dropped && f.scale < 1.0).count() as u32;
    let min_scale = s.frames.iter().filter(|f| !f.dropped).map(|f| f.scale).fold(1.0f64, f64::min);
    let frames = paced.len() as u32;
    let on_time = paced.iter().filter(|f| !f.dropped && !f.missed).count() as u32;
    SessionQos {
        session: s.id,
        frames,
        completed: frames - dropped,
        p50: percentile(&latencies, 50.0),
        p99: percentile(&latencies, 99.0),
        p999: percentile(&latencies, 99.9),
        missed,
        dropped,
        miss_rate: rate(missed + dropped, frames),
        shed_frames,
        min_scale,
        goodput: rate(on_time, frames),
    }
}

/// Aggregates QoS across every admitted session of `outcome`.
pub fn aggregate_qos(outcome: &ServeOutcome) -> AggregateQos {
    let per: Vec<SessionQos> = outcome.sessions.iter().map(session_qos).collect();
    let latencies: Vec<Cycle> = outcome
        .sessions
        .iter()
        .flat_map(|s| s.frames.iter())
        .filter(|f| f.frame > 0 && !f.dropped)
        .map(|f| f.end - f.release)
        .collect();
    let frames: u32 = per.iter().map(|q| q.frames).sum();
    let missed: u32 = per.iter().map(|q| q.missed).sum();
    let dropped: u32 = per.iter().map(|q| q.dropped).sum();
    let shed_frames: u32 = per.iter().map(|q| q.shed_frames).sum();
    let min_scale = per.iter().map(|q| q.min_scale).fold(1.0f64, f64::min);
    let on_time: u32 = frames - missed - dropped;
    AggregateQos {
        admitted: outcome.sessions.len() as u32,
        rejected: outcome.rejects.len() as u32,
        frames,
        p50: percentile(&latencies, 50.0),
        p99: percentile(&latencies, 99.0),
        p999: percentile(&latencies, 99.9),
        missed,
        dropped,
        miss_rate: rate(missed + dropped, frames),
        shed_frames,
        min_scale,
        goodput: rate(on_time, frames),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<Cycle> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 99.9), 100);
        assert_eq!(percentile(&v, 100.0), 100);
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 99.9), 7);
    }

    #[test]
    fn percentile_ignores_input_order() {
        let v = vec![30u64, 10, 20];
        assert_eq!(percentile(&v, 50.0), 20);
        assert_eq!(percentile(&v, 99.0), 30);
    }
}
