//! Serve-layer SLO catalogues and the fleet health gate.
//!
//! This module binds the generic `oovr-metrics` SLO machinery to the
//! metric names [`crate::scheduler::simulate_metered`] and
//! [`crate::cluster::simulate_cluster_metered`] emit:
//!
//! * [`serve_slos`] — the single-server objectives: missed-vsync rate,
//!   release-to-retire p99 motion-to-photon latency, and shed-time
//!   fraction. The latency target is `2·V`, not `V`: the log2 histogram
//!   never underestimates a quantile but may overestimate by strictly
//!   less than one octave, so a run whose exact p99 is at the vsync bound
//!   still passes (see `oovr_metrics::Hist::quantile`).
//! * [`cluster_slos`] — the fleet objectives, parameterized by the miss
//!   budget: the nominal budget ([`NOMINAL_MISS_BUDGET`]) bounds the
//!   residual misses a fault-free fleet at [`crate::chaos::CHAOS_LOAD`]
//!   of capacity is allowed; the faulted budget ([`FAULT_MISS_BUDGET`])
//!   is what the resilient router must hold under a severity-1.0
//!   link-down fault — and what the retry-free baseline demonstrably
//!   cannot (pinned by `prop_metrics`).
//! * [`health_cell`] / [`health_table`] — the `figures -- health` gate:
//!   per workload, re-create the chaos sweep's operating point (offered
//!   load = `CHAOS_LOAD` × fault-free N=4 capacity), run the fleet once
//!   nominal and once under the seed-scanned link-down plan, and evaluate
//!   the SLOs. A cell is healthy when every *aggregate* (`*`) row holds
//!   its budget; per-server and per-class rows are reported for
//!   attribution but do not gate — a server that died mid-run busts its
//!   own label's budget by construction, and the whole point of the
//!   resilient router is that the fleet absorbs it.

use oovr::experiments::{par_map, FigureTable};
use oovr_gpu::{FaultPlan, FaultScenario, GpuConfig};
use oovr_metrics::slo::{evaluate, Objective, Slo, SloEval};
use oovr_metrics::Registry;
use oovr_scene::BenchmarkSpec;
use oovr_trace::Cycle;

use crate::chaos::{effective_plan, CHAOS_LOAD};
use crate::cluster::{cluster_capacity, simulate_cluster_metered, ClusterConfig};
use crate::router::{Placement, RouterConfig};
use crate::scheduler::{simulate_metered, ServeConfig};
use crate::stream::ServeScheme;

/// Missed-vsync budget of a fault-free fleet at [`CHAOS_LOAD`] of its
/// measured capacity. Calibrated against the worst fault-free workload at
/// the chaos operating point (NFS, ~9.5% missed): the capacity search
/// itself tolerates residual misses, so nominal serving is lossy-but-
/// bounded rather than lossless.
pub const NOMINAL_MISS_BUDGET: f64 = 0.12;

/// Missed-vsync budget under the chaos sweep's severity-1.0 link-down
/// fault. Sits in the measured gap between the routers at the operating
/// point: the resilient router's failover/retry/shed machinery tops out
/// around 10.3% missed (NFS), while the fault-oblivious baseline parks
/// sessions on the dead server and never does better than ~16%. Pinned
/// on both sides by `prop_metrics`.
pub const FAULT_MISS_BUDGET: f64 = 0.13;

/// Shed-time budget: fraction of paced frames served below full shade
/// scale (single server) or degraded (cluster). Shedding is the *designed*
/// overload response, so the budget is generous — it exists to catch a
/// fleet living permanently degraded.
pub const SHED_TIME_BUDGET: f64 = 0.5;

/// Single-server missed-vsync budget for [`serve_slos`].
pub const SERVE_MISS_BUDGET: f64 = 0.05;

/// The single-server serving objectives over the metrics
/// [`simulate_metered`](crate::scheduler::simulate_metered) emits.
pub fn serve_slos(vsync: Cycle) -> Vec<Slo> {
    vec![
        Slo {
            name: "missed-vsync-rate",
            objective: Objective::BadFraction { bad: "frames_missed", total: "frames" },
            target: SERVE_MISS_BUDGET,
        },
        Slo {
            name: "p99-motion-to-photon",
            // 2·V: one vsync of real deadline plus strictly less than one
            // octave of histogram overestimate.
            objective: Objective::QuantileAtMost { hist: "frame_latency_cycles", p: 99.0 },
            target: 2.0 * vsync as f64,
        },
        Slo {
            name: "shed-time-fraction",
            objective: Objective::BadFraction { bad: "frames_shed", total: "frames" },
            target: SHED_TIME_BUDGET,
        },
    ]
}

/// The fleet objectives over the metrics
/// [`simulate_cluster_metered`](crate::cluster::simulate_cluster_metered)
/// emits, at the given missed-vsync budget.
pub fn cluster_slos(miss_budget: f64) -> Vec<Slo> {
    vec![
        Slo {
            name: "missed-vsync-rate",
            objective: Objective::BadFraction { bad: "frames_missed", total: "frames" },
            target: miss_budget,
        },
        Slo {
            name: "class-missed-vsync-rate",
            objective: Objective::BadFraction { bad: "class_frames_missed", total: "class_frames" },
            target: miss_budget,
        },
        Slo {
            name: "shed-time-fraction",
            objective: Objective::BadFraction { bad: "frames_degraded", total: "frames" },
            target: SHED_TIME_BUDGET,
        },
    ]
}

/// One workload's health evaluation at the chaos operating point.
#[derive(Debug, Clone)]
pub struct HealthCell {
    /// Workload name.
    pub workload: String,
    /// Fault-free N=4 least-loaded capacity the load was derived from.
    pub capacity: u32,
    /// Sessions offered ([`CHAOS_LOAD`] of capacity).
    pub sessions: u32,
    /// Seed of the settled (seed-scanned) link-down fault plan.
    pub fault_seed: u64,
    /// SLO rows of the fault-free run (budget [`NOMINAL_MISS_BUDGET`]).
    pub nominal: Vec<SloEval>,
    /// SLO rows under the link-down fault (budget [`FAULT_MISS_BUDGET`]).
    pub faulted: Vec<SloEval>,
}

impl HealthCell {
    /// Whether every aggregate (`*`) row of both runs holds its budget.
    pub fn healthy(&self) -> bool {
        self.aggregate_rows().all(|e| e.healthy)
    }

    /// Largest aggregate budget consumption across both runs.
    pub fn worst_budget(&self) -> f64 {
        self.aggregate_rows().map(|e| e.budget_consumed).fold(0.0, f64::max)
    }

    fn aggregate_rows(&self) -> impl Iterator<Item = &SloEval> {
        self.nominal.iter().chain(self.faulted.iter()).filter(|e| e.label == "*")
    }

    /// Aggregate achieved value of `slo` in the given rows (0 if absent).
    fn achieved(rows: &[SloEval], slo: &str) -> f64 {
        rows.iter().find(|e| e.label == "*" && e.slo == slo).map_or(0.0, |e| e.achieved)
    }
}

/// Evaluates fleet health for one workload under `router` at the chaos
/// sweep's operating point: offered load is [`CHAOS_LOAD`] of the
/// fault-free N=4 least-loaded capacity, faulted by the same seed-scanned
/// severity-1.0 link-down plan `figures -- chaos` would use.
pub fn health_cell(
    spec: &BenchmarkSpec,
    gpu: &GpuConfig,
    router: RouterConfig,
    cfg: &ClusterConfig,
) -> HealthCell {
    let servers = 4u32;
    let mix = vec![(ServeScheme::OoVr, spec.clone())];
    let cap = cluster_capacity(&mix, gpu, servers, Placement::LeastLoaded, cfg);
    let sessions = (((cap as f64) * CHAOS_LOAD) as u32).max(1);
    let v = cfg.vsync_cycles.max(1);
    let horizon = (cfg.arrival_intervals.saturating_sub(1) + cfg.frames_per_session) as u64 * v;
    let plan = effective_plan(FaultScenario::LinkDown, 1.0, cfg.seed, servers, horizon, v);
    let run = |fault: Option<FaultPlan>| -> Registry {
        let run_cfg =
            ClusterConfig { servers, sessions, policy: cfg.policy, router, fault, ..cfg.clone() };
        let mut reg = Registry::new(v);
        simulate_cluster_metered(&mix, gpu, &run_cfg, None, Some(&mut reg));
        reg
    };
    let fault_seed = plan.seed;
    let nominal = evaluate(&run(None), &cluster_slos(NOMINAL_MISS_BUDGET));
    let faulted = evaluate(&run(Some(plan)), &cluster_slos(FAULT_MISS_BUDGET));
    HealthCell {
        workload: spec.name.clone(),
        capacity: cap,
        sessions,
        fault_seed,
        nominal,
        faulted,
    }
}

/// The `figures -- health` table: one [`health_cell`] per workload under
/// the resilient router. Columns report the operating point, the nominal
/// and faulted aggregate miss rates (percent), the worst aggregate budget
/// consumption, and the gate verdict (1 = healthy).
pub fn health_table(
    specs: &[BenchmarkSpec],
    gpu: &GpuConfig,
    cfg: &ClusterConfig,
) -> (FigureTable, Vec<HealthCell>) {
    let cells = par_map(specs, |spec| health_cell(spec, gpu, RouterConfig::resilient(), cfg));
    let rows = cells
        .iter()
        .map(|c| {
            let nominal_miss = HealthCell::achieved(&c.nominal, "missed-vsync-rate");
            let faulted_miss = HealthCell::achieved(&c.faulted, "missed-vsync-rate");
            (
                c.workload.clone(),
                vec![
                    c.capacity as f64,
                    c.sessions as f64,
                    nominal_miss * 100.0,
                    faulted_miss * 100.0,
                    c.worst_budget(),
                    f64::from(u8::from(c.healthy())),
                ],
            )
        })
        .collect();
    let table = FigureTable {
        id: "health",
        title: format!(
            "Fleet health gate: OO-VR at {:.0}% of N=4 capacity, nominal vs link-down \
             (budgets: nominal {:.0}%, faulted {:.0}% missed vsyncs)",
            CHAOS_LOAD * 100.0,
            NOMINAL_MISS_BUDGET * 100.0,
            FAULT_MISS_BUDGET * 100.0
        ),
        columns: ["cap(N=4)", "sessions", "nom_miss%", "fault_miss%", "budget", "healthy"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    };
    (table, cells)
}

/// The `figures -- metrics` table: one metered single-server OO-VR run
/// per workload. Latency columns are histogram quantiles in kilocycles
/// (upper bounds within one octave of exact; see module docs).
pub fn metrics_table(
    specs: &[BenchmarkSpec],
    gpu: &GpuConfig,
    cfg: &ServeConfig,
) -> (FigureTable, Vec<Registry>) {
    let v = cfg.vsync_cycles.max(1);
    let runs: Vec<(String, Registry)> = par_map(specs, |spec| {
        let mut reg = Registry::new(v);
        simulate_metered(ServeScheme::OoVr, spec, gpu, cfg, None, Some(&mut reg));
        (spec.name.clone(), reg)
    });
    let rows = runs
        .iter()
        .map(|(name, reg)| {
            let frames = reg.counter_sum("frames") as f64;
            let pct = |p: f64| {
                reg.hist("frame_latency_cycles", "").map_or(0.0, |h| h.quantile(p) as f64 / 1_000.0)
            };
            let rate = |n: &'static str| {
                if frames > 0.0 {
                    reg.counter_sum(n) as f64 / frames * 100.0
                } else {
                    0.0
                }
            };
            (
                name.clone(),
                vec![
                    reg.counter_sum("sessions_admitted") as f64,
                    frames,
                    pct(50.0),
                    pct(99.0),
                    pct(99.9),
                    rate("frames_missed"),
                    rate("frames_shed"),
                ],
            )
        })
        .collect();
    let table = FigureTable {
        id: "metrics",
        title: "Serve metrics: metered OO-VR runs (latency quantiles in kilocycles, \
                log2-histogram upper bounds)"
            .to_string(),
        columns: ["admitted", "frames", "p50_kcyc", "p99_kcyc", "p99.9_kcyc", "miss%", "shed%"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    };
    (table, runs.into_iter().map(|(_, r)| r).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use oovr_scene::benchmarks;

    fn spec() -> BenchmarkSpec {
        benchmarks::hl2_640().scaled(0.05)
    }

    #[test]
    fn metered_serve_matches_qos_accounting() {
        let cfg = ServeConfig { sessions: 6, frames_per_session: 8, ..ServeConfig::default() };
        let gpu = GpuConfig::default();
        let mut reg = Registry::new(cfg.vsync_cycles);
        let out = simulate_metered(ServeScheme::OoVr, &spec(), &gpu, &cfg, None, Some(&mut reg));
        let qos = out.qos();
        assert_eq!(reg.counter_sum("frames"), u64::from(qos.frames));
        assert_eq!(
            reg.counter_sum("frames_missed"),
            u64::from(qos.missed + qos.dropped),
            "metered misses must equal qos missed+dropped"
        );
        assert_eq!(reg.counter_sum("sessions_admitted") as usize, out.sessions.len());
        assert_eq!(reg.counter_sum("sessions_rejected") as usize, out.rejects.len());
        let evals = evaluate(&reg, &serve_slos(cfg.vsync_cycles));
        let miss = evals.iter().find(|e| e.slo == "missed-vsync-rate").unwrap();
        assert!((miss.achieved - qos.miss_rate).abs() < 1e-12);
    }

    #[test]
    fn metered_cluster_miss_rate_matches_outcome() {
        let gpu = GpuConfig::default();
        let cfg =
            ClusterConfig { sessions: 40, frames_per_session: 16, ..ClusterConfig::default() };
        let mix = vec![(ServeScheme::OoVr, spec())];
        let mut reg = Registry::new(cfg.vsync_cycles);
        let out = simulate_cluster_metered(&mix, &gpu, &cfg, None, Some(&mut reg));
        assert_eq!(reg.counter_sum("frames"), out.frames_offered);
        assert_eq!(reg.counter_sum("frames_missed"), out.frames_offered - out.on_time);
        let evals = evaluate(&reg, &cluster_slos(NOMINAL_MISS_BUDGET));
        let agg = evals.iter().find(|e| e.slo == "missed-vsync-rate" && e.label == "*").unwrap();
        assert!((agg.achieved - out.miss_rate()).abs() < 1e-12);
    }
}
