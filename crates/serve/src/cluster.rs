//! The deterministic multi-server cluster tier: N EDF servers behind the
//! session router.
//!
//! One [`simulate_cluster`] run shards sessions across `N` servers on a
//! shared vsync grid, entirely in simulated time. Each server is the
//! per-interval quantum abstraction of one PR 5 EDF server: at interval
//! `k` (cycle `t = k·V`) a server has `V · rate(s, t)` cycles of render
//! budget — `rate` comes from a *server-level* [`FaultPlan`]
//! ([`FaultPlan::server_rate_at`]; the server index plays the GPM role,
//! `link-down` kills a server outright, `gpm-throttle` shrinks its
//! capacity) — and serves its resident sessions' due frames in session-id
//! order, which is EDF order under the shared per-interval deadline. A
//! frame that does not fit misses its vsync without consuming budget.
//!
//! Cost comes from the memoized per-(scheme, workload, config) cost
//! streams: a session's first served frame after admission, failover, or
//! migration is charged the stream's *cold* PA frame (warm-restart cost),
//! later frames the steady frame. A server hosting more than one distinct
//! cost stream pays a cross-stream working-set tax of
//! `switch_frac · V` cycles per extra stream per interval — the term that
//! makes workload-affinity packing ([`crate::router::Placement::Affinity`])
//! genuinely cheaper than spreading streams everywhere.
//!
//! Frames pace from the session's *arrival*: frame `f` is due in interval
//! `arrival + f`. A session stuck in admission backoff therefore loses the
//! frames that pass it by — retry is strictly better than rejection, never
//! free. Goodput counts on-time frames (at any shed scale) over all
//! offered frames, including sessions that were rejected or lost, so every
//! robustness feature has to *earn* its place in the chaos tables.
//!
//! Everything the router does — route, retry, failover, migrate, shed,
//! evict — lands in the trace as cluster-level [`TraceEvent`]s when a
//! recorder is supplied.

use std::sync::Arc;

use oovr::{ResilienceConfig, TemporalConfig};
use oovr_gpu::{FaultPlan, GpuConfig, VSYNC_90HZ_CYCLES};
use oovr_metrics::Registry;
use oovr_scene::BenchmarkSpec;
use oovr_trace::{Cycle, Recorder, TraceEvent, TraceSink};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::admission::{calibrate_discounted, DEFAULT_HEADROOM};
use crate::capacity::MISS_BUDGET;
use crate::router::{Placement, RouterConfig, ServerView};
use crate::stream::{cost_stream, ServeScheme, SessionCostStream};

/// Probe horizon of [`cluster_capacity`], in vsync intervals (matches the
/// single-server probe in [`crate::capacity`]).
pub const CLUSTER_PROBE_FRAMES: u32 = 64;

/// Backstop on the cluster capacity search range.
const MAX_SESSIONS: u32 = 1 << 22;

/// Configuration of one cluster serving run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of servers in the fleet.
    pub servers: u32,
    /// Vsync interval in cycles (default: 90 Hz at the 1 GHz clock).
    pub vsync_cycles: Cycle,
    /// Session arrivals offered to the cluster.
    pub sessions: u32,
    /// Paced frames per session (frame 0 is the warmup frame).
    pub frames_per_session: u32,
    /// Arrivals land uniformly (seeded) over this many leading intervals.
    pub arrival_intervals: u32,
    /// Seed for arrival jitter.
    pub seed: u64,
    /// Admission headroom fraction of each server's vsync budget.
    pub headroom: f64,
    /// Placement policy of the session router.
    pub policy: Placement,
    /// Robustness knobs of the session router.
    pub router: RouterConfig,
    /// Server-level fault plan; `None` (or a zero-severity plan) keeps
    /// every server at nominal rate.
    pub fault: Option<FaultPlan>,
    /// Cross-stream working-set tax: fraction of one vsync interval a
    /// server pays per distinct resident cost stream beyond the first.
    pub switch_frac: f64,
    /// Shedding knobs (`shed_step`, `shed_floor`) for cluster-wide
    /// graceful degradation.
    pub resilience: ResilienceConfig,
    /// Consecutive missed vsyncs at the shedding floor before a session is
    /// evicted (last resort, [`RouterConfig::evict`]).
    pub evict_after: u32,
    /// Temporal-reuse knob for [`ServeScheme::temporal`] mix entries:
    /// their steady cost and Eq. 3 demand are discounted by the mean
    /// pose-correlated reuse saving over a reference trajectory.
    pub temporal: TemporalConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            servers: 4,
            vsync_cycles: VSYNC_90HZ_CYCLES,
            sessions: 24,
            frames_per_session: 32,
            arrival_intervals: 8,
            seed: 0xC105_7E4D,
            headroom: DEFAULT_HEADROOM,
            policy: Placement::LeastLoaded,
            router: RouterConfig::resilient(),
            fault: None,
            switch_frac: 0.04,
            resilience: ResilienceConfig::on(),
            evict_after: 16,
            temporal: TemporalConfig::default(),
        }
    }
}

/// Per-session outcome of a cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSession {
    /// Global session id (arrival order).
    pub id: u32,
    /// Index of the session's cost stream in the deduplicated mix.
    pub stream: usize,
    /// Arrival interval.
    pub arrival: u32,
    /// Interval the session was admitted, if it ever was.
    pub admitted_at: Option<u32>,
    /// Final server the session lived on, if admitted.
    pub server: Option<u32>,
    /// Paced frames presented on time (any shed scale).
    pub on_time: u64,
    /// Subset of `on_time` served below full shade scale.
    pub degraded: u64,
    /// Failovers plus migrations the session went through.
    pub moves: u32,
    /// Whether the session was evicted before finishing.
    pub evicted: bool,
}

/// Everything one cluster run produced.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// Servers in the fleet.
    pub servers: u32,
    /// Sessions offered.
    pub offered: u32,
    /// Sessions admitted (on any attempt).
    pub admitted: u32,
    /// Sessions never admitted.
    pub rejected: u32,
    /// Sessions evicted after admission.
    pub evicted: u32,
    /// Admission retries the router issued.
    pub retries: u64,
    /// Overload migrations performed.
    pub migrations: u64,
    /// Dead-server failovers performed.
    pub failovers: u64,
    /// Server up→down transitions observed.
    pub downs: u64,
    /// Total paced frames offered (`sessions × frames_per_session`).
    pub frames_offered: u64,
    /// Paced frames presented on time, at any shed scale.
    pub on_time: u64,
    /// Subset of `on_time` served below full shade scale.
    pub degraded: u64,
    /// Lowest cluster-wide shed scale reached (1.0 = never shed).
    pub min_scale: f64,
    /// Per-session outcomes, in id order.
    pub sessions: Vec<ClusterSession>,
}

impl ClusterOutcome {
    /// On-time paced frames over all offered frames — rejected and lost
    /// sessions count against it.
    pub fn goodput(&self) -> f64 {
        if self.frames_offered == 0 {
            return 1.0;
        }
        self.on_time as f64 / self.frames_offered as f64
    }

    /// Fraction of offered paced frames that never presented on time.
    pub fn miss_rate(&self) -> f64 {
        1.0 - self.goodput()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Waiting,
    Active,
    Done,
    Rejected,
    Evicted,
}

struct Sess {
    stream: usize,
    arrival: u32,
    state: State,
    attempts: u32,
    next_attempt: u32,
    admitted_at: Option<u32>,
    server: usize,
    last_move: u32,
    cold_pending: bool,
    on_time: u64,
    degraded: u64,
    misses_in_a_row: u32,
    moves: u32,
    /// Paced frames the metrics registry has accounted (served or missed
    /// while `Active`). Only advanced when a registry is attached; the
    /// end-of-run reconciliation charges `frames − metered` to the
    /// `unrouted` label so the aggregate SLO miss rate equals
    /// [`ClusterOutcome::miss_rate`] exactly.
    metered: u64,
}

/// The deduplicated cost streams of a session mix, plus per-stream derived
/// numbers the simulation charges.
struct Streams {
    /// Stream index of session `i % mix.len()`.
    of_mix: Vec<usize>,
    /// Eq. 3 predicted per-vsync demand per stream.
    demand: Vec<f64>,
    /// Cold (PA-paying) frame cost per stream.
    cold: Vec<Cycle>,
    /// Steady frame cost per stream.
    steady: Vec<Cycle>,
}

fn resolve_streams(
    mix: &[(ServeScheme, BenchmarkSpec)],
    gpu: &GpuConfig,
    cfg: &ClusterConfig,
) -> Streams {
    let mut streams: Vec<Arc<SessionCostStream>> = Vec::new();
    let mut of_mix = Vec::with_capacity(mix.len());
    for (scheme, spec) in mix {
        let s = cost_stream(*scheme, spec, gpu);
        let idx = match streams.iter().position(|e| Arc::ptr_eq(e, &s)) {
            Some(i) => i,
            None => {
                streams.push(Arc::clone(&s));
                streams.len() - 1
            }
        };
        of_mix.push(idx);
    }
    // Temporal streams are charged their mean pose-correlated cost: the
    // measured steady frame minus the mean reuse saving over a reference
    // trajectory (zero for every other stream, and exactly zero at
    // threshold 0, so the tier collapses to plain costs bit-identically).
    let saving: Vec<Cycle> = streams
        .iter()
        .map(|s| {
            s.mean_temporal_saving(
                cfg.temporal.reuse_threshold,
                cfg.seed,
                cfg.frames_per_session.max(1),
            )
        })
        .collect();
    let demand = streams
        .iter()
        .zip(&saving)
        .map(|(s, &saved)| {
            let refs: Vec<_> = s.reports.iter().collect();
            calibrate_discounted(&refs, saved).predict_total(s.steady().counts.triangles.max(1))
        })
        .collect();
    let cold = streams.iter().map(|s| s.cold().frame_cycles.max(1)).collect();
    let steady = streams
        .iter()
        .zip(&saving)
        .map(|(s, &saved)| s.steady().frame_cycles.saturating_sub(saved).max(1))
        .collect();
    Streams { of_mix, demand, cold, steady }
}

/// Runs one deterministic cluster serving experiment over `mix` (sessions
/// round-robin the mix entries; entries naming the same (scheme, workload,
/// config) share one memoized cost stream). `trace`, when given, receives
/// the cluster-level events in cycle order.
///
/// # Panics
///
/// Panics if `mix` is empty or `cfg.servers` is zero.
pub fn simulate_cluster(
    mix: &[(ServeScheme, BenchmarkSpec)],
    gpu: &GpuConfig,
    cfg: &ClusterConfig,
    trace: Option<&mut Recorder>,
) -> ClusterOutcome {
    simulate_cluster_metered(mix, gpu, cfg, trace, None)
}

/// [`simulate_cluster`] with an optional [`Registry`] receiving fleet
/// metrics: per-server frame/miss/degrade counters (`srv0…srvN`), per
/// session-class counters keyed by workload name, router activity
/// (routes, retries, failovers, migrations, evictions, sheds) and server
/// up/down transitions. Frames of sessions that were never admitted —
/// rejected, lost to backoff, or evicted mid-run — are reconciled into an
/// `unrouted` label at the end of the run, so the aggregate metered miss
/// rate equals [`ClusterOutcome::miss_rate`] exactly. Observation-only:
/// a metered run is bit-identical to an unmetered one (pinned by
/// `prop_metrics`).
///
/// # Panics
///
/// Panics if `mix` is empty or `cfg.servers` is zero.
pub fn simulate_cluster_metered(
    mix: &[(ServeScheme, BenchmarkSpec)],
    gpu: &GpuConfig,
    cfg: &ClusterConfig,
    trace: Option<&mut Recorder>,
    mut metrics: Option<&mut Registry>,
) -> ClusterOutcome {
    assert!(!mix.is_empty(), "cluster mix must name at least one workload");
    let n = cfg.servers as usize;
    assert!(n > 0, "cluster needs at least one server");
    let st = resolve_streams(mix, gpu, cfg);
    let v = cfg.vsync_cycles.max(1);
    let frames = cfg.frames_per_session;
    let shed_floor = cfg.resilience.shed_floor.clamp(0.05, 1.0);
    let shed_step = cfg.resilience.shed_step.clamp(0.05, 0.99);
    let switch_tax = ((v as f64) * cfg.switch_frac.max(0.0)) as u64;

    // Seeded arrival jitter: one interval per session, in id order.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xC1_05_7E_12);
    let mut sessions: Vec<Sess> = (0..cfg.sessions)
        .map(|i| {
            let arrival =
                if cfg.arrival_intervals > 1 { rng.gen_range(0..cfg.arrival_intervals) } else { 0 };
            Sess {
                stream: st.of_mix[i as usize % st.of_mix.len()],
                arrival,
                state: State::Waiting,
                attempts: 0,
                next_attempt: arrival,
                admitted_at: None,
                server: 0,
                last_move: 0,
                cold_pending: false,
                on_time: 0,
                degraded: 0,
                misses_in_a_row: 0,
                moves: 0,
                metered: 0,
            }
        })
        .collect();

    // Session-class label per stream (the workload name of the first mix
    // entry backing it); built only when a registry is attached.
    let class_of_stream: Vec<String> = if metrics.is_some() {
        let mut classes = vec![String::new(); st.demand.len()];
        for (j, &si) in st.of_mix.iter().enumerate() {
            if classes[si].is_empty() {
                classes[si] = mix[j].1.name.clone();
            }
        }
        classes
    } else {
        Vec::new()
    };

    let mut events: Vec<TraceEvent> = Vec::new();
    let tracing = trace.is_some();
    let mut alive_prev = vec![false; n];
    let mut scale = 1.0f64;
    let mut min_scale = 1.0f64;
    let mut retries = 0u64;
    let mut migrations = 0u64;
    let mut failovers = 0u64;
    let mut downs = 0u64;
    let fault_reason = cfg.fault.as_ref().map_or("fault", |p| p.scenario.name());

    // Latest interval anything can still happen: the last arrival's final
    // frame, plus the longest possible backoff chain.
    let backoff_span: u32 = (1..cfg.router.max_attempts).map(|a| cfg.router.backoff_for(a)).sum();
    let k_max = cfg.arrival_intervals + frames + backoff_span + 2;

    // Incremental per-server aggregates over the *active* sessions. Every
    // state transition (admit, failover, migrate, finish, evict, cold→warm)
    // updates them in O(1), so router decisions stay O(servers) instead of
    // re-scanning every session — the difference between quadratic and
    // linear intervals at fleet-sized session counts.
    #[derive(Clone)]
    struct Srv {
        /// Aggregate Eq. 3 predicted demand of resident sessions.
        load: f64,
        /// Resident active sessions.
        active: u32,
        /// Resident session count per cost stream.
        stream_cnt: Vec<u32>,
        /// Full-scale frame-cost sum (cold for cold-pending sessions).
        cost: u64,
    }
    fn attach(srv: &mut [Srv], s: usize, stream: usize, demand: f64, cost: u64) {
        let e = &mut srv[s];
        e.load += demand;
        e.active += 1;
        e.stream_cnt[stream] += 1;
        e.cost += cost;
    }
    fn detach(srv: &mut [Srv], s: usize, stream: usize, demand: f64, cost: u64) {
        let e = &mut srv[s];
        e.load -= demand;
        e.active -= 1;
        e.stream_cnt[stream] -= 1;
        e.cost -= cost;
    }
    fn distinct(e: &Srv) -> usize {
        e.stream_cnt.iter().filter(|&&c| c > 0).count()
    }
    let n_streams = st.demand.len();
    let mut srv: Vec<Srv> =
        vec![Srv { load: 0.0, active: 0, stream_cnt: vec![0; n_streams], cost: 0 }; n];

    // Per-server demand at full scale, including the cross-stream tax.
    let server_demand = |srv: &[Srv], s: usize| -> u64 {
        srv[s].cost + switch_tax * distinct(&srv[s]).saturating_sub(1) as u64
    };

    let views = |srv: &[Srv], alive: &[bool]| -> Vec<ServerView> {
        srv.iter()
            .enumerate()
            .map(|(s, e)| ServerView {
                alive: alive[s],
                load: e.load,
                active: e.active,
                streams: (0..n_streams).filter(|&i| e.stream_cnt[i] > 0).collect(),
            })
            .collect()
    };

    // Compile the fault plan once into per-server schedules; the interval
    // loop then samples multipliers instead of re-deriving the product
    // schedule every quantum.
    let server_scheds: Vec<Option<oovr_gpu::RateSchedule>> =
        (0..n).map(|s| cfg.fault.as_ref().and_then(|p| p.server_schedule(s, n))).collect();

    for k in 0..=k_max {
        let t = k as Cycle * v;

        // 1. Server rates and up/down transitions.
        let rates: Vec<f64> = server_scheds
            .iter()
            .map(|sch| sch.as_ref().map_or(1.0, |s| s.multiplier_at(t)))
            .collect();
        let alive: Vec<bool> = rates.iter().map(|&r| r > 0.0).collect();
        for s in 0..n {
            if alive[s] && !alive_prev[s] {
                if tracing {
                    events.push(TraceEvent::ServerUp { cycle: t, server: s as u32 });
                }
                if let Some(reg) = metrics.as_deref_mut() {
                    reg.inc("server_up_transitions", &format!("srv{s}"), t, 1);
                }
            } else if !alive[s] && alive_prev[s] {
                downs += 1;
                if tracing {
                    events.push(TraceEvent::ServerDown {
                        cycle: t,
                        server: s as u32,
                        reason: fault_reason,
                    });
                }
                if let Some(reg) = metrics.as_deref_mut() {
                    reg.inc("server_down_transitions", &format!("srv{s}"), t, 1);
                }
            }
        }
        alive_prev.clone_from(&alive);

        // 2. Failover: pull in-flight sessions off dead servers. The
        //    residency guard does not apply — a dead host overrides
        //    placement stability. Warm restart is charged via the cold
        //    frame on the destination.
        if cfg.router.failover && alive.iter().any(|a| !a) {
            for (i, sess) in sessions.iter_mut().enumerate() {
                let server = sess.server;
                if sess.state != State::Active || alive[server] {
                    continue;
                }
                let vw = views(&srv, &alive);
                let key = cfg.seed ^ (i as u64).wrapping_mul(0x5851_F42D_4C95_7F2D);
                let stream = sess.stream;
                let dest = cfg
                    .policy
                    .order(key, stream, &vw)
                    .into_iter()
                    .find(|&d| alive[d] && d != server);
                if let Some(d) = dest {
                    let cost = if sess.cold_pending { st.cold[stream] } else { st.steady[stream] };
                    detach(&mut srv, server, stream, st.demand[stream], cost);
                    attach(&mut srv, d, stream, st.demand[stream], st.cold[stream]);
                    failovers += 1;
                    sess.moves += 1;
                    sess.cold_pending = true;
                    sess.last_move = k;
                    sess.server = d;
                    if tracing {
                        events.push(TraceEvent::SessionFailover {
                            cycle: t,
                            session: i as u32,
                            from: server as u32,
                            to: d as u32,
                        });
                    }
                    if let Some(reg) = metrics.as_deref_mut() {
                        reg.inc("session_failovers", "", t, 1);
                    }
                }
            }
        }

        // 3. Admission: arrivals and backed-off retries due this interval,
        //    in id order. The resilient router health-checks candidates
        //    (a dead server never admits); the fault-oblivious baseline
        //    will place sessions on one. When no candidate fits *right
        //    now*, the retrying router backs off and tries again, the
        //    baseline rejects.
        for (i, sess) in sessions.iter_mut().enumerate() {
            if sess.state != State::Waiting || sess.next_attempt != k {
                continue;
            }
            if k > sess.arrival + frames {
                // Backed off past its own last frame: nothing left to serve.
                sess.state = State::Rejected;
                if tracing {
                    events.push(TraceEvent::SessionReject {
                        cycle: t,
                        session: i as u32,
                        predicted: st.demand[sess.stream],
                        reason: "backoff-expired",
                    });
                }
                if let Some(reg) = metrics.as_deref_mut() {
                    reg.inc("sessions_rejected", "", t, 1);
                }
                continue;
            }
            let vw = views(&srv, &alive);
            let key = cfg.seed ^ (i as u64).wrapping_mul(0x5851_F42D_4C95_7F2D);
            let stream = sess.stream;
            let order = cfg.policy.order(key, stream, &vw);
            let attempt = sess.attempts + 1;
            sess.attempts = attempt;
            let demand = st.demand[stream];
            // First candidate in preference order with room right now; an
            // attempt fails only when *no* server fits, and only then do
            // retry/backoff (resilient) or rejection (baseline) differ.
            // Health checking is a router feature: the resilient router
            // never places a session on a dead server, while the
            // fault-oblivious baseline happily does. Both book capacity
            // against nominal budgets — refusing a merely *degraded*
            // server outright would waste the capacity it still has;
            // migration and shedding absorb the shortfall instead.
            let headroom = cfg.headroom.clamp(0.05, 1.0);
            let aware = cfg.router.failover;
            let cand = order
                .into_iter()
                .find(|&c| (!aware || alive[c]) && vw[c].load + demand <= headroom * v as f64);
            if let Some(cand) = cand {
                attach(&mut srv, cand, stream, demand, st.cold[stream]);
                sess.state = State::Active;
                sess.server = cand;
                sess.admitted_at = Some(k);
                sess.last_move = k;
                sess.cold_pending = true;
                if tracing {
                    events.push(TraceEvent::SessionRoute {
                        cycle: t,
                        session: i as u32,
                        server: cand as u32,
                        attempt,
                    });
                }
                if let Some(reg) = metrics.as_deref_mut() {
                    reg.inc("sessions_admitted", &format!("srv{cand}"), t, 1);
                }
            } else if cfg.router.retry && attempt < cfg.router.max_attempts {
                let backoff = cfg.router.backoff_for(attempt);
                sess.next_attempt = k + backoff;
                retries += 1;
                if tracing {
                    events.push(TraceEvent::RouteRetry {
                        cycle: t,
                        session: i as u32,
                        attempt,
                        backoff: backoff as Cycle * v,
                    });
                }
                if let Some(reg) = metrics.as_deref_mut() {
                    reg.inc("route_retries", "", t, 1);
                }
            } else {
                sess.state = State::Rejected;
                if tracing {
                    events.push(TraceEvent::SessionReject {
                        cycle: t,
                        session: i as u32,
                        predicted: demand,
                        reason: "capacity",
                    });
                }
                if let Some(reg) = metrics.as_deref_mut() {
                    reg.inc("sessions_rejected", "", t, 1);
                }
            }
        }

        // 4. Overload migration, behind the anti-ping-pong residency guard.
        if cfg.router.migrate {
            for s in 0..n {
                if !alive[s] {
                    continue;
                }
                let budget = (v as f64 * rates[s]) as u64;
                if server_demand(&srv, s) <= budget {
                    continue;
                }
                // Movers, most recently placed first, among sessions that
                // have sat out the residency guard; long-resident sessions
                // stay put. The eligible set only shrinks while we migrate
                // off `s`, so one scan per interval suffices.
                let mut movers: Vec<usize> = (0..sessions.len())
                    .filter(|&i| {
                        sessions[i].state == State::Active
                            && sessions[i].server == s
                            && k.saturating_sub(sessions[i].last_move) >= cfg.router.min_residency
                    })
                    .collect();
                movers.sort_by_key(|&i| (sessions[i].last_move, i));
                while server_demand(&srv, s) > budget {
                    let Some(i) = movers.pop() else { break };
                    let vw = views(&srv, &alive);
                    let key = cfg.seed ^ (i as u64).wrapping_mul(0x5851_F42D_4C95_7F2D);
                    let stream = sessions[i].stream;
                    let dest = cfg.policy.order(key, stream, &vw).into_iter().find(|&d| {
                        d != s
                            && alive[d]
                            && server_demand(&srv, d) + st.cold[stream]
                                <= (v as f64 * rates[d]) as u64
                    });
                    let Some(d) = dest else { break };
                    let cost =
                        if sessions[i].cold_pending { st.cold[stream] } else { st.steady[stream] };
                    detach(&mut srv, s, stream, st.demand[stream], cost);
                    attach(&mut srv, d, stream, st.demand[stream], st.cold[stream]);
                    migrations += 1;
                    sessions[i].moves += 1;
                    sessions[i].cold_pending = true;
                    sessions[i].last_move = k;
                    let from = sessions[i].server;
                    sessions[i].server = d;
                    if tracing {
                        events.push(TraceEvent::SessionMigrate {
                            cycle: t,
                            session: i as u32,
                            from: from as u32,
                            to: d as u32,
                            reason: "overload",
                        });
                    }
                    if let Some(reg) = metrics.as_deref_mut() {
                        reg.inc("session_migrations", "", t, 1);
                    }
                }
            }
        }

        // 5. Cluster-wide graceful degradation: shed shade scale so the
        //    most overloaded server fits, never below the floor; recover
        //    multiplicatively once no server is overloaded.
        if cfg.router.shed {
            let mut worst = 1.0f64;
            for s in 0..n {
                if !alive[s] {
                    continue;
                }
                let demand = server_demand(&srv, s);
                let budget = v as f64 * rates[s];
                if demand > 0 {
                    worst = worst.min(budget / demand as f64);
                }
            }
            if worst < 1.0 {
                let target = worst.max(shed_floor);
                if target < scale {
                    scale = target;
                    min_scale = min_scale.min(scale);
                    if tracing {
                        events.push(TraceEvent::Shed {
                            cycle: t,
                            scale,
                            reason: "cluster-overload",
                        });
                    }
                    if let Some(reg) = metrics.as_deref_mut() {
                        reg.inc("cluster_sheds", "", t, 1);
                    }
                }
            } else if scale < 1.0 {
                scale = (scale / shed_step).min(1.0);
            }
        }

        // 6. Serve: per server, sessions in id order (EDF under the shared
        //    per-interval deadline); frames that do not fit miss without
        //    consuming budget. Dead servers serve nothing.
        let eff_scale = if cfg.router.shed { scale } else { 1.0 };
        let mut remaining: Vec<u64> = (0..n)
            .map(|s| {
                if !alive[s] {
                    return 0;
                }
                ((v as f64 * rates[s]) as u64)
                    .saturating_sub(switch_tax * distinct(&srv[s]).saturating_sub(1) as u64)
            })
            .collect();
        for sess in sessions.iter_mut() {
            if sess.state != State::Active || k < sess.arrival {
                continue;
            }
            let f = k - sess.arrival;
            if f > frames {
                continue;
            }
            let s = sess.server;
            let full = if f == 0 || sess.cold_pending {
                st.cold[sess.stream]
            } else {
                st.steady[sess.stream]
            };
            let cost = (((full as f64) * eff_scale).round() as u64).max(1);
            if alive[s] && cost <= remaining[s] {
                remaining[s] -= cost;
                if sess.cold_pending {
                    srv[s].cost = srv[s].cost - st.cold[sess.stream] + st.steady[sess.stream];
                }
                sess.cold_pending = false;
                sess.misses_in_a_row = 0;
                if f >= 1 {
                    sess.on_time += 1;
                    if eff_scale < 1.0 {
                        sess.degraded += 1;
                    }
                    if let Some(reg) = metrics.as_deref_mut() {
                        sess.metered += 1;
                        let label = format!("srv{s}");
                        reg.inc("frames", &label, t, 1);
                        if eff_scale < 1.0 {
                            reg.inc("frames_degraded", &label, t, 1);
                        }
                        let class = &class_of_stream[sess.stream];
                        reg.inc("class_frames", class, t, 1);
                    }
                }
            } else {
                sess.misses_in_a_row += 1;
                if f >= 1 {
                    if let Some(reg) = metrics.as_deref_mut() {
                        sess.metered += 1;
                        let label = format!("srv{s}");
                        reg.inc("frames", &label, t, 1);
                        reg.inc("frames_missed", &label, t, 1);
                        let class = &class_of_stream[sess.stream];
                        reg.inc("class_frames", class, t, 1);
                        reg.inc("class_frames_missed", class, t, 1);
                    }
                }
            }
            if f == frames {
                let held =
                    if sess.cold_pending { st.cold[sess.stream] } else { st.steady[sess.stream] };
                detach(&mut srv, s, sess.stream, st.demand[sess.stream], held);
                sess.state = State::Done;
            }
        }

        // 7. Eviction, strictly last resort: only once shedding is pinned
        //    at the floor and a session still cannot make its vsyncs.
        if cfg.router.evict {
            let at_floor = !cfg.router.shed || scale <= shed_floor + 1e-9;
            for (i, sess) in sessions.iter_mut().enumerate() {
                if sess.state == State::Active
                    && at_floor
                    && sess.misses_in_a_row >= cfg.evict_after.max(1)
                {
                    let held = if sess.cold_pending {
                        st.cold[sess.stream]
                    } else {
                        st.steady[sess.stream]
                    };
                    detach(&mut srv, sess.server, sess.stream, st.demand[sess.stream], held);
                    sess.state = State::Evicted;
                    if tracing {
                        events.push(TraceEvent::FrameDrop {
                            cycle: t,
                            session: i as u32,
                            frame: k - sess.arrival,
                            reason: "evicted",
                        });
                    }
                    if let Some(reg) = metrics.as_deref_mut() {
                        reg.inc("sessions_evicted", "", t, 1);
                    }
                }
            }
        }

        if sessions
            .iter()
            .all(|s| matches!(s.state, State::Done | State::Rejected | State::Evicted))
        {
            break;
        }
    }

    if let Some(rec) = trace {
        // Exporters require non-decreasing timestamps per track; stable
        // sort keeps causal order within a cycle.
        events.sort_by_key(|e| e.cycle());
        for e in events {
            rec.record(e);
        }
    }

    if let Some(reg) = metrics {
        // Reconcile never-served frames: goodput charges rejected, lost and
        // evicted sessions' frames against the cluster, so the registry
        // must too. Whatever phase 6 did not account lands on the
        // `unrouted` label at the session's last deadline, making
        // `frames_missed/frames` over all labels equal `miss_rate()`.
        for s in &sessions {
            let lost = u64::from(frames).saturating_sub(s.metered);
            if lost > 0 {
                let t_last = Cycle::from(s.arrival + frames) * v;
                reg.inc("frames", "unrouted", t_last, lost);
                reg.inc("frames_missed", "unrouted", t_last, lost);
                let class = &class_of_stream[s.stream];
                reg.inc("class_frames", class, t_last, lost);
                reg.inc("class_frames_missed", class, t_last, lost);
            }
        }
        reg.set_gauge("min_scale", "", min_scale);
    }

    let outcomes: Vec<ClusterSession> = sessions
        .iter()
        .enumerate()
        .map(|(i, s)| ClusterSession {
            id: i as u32,
            stream: s.stream,
            arrival: s.arrival,
            admitted_at: s.admitted_at,
            server: s.admitted_at.map(|_| s.server as u32),
            on_time: s.on_time,
            degraded: s.degraded,
            moves: s.moves,
            evicted: s.state == State::Evicted,
        })
        .collect();
    let admitted = outcomes.iter().filter(|s| s.admitted_at.is_some()).count() as u32;
    ClusterOutcome {
        servers: cfg.servers,
        offered: cfg.sessions,
        admitted,
        rejected: cfg.sessions - admitted,
        evicted: outcomes.iter().filter(|s| s.evicted).count() as u32,
        retries,
        migrations,
        failovers,
        downs,
        frames_offered: cfg.sessions as u64 * frames as u64,
        on_time: outcomes.iter().map(|s| s.on_time).sum(),
        degraded: outcomes.iter().map(|s| s.degraded).sum(),
        min_scale,
        sessions: outcomes,
    }
}

/// Exact feasibility of `m` warm sessions of `mix` on `n` fault-free
/// servers under `policy`: sessions are placed once (first candidate with
/// room at full utilization, forced onto the first candidate when nothing
/// fits), then every session serves a steady frame per interval for
/// [`CLUSTER_PROBE_FRAMES`] intervals. Feasible while the missed-vsync
/// fraction stays under [`MISS_BUDGET`].
fn cluster_feasible(
    m: u32,
    st: &Streams,
    n: usize,
    v: Cycle,
    switch_tax: u64,
    policy: Placement,
    seed: u64,
) -> bool {
    if m == 0 {
        return true;
    }
    // Placement pass over per-server (demand, streams) state.
    let mut demand = vec![0u64; n];
    let mut streams: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut placed: Vec<(usize, usize)> = Vec::with_capacity(m as usize); // (server, stream)
    let mut vw: Vec<ServerView> =
        (0..n).map(|_| ServerView { alive: true, ..ServerView::default() }).collect();
    for i in 0..m {
        let stream = st.of_mix[i as usize % st.of_mix.len()];
        let key = seed ^ (i as u64).wrapping_mul(0x5851_F42D_4C95_7F2D);
        let order = policy.order(key, stream, &vw);
        let fits = |s: usize| {
            let tax = if streams[s].is_empty() || streams[s].contains(&stream) {
                switch_tax * streams[s].len().saturating_sub(1) as u64
            } else {
                switch_tax * streams[s].len() as u64
            };
            demand[s] + st.steady[stream] + tax <= v
        };
        let s = order.iter().copied().find(|&s| fits(s)).unwrap_or(order[0]);
        demand[s] += st.steady[stream];
        if !streams[s].contains(&stream) {
            streams[s].push(stream);
        }
        placed.push((s, stream));
        vw[s].load += st.demand[stream];
        vw[s].active += 1;
        if !vw[s].streams.contains(&stream) {
            vw[s].streams.push(stream);
        }
    }
    // Steady serving: per interval, per server, id order.
    let total = m as u64 * CLUSTER_PROBE_FRAMES as u64;
    let allowed = ((total as f64) * MISS_BUDGET).floor() as u64;
    let budget: Vec<u64> = (0..n)
        .map(|s| v.saturating_sub(switch_tax * streams[s].len().saturating_sub(1) as u64))
        .collect();
    let mut missed = 0u64;
    for _ in 0..CLUSTER_PROBE_FRAMES {
        let mut remaining = budget.clone();
        for &(s, stream) in &placed {
            let cost = st.steady[stream];
            if cost <= remaining[s] {
                remaining[s] -= cost;
            } else {
                missed += 1;
                if missed > allowed {
                    return false;
                }
            }
        }
    }
    true
}

/// Maximum concurrent warm sessions of `mix` an `n_servers` fault-free
/// cluster sustains under `policy` at under [`MISS_BUDGET`] missed vsyncs.
/// Deterministic and pure; the single-server case (`n_servers == 1`)
/// is the per-interval analogue of [`crate::capacity::capacity`].
pub fn cluster_capacity(
    mix: &[(ServeScheme, BenchmarkSpec)],
    gpu: &GpuConfig,
    n_servers: u32,
    policy: Placement,
    cfg: &ClusterConfig,
) -> u32 {
    assert!(!mix.is_empty(), "cluster mix must name at least one workload");
    let n = (n_servers as usize).max(1);
    let st = resolve_streams(mix, gpu, cfg);
    let v = cfg.vsync_cycles.max(1);
    let switch_tax = ((v as f64) * cfg.switch_frac.max(0.0)) as u64;
    let probe = |m: u32| cluster_feasible(m, &st, n, v, switch_tax, policy, cfg.seed);
    if !probe(1) {
        return 0;
    }
    // Seed at the utilization bound over the cheapest stream, bracket by
    // doubling, then bisect.
    let min_steady = st.steady.iter().copied().min().unwrap_or(1).max(1);
    let mut lo = ((n as u64 * v / min_steady) as u32).clamp(1, MAX_SESSIONS);
    if !probe(lo) {
        lo = 1;
    }
    let mut hi = lo.saturating_mul(2).min(MAX_SESSIONS);
    while probe(hi) && hi < MAX_SESSIONS {
        lo = hi;
        hi = hi.saturating_mul(2).min(MAX_SESSIONS);
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if probe(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use oovr_gpu::FaultScenario;
    use oovr_scene::benchmarks;

    fn mix() -> Vec<(ServeScheme, BenchmarkSpec)> {
        vec![(ServeScheme::OoVr, benchmarks::hl2_640().scaled(0.05))]
    }

    fn two_stream_mix() -> Vec<(ServeScheme, BenchmarkSpec)> {
        vec![
            (ServeScheme::OoVr, benchmarks::hl2_640().scaled(0.05)),
            (ServeScheme::OoVr, benchmarks::we().scaled(0.05)),
        ]
    }

    fn small_cfg() -> ClusterConfig {
        ClusterConfig { sessions: 40, frames_per_session: 16, ..ClusterConfig::default() }
    }

    #[test]
    fn fault_free_cluster_serves_everything_it_admits() {
        let out = simulate_cluster(&mix(), &GpuConfig::default(), &small_cfg(), None);
        assert_eq!(out.offered, 40);
        assert_eq!(out.admitted, 40, "a small offered load must fully admit");
        assert_eq!(out.on_time, out.frames_offered, "fault-free run must serve every frame");
        assert_eq!(out.downs, 0);
        assert_eq!(out.failovers, 0);
        assert!((out.goodput() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_mix_entries_share_one_stream() {
        let gpu = GpuConfig::default();
        let doubled = vec![mix()[0].clone(), mix()[0].clone()];
        let st = resolve_streams(&doubled, &gpu, &ClusterConfig::default());
        assert_eq!(st.cold.len(), 1);
        assert_eq!(st.of_mix, vec![0, 0]);
    }

    #[test]
    fn temporal_mix_raises_cluster_capacity_and_collapses_at_zero() {
        let gpu = GpuConfig::default();
        let cfg = ClusterConfig::default();
        let spec = benchmarks::hl2_640().scaled(0.05);
        let plain = vec![(ServeScheme::OoVr, spec.clone())];
        let temporal = vec![(ServeScheme::OoVrTemporal, spec)];
        let base = cluster_capacity(&plain, &gpu, 2, Placement::LeastLoaded, &cfg);
        let reuse = cluster_capacity(&temporal, &gpu, 2, Placement::LeastLoaded, &cfg);
        assert!(reuse > base, "temporal cluster capacity {reuse} must exceed plain {base}");
        // Threshold 0: the temporal stream's discounted costs equal the
        // plain OO-VR stream's, so the tier behaves identically.
        let exact = ClusterConfig { temporal: oovr::TemporalConfig::exact(), ..cfg };
        let st_t = resolve_streams(&temporal, &gpu, &exact);
        let st_p = resolve_streams(&plain, &gpu, &exact);
        assert_eq!(st_t.steady, st_p.steady);
        assert_eq!(st_t.cold, st_p.cold);
        for (a, b) in st_t.demand.iter().zip(&st_p.demand) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let gpu = GpuConfig::default();
        let cfg = ClusterConfig {
            fault: Some(FaultPlan::new(FaultScenario::GpmThrottle, 0.7, 11)),
            ..small_cfg()
        };
        let a = simulate_cluster(&two_stream_mix(), &gpu, &cfg, None);
        let b = simulate_cluster(&two_stream_mix(), &gpu, &cfg, None);
        assert_eq!(a.on_time, b.on_time);
        assert_eq!(a.sessions, b.sessions);
    }

    #[test]
    fn dead_server_triggers_failover_and_baseline_loses_more() {
        let gpu = GpuConfig::default();
        let horizon = VSYNC_90HZ_CYCLES * 24;
        let plan = FaultPlan::new(FaultScenario::LinkDown, 1.0, 3).with_horizon(horizon);
        assert!(plan.disturbs_servers(4, VSYNC_90HZ_CYCLES));
        let resilient = ClusterConfig { sessions: 200, fault: Some(plan.clone()), ..small_cfg() };
        let baseline = ClusterConfig { router: RouterConfig::baseline(), ..resilient.clone() };
        let r = simulate_cluster(&mix(), &gpu, &resilient, None);
        let b = simulate_cluster(&mix(), &gpu, &baseline, None);
        assert!(r.downs > 0, "the fault must kill a server at least once");
        assert!(r.failovers > 0, "dead server must trigger failovers");
        assert_eq!(b.failovers, 0);
        assert!(
            r.goodput() > b.goodput(),
            "resilient {} must strictly beat baseline {}",
            r.goodput(),
            b.goodput()
        );
    }

    #[test]
    fn capacity_scales_with_servers() {
        let gpu = GpuConfig::default();
        let cfg = ClusterConfig::default();
        let one = cluster_capacity(&mix(), &gpu, 1, Placement::LeastLoaded, &cfg);
        let four = cluster_capacity(&mix(), &gpu, 4, Placement::LeastLoaded, &cfg);
        assert!(one > 0);
        assert!(
            four as f64 >= 0.9 * 4.0 * one as f64,
            "N=4 capacity {four} must reach 90% of 4x the N=1 capacity {one}"
        );
    }

    #[test]
    fn affinity_packing_beats_least_loaded_on_shared_streams() {
        let gpu = GpuConfig::default();
        let cfg = ClusterConfig::default();
        let ll = cluster_capacity(&two_stream_mix(), &gpu, 4, Placement::LeastLoaded, &cfg);
        let af = cluster_capacity(&two_stream_mix(), &gpu, 4, Placement::Affinity, &cfg);
        assert!(
            af > ll,
            "affinity packing ({af}) must strictly beat least-loaded ({ll}) on a shared-stream mix"
        );
    }

    #[test]
    fn zero_severity_fault_plan_is_bit_identical_to_no_plan() {
        let gpu = GpuConfig::default();
        let base = small_cfg();
        let with_noop = ClusterConfig { fault: Some(FaultPlan::none()), ..base.clone() };
        let a = simulate_cluster(&two_stream_mix(), &gpu, &base, None);
        let b = simulate_cluster(&two_stream_mix(), &gpu, &with_noop, None);
        assert_eq!(a.sessions, b.sessions);
        assert_eq!(a.on_time, b.on_time);
        assert_eq!(a.retries, b.retries);
    }

    #[test]
    fn cluster_runs_emit_cluster_events() {
        let gpu = GpuConfig::default();
        let horizon = VSYNC_90HZ_CYCLES * 24;
        let cfg = ClusterConfig {
            sessions: 200,
            fault: Some(FaultPlan::new(FaultScenario::LinkDown, 1.0, 3).with_horizon(horizon)),
            ..small_cfg()
        };
        let mut rec = Recorder::new(oovr_trace::TraceConfig::default());
        let out = simulate_cluster(&mix(), &gpu, &cfg, Some(&mut rec));
        let events = rec.into_events();
        let ups = events.iter().filter(|e| matches!(e, TraceEvent::ServerUp { .. })).count();
        let routes = events.iter().filter(|e| matches!(e, TraceEvent::SessionRoute { .. })).count();
        let fails =
            events.iter().filter(|e| matches!(e, TraceEvent::SessionFailover { .. })).count();
        assert!(ups >= 4, "every server must announce itself");
        assert_eq!(routes as u32, out.admitted);
        assert_eq!(fails as u64, out.failovers);
        assert!(fails > 0);
    }
}
