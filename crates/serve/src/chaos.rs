//! Cluster capacity tables and the chaos sweep behind `figures -- cluster`
//! and `figures -- chaos`.
//!
//! Three deterministic grids:
//!
//! * [`cluster_scale_table`] — fault-free capacity vs. fleet size: one row
//!   per workload, columns `N ∈ {1, 2, 4, 8}` plus the N=4 scaling
//!   efficiency `eff(4) = cap(4) / (4 · cap(1))`. Near-linear scaling is
//!   an acceptance gate (`eff(4) ≥ 0.9`, checked by `figures -- cluster`).
//! * [`cluster_policy_table`] — placement shoot-out on mixes whose
//!   sessions share cost streams: affinity packing must strictly beat
//!   least-loaded (the cross-stream working-set tax is exactly what
//!   packing avoids), with rendezvous hashing as the stateless reference.
//! * [`chaos_table`] — the robustness headline: every (scenario ×
//!   severity) fault cell, against every placement policy, runs twice —
//!   once with the resilient router (retry + failover + migration + shed)
//!   and once with the retry-free/no-migration baseline — and reports
//!   goodput. The resilient arm must retain strictly more goodput in
//!   every fault cell.
//!
//! Fault seeds are *scanned*: low-severity transient scenarios can draw
//! zero outage windows, which would make a chaos cell silently fault-free
//! and the strict comparison vacuous. [`chaos_table`] walks seeds until
//! [`FaultPlan::disturbs_servers`] confirms the plan actually perturbs a
//! server rate on the vsync grid, so every cell measures a real fault.

use oovr::experiments::{par_map, FigureTable};
use oovr_gpu::{FaultPlan, FaultScenario, GpuConfig};
use oovr_scene::BenchmarkSpec;

use crate::cluster::{cluster_capacity, simulate_cluster, ClusterConfig};
use crate::router::{Placement, RouterConfig};
use crate::stream::ServeScheme;

/// Fault severities swept by [`chaos_table`].
pub const CHAOS_SEVERITIES: [f64; 3] = [0.4, 0.7, 1.0];

/// Fraction of fault-free cluster capacity the chaos sweep offers as load:
/// high enough that any capacity loss bites, low enough that the fault-free
/// row admits cleanly.
pub const CHAOS_LOAD: f64 = 0.85;

/// Seeds scanned per chaos cell for a plan that actually disturbs.
const SEED_SCAN: u64 = 256;

/// One measured (scenario, severity, policy) chaos cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosCell {
    /// Fault scenario name (`"none"` for the fault-free reference row).
    pub scenario: &'static str,
    /// Fault severity in `[0, 1]`.
    pub severity: f64,
    /// Placement policy label.
    pub policy: &'static str,
    /// Goodput of the retry-free/no-migration baseline router.
    pub baseline: f64,
    /// Goodput of the resilient router on the identical fault.
    pub resilient: f64,
    /// Fault seed the cell settled on after disturbance scanning.
    pub seed: u64,
}

/// Fleet sizes of the capacity-vs-N table.
const SCALE_NS: [u32; 4] = [1, 2, 4, 8];

/// Fault-free cluster capacity vs. fleet size, one row per workload
/// (least-loaded placement, OO-VR sessions), plus the N=4 scaling
/// efficiency column `eff(4)`.
pub fn cluster_scale_table(
    specs: &[BenchmarkSpec],
    gpu: &GpuConfig,
    cfg: &ClusterConfig,
) -> FigureTable {
    let cells: Vec<(&BenchmarkSpec, u32)> =
        specs.iter().flat_map(|s| SCALE_NS.map(|n| (s, n))).collect();
    let caps = par_map(&cells, |&(spec, n)| {
        let mix = vec![(ServeScheme::OoVr, spec.clone())];
        cluster_capacity(&mix, gpu, n, Placement::LeastLoaded, cfg) as f64
    });
    let rows = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let mut vals: Vec<f64> = caps[i * SCALE_NS.len()..(i + 1) * SCALE_NS.len()].to_vec();
            let (one, four) = (vals[0], vals[2]);
            vals.push(if one > 0.0 { four / (4.0 * one) } else { 0.0 });
            (spec.name.clone(), vals)
        })
        .collect();
    FigureTable {
        id: "cluster",
        title: "Cluster capacity vs. fleet size: max warm sessions at <1% missed vsync".to_string(),
        columns: SCALE_NS
            .iter()
            .map(|n| format!("N={n}"))
            .chain(std::iter::once("eff(4)".to_string()))
            .collect(),
        rows,
    }
}

/// The shared-stream mixes the policy shoot-out runs: the first 2, 3, and
/// 4 workloads of `specs`, sessions round-robining the mix.
fn policy_mixes(specs: &[BenchmarkSpec]) -> Vec<Vec<(ServeScheme, BenchmarkSpec)>> {
    [2usize, 3, 4]
        .iter()
        .filter(|&&k| k <= specs.len())
        .map(|&k| specs[..k].iter().map(|s| (ServeScheme::OoVr, s.clone())).collect())
        .collect()
}

fn mix_label(mix: &[(ServeScheme, BenchmarkSpec)]) -> String {
    mix.iter().map(|(_, s)| s.name.as_str()).collect::<Vec<_>>().join("+")
}

/// Placement-policy capacity shoot-out on shared-stream mixes at N=4: one
/// row per mix, one column per [`Placement`].
pub fn cluster_policy_table(
    specs: &[BenchmarkSpec],
    gpu: &GpuConfig,
    cfg: &ClusterConfig,
) -> FigureTable {
    let mixes = policy_mixes(specs);
    let cells: Vec<(usize, Placement)> =
        (0..mixes.len()).flat_map(|m| Placement::ALL.map(|p| (m, p))).collect();
    let caps = par_map(&cells, |&(m, p)| cluster_capacity(&mixes[m], gpu, 4, p, cfg) as f64);
    let n = Placement::ALL.len();
    let rows = mixes
        .iter()
        .enumerate()
        .map(|(m, mix)| (mix_label(mix), caps[m * n..(m + 1) * n].to_vec()))
        .collect();
    FigureTable {
        id: "cluster_policy",
        title: "Placement policies on shared-stream mixes: max warm sessions, N=4".to_string(),
        columns: Placement::ALL.iter().map(|p| p.label().to_string()).collect(),
        rows,
    }
}

/// Scans seeds until the plan actually perturbs a server rate on the vsync
/// grid within the run horizon. Returns the settled plan. Shared with the
/// health gate ([`crate::metrics`]), which evaluates SLO compliance at the
/// same operating points this sweep measures.
pub(crate) fn effective_plan(
    scenario: FaultScenario,
    severity: f64,
    base_seed: u64,
    servers: u32,
    horizon: oovr_trace::Cycle,
    vsync: oovr_trace::Cycle,
) -> FaultPlan {
    let mut last = FaultPlan::new(scenario, severity, base_seed).with_horizon(horizon);
    for s in 0..SEED_SCAN {
        let plan =
            FaultPlan::new(scenario, severity, base_seed.wrapping_add(s)).with_horizon(horizon);
        if plan.disturbs_servers(servers as usize, vsync) {
            return plan;
        }
        last = plan;
    }
    last
}

/// The chaos sweep: every (scenario × severity) cell against every
/// placement policy, resilient router vs. the retry-free baseline, on an
/// identical seeded fault. Returns the goodput table (rows
/// `scenario/severity`, one baseline and one `+res` column per policy)
/// plus the flat cells for programmatic validation. A fault-free `none`
/// reference row leads the table.
///
/// The offered load is [`CHAOS_LOAD`] of the mix's fault-free N=4
/// least-loaded capacity, arriving over `cfg.arrival_intervals`.
pub fn chaos_table(
    mix: &[(ServeScheme, BenchmarkSpec)],
    gpu: &GpuConfig,
    cfg: &ClusterConfig,
) -> (FigureTable, Vec<ChaosCell>) {
    let servers = 4u32;
    let cap = cluster_capacity(mix, gpu, servers, Placement::LeastLoaded, cfg);
    let sessions = (((cap as f64) * CHAOS_LOAD) as u32).max(1);
    let v = cfg.vsync_cycles.max(1);
    // Last interval any session can still serve a paced frame: the latest
    // arrival (`arrival_intervals - 1`) plus its final frame. Scanning past
    // it would accept plans whose only disturbance lands after the run is
    // over — a vacuous chaos cell.
    let horizon = (cfg.arrival_intervals.saturating_sub(1) + cfg.frames_per_session) as u64 * v;

    let mut grid: Vec<(Option<(FaultScenario, f64)>, usize)> = vec![(None, 0)];
    for (si, scenario) in FaultScenario::ALL.into_iter().enumerate() {
        for (vi, &sev) in CHAOS_SEVERITIES.iter().enumerate() {
            grid.push((Some((scenario, sev)), si * CHAOS_SEVERITIES.len() + vi + 1));
        }
    }

    let rows_cells: Vec<(String, Vec<f64>, Vec<ChaosCell>)> = par_map(&grid, |&(cell, idx)| {
        let (name, severity, plan) = match cell {
            None => ("none", 0.0, None),
            Some((scenario, sev)) => {
                let base_seed = cfg.seed ^ (idx as u64).wrapping_mul(0x9E37_79B9);
                let plan = effective_plan(scenario, sev, base_seed, servers, horizon, v);
                (scenario.name(), sev, Some(plan))
            }
        };
        let mut vals = Vec::with_capacity(Placement::ALL.len() * 2);
        let mut cells = Vec::with_capacity(Placement::ALL.len());
        for policy in Placement::ALL {
            let run = |router: RouterConfig| {
                let run_cfg = ClusterConfig {
                    servers,
                    sessions,
                    policy,
                    router,
                    fault: plan.clone(),
                    ..cfg.clone()
                };
                simulate_cluster(mix, gpu, &run_cfg, None).goodput()
            };
            let baseline = run(RouterConfig::baseline());
            let resilient = run(RouterConfig::resilient());
            vals.push(baseline);
            vals.push(resilient);
            cells.push(ChaosCell {
                scenario: name,
                severity,
                policy: policy.label(),
                baseline,
                resilient,
                seed: plan.as_ref().map_or(0, |p| p.seed),
            });
        }
        (format!("{name}/{severity:.2}"), vals, cells)
    });

    let mut columns = Vec::new();
    for p in Placement::ALL {
        columns.push(p.label().to_string());
        columns.push(format!("{}+res", p.label()));
    }
    let table = FigureTable {
        id: "chaos",
        title: format!(
            "Chaos sweep: goodput under server faults at {:.0}% offered load, N=4 ({} sessions)",
            CHAOS_LOAD * 100.0,
            sessions
        ),
        columns,
        rows: rows_cells.iter().map(|(l, v, _)| (l.clone(), v.clone())).collect(),
    };
    let cells = rows_cells.into_iter().flat_map(|(_, _, c)| c).collect();
    (table, cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oovr_scene::benchmarks;

    fn specs() -> Vec<BenchmarkSpec> {
        vec![benchmarks::hl2_640().scaled(0.05), benchmarks::we().scaled(0.05)]
    }

    #[test]
    fn scale_table_shape_and_efficiency() {
        let t =
            cluster_scale_table(&specs()[..1], &GpuConfig::default(), &ClusterConfig::default());
        assert_eq!(t.id, "cluster");
        assert_eq!(t.columns, vec!["N=1", "N=2", "N=4", "N=8", "eff(4)"]);
        assert_eq!(t.rows.len(), 1);
        let label = t.rows[0].0.clone();
        assert!(label.starts_with("HL2-640"), "row label {label} must name the workload");
        let eff = t.value(&label, "eff(4)").expect("eff cell");
        assert!(eff >= 0.9, "N=4 scaling efficiency {eff} below 0.9");
    }

    #[test]
    fn policy_table_affinity_beats_least_loaded() {
        let t = cluster_policy_table(&specs(), &GpuConfig::default(), &ClusterConfig::default());
        assert_eq!(t.rows.len(), 1, "two specs yield exactly the k=2 mix");
        let row = &t.rows[0];
        assert_eq!(row.0, "HL2-640@0.05+WE@0.05");
        let ll = t.value(&row.0, "least-loaded").expect("ll cell");
        let af = t.value(&row.0, "affinity").expect("af cell");
        assert!(af > ll, "affinity {af} must strictly beat least-loaded {ll}");
    }

    #[test]
    fn effective_plans_always_disturb() {
        let v = oovr_gpu::VSYNC_90HZ_CYCLES;
        let horizon = 40 * v;
        for scenario in FaultScenario::ALL {
            for sev in CHAOS_SEVERITIES {
                let plan = effective_plan(scenario, sev, 7, 4, horizon, v);
                assert!(
                    plan.disturbs_servers(4, v),
                    "{}/{sev} plan must disturb after seed scanning",
                    scenario.name()
                );
            }
        }
    }

    #[test]
    fn chaos_cells_mark_resilient_strictly_better_under_faults() {
        // Reduced grid cost: one workload, small frames; the full-scale
        // strictness gate lives in `figures -- chaos`.
        let mix = vec![(ServeScheme::OoVr, benchmarks::hl2_640().scaled(0.05))];
        let cfg = ClusterConfig { frames_per_session: 16, ..ClusterConfig::default() };
        let (table, cells) = chaos_table(&mix, &GpuConfig::default(), &cfg);
        assert_eq!(table.rows.len(), 1 + FaultScenario::ALL.len() * CHAOS_SEVERITIES.len());
        assert_eq!(cells.len(), table.rows.len() * Placement::ALL.len());
        for c in &cells {
            if c.severity > 0.0 {
                assert!(
                    c.resilient > c.baseline,
                    "{}/{:.2}/{}: resilient {} must strictly beat baseline {}",
                    c.scenario,
                    c.severity,
                    c.policy,
                    c.resilient,
                    c.baseline
                );
            } else {
                assert!((c.resilient - c.baseline).abs() < 1e-12, "fault-free arms must agree");
            }
        }
    }
}
