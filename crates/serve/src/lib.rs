//! # oovr-serve
//!
//! A deterministic multi-session VR *serving* layer over the OO-VR
//! reproduction: the cloud-rendering question the paper's single-app
//! evaluation stops short of — how many concurrent VR sessions can one
//! future 4-GPM NUMA multi-GPU board hold at 90 Hz, and how much does the
//! OO-VR framework raise that number?
//!
//! Everything runs in simulated time (cycles at the 1 GHz Table 2 clock);
//! no wall clock is ever read, so every run replays bit-identically from
//! its seed. The pieces:
//!
//! * [`pose`] — seeded head-pose trajectories; each session is a
//!   pose-driven frame stream, one view transform per 90 Hz frame.
//! * [`stream`] — per-session frame-cost streams measured once on the
//!   deterministic executor (OO-VR sessions pay PA on their cold frame,
//!   then replay the steady state) and memoized process-wide. The
//!   `OOVR+temporal` scheme additionally carries a per-object
//!   [`oovr::temporal::TemporalProfile`] so warm frames are priced by the
//!   session's head-pose delta (reused objects pay ATW warp cycles
//!   instead of a re-render).
//! * [`admission`] — admission control from the paper's Eq. 3 predictor:
//!   a session enters only if the predicted aggregate steady demand fits
//!   inside one vsync interval with headroom.
//! * [`scheduler`] — the EDF vsync scheduler multiplexing admitted
//!   sessions onto the single 4-GPM renderer, with stale-frame drops,
//!   `ResilienceConfig`-driven load shedding, and full session-lifecycle
//!   tracing through `oovr-trace`.
//! * [`qos`] — per-session and aggregate p50/p99/p99.9 frame latency,
//!   missed-vsync rate, drops, sheds, and goodput.
//! * [`capacity`] — the steady-state capacity probe behind the
//!   `figures -- serve` table (`results/serve.csv`).
//! * [`router`] — the cluster session router: pluggable placement
//!   (least-loaded, workload-affinity packing, rendezvous consistent
//!   hashing) and the retry/failover/migration/shed robustness knobs.
//! * [`cluster`] — N EDF servers behind the router, with server-level
//!   `FaultPlan`s (a server index plays the GPM role): admission retry
//!   with capped backoff, failover off dead servers, overload migration
//!   with an anti-ping-pong guard, and cluster-wide quality shedding.
//! * [`chaos`] — the `figures -- cluster` capacity tables and the
//!   `figures -- chaos` (scenario × severity × policy) goodput sweep.
//!
//! ```
//! use oovr_scene::benchmarks;
//! use oovr_serve::{capacity, ServeConfig, ServeScheme};
//!
//! let spec = benchmarks::hl2_640().scaled(0.05);
//! let gpu = oovr_gpu::GpuConfig::default();
//! let cfg = ServeConfig::default();
//! let base = capacity(ServeScheme::Baseline, &spec, &gpu, &cfg);
//! let oovr = capacity(ServeScheme::OoVr, &spec, &gpu, &cfg);
//! assert!(oovr > base);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod capacity;
pub mod chaos;
pub mod cluster;
pub mod metrics;
pub mod pose;
pub mod qos;
pub mod router;
pub mod scheduler;
pub mod stream;

pub use admission::{
    calibrate, calibrate_discounted, AdmissionController, AdmissionDecision, DEFAULT_HEADROOM,
};
pub use capacity::{capacity, capacity_table, MISS_BUDGET};
pub use chaos::{chaos_table, cluster_policy_table, cluster_scale_table, ChaosCell};
pub use cluster::{
    cluster_capacity, simulate_cluster, simulate_cluster_metered, ClusterConfig, ClusterOutcome,
    ClusterSession,
};
pub use metrics::{
    cluster_slos, health_cell, health_table, metrics_table, serve_slos, HealthCell,
    FAULT_MISS_BUDGET, NOMINAL_MISS_BUDGET, SERVE_MISS_BUDGET, SHED_TIME_BUDGET,
};
pub use oovr_gpu::VSYNC_90HZ_CYCLES;
pub use pose::{Pose, PoseModel, PoseTrajectory};
pub use qos::{aggregate_qos, percentile, session_qos, AggregateQos, SessionQos};
pub use router::{Placement, RouterConfig, ServerView};
pub use scheduler::{
    simulate, simulate_metered, FrameRecord, Reject, ServeConfig, ServeOutcome, SessionOutcome,
};
pub use stream::{
    cost_stream, serve_cache_stats, ServeCacheStats, ServeScheme, SessionCostStream,
    MEASURED_FRAMES,
};
