//! The deterministic multi-session vsync scheduler.
//!
//! [`simulate`] runs an open-loop serving experiment entirely in simulated
//! time: seeded session arrivals over a horizon, Eq. 3 admission control at
//! the door, and earliest-deadline-first multiplexing of every admitted
//! session's frame stream onto the one 4-GPM rendering system against the
//! 90 Hz vsync grid. Nothing reads a wall clock and every tie-break is a
//! total order over integers, so a (scheme, workload, config, seed) tuple
//! replays bit-identically — the property the serving proptests pin.
//!
//! The model:
//!
//! * A session admitted at `t0` releases frame `f` at `t0 + f·V` with
//!   deadline `t0 + (f+1)·V` (`V` = one vsync interval). Frame 0 is the
//!   cold warmup frame (PA distribution); it is scheduled like any other
//!   frame but excluded from the SLO accounting (see [`crate::qos`]).
//! * The renderer serves one frame at a time (the whole 4-GPM system is
//!   the unit of multiplexing — intra-frame parallelism is inside the cost
//!   model). Ready frames are served in EDF order with ties broken by
//!   (session, frame), which is deadline-optimal on one server.
//! * A frame whose start would be more than one vsync past its deadline is
//!   *dropped* as stale without consuming render time — presenting it
//!   could only delay younger frames further.
//! * Under [`ServeScheme::sheds`] schemes, a frame projected to miss its
//!   deadline is re-shaded at a degraded scale (`shed_step`/`shed_floor`
//!   from [`ResilienceConfig`], the same knobs the in-frame deadline
//!   monitor uses), trading shade quality for timeliness; on-time frames
//!   recover scale multiplicatively.
//!
//! Every lifecycle transition (admit/reject/frame-start/span/miss/shed/
//! drop) is emitted as an [`oovr_trace`] event, so `figures -- trace`
//! renders serving timelines with per-session tracks.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use oovr::{ResilienceConfig, TemporalConfig};
use oovr_gpu::{FrameReport, GpuConfig, VSYNC_90HZ_CYCLES};
use oovr_metrics::Registry;
use oovr_scene::BenchmarkSpec;
use oovr_trace::{Cycle, Recorder, TraceEvent, TraceSink};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::admission::{
    calibrate_discounted, AdmissionController, AdmissionDecision, DEFAULT_HEADROOM,
};
use crate::pose::{Pose, PoseTrajectory};
use crate::qos::{aggregate_qos, session_qos, AggregateQos, SessionQos};
use crate::stream::{cost_stream, ServeScheme, SessionCostStream};

/// Configuration of one serving run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Vsync interval in cycles (default: 90 Hz at the 1 GHz clock).
    pub vsync_cycles: Cycle,
    /// Session arrivals generated over the run.
    pub sessions: u32,
    /// Paced frames per session after the warmup frame.
    pub frames_per_session: u32,
    /// Mean gap between consecutive arrivals in cycles (gaps are drawn
    /// uniformly from `[mean/2, 3·mean/2]`, seeded).
    pub mean_interarrival: Cycle,
    /// Seed for arrivals and head-pose trajectories.
    pub seed: u64,
    /// Admission headroom fraction of the vsync budget.
    pub headroom: f64,
    /// Shedding knobs (`shed_step`, `shed_floor`) for schemes that shed.
    pub resilience: ResilienceConfig,
    /// Temporal-reuse knob ([`TemporalConfig::reuse_threshold`]) for
    /// [`ServeScheme::temporal`] schemes. A threshold of `0.0` disables
    /// reuse bit-exactly (every frame re-renders at full cost).
    pub temporal: TemporalConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            vsync_cycles: VSYNC_90HZ_CYCLES,
            sessions: 8,
            frames_per_session: 16,
            mean_interarrival: VSYNC_90HZ_CYCLES / 4,
            seed: 0x00D1_5EED,
            headroom: DEFAULT_HEADROOM,
            resilience: ResilienceConfig::on(),
            temporal: TemporalConfig::default(),
        }
    }
}

/// One scheduled frame of an admitted session.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameRecord {
    /// Frame index within the session (0 = warmup).
    pub frame: u32,
    /// Index into the cost stream's reports backing this frame.
    pub report_index: usize,
    /// Release (vsync grid) cycle.
    pub release: Cycle,
    /// Presentation deadline (`release + V`).
    pub deadline: Cycle,
    /// Cycle rendering started (equals `end` for dropped frames).
    pub start: Cycle,
    /// Cycle rendering retired.
    pub end: Cycle,
    /// Shade scale the frame ran at (1.0 = full quality).
    pub scale: f64,
    /// Whether the frame retired after its deadline.
    pub missed: bool,
    /// Whether the frame was dropped as stale without rendering.
    pub dropped: bool,
    /// Head pose the session's client submitted for this frame.
    pub pose: Pose,
}

/// One admitted session's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionOutcome {
    /// Global session id (arrival order, shared with rejected sessions).
    pub id: u32,
    /// Arrival (= admission) cycle.
    pub arrival: Cycle,
    /// Predicted per-vsync demand at admission (Eq. 3).
    pub predicted: f64,
    /// Scheduled frames in frame order.
    pub frames: Vec<FrameRecord>,
}

/// A session turned away at admission.
#[derive(Debug, Clone, PartialEq)]
pub struct Reject {
    /// Global session id.
    pub id: u32,
    /// Arrival cycle.
    pub arrival: Cycle,
    /// Predicted per-vsync demand that did not fit.
    pub predicted: f64,
}

/// Everything a serving run produced.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Scheme the run multiplexed under.
    pub scheme: ServeScheme,
    /// Workload name.
    pub workload: String,
    /// Vsync interval used.
    pub vsync: Cycle,
    /// Admitted sessions in arrival order.
    pub sessions: Vec<SessionOutcome>,
    /// Rejected sessions in arrival order.
    pub rejects: Vec<Reject>,
    /// The shared cost stream (for report access).
    pub stream: Arc<SessionCostStream>,
}

impl ServeOutcome {
    /// Aggregate QoS over all admitted sessions.
    pub fn qos(&self) -> AggregateQos {
        aggregate_qos(self)
    }

    /// Per-session QoS summaries.
    pub fn session_qos(&self) -> Vec<SessionQos> {
        self.sessions.iter().map(session_qos).collect()
    }

    /// The frame reports session `idx` (index into
    /// [`sessions`](Self::sessions)) replayed, in frame order — for
    /// bit-identity checks against a standalone warm-executor run.
    pub fn session_reports(&self, idx: usize) -> Vec<&FrameReport> {
        self.sessions[idx].frames.iter().map(|f| &self.stream.reports[f.report_index]).collect()
    }
}

/// Runs one deterministic serving experiment. `trace`, when given,
/// receives the session-lifecycle events in cycle order.
pub fn simulate(
    scheme: ServeScheme,
    spec: &BenchmarkSpec,
    gpu: &GpuConfig,
    cfg: &ServeConfig,
    trace: Option<&mut Recorder>,
) -> ServeOutcome {
    simulate_metered(scheme, spec, gpu, cfg, trace, None)
}

/// [`simulate`] with an optional [`Registry`] receiving serve-layer
/// metrics (frame counts, misses, sheds, the release-to-retire latency
/// histogram, admission and temporal counters), windowed by the vsync
/// interval. The registry is a pure observer: a metered run is
/// bit-identical to an unmetered one (pinned by `prop_metrics`), and with
/// `None` the only cost is one untaken `Option` branch per event site —
/// the same contract the trace recorder honours.
pub fn simulate_metered(
    scheme: ServeScheme,
    spec: &BenchmarkSpec,
    gpu: &GpuConfig,
    cfg: &ServeConfig,
    trace: Option<&mut Recorder>,
    mut metrics: Option<&mut Registry>,
) -> ServeOutcome {
    let stream = cost_stream(scheme, spec, gpu);
    let v = cfg.vsync_cycles.max(1);
    let total_frames = cfg.frames_per_session + 1; // warmup + paced

    // Calibrate Eq. 3 from the measured stream (whole-frame samples) and
    // run every arrival through the admission controller. Temporal schemes
    // price warm frames at their temporally-reused cost: the measured
    // cycles minus the mean reuse saving over a reference trajectory
    // seeded from the run seed (zero at threshold 0, so calibration stays
    // bit-identical to plain OO-VR).
    let threshold = cfg.temporal.reuse_threshold;
    let discount = if scheme.temporal() {
        stream.mean_temporal_saving(threshold, cfg.seed, cfg.frames_per_session.max(1))
    } else {
        0
    };
    let report_refs: Vec<&FrameReport> = stream.reports.iter().collect();
    let mut admission =
        AdmissionController::new(calibrate_discounted(&report_refs, discount), v, cfg.headroom);
    let steady_tris = stream.steady().counts.triangles;

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut events: Vec<TraceEvent> = Vec::new();
    let mut sessions: Vec<SessionOutcome> = Vec::new();
    let mut poses: Vec<Vec<Pose>> = Vec::new();
    let mut rejects: Vec<Reject> = Vec::new();

    let mut arrival: Cycle = 0;
    for id in 0..cfg.sessions {
        if id > 0 {
            let mean = cfg.mean_interarrival;
            arrival += rng.gen_range(mean / 2..=mean + mean / 2);
        }
        // A session holds its budget until one interval past its last
        // deadline (slack for queueing delay).
        let departure = arrival + Cycle::from(total_frames + 1) * v;
        match admission.offer(arrival, steady_tris, departure) {
            AdmissionDecision::Admitted { active, predicted } => {
                events.push(TraceEvent::SessionAdmit {
                    cycle: arrival,
                    session: id,
                    predicted,
                    active,
                });
                if let Some(reg) = metrics.as_deref_mut() {
                    reg.inc("sessions_admitted", "", arrival, 1);
                    reg.observe("admission_predicted_cycles", "", arrival, predicted as Cycle);
                }
                // The head-pose trajectory is per-session seeded: frame 0
                // presents the rest pose, each paced frame steps the walk.
                let mut traj = PoseTrajectory::new(
                    cfg.seed ^ (id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let mut path = vec![traj.current()];
                path.extend((0..cfg.frames_per_session).map(|_| traj.step()));
                poses.push(path);
                sessions.push(SessionOutcome {
                    id,
                    arrival,
                    predicted,
                    frames: Vec::with_capacity(total_frames as usize),
                });
            }
            AdmissionDecision::Rejected { predicted, reason } => {
                events.push(TraceEvent::SessionReject {
                    cycle: arrival,
                    session: id,
                    predicted,
                    reason,
                });
                if let Some(reg) = metrics.as_deref_mut() {
                    reg.inc("sessions_rejected", "", arrival, 1);
                }
                rejects.push(Reject { id, arrival, predicted });
            }
        }
    }

    // All frame releases of admitted sessions, in release order. `slot`
    // indexes the admitted-session vectors; ids stay global.
    let mut releases: Vec<(Cycle, u32, u32)> = Vec::new(); // (release, slot, frame)
    for (slot, s) in sessions.iter().enumerate() {
        for f in 0..total_frames {
            releases.push((s.arrival + Cycle::from(f) * v, slot as u32, f));
        }
    }
    releases.sort_unstable();

    // EDF over the single render engine. Keys are integers only, totally
    // ordered by (deadline, slot, frame) — no ties, no float compares.
    let temporal = if scheme.temporal() { stream.temporal.as_deref() } else { None };
    let sheds = scheme.sheds();
    let (step, floor) = (cfg.resilience.shed_step, cfg.resilience.shed_floor);
    let mut scales = vec![1.0f64; sessions.len()];
    let mut heap: BinaryHeap<Reverse<(Cycle, u32, u32, Cycle)>> = BinaryHeap::new();
    let mut now: Cycle = 0;
    let mut next = 0usize;
    while next < releases.len() || !heap.is_empty() {
        while next < releases.len() && releases[next].0 <= now {
            let (release, slot, frame) = releases[next];
            heap.push(Reverse((release + v, slot, frame, release)));
            next += 1;
        }
        let Some(Reverse((deadline, slot, frame, release))) = heap.pop() else {
            now = releases[next].0; // engine idles until the next release
            continue;
        };
        let session = &mut sessions[slot as usize];
        let id = session.id;
        let report_index = stream.report_index(frame);
        let pose = poses[slot as usize][frame as usize];

        if now > deadline + v {
            // More than one interval stale: presenting it would only push
            // younger frames later. Drop without consuming render time.
            events.push(TraceEvent::FrameDrop { cycle: now, session: id, frame, reason: "stale" });
            if frame > 0 {
                // Paced frames only — warmup is outside the SLO accounting,
                // matching `qos::session_qos`.
                if let Some(reg) = metrics.as_deref_mut() {
                    reg.inc("frames", "", now, 1);
                    reg.inc("frames_missed", "", now, 1);
                    reg.inc("frames_dropped", "", now, 1);
                }
            }
            session.frames.push(FrameRecord {
                frame,
                report_index,
                release,
                deadline,
                start: now,
                end: now,
                scale: scales[slot as usize],
                missed: true,
                dropped: true,
                pose,
            });
            continue;
        }

        // Temporal schemes price warm frames by the pose delta since the
        // previous frame: objects whose projected bound moved less than
        // the threshold are warped (ATW) instead of re-rendered. Frame 0
        // has no predecessor and always pays the full cold cost.
        let tdec = temporal.filter(|_| frame > 0).map(|profile| {
            profile.decide(&poses[slot as usize][frame as usize - 1], &pose, threshold)
        });
        let base = stream.cost_for(frame);
        let base = tdec.as_ref().map_or(base, |d| d.apply(base));
        let mut scale = scales[slot as usize];
        let cost_at = |s: f64| (((base as f64) * s).round() as Cycle).max(1);
        if sheds {
            let before = scale;
            while scale > floor && now + cost_at(scale) > deadline {
                scale = (scale * step).max(floor);
            }
            if scale < before {
                scales[slot as usize] = scale;
                events.push(TraceEvent::FrameShed { cycle: now, session: id, frame, scale });
            }
        }
        let cost = if sheds { cost_at(scale) } else { base };
        let (start, end) = (now, now + cost);
        events.push(TraceEvent::FrameStart { cycle: start, session: id, frame, deadline });
        events.push(TraceEvent::FrameSpan { session: id, frame, start, end, scale });
        if let Some(d) = &tdec {
            events.push(TraceEvent::TemporalReuse {
                cycle: start,
                session: id,
                frame,
                reused: d.reused,
                rerendered: d.rerendered,
                saved: d.saved,
            });
            if let Some(reg) = metrics.as_deref_mut() {
                reg.inc("temporal_frames", "", start, 1);
                reg.inc("temporal_objects_reused", "", start, u64::from(d.reused));
                reg.inc("temporal_objects_rerendered", "", start, u64::from(d.rerendered));
                reg.inc("temporal_saved_cycles", "", start, d.saved);
            }
        }
        let missed = end > deadline;
        if missed {
            events.push(TraceEvent::DeadlineMiss { cycle: end, session: id, frame, deadline });
        } else if sheds && scale < 1.0 {
            // Backpressure released: recover shade quality multiplicatively.
            scales[slot as usize] = (scale / step).min(1.0);
        }
        if frame > 0 {
            if let Some(reg) = metrics.as_deref_mut() {
                reg.inc("frames", "", end, 1);
                reg.observe("frame_latency_cycles", "", end, end - release);
                if missed {
                    reg.inc("frames_missed", "", end, 1);
                }
                if scale < 1.0 {
                    reg.inc("frames_shed", "", end, 1);
                }
            }
        }
        session.frames.push(FrameRecord {
            frame,
            report_index,
            release,
            deadline,
            start,
            end,
            scale,
            missed,
            dropped: false,
            pose,
        });
        now = end;
    }

    for s in &mut sessions {
        s.frames.sort_by_key(|f| f.frame);
    }

    if let Some(rec) = trace {
        // Emission order is simulation order; the exporters require
        // non-decreasing timestamps per track, so sort by cycle (stable —
        // same-cycle events keep their causal order).
        events.sort_by_key(|e| e.cycle());
        for e in events {
            rec.record(e);
        }
    }

    if let Some(reg) = metrics {
        let min_scale = sessions
            .iter()
            .flat_map(|s| s.frames.iter())
            .filter(|f| !f.dropped)
            .map(|f| f.scale)
            .fold(1.0f64, f64::min);
        reg.set_gauge("min_scale", "", min_scale);
    }

    ServeOutcome { scheme, workload: spec.name.clone(), vsync: v, sessions, rejects, stream }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oovr_scene::benchmarks;
    use oovr_trace::TraceConfig;

    fn spec() -> BenchmarkSpec {
        benchmarks::hl2_640().scaled(0.05)
    }

    fn small(sessions: u32, frames: u32) -> ServeConfig {
        ServeConfig { sessions, frames_per_session: frames, ..ServeConfig::default() }
    }

    #[test]
    fn single_session_replays_the_warm_stream() {
        let out = simulate(ServeScheme::OoVr, &spec(), &GpuConfig::default(), &small(1, 3), None);
        assert_eq!(out.sessions.len(), 1);
        assert!(out.rejects.is_empty());
        let frames = &out.sessions[0].frames;
        assert_eq!(frames.len(), 4);
        let reports = out.session_reports(0);
        let direct = oovr::schemes::OoVr::new().render_frames(
            &oovr::cache::scene_for(&spec()),
            &GpuConfig::default(),
            4,
        );
        for (got, want) in reports.iter().zip(&direct) {
            assert_eq!(got.frame_cycles, want.frame_cycles);
            assert_eq!(got.counts, want.counts);
        }
        // Alone on the machine at reduced scale, every frame is on time.
        assert!(frames.iter().all(|f| !f.missed && !f.dropped));
        let qos = out.qos();
        assert_eq!(qos.frames, 3);
        assert_eq!(qos.goodput, 1.0);
    }

    #[test]
    fn identical_seeds_replay_bit_identically() {
        let cfg = small(6, 8);
        let gpu = GpuConfig::default();
        let a = simulate(ServeScheme::OoVr, &spec(), &gpu, &cfg, None);
        let b = simulate(ServeScheme::OoVr, &spec(), &gpu, &cfg, None);
        assert_eq!(a.sessions, b.sessions);
        assert_eq!(a.rejects, b.rejects);
    }

    #[test]
    fn tight_vsync_rejects_the_overflow() {
        // Shrink the interval until only a couple of sessions fit.
        let steady =
            cost_stream(ServeScheme::OoVr, &spec(), &GpuConfig::default()).steady().frame_cycles;
        let cfg = ServeConfig {
            vsync_cycles: steady * 2,
            mean_interarrival: 0,
            headroom: 1.0,
            ..small(8, 4)
        };
        let out = simulate(ServeScheme::OoVr, &spec(), &GpuConfig::default(), &cfg, None);
        assert!(!out.sessions.is_empty(), "at least one session fits");
        assert!(!out.rejects.is_empty(), "the overflow must be turned away");
        assert_eq!(out.sessions.len() + out.rejects.len(), 8);
        // Predicted demand of what was admitted stays within the budget.
        let admitted: f64 = out.sessions.iter().map(|s| s.predicted).sum();
        assert!(admitted <= cfg.vsync_cycles as f64 + 1e-9);
    }

    #[test]
    fn shedding_degrades_scale_instead_of_missing() {
        let stream = cost_stream(ServeScheme::OoVrShed, &spec(), &GpuConfig::default());
        let (cold, steady) = (stream.cold().frame_cycles, stream.steady().frame_cycles);
        // V = (5·cold + 3·steady)/4 sits strictly between the admission
        // bound for two sessions ((cold + 3·steady)/2, Eq. 3 over the
        // 4-frame stream) and the 2·cold both cold frames need back to
        // back — so both sessions are admitted, and the second session's
        // warmup provably overruns its deadline unless the scheduler sheds.
        let cfg = ServeConfig {
            vsync_cycles: (5 * cold + 3 * steady) / 4,
            mean_interarrival: 0,
            headroom: 1.0,
            ..small(2, 12)
        };
        let shed = simulate(ServeScheme::OoVrShed, &spec(), &GpuConfig::default(), &cfg, None);
        assert_eq!(shed.sessions.len(), 2);
        let q = shed.qos();
        assert!(q.shed_frames > 0, "overload must trigger shedding");
        assert!(q.min_scale < 1.0);
        assert!(q.min_scale >= cfg.resilience.shed_floor - 1e-12);
        // The same offered load without shedding misses more vsyncs.
        let hard = simulate(ServeScheme::OoVr, &spec(), &GpuConfig::default(), &cfg, None);
        assert!(q.miss_rate <= hard.qos().miss_rate);
    }

    #[test]
    fn trace_sink_sees_the_session_lifecycle_in_cycle_order() {
        let mut rec = Recorder::new(TraceConfig::default());
        let cfg = small(4, 4);
        let out = simulate(ServeScheme::OoVr, &spec(), &GpuConfig::default(), &cfg, Some(&mut rec));
        let events: Vec<_> = rec.events().cloned().collect();
        let admits = events.iter().filter(|e| matches!(e, TraceEvent::SessionAdmit { .. })).count();
        let spans = events.iter().filter(|e| matches!(e, TraceEvent::FrameSpan { .. })).count();
        assert_eq!(admits, out.sessions.len());
        let executed: usize =
            out.sessions.iter().map(|s| s.frames.iter().filter(|f| !f.dropped).count()).sum();
        assert_eq!(spans, executed);
        let mut last = 0;
        for e in &events {
            assert!(e.cycle() >= last, "events must be cycle-ordered");
            last = e.cycle();
        }
    }

    #[test]
    fn temporal_reuse_cuts_warm_frame_costs_and_traces_it() {
        let mut rec = Recorder::new(TraceConfig::default());
        let cfg = small(2, 8);
        let gpu = GpuConfig::default();
        let t = simulate(ServeScheme::OoVrTemporal, &spec(), &gpu, &cfg, Some(&mut rec));
        let o = simulate(ServeScheme::OoVr, &spec(), &gpu, &cfg, None);
        let busy = |out: &ServeOutcome| -> Cycle {
            out.sessions
                .iter()
                .flat_map(|s| s.frames.iter().filter(|f| !f.dropped))
                .map(|f| f.end - f.start)
                .sum()
        };
        assert!(
            busy(&t) < busy(&o),
            "temporal reuse must cut total render cycles ({} vs {})",
            busy(&t),
            busy(&o)
        );
        let reused: u64 = rec
            .events()
            .filter_map(|e| match e {
                TraceEvent::TemporalReuse { reused, .. } => Some(u64::from(*reused)),
                _ => None,
            })
            .sum();
        assert!(reused > 0, "the default threshold must reuse some objects");
    }

    #[test]
    fn temporal_at_zero_threshold_matches_plain_oovr_bit_exactly() {
        let cfg = ServeConfig { temporal: oovr::TemporalConfig::exact(), ..small(4, 6) };
        let gpu = GpuConfig::default();
        let t = simulate(ServeScheme::OoVrTemporal, &spec(), &gpu, &cfg, None);
        let o = simulate(ServeScheme::OoVr, &spec(), &gpu, &cfg, None);
        assert_eq!(t.sessions, o.sessions);
        assert_eq!(t.rejects, o.rejects);
    }

    #[test]
    fn poses_differ_across_sessions_but_replay_per_seed() {
        let cfg = small(3, 6);
        let out = simulate(ServeScheme::Baseline, &spec(), &GpuConfig::default(), &cfg, None);
        assert!(out.sessions.len() >= 2);
        let a: Vec<Pose> = out.sessions[0].frames.iter().map(|f| f.pose).collect();
        let b: Vec<Pose> = out.sessions[1].frames.iter().map(|f| f.pose).collect();
        assert_ne!(a, b, "sessions follow distinct head paths");
        let again = simulate(ServeScheme::Baseline, &spec(), &GpuConfig::default(), &cfg, None);
        let a2: Vec<Pose> = again.sessions[0].frames.iter().map(|f| f.pose).collect();
        assert_eq!(a, a2);
    }
}
