//! Serving-capacity probes: how many concurrent sessions each scheme
//! sustains at 90 Hz with under 1% missed vsyncs.
//!
//! Capacity is a *steady-state* property: the probe simulates `N` already
//! warm sessions, uniformly staggered across one vsync interval, each
//! releasing a steady-cost frame per interval, and multiplexes them EDF on
//! the single 4-GPM renderer. Warm-up and admission dynamics are exercised
//! by [`crate::scheduler::simulate`]; folding the one-time cold frame into
//! a capacity number would charge a per-session transient against a
//! sustained rate.
//!
//! With all deadlines exactly one interval after release, EDF order equals
//! release order, so the probe is an exact linear-time EDF simulation — no
//! heap, no approximation. The reported capacity is the largest `N` whose
//! missed-vsync fraction over the probe horizon stays below
//! [`MISS_BUDGET`], found by doubling + binary search seeded at the
//! utilization bound `V / cost`.
//!
//! For shedding schemes the probe charges each frame at the shedding floor
//! (`shed_floor · steady`): the capacity of `OOVR+shed` is the maximum
//! *degraded-quality* session count the scheduler can hold at the floor,
//! which is the honest upper line of the quality/capacity trade-off.
//!
//! Temporal-reuse schemes get per-`(session, frame)` costs instead of one
//! flat steady cost: each probed session follows its own seeded head-pose
//! trajectory (seeds are per-session, independent of `N`, so raising the
//! probe count never re-randomizes earlier sessions), and every frame
//! after the first is priced by the pose delta through
//! [`oovr::temporal::TemporalProfile::decide`].

use oovr::experiments::{par_map, FigureTable};
use oovr::temporal::TemporalProfile;
use oovr_gpu::GpuConfig;
use oovr_scene::BenchmarkSpec;
use oovr_trace::Cycle;

use crate::pose::PoseTrajectory;
use crate::scheduler::ServeConfig;
use crate::stream::{cost_stream, ServeScheme};

/// Maximum tolerated fraction of missed vsyncs (the "<1%" SLO).
pub const MISS_BUDGET: f64 = 0.01;

/// Backstop on the capacity search range (far above any real result).
const MAX_SESSIONS: u32 = 1 << 22;

/// Probe horizon in vsync intervals. Long enough that a sustained
/// overload's backlog drift (one interval per `1/overload` frames) surfaces
/// as misses: the probe can overestimate the utilization bound by at most
/// `~1/(PROBE_FRAMES - 1)`.
const PROBE_FRAMES: u32 = 64;

/// Distinct head-pose trajectories the temporal probe draws from: session
/// `i` follows trajectory `i % TEMPORAL_POOL`. Vectors stay independent of
/// the probed `N` (the pool index never looks at `N`), while the probe's
/// decision work stays bounded when reduced-scale runs push capacity into
/// the thousands.
const TEMPORAL_POOL: u32 = 256;

/// Exact EDF feasibility of `n` warm staggered sessions whose frame `f`
/// of session `i` costs `cost(i, f)` cycles, over `frames` intervals of
/// `vsync` cycles each.
fn feasible_costs(n: u32, vsync: Cycle, frames: u32, cost: impl Fn(u64, u64) -> Cycle) -> bool {
    if n == 0 {
        return true;
    }
    let total = n as u64 * frames as u64;
    let allowed = ((total as f64) * MISS_BUDGET).floor() as u64;
    let mut missed = 0u64;
    let mut now: Cycle = 0;
    // Releases in global time order: session i's frame f at
    // i·(V/n) + f·V, all offsets inside one interval.
    for f in 0..frames as u64 {
        for i in 0..n as u64 {
            let release = (i * vsync) / n as u64 + f * vsync;
            let start = now.max(release);
            let end = start + cost(i, f);
            if end > release + vsync {
                missed += 1;
                if missed > allowed {
                    return false;
                }
            }
            now = end;
        }
    }
    true
}

/// [`feasible_costs`] with one flat per-frame `cost` for every session.
fn feasible(n: u32, cost: Cycle, vsync: Cycle, frames: u32) -> bool {
    feasible_costs(n, vsync, frames, |_, _| cost)
}

/// Per-frame probe costs of one temporal session: frame 0 pays the full
/// steady cost (no predecessor pose), later frames are priced by the pose
/// delta of the session's seeded trajectory. The seed mixes the session
/// index the same way the scheduler does, so session `i`'s cost vector is
/// independent of how many sessions the probe runs.
fn temporal_session_costs(
    profile: &TemporalProfile,
    threshold: f64,
    seed: u64,
    session: u64,
    frames: u32,
) -> Vec<Cycle> {
    let steady = profile.steady_cycles().max(1);
    let mut traj = PoseTrajectory::new(seed ^ (session + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut prev = traj.current();
    let mut costs = Vec::with_capacity(frames as usize);
    costs.push(steady);
    for _ in 1..frames {
        let cur = traj.step();
        costs.push(profile.decide(&prev, &cur, threshold).apply(steady));
        prev = cur;
    }
    costs
}

/// Steady per-frame cost the probe charges `scheme` (shedding schemes are
/// charged at the shedding floor — see the module docs).
fn probe_cost(
    scheme: ServeScheme,
    spec: &BenchmarkSpec,
    gpu: &GpuConfig,
    cfg: &ServeConfig,
) -> Cycle {
    let steady = cost_stream(scheme, spec, gpu).steady().frame_cycles;
    let cost = if scheme.sheds() {
        ((steady as f64) * cfg.resilience.shed_floor).round() as Cycle
    } else {
        steady
    };
    cost.max(1)
}

/// Maximum concurrent warm sessions of `spec` that `scheme` sustains at
/// under [`MISS_BUDGET`] missed vsyncs. Deterministic and pure.
pub fn capacity(
    scheme: ServeScheme,
    spec: &BenchmarkSpec,
    gpu: &GpuConfig,
    cfg: &ServeConfig,
) -> u32 {
    let v = cfg.vsync_cycles.max(1);
    let frames = PROBE_FRAMES;
    let cost = probe_cost(scheme, spec, gpu, cfg);
    if scheme.temporal() {
        // Per-session pose-driven cost vectors, cached and lazily grown as
        // the search probes larger N (seeds never depend on N, so earlier
        // sessions keep their vectors).
        let stream = cost_stream(scheme, spec, gpu);
        let profile = stream.temporal.as_ref().expect("temporal streams carry a profile");
        let threshold = cfg.temporal.reuse_threshold;
        let mut cache: Vec<Vec<Cycle>> = Vec::new();
        return search(v, cost, |n| {
            while cache.len() < (n.min(TEMPORAL_POOL)) as usize {
                let i = cache.len() as u64;
                cache.push(temporal_session_costs(profile, threshold, cfg.seed, i, frames));
            }
            let pool = cache.len() as u64;
            feasible_costs(n, v, frames, |i, f| cache[(i % pool) as usize][f as usize])
        });
    }
    search(v, cost, |n| feasible(n, cost, v, frames))
}

/// Doubling + bisection over `feas`, seeded at the utilization bound
/// (`N·cost = V`) — always feasible for staggered implicit-deadline EDF
/// with per-frame costs at most `cost`.
fn search(v: Cycle, cost: Cycle, mut feas: impl FnMut(u32) -> bool) -> u32 {
    if !feas(1) {
        return 0;
    }
    let mut lo = ((v / cost) as u32).clamp(1, MAX_SESSIONS);
    if !feas(lo) {
        lo = 1;
    }
    let mut hi = lo.saturating_mul(2).min(MAX_SESSIONS);
    while feas(hi) && hi < MAX_SESSIONS {
        lo = hi;
        hi = hi.saturating_mul(2).min(MAX_SESSIONS);
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if feas(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// The `serve` capacity table: one row per workload, one column per
/// [`ServeScheme`], cell = [`capacity`]. Probes evaluate in parallel over
/// the flattened `(workload, scheme)` grid — each cell's dominant cost is
/// rendering its cost stream (memoized per cell key), so flattening spreads
/// those renders across every core instead of serializing the five schemes
/// inside a workload row.
pub fn capacity_table(specs: &[BenchmarkSpec], gpu: &GpuConfig, cfg: &ServeConfig) -> FigureTable {
    let cells: Vec<(&BenchmarkSpec, ServeScheme)> =
        specs.iter().flat_map(|spec| ServeScheme::ALL.map(|s| (spec, s))).collect();
    let vals = par_map(&cells, |&(spec, s)| capacity(s, spec, gpu, cfg) as f64);
    let n = ServeScheme::ALL.len();
    let rows = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| (spec.name.clone(), vals[i * n..(i + 1) * n].to_vec()))
        .collect();
    FigureTable {
        id: "serve",
        title: format!(
            "Serving capacity: max concurrent sessions at <{:.0}% missed vsync, 90 Hz",
            MISS_BUDGET * 100.0
        ),
        columns: ServeScheme::ALL.iter().map(|s| s.label().to_string()).collect(),
        rows,
    }
    .with_geomean()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oovr_scene::benchmarks;

    fn spec() -> BenchmarkSpec {
        benchmarks::hl2_640().scaled(0.05)
    }

    #[test]
    fn feasibility_tracks_utilization() {
        // 10 sessions × cost 100 = exactly one interval of 1000: feasible.
        assert!(feasible(10, 100, 1_000, PROBE_FRAMES));
        // 5% overload drifts a growing backlog: infeasible over the probe.
        assert!(!feasible(21, 100, 2_000, PROBE_FRAMES));
        // A single session whose frame exceeds the interval never fits.
        assert!(!feasible(1, 1_500, 1_000, PROBE_FRAMES));
    }

    #[test]
    fn capacity_brackets_the_utilization_bound() {
        let cfg = ServeConfig::default();
        let gpu = GpuConfig::default();
        let cost = probe_cost(ServeScheme::Baseline, &spec(), &gpu, &cfg);
        let bound = (cfg.vsync_cycles / cost) as u32;
        let cap = capacity(ServeScheme::Baseline, &spec(), &gpu, &cfg);
        assert!(cap >= bound, "utilization bound {bound} must be feasible, got {cap}");
        // The 1% miss budget buys only marginal headroom above the bound.
        assert!(cap <= bound + bound / 20 + 2, "cap {cap} strays far above bound {bound}");
    }

    #[test]
    fn oovr_serves_strictly_more_sessions_than_baseline() {
        let cfg = ServeConfig::default();
        let gpu = GpuConfig::default();
        for s in [benchmarks::hl2_640().scaled(0.05), benchmarks::dm3_640().scaled(0.05)] {
            let base = capacity(ServeScheme::Baseline, &s, &gpu, &cfg);
            let oovr = capacity(ServeScheme::OoVr, &s, &gpu, &cfg);
            assert!(oovr > base, "{}: OOVR {oovr} must beat Baseline {base}", s.name);
        }
    }

    #[test]
    fn shedding_buys_capacity_at_the_quality_floor() {
        let cfg = ServeConfig::default();
        let gpu = GpuConfig::default();
        let oovr = capacity(ServeScheme::OoVr, &spec(), &gpu, &cfg);
        let shed = capacity(ServeScheme::OoVrShed, &spec(), &gpu, &cfg);
        assert!(shed > oovr, "floor-quality capacity {shed} must exceed full-quality {oovr}");
    }

    #[test]
    fn temporal_reuse_buys_capacity_over_plain_oovr() {
        let cfg = ServeConfig::default();
        let gpu = GpuConfig::default();
        let oovr = capacity(ServeScheme::OoVr, &spec(), &gpu, &cfg);
        let temporal = capacity(ServeScheme::OoVrTemporal, &spec(), &gpu, &cfg);
        assert!(
            temporal > oovr,
            "pose-correlated reuse capacity {temporal} must exceed full re-render {oovr}"
        );
        // At threshold zero nothing reuses; the probe collapses to OO-VR's.
        let exact = ServeConfig { temporal: oovr::TemporalConfig::exact(), ..cfg };
        assert_eq!(capacity(ServeScheme::OoVrTemporal, &spec(), &gpu, &exact), oovr);
    }

    #[test]
    fn capacity_table_has_one_column_per_scheme_and_a_geomean_row() {
        let specs = vec![spec()];
        let t = capacity_table(&specs, &GpuConfig::default(), &ServeConfig::default());
        assert_eq!(t.id, "serve");
        assert_eq!(t.columns.len(), ServeScheme::ALL.len());
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[1].0, "Avg.");
        let base = t.value(&specs[0].name, "Baseline").unwrap();
        let oovr = t.value(&specs[0].name, "OOVR").unwrap();
        assert!(oovr > base);
    }
}
