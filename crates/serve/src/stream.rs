//! Per-session frame-cost streams, measured once and memoized process-wide.
//!
//! A serving session replays one of the Table 3 workloads frame after frame.
//! The underlying executor is deterministic, so the serving layer does not
//! re-simulate every frame of every session: it measures one representative
//! frame sequence per (scheme, workload, config) — the *cost stream* — and
//! every session over that combination replays it. For OO-VR the stream is
//! a warm multi-frame sequence from [`OoVr::render_frames`]: frame 0 pays
//! the PA units' one-time data distribution, later frames render from
//! steady-state placement, exactly the serving-relevant shape (a session
//! pays PA once at admission, then streams steady frames). Single-frame
//! schemes (Baseline, Object-Level, OO_APP) have no cross-frame warm state,
//! so one memoized render covers every frame.
//!
//! Streams are cached in a process-wide table keyed by a digest of
//! (workload spec, scheme, GPU config) — the same content-addressed pattern
//! as `oovr::cache` — with hit/miss counters surfaced through
//! [`serve_cache_stats`] for the `figures -- perf` substrate report.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use oovr::cache::{self, config_digest, spec_digest};
use oovr::experiments::SchemeKind;
use oovr::schemes::OoVr;
use oovr_gpu::{FrameReport, GpuConfig};
use oovr_scene::BenchmarkSpec;
use oovr_trace::Cycle;

use crate::pose::PoseTrajectory;

/// Warm frames measured for schemes with cross-frame executor state. Frame
/// 0 is the cold (PA-paying) frame; the last report is the steady-state
/// frame every later session frame replays.
pub const MEASURED_FRAMES: u32 = 4;

/// The rendering schemes the serving layer multiplexes sessions under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServeScheme {
    /// Conventional single-programming-model rendering (paper §4 baseline).
    Baseline,
    /// Object-level split frame rendering.
    ObjectLevel,
    /// OO programming model + middleware, no hardware support.
    OoApp,
    /// Full OO-VR (distribution engine + PA + DHC).
    OoVr,
    /// OO-VR with scheduler-level load shedding: under vsync pressure the
    /// scheduler degrades a session's shade scale (`ResilienceConfig`
    /// `shed_step`/`shed_floor`) instead of missing deadlines.
    OoVrShed,
    /// OO-VR with pose-correlated temporal reuse: per-object memoization
    /// charges ATW warp cycles instead of a re-render for objects whose
    /// projected screen-space bound moved less than the reuse threshold
    /// between consecutive head poses ([`oovr::temporal`]).
    OoVrTemporal,
}

impl ServeScheme {
    /// All schemes, in capacity-table column order.
    pub const ALL: [ServeScheme; 6] = [
        ServeScheme::Baseline,
        ServeScheme::ObjectLevel,
        ServeScheme::OoApp,
        ServeScheme::OoVr,
        ServeScheme::OoVrShed,
        ServeScheme::OoVrTemporal,
    ];

    /// Column label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            ServeScheme::Baseline => "Baseline",
            ServeScheme::ObjectLevel => "Object-Level",
            ServeScheme::OoApp => "OO_APP",
            ServeScheme::OoVr => "OOVR",
            ServeScheme::OoVrShed => "OOVR+shed",
            ServeScheme::OoVrTemporal => "OOVR+temporal",
        }
    }

    /// The name the `figures` CLI accepts for this scheme.
    pub fn cli_name(self) -> &'static str {
        match self {
            ServeScheme::Baseline => "baseline",
            ServeScheme::ObjectLevel => "object",
            ServeScheme::OoApp => "ooapp",
            ServeScheme::OoVr => "oovr",
            ServeScheme::OoVrShed => "oovr-shed",
            ServeScheme::OoVrTemporal => "oovr-temporal",
        }
    }

    /// Parses the labels accepted by the `figures` CLI (`baseline`,
    /// `object`, `ooapp`, `oovr`, `oovr-shed`, `oovr-temporal`).
    pub fn parse(s: &str) -> Option<Self> {
        ServeScheme::ALL.into_iter().find(|scheme| scheme.cli_name() == s)
    }

    /// Whether the serve scheduler may degrade shade scale under pressure.
    pub fn sheds(self) -> bool {
        matches!(self, ServeScheme::OoVrShed)
    }

    /// Whether the serve scheduler applies pose-correlated temporal reuse
    /// to this scheme's per-frame costs.
    pub fn temporal(self) -> bool {
        matches!(self, ServeScheme::OoVrTemporal)
    }

    /// Disjoint tag for the stream cache key.
    fn tag(self) -> u8 {
        match self {
            ServeScheme::Baseline => 0,
            ServeScheme::ObjectLevel => 1,
            ServeScheme::OoApp => 2,
            ServeScheme::OoVr => 3,
            ServeScheme::OoVrShed => 4,
            ServeScheme::OoVrTemporal => 5,
        }
    }
}

/// The measured frame sequence one session over a (scheme, workload,
/// config) combination replays.
#[derive(Debug)]
pub struct SessionCostStream {
    /// Which scheme produced the stream.
    pub scheme: ServeScheme,
    /// Workload name (row label in the capacity table).
    pub workload: String,
    /// Measured reports: `reports[0]` is the session's cold first frame;
    /// the last entry is the steady-state frame.
    pub reports: Vec<FrameReport>,
    /// Per-object temporal-reuse profile of the steady frame; present only
    /// for [`ServeScheme::OoVrTemporal`] streams.
    pub temporal: Option<Arc<oovr::temporal::TemporalProfile>>,
}

impl SessionCostStream {
    /// The cold (first, PA-paying) frame of a session.
    pub fn cold(&self) -> &FrameReport {
        &self.reports[0]
    }

    /// The steady-state frame every late session frame replays.
    pub fn steady(&self) -> &FrameReport {
        self.reports.last().expect("streams are non-empty")
    }

    /// Index into [`reports`](Self::reports) backing session frame `f`
    /// (frame 0 is the warmup frame).
    pub fn report_index(&self, frame: u32) -> usize {
        (frame as usize).min(self.reports.len() - 1)
    }

    /// The measured report backing session frame `f`.
    pub fn report_for(&self, frame: u32) -> &FrameReport {
        &self.reports[self.report_index(frame)]
    }

    /// Simulated cost (cycles) of session frame `f` at full shade scale.
    pub fn cost_for(&self, frame: u32) -> Cycle {
        self.report_for(frame).frame_cycles
    }

    /// The frame reports a session with `paced` frames after warmup
    /// replays, in order (warmup first).
    pub fn session_reports(&self, paced: u32) -> Vec<&FrameReport> {
        (0..=paced).map(|f| self.report_for(f)).collect()
    }

    /// Mean cycles per warm frame that pose-correlated reuse saves at
    /// `threshold`, measured over `frames` steps of a reference head-pose
    /// trajectory seeded by `seed`. Zero for streams without a temporal
    /// profile, and exactly zero at `threshold <= 0` (nothing reuses).
    pub fn mean_temporal_saving(&self, threshold: f64, seed: u64, frames: u32) -> Cycle {
        let Some(profile) = &self.temporal else { return 0 };
        if frames == 0 {
            return 0;
        }
        let mut traj = PoseTrajectory::new(seed);
        let mut prev = traj.current();
        let mut total: u128 = 0;
        for _ in 0..frames {
            let cur = traj.step();
            total += u128::from(profile.decide(&prev, &cur, threshold).saved);
            prev = cur;
        }
        (total / u128::from(frames)) as Cycle
    }
}

/// Hit/miss counters for the process-wide stream cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeCacheStats {
    /// Streams answered from the memo table.
    pub stream_hits: u64,
    /// Streams actually measured.
    pub stream_misses: u64,
}

struct Store {
    streams: Mutex<HashMap<[u8; 32], Arc<SessionCostStream>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

fn store() -> &'static Store {
    static STORE: OnceLock<Store> = OnceLock::new();
    STORE.get_or_init(|| Store {
        streams: Mutex::new(HashMap::new()),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
    })
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Current stream-cache counters.
pub fn serve_cache_stats() -> ServeCacheStats {
    let s = store();
    ServeCacheStats {
        stream_hits: s.hits.load(Ordering::Relaxed),
        stream_misses: s.misses.load(Ordering::Relaxed),
    }
}

fn stream_key(scheme: ServeScheme, spec: &BenchmarkSpec, cfg: &GpuConfig) -> [u8; 32] {
    let mut h = oovr_hash::Sha256::new();
    h.update(b"oovr:serve:stream:v1");
    h.update(&spec_digest(spec));
    h.update(&[scheme.tag()]);
    h.update(&MEASURED_FRAMES.to_le_bytes());
    h.update(&config_digest(cfg));
    h.finalize()
}

/// The cost stream for `(scheme, spec, cfg)`, measured on first use and
/// shared thereafter. Determinism of the executor makes a cache hit
/// bit-identical to re-measuring.
pub fn cost_stream(
    scheme: ServeScheme,
    spec: &BenchmarkSpec,
    cfg: &GpuConfig,
) -> Arc<SessionCostStream> {
    let key = stream_key(scheme, spec, cfg);
    if let Some(s) = lock(&store().streams).get(&key) {
        store().hits.fetch_add(1, Ordering::Relaxed);
        return Arc::clone(s);
    }
    let measured = Arc::new(measure(scheme, spec, cfg));
    store().misses.fetch_add(1, Ordering::Relaxed);
    Arc::clone(lock(&store().streams).entry(key).or_insert(measured))
}

fn measure(scheme: ServeScheme, spec: &BenchmarkSpec, cfg: &GpuConfig) -> SessionCostStream {
    let scene = cache::scene_for(spec);
    let mut temporal = None;
    let reports = match scheme {
        // Single-frame schemes have no warm cross-frame state: every frame
        // of a session costs the same, and the render itself comes from the
        // shared `oovr::cache` memo table.
        ServeScheme::Baseline => vec![cache::render(SchemeKind::Baseline, &scene, cfg)],
        ServeScheme::ObjectLevel => vec![cache::render(SchemeKind::ObjectLevel, &scene, cfg)],
        ServeScheme::OoApp => vec![cache::render(SchemeKind::OoApp, &scene, cfg)],
        // OO-VR sessions pay PA once: measure a warm sequence so frame 0 is
        // the cold admission frame and the tail is the steady state.
        ServeScheme::OoVr => OoVr::new().render_frames(&scene, cfg, MEASURED_FRAMES),
        ServeScheme::OoVrShed => OoVr::resilient().render_frames(&scene, cfg, MEASURED_FRAMES),
        // Temporal reuse renders the same warm OO-VR sequence but also
        // profiles the steady frame's per-object busy/pixel attribution so
        // the scheduler can price reuse decisions per pose delta.
        ServeScheme::OoVrTemporal => {
            let (reports, profile) =
                OoVr::new().render_frames_profiled(&scene, cfg, MEASURED_FRAMES);
            temporal = Some(Arc::new(profile));
            reports
        }
    };
    SessionCostStream { scheme, workload: spec.name.clone(), reports, temporal }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oovr_scene::benchmarks;

    fn spec() -> BenchmarkSpec {
        benchmarks::hl2_640().scaled(0.05)
    }

    #[test]
    fn oovr_stream_has_cold_and_steady_frames() {
        let s = cost_stream(ServeScheme::OoVr, &spec(), &GpuConfig::default());
        assert_eq!(s.reports.len(), MEASURED_FRAMES as usize);
        // PA distribution makes the cold frame strictly slower than steady.
        assert!(s.cold().frame_cycles > s.steady().frame_cycles);
        // Late frames all replay the steady report.
        assert_eq!(s.report_index(10), MEASURED_FRAMES as usize - 1);
        assert_eq!(s.cost_for(10), s.steady().frame_cycles);
    }

    #[test]
    fn single_frame_schemes_are_flat() {
        let s = cost_stream(ServeScheme::Baseline, &spec(), &GpuConfig::default());
        assert_eq!(s.reports.len(), 1);
        assert_eq!(s.cold().frame_cycles, s.steady().frame_cycles);
        assert_eq!(s.cost_for(0), s.cost_for(99));
    }

    #[test]
    fn streams_are_memoized_with_counters() {
        let before = serve_cache_stats();
        let a = cost_stream(ServeScheme::OoApp, &spec(), &GpuConfig::default());
        let b = cost_stream(ServeScheme::OoApp, &spec(), &GpuConfig::default());
        let after = serve_cache_stats();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(after.stream_hits > before.stream_hits);
    }

    #[test]
    fn scheme_and_config_partition_the_cache() {
        let cfg = GpuConfig::default();
        let a = cost_stream(ServeScheme::Baseline, &spec(), &cfg);
        let b = cost_stream(ServeScheme::ObjectLevel, &spec(), &cfg);
        assert!(!Arc::ptr_eq(&a, &b));
        let narrow = cfg.clone().with_link_gbps(32.0);
        let c = cost_stream(ServeScheme::Baseline, &spec(), &narrow);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn session_reports_clamp_to_steady() {
        let s = cost_stream(ServeScheme::OoVr, &spec(), &GpuConfig::default());
        let reports = s.session_reports(6);
        assert_eq!(reports.len(), 7);
        assert_eq!(reports[0].frame_cycles, s.cold().frame_cycles);
        assert_eq!(reports[6].frame_cycles, s.steady().frame_cycles);
    }

    #[test]
    fn labels_round_trip_through_parse() {
        for scheme in ServeScheme::ALL {
            assert_eq!(ServeScheme::parse(scheme.cli_name()), Some(scheme));
        }
        assert_eq!(ServeScheme::parse("nope"), None);
        assert_eq!(ServeScheme::parse("oovr-temporal"), Some(ServeScheme::OoVrTemporal));
    }

    #[test]
    fn temporal_stream_carries_a_profile_and_oovr_costs() {
        let cfg = GpuConfig::default();
        let t = cost_stream(ServeScheme::OoVrTemporal, &spec(), &cfg);
        let o = cost_stream(ServeScheme::OoVr, &spec(), &cfg);
        // Attribution never perturbs the render: the temporal stream's base
        // reports are bit-identical to plain OO-VR's.
        assert_eq!(t.reports.len(), o.reports.len());
        for (a, b) in t.reports.iter().zip(&o.reports) {
            assert_eq!(a.frame_cycles, b.frame_cycles);
        }
        let profile = t.temporal.as_ref().expect("temporal streams carry a profile");
        assert_eq!(profile.steady_cycles(), t.steady().frame_cycles);
        assert!(o.temporal.is_none());
    }
}
