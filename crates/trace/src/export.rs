//! Exporters: Chrome trace-event JSON, CSV timeline, and a text digest.
//!
//! All three exporters are pure functions from a drained event slice to a
//! `String`, and all formatting is deterministic — two identical event slices
//! always yield byte-identical output.
//!
//! Chrome layout (Perfetto-loadable): one process (`pid`) per GPM plus one
//! `engine` process for distribution-engine decisions. Within a GPM process,
//! thread 0 (`pipeline`) holds the merged per-quantum phase spans and thread 1
//! (`events`) holds instant markers (PA placements, steals landing on that
//! GPM, PA retries/fallbacks). Link/DRAM/cache windows become Chrome counter
//! tracks on the destination GPM's process. Within every track, events are
//! emitted sorted by timestamp, so per-track timestamps are monotone.

use crate::{Cycle, Phase, TraceEvent};

/// A rendered Chrome event plus its sort key.
struct Entry {
    pid: u32,
    tid: u32,
    ts: Cycle,
    body: String,
}

fn esc(s: &str) -> String {
    // Track and arg names are ASCII identifiers we control; escape anyway so
    // the exporter is total.
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn f(v: f64) -> String {
    // Fixed-precision float rendering keeps exports byte-stable and avoids
    // exponent notation, which some trace viewers mishandle.
    format!("{v:.4}")
}

fn span(pid: u32, tid: u32, name: &str, start: Cycle, end: Cycle, args: &str) -> Entry {
    let dur = end.saturating_sub(start);
    let body = format!(
        "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{start},\"dur\":{dur},\"args\":{{{args}}}}}",
        esc(name)
    );
    Entry { pid, tid, ts: start, body }
}

fn instant(pid: u32, tid: u32, name: &str, ts: Cycle, args: &str) -> Entry {
    let body = format!(
        "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"args\":{{{args}}}}}",
        esc(name)
    );
    Entry { pid, tid, ts, body }
}

fn counter(pid: u32, name: &str, ts: Cycle, args: &str) -> Entry {
    let body = format!(
        "{{\"name\":\"{}\",\"ph\":\"C\",\"pid\":{pid},\"tid\":0,\"ts\":{ts},\"args\":{{{args}}}}}",
        esc(name)
    );
    Entry { pid, tid: 0, ts, body }
}

fn metadata(pid: u32, tid: Option<u32>, kind: &str, name: &str) -> String {
    let tid = tid.unwrap_or(0);
    format!(
        "{{\"name\":\"{kind}\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"ts\":0,\"args\":{{\"name\":\"{}\"}}}}",
        esc(name)
    )
}

/// Thread ids inside a GPM process.
const TID_PIPELINE: u32 = 0;
const TID_EVENTS: u32 = 1;

/// First thread id used for per-session serving lanes on the engine process
/// (tids 0/1 are the scheduler and event tracks).
const TID_SESSION_BASE: u32 = 2;

/// Render events as Chrome trace-event JSON (`{"traceEvents":[...]}`).
///
/// `n_gpms` fixes the process layout: pids `0..n_gpms` are GPMs, pid
/// `n_gpms` is the distribution engine. Events referencing GPMs outside that
/// range are still emitted (clamped onto the engine process) so the exporter
/// is total over arbitrary event slices.
///
/// `dropped` is the ring buffer's overflow counter
/// ([`Recorder::dropped`](crate::Recorder::dropped)): when non-zero, a
/// `trace_overflow` instant at cycle 0 on the engine's event track records
/// how many oldest events the export is missing. At zero the output is
/// byte-identical to what it was before the annotation existed.
pub fn chrome_trace(events: &[TraceEvent], n_gpms: usize, dropped: u64) -> String {
    let n = n_gpms as u32;
    let engine = n;
    let gpm_pid = |g: u32| if g < n { g } else { engine };
    let mut entries: Vec<Entry> = Vec::with_capacity(events.len() + 1);
    if dropped > 0 {
        entries.push(instant(
            engine,
            TID_EVENTS,
            "trace_overflow",
            0,
            &format!("\"dropped\":{dropped}"),
        ));
    }
    for ev in events {
        match *ev {
            TraceEvent::PhaseSpan { gpm, object, phase, start, end, quanta, stall } => {
                let args =
                    format!("\"object\":{object},\"quanta\":{quanta},\"stall_cycles\":{stall}");
                entries.push(span(
                    gpm_pid(gpm),
                    TID_PIPELINE,
                    &format!("obj{object} {}", phase.name()),
                    start,
                    end,
                    &args,
                ));
            }
            TraceEvent::CompositionSpan { start, end } => {
                entries.push(span(engine, TID_PIPELINE, "composition", start, end, ""));
            }
            TraceEvent::ShadeScale { cycle, scale } => {
                let args = format!("\"scale\":{}", f(scale));
                entries.push(instant(engine, TID_PIPELINE, "shade_scale", cycle, &args));
            }
            TraceEvent::PreAlloc { cycle, gpm, object, bytes } => {
                let args = format!("\"object\":{object},\"bytes\":{bytes}");
                entries.push(instant(gpm_pid(gpm), TID_EVENTS, "pa", cycle, &args));
            }
            TraceEvent::CalibrationFit { cycle, c0, c1, c2, samples, refit } => {
                let args = format!(
                    "\"c0\":{},\"c1\":{},\"c2\":{},\"samples\":{samples},\"refit\":{refit}",
                    f(c0),
                    f(c1),
                    f(c2)
                );
                let name = if refit { "refit" } else { "calibration_fit" };
                entries.push(instant(engine, TID_PIPELINE, name, cycle, &args));
            }
            TraceEvent::Assign { cycle, gpm, batch, triangles, predicted } => {
                let args = format!(
                    "\"gpm\":{gpm},\"batch\":{batch},\"triangles\":{triangles},\"predicted_cycles\":{}",
                    f(predicted)
                );
                entries.push(instant(engine, TID_PIPELINE, "assign", cycle, &args));
            }
            TraceEvent::BatchDone { cycle, gpm, batch, predicted, actual } => {
                let args = format!(
                    "\"gpm\":{gpm},\"batch\":{batch},\"predicted_cycles\":{},\"actual_cycles\":{}",
                    f(predicted),
                    f(actual)
                );
                entries.push(instant(engine, TID_PIPELINE, "batch_done", cycle, &args));
            }
            TraceEvent::Steal { cycle, thief, victim, object, triangles, early } => {
                let args = format!(
                    "\"victim\":{victim},\"object\":{object},\"triangles\":{triangles},\"early\":{early}"
                );
                let name = if early { "early_steal" } else { "steal" };
                entries.push(instant(gpm_pid(thief), TID_EVENTS, name, cycle, &args));
            }
            TraceEvent::Migrate { cycle, from, to, predicted, reason } => {
                let args = format!(
                    "\"from\":{from},\"to\":{to},\"predicted_cycles\":{},\"reason\":\"{}\"",
                    f(predicted),
                    esc(reason)
                );
                entries.push(instant(engine, TID_PIPELINE, "migrate", cycle, &args));
            }
            TraceEvent::PaRetry { cycle, gpm, attempt } => {
                let args = format!("\"attempt\":{attempt}");
                entries.push(instant(gpm_pid(gpm), TID_EVENTS, "pa_retry", cycle, &args));
            }
            TraceEvent::PaFallback { cycle, gpm, reason } => {
                let args = format!("\"reason\":\"{}\"", esc(reason));
                entries.push(instant(gpm_pid(gpm), TID_EVENTS, "pa_fallback", cycle, &args));
            }
            TraceEvent::Shed { cycle, scale, reason } => {
                let args = format!("\"scale\":{},\"reason\":\"{}\"", f(scale), esc(reason));
                entries.push(instant(engine, TID_PIPELINE, "shed", cycle, &args));
            }
            TraceEvent::LinkWindow { start: _, end, from, to, bytes, busy, queue } => {
                let pid = gpm_pid(to);
                entries.push(counter(
                    pid,
                    &format!("link {from}->{to} bytes"),
                    end,
                    &format!("\"bytes\":{bytes}"),
                ));
                entries.push(counter(
                    pid,
                    &format!("link {from}->{to} busy"),
                    end,
                    &format!("\"busy_cycles\":{}", f(busy)),
                ));
                entries.push(counter(
                    pid,
                    &format!("link {from}->{to} queue"),
                    end,
                    &format!("\"queue_cycles\":{queue}"),
                ));
            }
            TraceEvent::DramWindow { start: _, end, gpm, bytes, busy, queue } => {
                let pid = gpm_pid(gpm);
                entries.push(counter(pid, "dram bytes", end, &format!("\"bytes\":{bytes}")));
                entries.push(counter(
                    pid,
                    "dram busy",
                    end,
                    &format!("\"busy_cycles\":{}", f(busy)),
                ));
                entries.push(counter(pid, "dram queue", end, &format!("\"queue_cycles\":{queue}")));
            }
            TraceEvent::CacheWindow {
                gpm,
                start: _,
                end,
                l1_accesses,
                l1_hits,
                l2_accesses,
                l2_hits,
            } => {
                let pid = gpm_pid(gpm);
                let l1 = if l1_accesses > 0 { l1_hits as f64 / l1_accesses as f64 } else { 0.0 };
                let l2 = if l2_accesses > 0 { l2_hits as f64 / l2_accesses as f64 } else { 0.0 };
                entries.push(counter(pid, "l1 hit rate", end, &format!("\"rate\":{}", f(l1))));
                entries.push(counter(pid, "l2 hit rate", end, &format!("\"rate\":{}", f(l2))));
            }
            TraceEvent::SessionAdmit { cycle, session, predicted, active } => {
                let args = format!(
                    "\"session\":{session},\"predicted_cycles\":{},\"active\":{active}",
                    f(predicted)
                );
                entries.push(instant(engine, TID_EVENTS, "session_admit", cycle, &args));
            }
            TraceEvent::SessionReject { cycle, session, predicted, reason } => {
                let args = format!(
                    "\"session\":{session},\"predicted_cycles\":{},\"reason\":\"{}\"",
                    f(predicted),
                    esc(reason)
                );
                entries.push(instant(engine, TID_EVENTS, "session_reject", cycle, &args));
            }
            TraceEvent::FrameStart { cycle, session, frame, deadline } => {
                let args =
                    format!("\"session\":{session},\"frame\":{frame},\"deadline\":{deadline}");
                entries.push(instant(engine, TID_PIPELINE, "frame_start", cycle, &args));
            }
            TraceEvent::FrameSpan { session, frame, start, end, scale } => {
                let args = format!("\"frame\":{frame},\"scale\":{}", f(scale));
                entries.push(span(
                    engine,
                    TID_SESSION_BASE + session,
                    &format!("s{session} f{frame}"),
                    start,
                    end,
                    &args,
                ));
            }
            TraceEvent::DeadlineMiss { cycle, session, frame, deadline } => {
                let args =
                    format!("\"session\":{session},\"frame\":{frame},\"deadline\":{deadline}");
                entries.push(instant(engine, TID_EVENTS, "deadline_miss", cycle, &args));
            }
            TraceEvent::FrameShed { cycle, session, frame, scale } => {
                let args =
                    format!("\"session\":{session},\"frame\":{frame},\"scale\":{}", f(scale));
                entries.push(instant(engine, TID_EVENTS, "frame_shed", cycle, &args));
            }
            TraceEvent::FrameDrop { cycle, session, frame, reason } => {
                let args = format!(
                    "\"session\":{session},\"frame\":{frame},\"reason\":\"{}\"",
                    esc(reason)
                );
                entries.push(instant(engine, TID_EVENTS, "frame_drop", cycle, &args));
            }
            TraceEvent::TemporalReuse { cycle, session, frame, reused, rerendered, saved } => {
                let args = format!(
                    "\"session\":{session},\"frame\":{frame},\"reused\":{reused},\
                     \"rerendered\":{rerendered},\"saved\":{saved}"
                );
                entries.push(instant(engine, TID_EVENTS, "temporal_reuse", cycle, &args));
            }
            TraceEvent::ServerUp { cycle, server } => {
                let args = format!("\"server\":{server}");
                entries.push(instant(gpm_pid(server), TID_EVENTS, "server_up", cycle, &args));
            }
            TraceEvent::ServerDown { cycle, server, reason } => {
                let args = format!("\"server\":{server},\"reason\":\"{}\"", esc(reason));
                entries.push(instant(gpm_pid(server), TID_EVENTS, "server_down", cycle, &args));
            }
            TraceEvent::SessionRoute { cycle, session, server, attempt } => {
                let args = format!("\"session\":{session},\"attempt\":{attempt}");
                entries.push(instant(gpm_pid(server), TID_EVENTS, "session_route", cycle, &args));
            }
            TraceEvent::RouteRetry { cycle, session, attempt, backoff } => {
                let args =
                    format!("\"session\":{session},\"attempt\":{attempt},\"backoff\":{backoff}");
                entries.push(instant(engine, TID_EVENTS, "route_retry", cycle, &args));
            }
            TraceEvent::SessionMigrate { cycle, session, from, to, reason } => {
                let args =
                    format!("\"session\":{session},\"from\":{from},\"reason\":\"{}\"", esc(reason));
                entries.push(instant(gpm_pid(to), TID_EVENTS, "session_migrate", cycle, &args));
            }
            TraceEvent::SessionFailover { cycle, session, from, to } => {
                let args = format!("\"session\":{session},\"from\":{from}");
                entries.push(instant(gpm_pid(to), TID_EVENTS, "session_failover", cycle, &args));
            }
            TraceEvent::FrameSent { cycle, session, frame, bytes } => {
                let args = format!("\"session\":{session},\"frame\":{frame},\"bytes\":{bytes}");
                entries.push(instant(engine, TID_EVENTS, "frame_sent", cycle, &args));
            }
            TraceEvent::FrameDelivered { cycle, session, frame, latency } => {
                let args = format!("\"session\":{session},\"frame\":{frame},\"latency\":{latency}");
                entries.push(instant(engine, TID_EVENTS, "frame_delivered", cycle, &args));
            }
            TraceEvent::FrameLost { cycle, session, frame } => {
                let args = format!("\"session\":{session},\"frame\":{frame}");
                entries.push(instant(engine, TID_EVENTS, "frame_lost", cycle, &args));
            }
            TraceEvent::FrameReprojected { cycle, session, frame, age } => {
                let args = format!("\"session\":{session},\"frame\":{frame},\"age\":{age}");
                entries.push(instant(engine, TID_EVENTS, "frame_reprojected", cycle, &args));
            }
            TraceEvent::FrameStale { cycle, session, frame, age } => {
                let args = format!("\"session\":{session},\"frame\":{frame},\"age\":{age}");
                entries.push(instant(engine, TID_EVENTS, "frame_stale", cycle, &args));
            }
        }
    }
    // Stable sort: groups tracks and makes timestamps monotone within each
    // (pid, tid) track; ties keep recording order.
    entries.sort_by_key(|e| (e.pid, e.tid, e.ts));

    let mut out = String::with_capacity(entries.len() * 96 + 256);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let push = |s: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&s);
        *first = false;
    };
    for g in 0..n {
        push(metadata(g, None, "process_name", &format!("GPM {g}")), &mut out, &mut first);
        push(metadata(g, Some(TID_PIPELINE), "thread_name", "pipeline"), &mut out, &mut first);
        push(metadata(g, Some(TID_EVENTS), "thread_name", "events"), &mut out, &mut first);
    }
    push(metadata(engine, None, "process_name", "engine"), &mut out, &mut first);
    push(metadata(engine, Some(TID_PIPELINE), "thread_name", "scheduler"), &mut out, &mut first);
    push(metadata(engine, Some(TID_EVENTS), "thread_name", "events"), &mut out, &mut first);
    for e in entries {
        push(e.body, &mut out, &mut first);
    }
    out.push_str("\n]}\n");
    out
}

/// Render events as a flat CSV timeline in recording order.
///
/// Columns: `kind,start,end,gpm,id,label,a,b` where `id`/`label`/`a`/`b` are
/// kind-specific (documented in DESIGN.md §10): e.g. a `phase_span` row uses
/// `id`=object, `label`=phase, `a`=quanta, `b`=stall cycles; an `assign` row
/// uses `id`=batch, `a`=triangles, `b`=predicted cycles.
///
/// When the ring buffer overflowed (`dropped > 0`), the first data row is a
/// `trace_overflow` marker with `a`=dropped count, so downstream tooling can
/// tell a truncated timeline from a complete one. At zero the output is
/// byte-identical to what it was before the annotation existed.
pub fn csv_timeline(events: &[TraceEvent], dropped: u64) -> String {
    let mut out = String::from("kind,start,end,gpm,id,label,a,b\n");
    if dropped > 0 {
        out.push_str(&format!("trace_overflow,0,0,,,oldest events lost,{dropped},\n"));
    }
    for ev in events {
        let row = match *ev {
            TraceEvent::PhaseSpan { gpm, object, phase, start, end, quanta, stall } => {
                format!("phase_span,{start},{end},{gpm},{object},{},{quanta},{stall}", phase.name())
            }
            TraceEvent::CompositionSpan { start, end } => {
                format!("composition,{start},{end},,,,,")
            }
            TraceEvent::ShadeScale { cycle, scale } => {
                format!("shade_scale,{cycle},{cycle},,,,{},", f(scale))
            }
            TraceEvent::PreAlloc { cycle, gpm, object, bytes } => {
                format!("prealloc,{cycle},{cycle},{gpm},{object},,{bytes},")
            }
            TraceEvent::CalibrationFit { cycle, c0, c1, c2, samples, refit } => format!(
                "calibration_fit,{cycle},{cycle},,{samples},{},{},{}",
                if refit { "refit" } else { "initial" },
                f(c0),
                f(c1 + c2)
            ),
            TraceEvent::Assign { cycle, gpm, batch, triangles, predicted } => {
                format!("assign,{cycle},{cycle},{gpm},{batch},,{triangles},{}", f(predicted))
            }
            TraceEvent::BatchDone { cycle, gpm, batch, predicted, actual } => {
                format!("batch_done,{cycle},{cycle},{gpm},{batch},,{},{}", f(predicted), f(actual))
            }
            TraceEvent::Steal { cycle, thief, victim, object, triangles, early } => format!(
                "steal,{cycle},{cycle},{thief},{object},{},{triangles},{victim}",
                if early { "early" } else { "idle" }
            ),
            TraceEvent::Migrate { cycle, from, to, predicted, reason } => {
                format!("migrate,{cycle},{cycle},{to},{from},{reason},{},", f(predicted))
            }
            TraceEvent::PaRetry { cycle, gpm, attempt } => {
                format!("pa_retry,{cycle},{cycle},{gpm},{attempt},,,")
            }
            TraceEvent::PaFallback { cycle, gpm, reason } => {
                format!("pa_fallback,{cycle},{cycle},{gpm},,{reason},,")
            }
            TraceEvent::Shed { cycle, scale, reason } => {
                format!("shed,{cycle},{cycle},,,{reason},{},", f(scale))
            }
            TraceEvent::LinkWindow { start, end, from, to, bytes, busy, queue } => {
                format!("link_window,{start},{end},{to},{from},,{bytes},{}", f(busy + queue as f64))
            }
            TraceEvent::DramWindow { start, end, gpm, bytes, busy, queue } => {
                format!("dram_window,{start},{end},{gpm},,,{bytes},{}", f(busy + queue as f64))
            }
            TraceEvent::CacheWindow {
                gpm,
                start,
                end,
                l1_accesses,
                l1_hits,
                l2_accesses,
                l2_hits,
            } => format!(
                "cache_window,{start},{end},{gpm},{l1_accesses},{l1_hits},{l2_accesses},{l2_hits}"
            ),
            TraceEvent::SessionAdmit { cycle, session, predicted, active } => {
                format!("session_admit,{cycle},{cycle},,{session},,{active},{}", f(predicted))
            }
            TraceEvent::SessionReject { cycle, session, predicted, reason } => {
                format!("session_reject,{cycle},{cycle},,{session},{reason},,{}", f(predicted))
            }
            TraceEvent::FrameStart { cycle, session, frame, deadline } => {
                format!("frame_start,{cycle},{cycle},,{session},,{frame},{deadline}")
            }
            TraceEvent::FrameSpan { session, frame, start, end, scale } => {
                format!("frame_span,{start},{end},,{session},,{frame},{}", f(scale))
            }
            TraceEvent::DeadlineMiss { cycle, session, frame, deadline } => {
                format!("deadline_miss,{cycle},{cycle},,{session},,{frame},{deadline}")
            }
            TraceEvent::FrameShed { cycle, session, frame, scale } => {
                format!("frame_shed,{cycle},{cycle},,{session},,{frame},{}", f(scale))
            }
            TraceEvent::FrameDrop { cycle, session, frame, reason } => {
                format!("frame_drop,{cycle},{cycle},,{session},{reason},{frame},")
            }
            TraceEvent::TemporalReuse { cycle, session, frame, reused, rerendered, .. } => {
                format!("temporal_reuse,{cycle},{cycle},,{session},f{frame},{reused},{rerendered}")
            }
            TraceEvent::ServerUp { cycle, server } => {
                format!("server_up,{cycle},{cycle},{server},,,,")
            }
            TraceEvent::ServerDown { cycle, server, reason } => {
                format!("server_down,{cycle},{cycle},{server},,{reason},,")
            }
            TraceEvent::SessionRoute { cycle, session, server, attempt } => {
                format!("session_route,{cycle},{cycle},{server},{session},,{attempt},")
            }
            TraceEvent::RouteRetry { cycle, session, attempt, backoff } => {
                format!("route_retry,{cycle},{cycle},,{session},,{attempt},{backoff}")
            }
            TraceEvent::SessionMigrate { cycle, session, from, to, reason } => {
                format!("session_migrate,{cycle},{cycle},{to},{session},{reason},{from},")
            }
            TraceEvent::SessionFailover { cycle, session, from, to } => {
                format!("session_failover,{cycle},{cycle},{to},{session},,{from},")
            }
            TraceEvent::FrameSent { cycle, session, frame, bytes } => {
                format!("frame_sent,{cycle},{cycle},,{session},,{frame},{bytes}")
            }
            TraceEvent::FrameDelivered { cycle, session, frame, latency } => {
                format!("frame_delivered,{cycle},{cycle},,{session},,{frame},{latency}")
            }
            TraceEvent::FrameLost { cycle, session, frame } => {
                format!("frame_lost,{cycle},{cycle},,{session},,{frame},")
            }
            TraceEvent::FrameReprojected { cycle, session, frame, age } => {
                format!("frame_reprojected,{cycle},{cycle},,{session},,{frame},{age}")
            }
            TraceEvent::FrameStale { cycle, session, frame, age } => {
                format!("frame_stale,{cycle},{cycle},,{session},,{frame},{age}")
            }
        };
        out.push_str(&row);
        out.push('\n');
    }
    out
}

/// Render a compact human-readable flight-recorder digest: volume counters,
/// the top memory-stall spans, the worst link window, and a prediction-error
/// histogram built from `BatchDone` events.
pub fn flight_digest(events: &[TraceEvent], dropped: u64) -> String {
    let mut spans = 0usize;
    let mut phase_busy = [0u64; 3];
    let mut phase_stall = [0u64; 3];
    let mut stalls: Vec<(Cycle, u32, u32, Phase)> = Vec::new();
    let mut worst_link: Option<(u64, u32, u32, Cycle, Cycle, f64)> = None;
    let mut rel_errors: Vec<f64> = Vec::new();
    let mut steals = 0u64;
    let mut early_steals = 0u64;
    let mut migrations = 0u64;
    let mut pa = 0u64;
    let mut pa_retries = 0u64;
    let mut pa_fallbacks = 0u64;
    let mut sheds = 0u64;
    let mut refits = 0u64;
    let mut admits = 0u64;
    let mut rejects = 0u64;
    let mut frames_served = 0u64;
    let mut frame_durs: Vec<Cycle> = Vec::new();
    let mut frame_sheds = 0u64;
    let mut deadline_misses = 0u64;
    let mut frame_drops = 0u64;
    let mut worst_lateness: Option<(Cycle, u32, u32)> = None;
    let mut temporal_frames = 0u64;
    let mut temporal_reused = 0u64;
    let mut temporal_rerendered = 0u64;
    let mut temporal_saved = 0u64;
    let mut server_ups = 0u64;
    let mut server_downs = 0u64;
    let mut routes = 0u64;
    let mut route_retries = 0u64;
    let mut failovers = 0u64;
    let mut cluster_migrations = 0u64;
    let mut frames_sent = 0u64;
    let mut frames_delivered = 0u64;
    let mut frames_lost = 0u64;
    let mut reprojections = 0u64;
    let mut stale_frames = 0u64;
    let mut worst_transit: Option<(Cycle, u32, u32)> = None;
    for ev in events {
        match *ev {
            TraceEvent::PhaseSpan { gpm, object, phase, start, end, stall, .. } => {
                spans += 1;
                let p = phase as usize;
                phase_busy[p] += end.saturating_sub(start);
                phase_stall[p] += stall;
                if stall > 0 {
                    stalls.push((stall, gpm, object, phase));
                }
            }
            TraceEvent::LinkWindow { start, end, from, to, bytes, busy, .. }
                if worst_link.map(|(b, ..)| bytes > b).unwrap_or(bytes > 0) =>
            {
                worst_link = Some((bytes, from, to, start, end, busy));
            }
            TraceEvent::BatchDone { predicted, actual, .. } => {
                rel_errors.push((actual - predicted).abs() / predicted.max(1.0));
            }
            TraceEvent::Steal { early, .. } => {
                steals += 1;
                if early {
                    early_steals += 1;
                }
            }
            TraceEvent::Migrate { .. } => migrations += 1,
            TraceEvent::PreAlloc { .. } => pa += 1,
            TraceEvent::PaRetry { .. } => pa_retries += 1,
            TraceEvent::PaFallback { .. } => pa_fallbacks += 1,
            TraceEvent::Shed { .. } => sheds += 1,
            TraceEvent::CalibrationFit { refit: true, .. } => refits += 1,
            TraceEvent::SessionAdmit { .. } => admits += 1,
            TraceEvent::SessionReject { .. } => rejects += 1,
            TraceEvent::FrameSpan { start, end, .. } => {
                frames_served += 1;
                frame_durs.push(end.saturating_sub(start));
            }
            TraceEvent::FrameShed { .. } => frame_sheds += 1,
            TraceEvent::FrameDrop { .. } => frame_drops += 1,
            TraceEvent::TemporalReuse { reused, rerendered, saved, .. } => {
                temporal_frames += 1;
                temporal_reused += u64::from(reused);
                temporal_rerendered += u64::from(rerendered);
                temporal_saved += saved;
            }
            TraceEvent::DeadlineMiss { cycle, session, frame, deadline } => {
                deadline_misses += 1;
                let late = cycle.saturating_sub(deadline);
                if worst_lateness.map(|(l, ..)| late > l).unwrap_or(true) {
                    worst_lateness = Some((late, session, frame));
                }
            }
            TraceEvent::ServerUp { .. } => server_ups += 1,
            TraceEvent::ServerDown { .. } => server_downs += 1,
            TraceEvent::SessionRoute { .. } => routes += 1,
            TraceEvent::RouteRetry { .. } => route_retries += 1,
            TraceEvent::SessionMigrate { .. } => cluster_migrations += 1,
            TraceEvent::SessionFailover { .. } => failovers += 1,
            TraceEvent::FrameSent { .. } => frames_sent += 1,
            TraceEvent::FrameDelivered { latency, session, frame, .. } => {
                frames_delivered += 1;
                if worst_transit.map(|(l, ..)| latency > l).unwrap_or(true) {
                    worst_transit = Some((latency, session, frame));
                }
            }
            TraceEvent::FrameLost { .. } => frames_lost += 1,
            TraceEvent::FrameReprojected { .. } => reprojections += 1,
            TraceEvent::FrameStale { .. } => stale_frames += 1,
            _ => {}
        }
    }
    let mut out = String::new();
    out.push_str("OO-VR flight recorder digest\n");
    out.push_str("============================\n");
    out.push_str(&format!("events retained     : {}\n", events.len()));
    out.push_str(&format!("events dropped      : {dropped}\n"));
    if dropped > 0 {
        out.push_str(&format!(
            "  !! RING OVERFLOW: the oldest {dropped} events were evicted; every count \
             below is a lower bound over a suffix of the run\n"
        ));
    }
    out.push_str(&format!("phase spans         : {spans}\n"));
    for (i, name) in ["command", "geometry", "fragment"].iter().enumerate() {
        out.push_str(&format!("  {name:<9} busy={} stall={}\n", phase_busy[i], phase_stall[i]));
    }
    out.push_str(&format!(
        "engine              : pa={pa} retries={pa_retries} fallbacks={pa_fallbacks} \
         steals={steals} (early={early_steals}) migrations={migrations} refits={refits} sheds={sheds}\n"
    ));
    // Serving-layer counters, printed only when any serve event is present so
    // single-frame render digests stay byte-identical to earlier releases.
    if admits + rejects + frames_served + deadline_misses + frame_sheds + frame_drops > 0 {
        out.push_str(&format!(
            "serving             : admits={admits} rejects={rejects} frames={frames_served} \
             misses={deadline_misses} sheds={frame_sheds} drops={frame_drops}\n"
        ));
        if let Some((late, session, frame)) = worst_lateness {
            out.push_str(&format!(
                "  worst miss        : session {session} frame {frame}, {late} cycles late\n"
            ));
        }
    }
    // Temporal-reuse counters, presence-gated for the same reason.
    if temporal_frames > 0 {
        out.push_str(&format!(
            "temporal            : frames={temporal_frames} reused={temporal_reused} \
             rerendered={temporal_rerendered} saved={temporal_saved}\n"
        ));
    }
    // Cluster-tier counters, presence-gated for the same reason.
    if server_ups + server_downs + routes + route_retries + cluster_migrations + failovers > 0 {
        out.push_str(&format!(
            "cluster             : ups={server_ups} downs={server_downs} routes={routes} \
             retries={route_retries} migrations={cluster_migrations} failovers={failovers}\n"
        ));
    }
    // Edge-tier counters, presence-gated for the same reason.
    if frames_sent + frames_delivered + frames_lost + reprojections + stale_frames > 0 {
        out.push_str(&format!(
            "edge                : sent={frames_sent} delivered={frames_delivered} \
             lost={frames_lost} reprojected={reprojections} stale={stale_frames}\n"
        ));
        if let Some((latency, session, frame)) = worst_transit {
            out.push_str(&format!(
                "  worst transit     : session {session} frame {frame}, {latency} cycles on the link\n"
            ));
        }
    }
    // Metrics rollup of frame-span durations (exact nearest-rank, matching
    // the serve layer's QoS percentiles), presence-gated for the same reason.
    if !frame_durs.is_empty() {
        frame_durs.sort_unstable();
        let q = |p: f64| {
            let rank = ((p / 100.0) * frame_durs.len() as f64).ceil() as usize;
            frame_durs[rank.clamp(1, frame_durs.len()) - 1]
        };
        out.push_str(&format!(
            "metrics             : frame_span n={} p50={} p99={} max={} cycles\n",
            frame_durs.len(),
            q(50.0),
            q(99.0),
            frame_durs[frame_durs.len() - 1]
        ));
    }

    out.push_str("\ntop memory-stall spans\n");
    stalls.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    if stalls.is_empty() {
        out.push_str("  (none)\n");
    }
    for (stall, gpm, object, phase) in stalls.iter().take(5) {
        out.push_str(&format!("  gpm {gpm} obj {object} {}: {stall} stall cycles\n", phase.name()));
    }

    out.push_str("\nworst link window\n");
    match worst_link {
        Some((bytes, from, to, start, end, busy)) => {
            let width = end.saturating_sub(start).max(1) as f64;
            out.push_str(&format!(
                "  link {from}->{to} [{start}, {end}]: {bytes} bytes, busy {} ({} of window)\n",
                f(busy),
                f(busy / width)
            ));
        }
        None => out.push_str("  (no inter-GPM traffic sampled)\n"),
    }

    out.push_str("\nprediction-error histogram (|actual-predicted|/predicted)\n");
    if rel_errors.is_empty() {
        out.push_str("  (no tracked batches)\n");
    } else {
        let buckets = [(0.05, "< 5%"), (0.10, "<10%"), (0.25, "<25%"), (0.50, "<50%")];
        let mut counted = 0usize;
        let mut lo = 0.0f64;
        for (hi, label) in buckets {
            let c = rel_errors.iter().filter(|&&e| e >= lo && e < hi).count();
            out.push_str(&format!("  {label:<5}: {c}\n"));
            counted += c;
            lo = hi;
        }
        out.push_str(&format!("  >=50%: {}\n", rel_errors.len() - counted));
        let mean = rel_errors.iter().sum::<f64>() / rel_errors.len() as f64;
        let max = rel_errors.iter().cloned().fold(0.0f64, f64::max);
        out.push_str(&format!("  batches={} mean={} max={}\n", rel_errors.len(), f(mean), f(max)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::PhaseSpan {
                gpm: 1,
                object: 7,
                phase: Phase::Fragment,
                start: 50,
                end: 150,
                quanta: 4,
                stall: 30,
            },
            TraceEvent::PhaseSpan {
                gpm: 0,
                object: 3,
                phase: Phase::Geometry,
                start: 10,
                end: 40,
                quanta: 2,
                stall: 5,
            },
            TraceEvent::Assign { cycle: 5, gpm: 1, batch: 2, triangles: 64, predicted: 120.0 },
            TraceEvent::BatchDone { cycle: 150, gpm: 1, batch: 2, predicted: 120.0, actual: 100.0 },
            TraceEvent::Steal {
                cycle: 90,
                thief: 0,
                victim: 1,
                object: 7,
                triangles: 12,
                early: false,
            },
            TraceEvent::PreAlloc { cycle: 20, gpm: 1, object: 7, bytes: 4096 },
            TraceEvent::LinkWindow {
                start: 0,
                end: 128,
                from: 0,
                to: 1,
                bytes: 2048,
                busy: 32.0,
                queue: 4,
            },
            TraceEvent::CompositionSpan { start: 160, end: 200 },
        ]
    }

    #[test]
    fn chrome_export_is_valid_and_monotone() {
        let out = chrome_trace(&sample_events(), 4, 0);
        let parsed = crate::json::parse(&out).expect("chrome export must parse");
        crate::json::validate_chrome_trace(&parsed, 4).expect("chrome export must validate");
    }

    #[test]
    fn chrome_export_is_deterministic() {
        let a = chrome_trace(&sample_events(), 4, 0);
        let b = chrome_trace(&sample_events(), 4, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn csv_has_one_row_per_event_plus_header() {
        let events = sample_events();
        let csv = csv_timeline(&events, 0);
        assert_eq!(csv.lines().count(), events.len() + 1);
        assert!(csv.starts_with("kind,start,end,gpm,id,label,a,b\n"));
        assert!(csv.contains("phase_span,10,40,0,3,geometry,2,5"));
        assert!(csv.contains("steal,90,90,0,7,idle,12,1"));
    }

    #[test]
    fn digest_reports_stalls_link_and_errors() {
        let d = flight_digest(&sample_events(), 3);
        assert!(d.contains("events dropped      : 3"));
        assert!(d.contains("gpm 1 obj 7 fragment: 30 stall cycles"));
        assert!(d.contains("link 0->1 [0, 128]: 2048 bytes"));
        assert!(d.contains("batches=1"));
        assert!(d.contains("steals=1"));
    }

    #[test]
    fn serve_events_export_in_all_three_formats() {
        let events = vec![
            TraceEvent::SessionAdmit { cycle: 0, session: 0, predicted: 45_000.0, active: 1 },
            TraceEvent::SessionReject {
                cycle: 10,
                session: 1,
                predicted: 45_000.0,
                reason: "over capacity",
            },
            TraceEvent::FrameStart { cycle: 100, session: 0, frame: 0, deadline: 11_111_211 },
            TraceEvent::FrameSpan { session: 0, frame: 0, start: 100, end: 45_100, scale: 0.8 },
            TraceEvent::FrameShed { cycle: 100, session: 0, frame: 0, scale: 0.8 },
            TraceEvent::DeadlineMiss {
                cycle: 12_000_000,
                session: 0,
                frame: 1,
                deadline: 11_111_211,
            },
            TraceEvent::FrameDrop { cycle: 12_000_001, session: 0, frame: 2, reason: "stale" },
        ];
        let json = chrome_trace(&events, 4, 0);
        let parsed = crate::json::parse(&json).expect("serve trace parses");
        let stats = crate::json::validate_chrome_trace(&parsed, 4).expect("serve trace validates");
        assert_eq!(stats.spans, 1);
        assert_eq!(stats.instants, 6);
        let csv = csv_timeline(&events, 0);
        assert!(csv.contains("session_admit,0,0,,0,,1,45000.0000"));
        assert!(csv.contains("frame_span,100,45100,,0,,0,0.8000"));
        assert!(csv.contains("frame_drop,12000001,12000001,,0,stale,2,"));
        let digest = flight_digest(&events, 0);
        assert!(digest.contains("admits=1 rejects=1 frames=1 misses=1 sheds=1 drops=1"));
        assert!(digest.contains("session 0 frame 1, 888789 cycles late"));
        // A digest without serve events must not mention the serving section.
        assert!(!flight_digest(&sample_events(), 0).contains("serving"));
    }

    #[test]
    fn cluster_events_export_in_all_three_formats() {
        let events = vec![
            TraceEvent::ServerUp { cycle: 0, server: 0 },
            TraceEvent::ServerUp { cycle: 0, server: 1 },
            TraceEvent::SessionRoute { cycle: 10, session: 0, server: 1, attempt: 1 },
            TraceEvent::RouteRetry { cycle: 20, session: 1, attempt: 1, backoff: 123_456 },
            TraceEvent::SessionRoute { cycle: 123_476, session: 1, server: 0, attempt: 2 },
            TraceEvent::ServerDown { cycle: 200_000, server: 1, reason: "link-down" },
            TraceEvent::SessionFailover { cycle: 200_000, session: 0, from: 1, to: 0 },
            TraceEvent::SessionMigrate {
                cycle: 300_000,
                session: 0,
                from: 0,
                to: 1,
                reason: "overload",
            },
        ];
        let json = chrome_trace(&events, 2, 0);
        let parsed = crate::json::parse(&json).expect("cluster trace parses");
        let stats = crate::json::validate_chrome_trace(&parsed, 2).expect("cluster validates");
        assert_eq!(stats.instants, 8);
        let csv = csv_timeline(&events, 0);
        assert!(csv.contains("server_down,200000,200000,1,,link-down,,"));
        assert!(csv.contains("session_route,123476,123476,0,1,,2,"));
        assert!(csv.contains("route_retry,20,20,,1,,1,123456"));
        assert!(csv.contains("session_failover,200000,200000,0,0,,1,"));
        assert!(csv.contains("session_migrate,300000,300000,1,0,overload,0,"));
        let digest = flight_digest(&events, 0);
        assert!(digest.contains("ups=2 downs=1 routes=2 retries=1 migrations=1 failovers=1"));
        // A digest without cluster events must not mention the cluster section.
        assert!(!flight_digest(&sample_events(), 0).contains("cluster"));
    }

    #[test]
    fn temporal_events_export_in_all_three_formats() {
        let events = vec![
            TraceEvent::TemporalReuse {
                cycle: 100,
                session: 0,
                frame: 1,
                reused: 37,
                rerendered: 3,
                saved: 250_000,
            },
            TraceEvent::TemporalReuse {
                cycle: 11_111_311,
                session: 0,
                frame: 2,
                reused: 40,
                rerendered: 0,
                saved: 300_000,
            },
        ];
        let json = chrome_trace(&events, 4, 0);
        let parsed = crate::json::parse(&json).expect("temporal trace parses");
        let stats = crate::json::validate_chrome_trace(&parsed, 4).expect("temporal validates");
        assert_eq!(stats.instants, 2);
        assert!(json.contains("\"reused\":37"));
        let csv = csv_timeline(&events, 0);
        assert!(csv.contains("temporal_reuse,100,100,,0,f1,37,3"));
        assert!(csv.contains("temporal_reuse,11111311,11111311,,0,f2,40,0"));
        let digest = flight_digest(&events, 0);
        assert!(digest.contains("frames=2 reused=77 rerendered=3 saved=550000"));
        // A digest without temporal events must not mention the section.
        assert!(!flight_digest(&sample_events(), 0).contains("temporal"));
    }

    #[test]
    fn edge_events_export_in_all_three_formats() {
        let events = vec![
            TraceEvent::FrameSent { cycle: 50_000, session: 0, frame: 1, bytes: 240_000 },
            TraceEvent::FrameDelivered { cycle: 62_000, session: 0, frame: 1, latency: 12_000 },
            TraceEvent::FrameSent { cycle: 95_000, session: 0, frame: 2, bytes: 240_000 },
            TraceEvent::FrameLost { cycle: 95_000, session: 0, frame: 2 },
            TraceEvent::FrameReprojected { cycle: 133_332, session: 0, frame: 2, age: 1 },
            TraceEvent::FrameStale { cycle: 177_776, session: 0, frame: 3, age: 5 },
        ];
        let json = chrome_trace(&events, 4, 0);
        let parsed = crate::json::parse(&json).expect("edge trace parses");
        let stats = crate::json::validate_chrome_trace(&parsed, 4).expect("edge trace validates");
        assert_eq!(stats.instants, 6);
        assert!(json.contains("\"latency\":12000"));
        let csv = csv_timeline(&events, 0);
        assert!(csv.contains("frame_sent,50000,50000,,0,,1,240000"));
        assert!(csv.contains("frame_delivered,62000,62000,,0,,1,12000"));
        assert!(csv.contains("frame_lost,95000,95000,,0,,2,"));
        assert!(csv.contains("frame_reprojected,133332,133332,,0,,2,1"));
        assert!(csv.contains("frame_stale,177776,177776,,0,,3,5"));
        let digest = flight_digest(&events, 0);
        assert!(digest.contains("sent=2 delivered=1 lost=1 reprojected=1 stale=1"));
        assert!(digest.contains("session 0 frame 1, 12000 cycles on the link"));
        // A digest without edge events must not mention the edge section.
        assert!(!flight_digest(&sample_events(), 0).contains("edge"));
    }

    #[test]
    fn overflow_annotation_appears_only_when_dropped() {
        let events = sample_events();
        let clean = chrome_trace(&events, 4, 0);
        let marked = chrome_trace(&events, 4, 7);
        assert!(!clean.contains("trace_overflow"));
        assert!(marked.contains("\"trace_overflow\""));
        assert!(marked.contains("\"dropped\":7"));
        let parsed = crate::json::parse(&marked).expect("annotated export parses");
        crate::json::validate_chrome_trace(&parsed, 4).expect("annotated export validates");
        let csv = csv_timeline(&events, 7);
        assert_eq!(csv.lines().nth(1), Some("trace_overflow,0,0,,,oldest events lost,7,"));
        assert!(!csv_timeline(&events, 0).contains("trace_overflow"));
        let digest = flight_digest(&events, 7);
        assert!(digest.contains("RING OVERFLOW"));
        assert!(!flight_digest(&events, 0).contains("RING OVERFLOW"));
    }

    #[test]
    fn digest_metrics_section_rolls_up_frame_spans() {
        let events = vec![
            TraceEvent::FrameSpan { session: 0, frame: 0, start: 0, end: 100, scale: 1.0 },
            TraceEvent::FrameSpan { session: 0, frame: 1, start: 100, end: 350, scale: 1.0 },
            TraceEvent::FrameSpan { session: 1, frame: 0, start: 0, end: 200, scale: 1.0 },
        ];
        let digest = flight_digest(&events, 0);
        assert!(digest.contains("metrics             : frame_span n=3 p50=200 p99=250 max=250"));
        // No frame spans, no metrics section.
        assert!(!flight_digest(&sample_events(), 0).contains("metrics"));
    }

    #[test]
    fn out_of_range_gpm_lands_on_engine_process() {
        let events = vec![TraceEvent::PreAlloc { cycle: 1, gpm: 99, object: 0, bytes: 1 }];
        let out = chrome_trace(&events, 4, 0);
        let parsed = crate::json::parse(&out).expect("parse");
        crate::json::validate_chrome_trace(&parsed, 4).expect("validate");
    }
}
