//! Minimal recursive-descent JSON parser and a Chrome-trace validator.
//!
//! The workspace is offline and serde-free, so the CI smoke test validates
//! the Chrome export with this hand-rolled parser: parse the emitted string
//! back into a value tree, then check the structural invariants Perfetto
//! relies on (a `traceEvents` array, numeric `pid`/`ts`, and monotone
//! timestamps within every `(pid, tid)` track).

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other.map(|c| c as char), self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid utf8 in number".to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("invalid \\u escape '{hex}'"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!("invalid escape {:?}", other.map(|c| c as char)))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar, not just one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf8 in string".to_string())?;
                    let c = rest.chars().next().expect("peek guaranteed a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Summary of a validated Chrome trace, used by the CI smoke test to assert
/// acceptance criteria (track counts, presence of spans and instants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// Total events in `traceEvents` (metadata included).
    pub events: usize,
    /// `ph == "X"` complete spans.
    pub spans: usize,
    /// `ph == "i"` instant events.
    pub instants: usize,
    /// `ph == "C"` counter samples.
    pub counters: usize,
    /// Distinct GPM pids (`pid < n_gpms`) that own at least one span.
    pub gpm_span_tracks: usize,
    /// Instant events named `pa` (pre-allocation placements).
    pub pa_events: usize,
    /// Instant events named `steal` or `early_steal`.
    pub steal_events: usize,
}

/// Validate a parsed Chrome trace document.
///
/// Checks: top level is an object holding a non-empty `traceEvents` array;
/// every event is an object with a string `ph`, string `name`, and numeric
/// `pid`; every non-metadata event has numeric `ts`; and within each
/// `(pid, tid)` track, timestamps are monotone non-decreasing in array order.
pub fn validate_chrome_trace(doc: &Value, n_gpms: usize) -> Result<TraceStats, String> {
    let events =
        doc.get("traceEvents").and_then(Value::as_array).ok_or("missing traceEvents array")?;
    if events.is_empty() {
        return Err("traceEvents is empty".to_string());
    }
    let mut stats = TraceStats { events: events.len(), ..TraceStats::default() };
    let mut last_ts: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    let mut span_pids: Vec<bool> = vec![false; n_gpms];
    for (i, ev) in events.iter().enumerate() {
        let ph =
            ev.get("ph").and_then(Value::as_str).ok_or_else(|| format!("event {i}: missing ph"))?;
        let name = ev
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        let pid = ev
            .get("pid")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("event {i}: missing pid"))?;
        if !(pid.fract() == 0.0 && pid >= 0.0) {
            return Err(format!("event {i}: non-integer pid {pid}"));
        }
        if ph == "M" {
            continue;
        }
        let tid = ev.get("tid").and_then(Value::as_f64).unwrap_or(0.0);
        let ts = ev
            .get("ts")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("event {i} ({name}): missing ts"))?;
        let key = (pid as u64, tid as u64);
        if let Some(&prev) = last_ts.get(&key) {
            if ts < prev {
                return Err(format!(
                    "event {i} ({name}): ts {ts} < {prev} on track pid={pid} tid={tid}"
                ));
            }
        }
        last_ts.insert(key, ts);
        match ph {
            "X" => {
                stats.spans += 1;
                let dur = ev
                    .get("dur")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("event {i} ({name}): span missing dur"))?;
                if dur < 0.0 {
                    return Err(format!("event {i} ({name}): negative dur"));
                }
                if (pid as usize) < n_gpms {
                    span_pids[pid as usize] = true;
                }
            }
            "i" => {
                stats.instants += 1;
                match name {
                    "pa" => stats.pa_events += 1,
                    "steal" | "early_steal" => stats.steal_events += 1,
                    _ => {}
                }
            }
            "C" => stats.counters += 1,
            other => return Err(format!("event {i} ({name}): unexpected ph '{other}'")),
        }
    }
    stats.gpm_span_tracks = span_pids.iter().filter(|&&b| b).count();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\ny"},"d":true,"e":null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e"), Some(&Value::Null));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(parse("{} extra").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn parses_unicode_escapes() {
        let v = parse(r#""Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }

    #[test]
    fn validator_rejects_non_monotone_track() {
        let doc = parse(
            r#"{"traceEvents":[
                {"name":"a","ph":"i","s":"t","pid":0,"tid":0,"ts":10,"args":{}},
                {"name":"b","ph":"i","s":"t","pid":0,"tid":0,"ts":5,"args":{}}
            ]}"#,
        )
        .unwrap();
        let err = validate_chrome_trace(&doc, 4).unwrap_err();
        assert!(err.contains("ts 5 < 10"), "{err}");
    }

    #[test]
    fn validator_allows_interleaved_tracks() {
        let doc = parse(
            r#"{"traceEvents":[
                {"name":"a","ph":"X","pid":0,"tid":0,"ts":10,"dur":5,"args":{}},
                {"name":"b","ph":"X","pid":1,"tid":0,"ts":0,"dur":5,"args":{}},
                {"name":"pa","ph":"i","s":"t","pid":1,"tid":1,"ts":2,"args":{}}
            ]}"#,
        )
        .unwrap();
        let stats = validate_chrome_trace(&doc, 4).unwrap();
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.instants, 1);
        assert_eq!(stats.pa_events, 1);
        assert_eq!(stats.gpm_span_tracks, 2);
    }
}
