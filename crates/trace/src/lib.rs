//! Deterministic flight-recorder tracing for the OO-VR reproduction.
//!
//! This crate is the observability substrate described in DESIGN.md §10: a
//! dependency-free event model plus a bounded ring-buffer recorder that the
//! simulator threads through its hot paths as an `Option` — when the option is
//! `None` the instrumented code performs a single branch and nothing else, so
//! the untraced simulation is bit-identical to a build without this crate.
//!
//! Two invariants govern everything here:
//!
//! 1. **Observers read, never perturb.** No API in this crate can mutate
//!    simulation state; events are plain-old-data snapshots.
//! 2. **Simulated cycles only.** Every timestamp is a simulated [`Cycle`];
//!    wall-clock time never enters an event, so two runs of the same
//!    configuration produce byte-identical exports.
//!
//! The exporters ([`export`]) turn a drained recorder into Chrome trace-event
//! JSON (Perfetto-loadable), a per-quantum CSV timeline, and a compact text
//! digest. [`json`] holds a hand-rolled JSON parser used by the CI smoke test
//! to validate the Chrome export without external dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod json;

/// Simulated cycle count. Mirrors `oovr_mem::Cycle`; duplicated here so the
/// trace crate stays dependency-free and can sit below every other crate.
pub type Cycle = u64;

/// Pipeline phase a render unit occupies during a quantum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Command-processor work: fetching and decoding the draw command.
    Command,
    /// Geometry work: vertex fetch, transform, and primitive setup.
    Geometry,
    /// Fragment work: rasterization, texture sampling, and shading.
    Fragment,
}

impl Phase {
    /// Stable lowercase name used by every exporter.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Command => "command",
            Phase::Geometry => "geometry",
            Phase::Fragment => "fragment",
        }
    }
}

/// A single trace event. Everything is plain data with simulated-cycle
/// timestamps; reasons are `&'static str` so recording never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A contiguous run of quanta one render unit spent in one pipeline phase
    /// on one GPM. Adjacent quanta in the same (gpm, object, phase) merge into
    /// a single span, so phase boundaries are exact span boundaries.
    PhaseSpan {
        /// GPM that executed the quanta.
        gpm: u32,
        /// Object id (`ObjectId.0`) the unit belongs to.
        object: u32,
        /// Pipeline phase covered by this span.
        phase: Phase,
        /// First cycle of the span.
        start: Cycle,
        /// Cycle at which the last quantum of the span retired.
        end: Cycle,
        /// Number of pipeline quanta merged into the span.
        quanta: u64,
        /// Cycles of the span spent stalled on memory (subset of `end-start`).
        stall: Cycle,
    },
    /// The end-of-frame composition pass (master-GPM gather or distributed
    /// exchange).
    CompositionSpan {
        /// Cycle composition started (frame makespan before compose).
        start: Cycle,
        /// Cycle composition finished.
        end: Cycle,
    },
    /// `Executor::set_shade_scale` changed the fragment shading rate.
    ShadeScale {
        /// Cycle of the change (current makespan).
        cycle: Cycle,
        /// New multiplier applied to fragment shading work.
        scale: f64,
    },
    /// The distribution engine pre-allocated (PA) an object's data onto a GPM
    /// ahead of its first access.
    PreAlloc {
        /// Cycle on the destination GPM when the transfer was charged.
        cycle: Cycle,
        /// Destination GPM.
        gpm: u32,
        /// Object whose data was placed.
        object: u32,
        /// Bytes moved or locally allocated.
        bytes: u64,
    },
    /// Eq. 3 coefficients were fitted (initial calibration or a drift re-fit).
    CalibrationFit {
        /// Engine-observed cycle of the fit (current makespan).
        cycle: Cycle,
        /// Fixed per-batch overhead coefficient.
        c0: f64,
        /// Geometry (per-triangle) coefficient.
        c1: f64,
        /// Fragment (per-pixel) coefficient.
        c2: f64,
        /// Number of samples the fit used.
        samples: u32,
        /// `false` for the initial calibration fit, `true` for drift re-fits.
        refit: bool,
    },
    /// The engine assigned a batch to a GPM.
    Assign {
        /// Cycle on the chosen GPM at assignment time.
        cycle: Cycle,
        /// Chosen GPM.
        gpm: u32,
        /// Batch index within the frame (calibration batches included).
        batch: u32,
        /// Triangles in the batch.
        triangles: u64,
        /// Eq. 3 predicted cycles for the batch.
        predicted: f64,
    },
    /// All units of a batch retired; predicted-vs-actual is now known.
    BatchDone {
        /// Cycle on the executing GPM when the last unit retired.
        cycle: Cycle,
        /// GPM that executed the batch.
        gpm: u32,
        /// Batch index within the frame.
        batch: u32,
        /// Eq. 3 predicted cycles at assignment time.
        predicted: f64,
        /// Actual busy cycles the batch consumed.
        actual: f64,
    },
    /// Fine-grained stealing moved a queued unit's object to an idle GPM.
    Steal {
        /// Cycle on the thief GPM.
        cycle: Cycle,
        /// GPM that took the work.
        thief: u32,
        /// GPM the work was taken from.
        victim: u32,
        /// Object whose remaining units moved.
        object: u32,
        /// Triangles still pending in the stolen unit's object.
        triangles: u64,
        /// `true` when the resilient early-steal threshold triggered it.
        early: bool,
    },
    /// The resilient engine migrated a queued batch between GPMs.
    Migrate {
        /// Cycle on the destination GPM.
        cycle: Cycle,
        /// Overloaded source GPM.
        from: u32,
        /// Destination GPM.
        to: u32,
        /// Predicted cycles of the migrated batch.
        predicted: f64,
        /// Why the engine moved it.
        reason: &'static str,
    },
    /// A PA probe failed and the engine backed off to retry.
    PaRetry {
        /// Cycle on the probing GPM.
        cycle: Cycle,
        /// GPM whose links were probed.
        gpm: u32,
        /// Retry attempt number (1-based).
        attempt: u32,
    },
    /// PA gave up and fell back to remote access.
    PaFallback {
        /// Cycle on the falling-back GPM.
        cycle: Cycle,
        /// GPM that could not be reached.
        gpm: u32,
        /// Why PA was abandoned.
        reason: &'static str,
    },
    /// Deadline shedding reduced the fragment shade scale.
    Shed {
        /// Engine-observed cycle of the decision (current makespan).
        cycle: Cycle,
        /// Shade scale after shedding.
        scale: f64,
        /// Why the engine shed work.
        reason: &'static str,
    },
    /// One sampling window of a directed inter-GPM link's bandwidth server.
    LinkWindow {
        /// Window start cycle.
        start: Cycle,
        /// Window end cycle (the sample point).
        end: Cycle,
        /// Source GPM of the directed link.
        from: u32,
        /// Destination GPM of the directed link.
        to: u32,
        /// Bytes served during the window.
        bytes: u64,
        /// Cycles the server was busy during the window.
        busy: f64,
        /// Queue depth at the sample point: cycles until the server is free.
        queue: Cycle,
    },
    /// One sampling window of a GPM's local DRAM bandwidth server.
    DramWindow {
        /// Window start cycle.
        start: Cycle,
        /// Window end cycle (the sample point).
        end: Cycle,
        /// GPM whose DRAM this is.
        gpm: u32,
        /// Bytes served during the window.
        bytes: u64,
        /// Cycles the server was busy during the window.
        busy: f64,
        /// Queue depth at the sample point: cycles until the server is free.
        queue: Cycle,
    },
    /// One sampling window of a GPM's L1/L2 cache counters.
    CacheWindow {
        /// GPM whose caches were sampled.
        gpm: u32,
        /// Window start cycle.
        start: Cycle,
        /// Window end cycle (the sample point).
        end: Cycle,
        /// L1 accesses during the window.
        l1_accesses: u64,
        /// L1 hits during the window.
        l1_hits: u64,
        /// L2 accesses during the window.
        l2_accesses: u64,
        /// L2 hits during the window.
        l2_hits: u64,
    },
    /// The serving admission controller accepted a session (`oovr-serve`).
    SessionAdmit {
        /// Arrival cycle of the session.
        cycle: Cycle,
        /// Session id.
        session: u32,
        /// Eq. 3 predicted steady-state cycles per vsync for this session.
        predicted: f64,
        /// Concurrently active sessions after admission (this one included).
        active: u32,
    },
    /// The serving admission controller rejected a session.
    SessionReject {
        /// Arrival cycle of the session.
        cycle: Cycle,
        /// Session id.
        session: u32,
        /// Eq. 3 predicted steady-state cycles per vsync for this session.
        predicted: f64,
        /// Why admission refused it.
        reason: &'static str,
    },
    /// The frame scheduler started rendering one session frame.
    FrameStart {
        /// Service start cycle.
        cycle: Cycle,
        /// Session id.
        session: u32,
        /// Frame index within the session's paced stream.
        frame: u32,
        /// Vsync deadline the frame must meet.
        deadline: Cycle,
    },
    /// The full service interval of one session frame on the renderer.
    FrameSpan {
        /// Session id.
        session: u32,
        /// Frame index within the session's paced stream.
        frame: u32,
        /// Service start cycle.
        start: Cycle,
        /// Service completion cycle.
        end: Cycle,
        /// Shade scale the frame was served at (1.0 = full quality).
        scale: f64,
    },
    /// A session frame completed after its vsync deadline.
    DeadlineMiss {
        /// Completion cycle (after the deadline).
        cycle: Cycle,
        /// Session id.
        session: u32,
        /// Frame index within the session's paced stream.
        frame: u32,
        /// The deadline that was missed.
        deadline: Cycle,
    },
    /// Serving backpressure shed a frame's shading work to make its deadline.
    FrameShed {
        /// Cycle of the shed decision (service start).
        cycle: Cycle,
        /// Session id.
        session: u32,
        /// Frame index within the session's paced stream.
        frame: u32,
        /// Shade scale the frame was reduced to.
        scale: f64,
    },
    /// The scheduler dropped a stale frame without rendering it.
    FrameDrop {
        /// Cycle of the drop decision.
        cycle: Cycle,
        /// Session id.
        session: u32,
        /// Frame index within the session's paced stream.
        frame: u32,
        /// Why the frame was discarded.
        reason: &'static str,
    },
    /// The temporal-reuse layer decided one session frame's object set:
    /// how many objects were memoized (ATW-warped) versus re-rendered.
    TemporalReuse {
        /// Cycle of the decision (service start of the frame).
        cycle: Cycle,
        /// Session id.
        session: u32,
        /// Frame index within the session's paced stream.
        frame: u32,
        /// Objects reused (charged the pixel warp only).
        reused: u32,
        /// Objects re-rendered at full cost.
        rerendered: u32,
        /// Critical-path cycles saved versus a full re-render.
        saved: Cycle,
    },
    /// A cluster server came (back) online at nominal or degraded rate.
    ServerUp {
        /// Cycle of the transition.
        cycle: Cycle,
        /// Server index within the cluster.
        server: u32,
    },
    /// A cluster server died (serving rate hit zero).
    ServerDown {
        /// Cycle of the transition.
        cycle: Cycle,
        /// Server index within the cluster.
        server: u32,
        /// Fault scenario that killed it.
        reason: &'static str,
    },
    /// The session router placed a session on a server.
    SessionRoute {
        /// Cycle of the placement.
        cycle: Cycle,
        /// Session id.
        session: u32,
        /// Destination server index.
        server: u32,
        /// Admission attempt that succeeded (1 = first try).
        attempt: u32,
    },
    /// Admission failed on one server; the router backs off and retries.
    RouteRetry {
        /// Cycle of the failed attempt.
        cycle: Cycle,
        /// Session id.
        session: u32,
        /// Attempt number that just failed (1 = first try).
        attempt: u32,
        /// Backoff before the next attempt, in cycles.
        backoff: Cycle,
    },
    /// The router migrated a live session off an overloaded/degraded server.
    SessionMigrate {
        /// Cycle of the migration.
        cycle: Cycle,
        /// Session id.
        session: u32,
        /// Source server index.
        from: u32,
        /// Destination server index.
        to: u32,
        /// Why the session was moved.
        reason: &'static str,
    },
    /// The router failed a session over after its server died.
    SessionFailover {
        /// Cycle of the failover.
        cycle: Cycle,
        /// Session id.
        session: u32,
        /// Dead source server index.
        from: u32,
        /// Destination server index.
        to: u32,
    },
    /// The edge server finished encoding a frame and handed it to the link.
    FrameSent {
        /// Cycle the frame entered the link (encode completion).
        cycle: Cycle,
        /// Session id.
        session: u32,
        /// Frame index within the session's paced stream.
        frame: u32,
        /// Encoded frame size in bytes.
        bytes: u64,
    },
    /// The client received a frame off the link intact.
    FrameDelivered {
        /// Cycle the last byte (plus propagation) arrived at the client.
        cycle: Cycle,
        /// Session id.
        session: u32,
        /// Frame index within the session's paced stream.
        frame: u32,
        /// Link transit time in cycles (queueing + serialization + propagation).
        latency: Cycle,
    },
    /// The link dropped a frame (loss window); it still consumed bandwidth.
    FrameLost {
        /// Cycle the loss was charged (encode completion).
        cycle: Cycle,
        /// Session id.
        session: u32,
        /// Frame index within the session's paced stream.
        frame: u32,
    },
    /// The client missed a fresh frame and reprojected an older one via ATW.
    FrameReprojected {
        /// Vsync deadline the reprojection covered.
        cycle: Cycle,
        /// Session id.
        session: u32,
        /// Frame index that was covered by reprojection.
        frame: u32,
        /// Age of the reprojected source frame, in frames.
        age: u32,
    },
    /// No frame within the staleness cap was available: a hard client miss.
    FrameStale {
        /// Vsync deadline that went dark.
        cycle: Cycle,
        /// Session id.
        session: u32,
        /// Frame index that had nothing to show.
        frame: u32,
        /// Frames since the last delivered frame (> the staleness cap).
        age: u32,
    },
}

impl TraceEvent {
    /// Representative timestamp of the event: span start for spans, the event
    /// cycle for instants, window end for windows.
    pub fn cycle(&self) -> Cycle {
        match *self {
            TraceEvent::PhaseSpan { start, .. } => start,
            TraceEvent::CompositionSpan { start, .. } => start,
            TraceEvent::ShadeScale { cycle, .. } => cycle,
            TraceEvent::PreAlloc { cycle, .. } => cycle,
            TraceEvent::CalibrationFit { cycle, .. } => cycle,
            TraceEvent::Assign { cycle, .. } => cycle,
            TraceEvent::BatchDone { cycle, .. } => cycle,
            TraceEvent::Steal { cycle, .. } => cycle,
            TraceEvent::Migrate { cycle, .. } => cycle,
            TraceEvent::PaRetry { cycle, .. } => cycle,
            TraceEvent::PaFallback { cycle, .. } => cycle,
            TraceEvent::Shed { cycle, .. } => cycle,
            TraceEvent::LinkWindow { end, .. } => end,
            TraceEvent::DramWindow { end, .. } => end,
            TraceEvent::CacheWindow { end, .. } => end,
            TraceEvent::SessionAdmit { cycle, .. } => cycle,
            TraceEvent::SessionReject { cycle, .. } => cycle,
            TraceEvent::FrameStart { cycle, .. } => cycle,
            TraceEvent::FrameSpan { start, .. } => start,
            TraceEvent::DeadlineMiss { cycle, .. } => cycle,
            TraceEvent::FrameShed { cycle, .. } => cycle,
            TraceEvent::FrameDrop { cycle, .. } => cycle,
            TraceEvent::TemporalReuse { cycle, .. } => cycle,
            TraceEvent::ServerUp { cycle, .. } => cycle,
            TraceEvent::ServerDown { cycle, .. } => cycle,
            TraceEvent::SessionRoute { cycle, .. } => cycle,
            TraceEvent::RouteRetry { cycle, .. } => cycle,
            TraceEvent::SessionMigrate { cycle, .. } => cycle,
            TraceEvent::SessionFailover { cycle, .. } => cycle,
            TraceEvent::FrameSent { cycle, .. } => cycle,
            TraceEvent::FrameDelivered { cycle, .. } => cycle,
            TraceEvent::FrameLost { cycle, .. } => cycle,
            TraceEvent::FrameReprojected { cycle, .. } => cycle,
            TraceEvent::FrameStale { cycle, .. } => cycle,
        }
    }
}

/// Sink for trace events. The simulator is generic over "somewhere to put
/// events"; the shipped implementation is [`Recorder`], but tests can supply
/// their own (e.g. a counting sink) without touching simulator code.
pub trait TraceSink {
    /// Record one event. Implementations must not panic and must not observe
    /// wall-clock time.
    fn record(&mut self, event: TraceEvent);
}

/// Configuration for a tracing session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Ring-buffer capacity in events. When full, the oldest events are
    /// overwritten and counted in [`Recorder::dropped`].
    pub capacity: usize,
    /// Width of the bandwidth/cache sampling windows in simulated cycles.
    pub window_cycles: Cycle,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { capacity: 1 << 20, window_cycles: 16_384 }
    }
}

/// Bounded flight recorder: a ring buffer of [`TraceEvent`]s that overwrites
/// its oldest entries when full, so tracing an arbitrarily long run has a
/// fixed memory ceiling.
#[derive(Debug, Clone)]
pub struct Recorder {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the logical oldest event once the buffer has wrapped.
    head: usize,
    dropped: u64,
    window_cycles: Cycle,
}

impl Recorder {
    /// Create a recorder from a [`TraceConfig`]. Capacity is clamped to at
    /// least 1 so `record` is always well-defined.
    pub fn new(cfg: TraceConfig) -> Self {
        Recorder {
            buf: Vec::new(),
            capacity: cfg.capacity.max(1),
            head: 0,
            dropped: 0,
            window_cycles: cfg.window_cycles.max(1),
        }
    }

    /// Sampling window width this recorder was configured with.
    pub fn window_cycles(&self) -> Cycle {
        self.window_cycles
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events have been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Number of events overwritten because the ring filled up.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterate retained events oldest-first (recording order).
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        let (wrapped, fresh) = self.buf.split_at(self.head);
        fresh.iter().chain(wrapped.iter())
    }

    /// Drain into a `Vec` in recording order (oldest retained event first).
    pub fn into_events(self) -> Vec<TraceEvent> {
        let mut buf = self.buf;
        buf.rotate_left(self.head);
        buf
    }
}

impl TraceSink for Recorder {
    fn record(&mut self, event: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head += 1;
            if self.head == self.capacity {
                self.head = 0;
            }
            self.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instant(cycle: Cycle) -> TraceEvent {
        TraceEvent::ShadeScale { cycle, scale: 1.0 }
    }

    #[test]
    fn recorder_keeps_order_below_capacity() {
        let mut r = Recorder::new(TraceConfig { capacity: 8, window_cycles: 64 });
        for c in 0..5 {
            r.record(instant(c));
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.dropped(), 0);
        let cycles: Vec<Cycle> = r.events().map(|e| e.cycle()).collect();
        assert_eq!(cycles, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn recorder_overwrites_oldest_when_full() {
        let mut r = Recorder::new(TraceConfig { capacity: 4, window_cycles: 64 });
        for c in 0..10 {
            r.record(instant(c));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        let cycles: Vec<Cycle> = r.events().map(|e| e.cycle()).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9]);
        assert_eq!(
            r.into_events().iter().map(TraceEvent::cycle).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut r = Recorder::new(TraceConfig { capacity: 0, window_cycles: 0 });
        r.record(instant(1));
        r.record(instant(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.events().next().map(|e| e.cycle()), Some(2));
        assert_eq!(r.window_cycles(), 1);
    }

    #[test]
    fn event_cycle_picks_representative_timestamp() {
        let span = TraceEvent::PhaseSpan {
            gpm: 0,
            object: 1,
            phase: Phase::Geometry,
            start: 100,
            end: 200,
            quanta: 3,
            stall: 10,
        };
        assert_eq!(span.cycle(), 100);
        let win = TraceEvent::LinkWindow {
            start: 0,
            end: 4096,
            from: 0,
            to: 1,
            bytes: 64,
            busy: 1.0,
            queue: 0,
        };
        assert_eq!(win.cycle(), 4096);
        assert_eq!(Phase::Fragment.name(), "fragment");
    }
}
