//! The paper's benchmark suite (Table 3) as synthetic generator specs.
//!
//! | Abbr | Name | Library | Resolution(s) | #Draw |
//! |------|------|---------|---------------|-------|
//! | DM3 | Doom 3 | OpenGL | 1600×1200, 1280×1024, 640×480 | 191 |
//! | HL2 | Half-Life 2 | DirectX | 1600×1200, 1280×1024, 640×480 | 328 |
//! | NFS | Need For Speed | DirectX | 1280×1024 | 1267 |
//! | UT3 | Unreal Tournament 3 | DirectX | 1280×1024 | 876 |
//! | WE | Wolfenstein | DirectX | 640×480 | 1697 |
//!
//! Personalities are chosen per game family: DM3 has few large objects and
//! heavy texture reuse (corridors of shared wall sets), NFS has many small
//! objects with a hero track texture, WE has very many tiny draws, etc.

use crate::generator::{BenchmarkSpec, Personality};

fn dm3_personality() -> Personality {
    Personality {
        texture_pool: 48,
        zipf_s: 1.25,
        overdraw: 2.4,
        tri_total: 70_000,
        secondary_tex_prob: 0.40,
        size_sigma: 0.85,
        dep_prob: 0.03,
        uv_scale: (1.0, 2.6),
        disparity: 0.06,
        tex_log2: (8, 11),
    }
}

fn hl2_personality() -> Personality {
    Personality {
        texture_pool: 80,
        zipf_s: 1.1,
        overdraw: 2.2,
        tri_total: 110_000,
        secondary_tex_prob: 0.35,
        size_sigma: 0.7,
        dep_prob: 0.02,
        uv_scale: (0.9, 2.4),
        disparity: 0.06,
        tex_log2: (7, 10),
    }
}

fn nfs_personality() -> Personality {
    Personality {
        texture_pool: 160,
        zipf_s: 1.35,
        overdraw: 2.6,
        tri_total: 260_000,
        secondary_tex_prob: 0.30,
        size_sigma: 1.0,
        dep_prob: 0.015,
        uv_scale: (1.1, 2.8),
        disparity: 0.08,
        tex_log2: (7, 10),
    }
}

fn ut3_personality() -> Personality {
    Personality {
        texture_pool: 120,
        zipf_s: 1.05,
        overdraw: 2.3,
        tri_total: 190_000,
        secondary_tex_prob: 0.45,
        size_sigma: 0.8,
        dep_prob: 0.02,
        uv_scale: (1.0, 2.6),
        disparity: 0.07,
        tex_log2: (7, 10),
    }
}

fn we_personality() -> Personality {
    Personality {
        texture_pool: 180,
        zipf_s: 1.0,
        overdraw: 2.0,
        tri_total: 140_000,
        secondary_tex_prob: 0.25,
        size_sigma: 0.65,
        dep_prob: 0.01,
        uv_scale: (0.8, 2.2),
        disparity: 0.05,
        tex_log2: (6, 9),
    }
}

fn spec(name: &str, w: u32, h: u32, draws: u32, seed: u64, p: Personality) -> BenchmarkSpec {
    let mut s = BenchmarkSpec::new(name, w, h, draws, seed);
    s.personality = p;
    s
}

/// Doom 3 at 640×480.
pub fn dm3_640() -> BenchmarkSpec {
    spec("DM3-640", 640, 480, 191, 0xD003_0640, dm3_personality())
}

/// Doom 3 at 1280×1024.
pub fn dm3_1280() -> BenchmarkSpec {
    spec("DM3-1280", 1280, 1024, 191, 0xD003_1280, dm3_personality())
}

/// Doom 3 at 1600×1200.
pub fn dm3_1600() -> BenchmarkSpec {
    spec("DM3-1600", 1600, 1200, 191, 0xD003_1600, dm3_personality())
}

/// Half-Life 2 at 640×480.
pub fn hl2_640() -> BenchmarkSpec {
    spec("HL2-640", 640, 480, 328, 0x0412_0640, hl2_personality())
}

/// Half-Life 2 at 1280×1024.
pub fn hl2_1280() -> BenchmarkSpec {
    spec("HL2-1280", 1280, 1024, 328, 0x0412_1280, hl2_personality())
}

/// Half-Life 2 at 1600×1200.
pub fn hl2_1600() -> BenchmarkSpec {
    spec("HL2-1600", 1600, 1200, 328, 0x0412_1600, hl2_personality())
}

/// Need For Speed at 1280×1024.
pub fn nfs() -> BenchmarkSpec {
    spec("NFS", 1280, 1024, 1267, 0x0BF5_1280, nfs_personality())
}

/// Unreal Tournament 3 at 1280×1024.
pub fn ut3() -> BenchmarkSpec {
    spec("UT3", 1280, 1024, 876, 0x0073_1280, ut3_personality())
}

/// Wolfenstein at 640×480.
pub fn we() -> BenchmarkSpec {
    spec("WE", 640, 480, 1697, 0x003E_0640, we_personality())
}

/// The nine evaluation points of the paper's figures, in the paper's order:
/// DM3-640/1280/1600, HL2-640/1280/1600, NFS, UT3, WE.
pub fn all() -> Vec<BenchmarkSpec> {
    vec![dm3_640(), dm3_1280(), dm3_1600(), hl2_640(), hl2_1280(), hl2_1600(), nfs(), ut3(), we()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_draw_counts() {
        assert_eq!(dm3_640().draws, 191);
        assert_eq!(hl2_1600().draws, 328);
        assert_eq!(nfs().draws, 1267);
        assert_eq!(ut3().draws, 876);
        assert_eq!(we().draws, 1697);
    }

    #[test]
    fn table3_resolutions() {
        assert_eq!(dm3_1600().resolution.to_string(), "1600x1200");
        assert_eq!(nfs().resolution.to_string(), "1280x1024");
        assert_eq!(we().resolution.to_string(), "640x480");
    }

    #[test]
    fn nine_evaluation_points() {
        let a = all();
        assert_eq!(a.len(), 9);
        let names: Vec<_> = a.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "DM3-640", "DM3-1280", "DM3-1600", "HL2-640", "HL2-1280", "HL2-1600", "NFS", "UT3",
                "WE"
            ]
        );
    }

    #[test]
    fn small_scaled_benchmarks_build() {
        for s in all() {
            let scene = s.scaled(0.1).build();
            assert!(scene.draw_count() >= 4);
            assert!(scene.total_triangles_per_eye() > 0);
        }
    }
}
