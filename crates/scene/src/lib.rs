//! # oovr-scene
//!
//! Scene representation and synthetic workload generation for the OO-VR
//! reproduction (Xie et al., ISCA 2019).
//!
//! The paper evaluates on rendering traces of five real games (Table 3:
//! Doom 3, Half-Life 2, Need For Speed, Unreal Tournament 3, Wolfenstein).
//! Those traces are not redistributable, so this crate generates
//! *deterministic synthetic scenes* whose externally-visible properties match
//! what the paper's experiments depend on:
//!
//! * the draw-command count and rendering resolution of each benchmark
//!   (Table 3),
//! * heavy-tailed object sizes (the source of the load imbalance in Fig. 10),
//! * a texture pool with Zipf-distributed sharing across objects (the
//!   locality that OO-VR's TSL batching exploits),
//! * stereo disparity between the left and right eye views of every object
//!   (the cross-eye redundancy that SMP exploits).
//!
//! # Example
//!
//! ```
//! use oovr_scene::{benchmarks, SceneBuilder};
//!
//! // A paper benchmark...
//! let scene = benchmarks::hl2_640().build();
//! assert_eq!(scene.objects().len(), 328);
//!
//! // ...or a hand-built scene.
//! let scene = SceneBuilder::new(640, 480)
//!     .texture("stone", 512, 512)
//!     .object("pillar1", |o| {
//!         o.rect(0.1, 0.1, 0.2, 0.8).texture("stone", 1.0);
//!     })
//!     .object("pillar2", |o| {
//!         o.rect(0.7, 0.1, 0.2, 0.8).texture("stone", 1.0);
//!     })
//!     .build();
//! assert_eq!(scene.objects().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmarks;
pub mod error;
pub mod generator;
pub mod geometry;
pub mod object;
pub mod pose;
pub mod scene;
pub mod stats;
pub mod texture;
pub mod types;
pub mod vr;

pub use error::SceneError;
pub use generator::{BenchmarkSpec, Personality};
pub use geometry::{Rect, ScreenTriangle, TriSampler, Vec2};
pub use object::{MotionProbe, ObjectBuilder, RenderObject, TextureUse};
pub use pose::{Pose, PoseModel, PoseTrajectory};
pub use scene::{Scene, SceneBuilder};
pub use texture::TextureDesc;
pub use types::{Eye, ObjectId, Resolution, TextureId, Viewport};
