//! Texture descriptions.
//!
//! Textures are the dominant memory consumers in the paper's workloads: VR
//! frames re-read large shared textures from whichever GPM's DRAM holds them,
//! and that read stream over NVLink is the bottleneck OO-VR attacks. We only
//! model descriptors (extent + footprint); texel *contents* never matter to
//! the architecture study, only texel *addresses*.

use crate::types::TextureId;

/// Bytes per texel (RGBA8).
pub const BYTES_PER_TEXEL: u64 = 4;

/// A texture in the scene's texture pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextureDesc {
    id: TextureId,
    name: String,
    width: u32,
    height: u32,
}

impl TextureDesc {
    /// Creates a texture description.
    ///
    /// # Panics
    ///
    /// Panics if either extent is zero or not a power of two (power-of-two
    /// extents let the sampler wrap UVs with a mask, like real hardware).
    pub fn new(id: TextureId, name: impl Into<String>, width: u32, height: u32) -> Self {
        let name = name.into();
        assert!(width > 0 && height > 0, "texture extent must be nonzero ({name:?})");
        assert!(
            width.is_power_of_two() && height.is_power_of_two(),
            "texture extents must be powers of two ({name:?}: {width}x{height})"
        );
        TextureDesc { id, name, width, height }
    }

    /// Fallible variant of [`new`](Self::new): reports bad extents as a
    /// [`SceneError`](crate::error::SceneError) instead of panicking.
    pub fn try_new(
        id: TextureId,
        name: impl Into<String>,
        width: u32,
        height: u32,
    ) -> Result<Self, crate::error::SceneError> {
        let name = name.into();
        if width == 0 || height == 0 || !width.is_power_of_two() || !height.is_power_of_two() {
            return Err(crate::error::SceneError::BadTextureExtent { name, width, height });
        }
        Ok(TextureDesc { id, name, width, height })
    }

    /// The texture's identifier.
    pub fn id(&self) -> TextureId {
        self.id
    }

    /// Human-readable name (e.g. `"stone"` in the paper's Fig. 12 example).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Width in texels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Height in texels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total memory footprint in bytes.
    pub fn size_bytes(&self) -> u64 {
        u64::from(self.width) * u64::from(self.height) * BYTES_PER_TEXEL
    }

    /// Byte offset of texel `(x, y)` within the texture allocation, with
    /// power-of-two wrap-around addressing.
    pub fn texel_offset(&self, x: i64, y: i64) -> u64 {
        self.row_base(y) + self.col_offset(x)
    }

    /// Byte offset of the start of texel row `y`, with power-of-two
    /// wrap-around. Callers sampling many texels of one row can hoist this
    /// out of their per-sample loop; `texel_offset(x, y)` equals
    /// `row_base(y) + col_offset(x)` exactly.
    ///
    /// Extents are powers of two (enforced in `new`), so the euclidean
    /// remainder is a two's-complement mask — `rem_euclid` would emit a
    /// hardware divide in this per-sample hot path.
    pub fn row_base(&self, y: i64) -> u64 {
        let ym = (y & (i64::from(self.height) - 1)) as u64;
        ym * u64::from(self.width) * BYTES_PER_TEXEL
    }

    /// Byte offset of texel column `x` within its row, with power-of-two
    /// wrap-around.
    pub fn col_offset(&self, x: i64) -> u64 {
        ((x & (i64::from(self.width) - 1)) as u64) * BYTES_PER_TEXEL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_math() {
        let t = TextureDesc::new(TextureId(0), "stone", 512, 256);
        assert_eq!(t.size_bytes(), 512 * 256 * 4);
        assert_eq!(t.width(), 512);
        assert_eq!(t.name(), "stone");
    }

    #[test]
    fn texel_offset_wraps() {
        let t = TextureDesc::new(TextureId(0), "t", 64, 64);
        assert_eq!(t.texel_offset(0, 0), 0);
        assert_eq!(t.texel_offset(64, 0), 0);
        assert_eq!(t.texel_offset(-1, 0), 63 * 4);
        assert_eq!(t.texel_offset(1, 1), (64 + 1) * 4);
    }

    #[test]
    #[should_panic(expected = "powers of two")]
    fn non_pow2_rejected() {
        let _ = TextureDesc::new(TextureId(0), "bad", 100, 64);
    }
}
