//! Typed errors for fallible scene construction.
//!
//! Scene building is the main user-reachable input path of the workspace:
//! benchmark specs, texture pools, and object lists arrive from outside the
//! library. The `try_*` constructors report violations as [`SceneError`]s so
//! an experiment harness can fail one experiment instead of the whole run;
//! the panicking builders remain for internal, pre-validated callers.

use std::fmt;

/// Errors raised while constructing scenes and workloads.
#[derive(Debug, Clone, PartialEq)]
pub enum SceneError {
    /// A texture name was registered twice in one scene's pool.
    DuplicateTexture(String),
    /// An object references a texture name absent from the pool.
    UnknownTexture {
        /// The object doing the referencing.
        object: String,
        /// The missing texture name.
        texture: String,
    },
    /// An object declares no texture binding at all.
    ObjectWithoutTexture(String),
    /// An object depends on an object that does not precede it.
    ForwardDependency {
        /// The depending object's index.
        object: u32,
        /// The (non-preceding) dependency index.
        depends_on: u32,
    },
    /// A texture extent is zero or not a power of two.
    BadTextureExtent {
        /// The offending texture name.
        name: String,
        /// Requested width in texels.
        width: u32,
        /// Requested height in texels.
        height: u32,
    },
    /// A benchmark scale factor is outside `(0, 1]`.
    BadScaleFactor(f64),
}

impl fmt::Display for SceneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SceneError::DuplicateTexture(name) => write!(f, "duplicate texture name {name:?}"),
            SceneError::UnknownTexture { object, texture } => {
                write!(f, "object {object:?} references unknown texture name {texture:?}")
            }
            SceneError::ObjectWithoutTexture(name) => {
                write!(f, "object {name:?} has no texture")
            }
            SceneError::ForwardDependency { object, depends_on } => {
                write!(f, "object {object} depends on {depends_on} which does not precede it")
            }
            SceneError::BadTextureExtent { name, width, height } => write!(
                f,
                "texture {name:?} extents must be nonzero powers of two, got {width}x{height}"
            ),
            SceneError::BadScaleFactor(factor) => {
                write!(f, "scale factor must be in (0,1], got {factor}")
            }
        }
    }
}

impl std::error::Error for SceneError {}
