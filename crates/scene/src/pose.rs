//! Seeded head-pose trajectories: each serving session is a pose-driven
//! frame stream, not a bag of independent frames.
//!
//! The VR viewport-pose literature (Chen et al., "A Viewport Pose Model for
//! Volumetric Video Streaming") observes that real head motion is strongly
//! frame-to-frame correlated: orientation follows a bounded random walk with
//! mean reversion toward the comfortable straight-ahead pose, and angular
//! speed stays within human limits (~360°/s peak, far less on average).
//! [`PoseTrajectory`] reproduces exactly that shape as a discrete
//! Ornstein–Uhlenbeck walk at the 90 Hz frame rate, seeded per session so
//! two sessions with the same seed replay the identical head path.
//!
//! Poses parameterize the *identity* of every frame in a session's stream —
//! each frame carries the view transform a client at that pose would submit.
//! The executor's cost model is view-independent (scene content, not
//! visibility culling, determines simulated work — see DESIGN.md §11), so
//! poses never perturb rendering cost; they feed the QoS and trace layers
//! and pin per-frame identity for reproducibility.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Head orientation (radians) and position (meters) at one vsync tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pose {
    /// Rotation about the vertical axis (look left/right).
    pub yaw: f64,
    /// Rotation about the lateral axis (look up/down).
    pub pitch: f64,
    /// Rotation about the view axis (head tilt).
    pub roll: f64,
    /// Head position in room space.
    pub position: [f64; 3],
}

impl Pose {
    /// The straight-ahead rest pose at the room origin.
    pub fn identity() -> Self {
        Pose { yaw: 0.0, pitch: 0.0, roll: 0.0, position: [0.0; 3] }
    }

    /// Row-major 3×3 view rotation matrix for this pose (yaw·pitch·roll
    /// order). The serving layer attaches this to every frame as the view
    /// transform the session's client submitted.
    pub fn view_matrix(&self) -> [[f64; 3]; 3] {
        let (sy, cy) = self.yaw.sin_cos();
        let (sp, cp) = self.pitch.sin_cos();
        let (sr, cr) = self.roll.sin_cos();
        // R = Rz(roll) · Rx(pitch) · Ry(yaw), the usual HMD convention.
        [
            [cr * cy + sr * sp * sy, sr * cp, -cr * sy + sr * sp * cy],
            [-sr * cy + cr * sp * sy, cr * cp, sr * sy + cr * sp * cy],
            [cp * sy, -sp, cp * cy],
        ]
    }

    /// Angular distance to `other` in radians (sum of per-axis deltas — a
    /// cheap, monotone proxy adequate for speed accounting).
    pub fn angular_distance(&self, other: &Pose) -> f64 {
        (self.yaw - other.yaw).abs()
            + (self.pitch - other.pitch).abs()
            + (self.roll - other.roll).abs()
    }
}

/// Orientation limits and motion parameters of the walk (defaults tuned to
/// the viewport-pose model's reported statistics at 90 Hz).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoseModel {
    /// Mean-reversion rate toward the rest pose per frame.
    pub reversion: f64,
    /// Per-frame angular noise scale in radians.
    pub jitter: f64,
    /// Hard bound on |yaw| (radians).
    pub yaw_limit: f64,
    /// Hard bound on |pitch| (radians; humans pitch less than they yaw).
    pub pitch_limit: f64,
    /// Hard bound on |roll| (radians).
    pub roll_limit: f64,
    /// Per-frame positional drift scale in meters.
    pub drift: f64,
}

impl Default for PoseModel {
    fn default() -> Self {
        PoseModel {
            reversion: 0.02,
            jitter: 0.035,
            yaw_limit: std::f64::consts::PI,
            pitch_limit: std::f64::consts::FRAC_PI_2,
            roll_limit: 0.5,
            drift: 0.002,
        }
    }
}

/// A deterministic head-pose stream: one [`Pose`] per 90 Hz frame, derived
/// entirely from the session seed.
#[derive(Debug, Clone)]
pub struct PoseTrajectory {
    rng: StdRng,
    model: PoseModel,
    current: Pose,
}

impl PoseTrajectory {
    /// Creates the trajectory for a session seed with the default model.
    pub fn new(seed: u64) -> Self {
        Self::with_model(seed, PoseModel::default())
    }

    /// Creates a trajectory with explicit motion parameters.
    pub fn with_model(seed: u64, model: PoseModel) -> Self {
        PoseTrajectory { rng: StdRng::seed_from_u64(seed), model, current: Pose::identity() }
    }

    /// The pose at the most recent frame.
    pub fn current(&self) -> Pose {
        self.current
    }

    /// Advances one frame and returns the new pose.
    pub fn step(&mut self) -> Pose {
        let m = self.model;
        let mut axis = |v: f64, limit: f64| {
            let noise = self.rng.gen_range(-m.jitter..m.jitter);
            (v - m.reversion * v + noise).clamp(-limit, limit)
        };
        let yaw = axis(self.current.yaw, m.yaw_limit);
        let pitch = axis(self.current.pitch, m.pitch_limit);
        let roll = axis(self.current.roll, m.roll_limit);
        let mut pos = self.current.position;
        for p in &mut pos {
            *p += self.rng.gen_range(-m.drift..m.drift);
        }
        self.current = Pose { yaw, pitch, roll, position: pos };
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_replays_the_same_path() {
        let mut a = PoseTrajectory::new(7);
        let mut b = PoseTrajectory::new(7);
        for _ in 0..256 {
            assert_eq!(a.step(), b.step());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = PoseTrajectory::new(1);
        let mut b = PoseTrajectory::new(2);
        let diverged = (0..32).any(|_| a.step() != b.step());
        assert!(diverged);
    }

    #[test]
    fn orientation_stays_within_human_limits() {
        let m = PoseModel::default();
        let mut t = PoseTrajectory::new(99);
        for _ in 0..10_000 {
            let p = t.step();
            assert!(p.yaw.abs() <= m.yaw_limit);
            assert!(p.pitch.abs() <= m.pitch_limit);
            assert!(p.roll.abs() <= m.roll_limit);
        }
    }

    #[test]
    fn per_frame_angular_speed_is_bounded() {
        // 3 axes × jitter 0.035 rad ≈ 0.105 rad max per 11.1 ms frame —
        // under the ~0.07 rad/frame a 360°/s peak head turn would produce
        // per axis.
        let mut t = PoseTrajectory::new(3);
        let mut prev = t.current();
        for _ in 0..1_000 {
            let next = t.step();
            assert!(next.angular_distance(&prev) <= 3.0 * 0.035 + 1e-12);
            prev = next;
        }
    }

    #[test]
    fn view_matrix_is_orthonormal() {
        let mut t = PoseTrajectory::new(5);
        for _ in 0..10 {
            let m = t.step().view_matrix();
            for (i, row) in m.iter().enumerate() {
                let dot: f64 = row.iter().map(|v| v * v).sum();
                assert!((dot - 1.0).abs() < 1e-9, "row {i} norm {dot}");
            }
            let dot01: f64 = (0..3).map(|k| m[0][k] * m[1][k]).sum();
            assert!(dot01.abs() < 1e-9);
        }
    }

    #[test]
    fn identity_pose_yields_identity_matrix() {
        let m = Pose::identity().view_matrix();
        for (i, row) in m.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((v - want).abs() < 1e-12);
            }
        }
    }
}
