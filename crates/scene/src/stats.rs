//! Scene-level statistics used for characterization (Section 4 of the paper).

use std::collections::HashMap;

use crate::scene::Scene;
use crate::types::TextureId;

/// Aggregate statistics of a scene.
#[derive(Debug, Clone, PartialEq)]
pub struct SceneStats {
    /// Draw-command count.
    pub draws: usize,
    /// Total triangles for one eye.
    pub triangles_per_eye: u64,
    /// Total unique vertices for one eye.
    pub vertices_per_eye: u64,
    /// Texture pool footprint in bytes.
    pub texture_bytes: u64,
    /// Mean number of objects referencing each referenced texture.
    pub mean_texture_users: f64,
    /// Maximum number of objects referencing a single texture.
    pub max_texture_users: u32,
    /// Ratio of the largest object's triangle count to the mean.
    pub size_skew: f64,
}

impl SceneStats {
    /// Computes statistics for a scene.
    pub fn of(scene: &Scene) -> Self {
        let mut users: HashMap<TextureId, u32> = HashMap::new();
        for o in scene.objects() {
            for t in o.textures() {
                *users.entry(t.texture).or_insert(0) += 1;
            }
        }
        let draws = scene.draw_count();
        let triangles_per_eye = scene.total_triangles_per_eye();
        let max_tri = scene.objects().iter().map(|o| o.triangle_count()).max().unwrap_or(0);
        let mean_tri = if draws > 0 { triangles_per_eye as f64 / draws as f64 } else { 0.0 };
        SceneStats {
            draws,
            triangles_per_eye,
            vertices_per_eye: scene.total_vertices_per_eye(),
            texture_bytes: scene.texture_bytes(),
            mean_texture_users: if users.is_empty() {
                0.0
            } else {
                users.values().map(|&v| f64::from(v)).sum::<f64>() / users.len() as f64
            },
            max_texture_users: users.values().copied().max().unwrap_or(0),
            size_skew: if mean_tri > 0.0 { max_tri as f64 / mean_tri } else { 0.0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::BenchmarkSpec;

    #[test]
    fn stats_of_generated_scene() {
        let scene = BenchmarkSpec::new("T", 320, 240, 50, 7).build();
        let st = SceneStats::of(&scene);
        assert_eq!(st.draws, 50);
        assert!(st.triangles_per_eye > 0);
        assert!(st.mean_texture_users >= 1.0);
        assert!(st.size_skew >= 1.0, "largest object at least the mean");
        assert!(st.max_texture_users >= 2, "some texture is shared");
    }
}
