//! Rendering objects.
//!
//! A [`RenderObject`] corresponds to one draw command in the paper's Table 3
//! accounting: a screen-space rectangle tessellated into a triangle grid,
//! bound to one or more textures. Objects carry everything the paper's
//! schedulers look at: triangle counts (load prediction, Eq. 3), texture
//! usage percentages (TSL, Eq. 1), viewports (tile assignment), and optional
//! dependencies (forced batch merging in §5.1).

use crate::geometry::{Rect, ScreenTriangle, Vec2};
use crate::pose::Pose;
use crate::types::{Eye, ObjectId, Resolution, TextureId, Viewport};

/// How much of an object's sampling goes to one texture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TextureUse {
    /// The texture.
    pub texture: TextureId,
    /// Fraction of the object's fragments sampling this texture, in `(0,1]`.
    /// All shares of an object sum to 1. This is the paper's `Pr(t)`.
    pub share: f32,
}

/// A rendering object (one draw command).
#[derive(Debug, Clone, PartialEq)]
pub struct RenderObject {
    id: ObjectId,
    name: String,
    /// Normalized per-eye rect in `[0,1]²` of the canonical (cyclopean) view.
    rect: Rect,
    /// Depth in `(0,1)`; smaller is nearer the viewer.
    depth: f32,
    /// Stereo disparity in *normalized* units: the horizontal shift between
    /// the two eyes' images of this object.
    disparity: f32,
    /// Triangle grid extent: `cols × rows` quads, 2 triangles each.
    grid: (u32, u32),
    textures: Vec<TextureUse>,
    /// Texels per pixel of texture sampling (level-of-detail proxy; higher
    /// values enlarge the texture footprint like anisotropic filtering does).
    uv_scale: f32,
    /// Swap the U/V axes of the texture mapping. Real meshes are textured in
    /// arbitrary orientations; without this, texture rows would always align
    /// with screen rows and horizontal screen partitions would get
    /// unrealistically disjoint texture footprints.
    uv_transpose: bool,
    depends_on: Option<ObjectId>,
}

impl RenderObject {
    /// The object's identifier (also its programmer-defined submission order).
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// Human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Normalized screen rectangle of the canonical view.
    pub fn rect(&self) -> Rect {
        self.rect
    }

    /// Depth in `(0,1)`.
    pub fn depth(&self) -> f32 {
        self.depth
    }

    /// Triangle count of one eye's instance (`cols * rows * 2`).
    pub fn triangle_count(&self) -> u64 {
        u64::from(self.grid.0) * u64::from(self.grid.1) * 2
    }

    /// Unique vertex count of the indexed grid mesh for one eye.
    pub fn vertex_count(&self) -> u64 {
        u64::from(self.grid.0 + 1) * u64::from(self.grid.1 + 1)
    }

    /// Texture usage with shares summing to 1 (the `Pr(t)` of TSL, Eq. 1).
    pub fn textures(&self) -> &[TextureUse] {
        &self.textures
    }

    /// Texels sampled per pixel (anisotropy / level-of-detail proxy).
    pub fn uv_scale(&self) -> f32 {
        self.uv_scale
    }

    /// Whether the texture mapping swaps the U/V axes.
    pub fn uv_transpose(&self) -> bool {
        self.uv_transpose
    }

    /// The object this one must be rendered after, if any.
    pub fn depends_on(&self) -> Option<ObjectId> {
        self.depends_on
    }

    /// Pixel-space viewport of this object's image for `eye` at `res`,
    /// including the stereo disparity shift (left eye shifts left, right eye
    /// right — the `±W/2` shift of the paper's SMP engine, Fig. 5).
    pub fn viewport(&self, res: Resolution, eye: Eye) -> Viewport {
        let eye_w = res.width as f32;
        let eye_h = res.height as f32;
        let shift = eye.disparity_sign() * self.disparity * 0.5 * eye_w * (1.0 - self.depth);
        Viewport::new(
            eye.index() as f32 * eye_w + self.rect.x * eye_w + shift,
            self.rect.y * eye_h,
            self.rect.w * eye_w,
            self.rect.h * eye_h,
        )
    }

    /// Pixel-space bounding rect across *both* eyes at `res` (used by tile
    /// schemes to find which tiles the object overlaps).
    pub fn stereo_bounds(&self, res: Resolution) -> Rect {
        let l = self.viewport(res, Eye::Left);
        let r = self.viewport(res, Eye::Right);
        let x0 = l.x.min(r.x);
        let y0 = l.y.min(r.y);
        let x1 = l.x1().max(r.x1());
        let y1 = l.y1().max(r.y1());
        Rect::new(x0, y0, (x1 - x0).max(0.0), (y1 - y0).max(0.0))
    }

    /// Precomputed reprojection probe of this object's viewport bound at
    /// `res`: everything [`projected_motion`](Self::projected_motion) needs,
    /// detached from the object so callers that test many pose pairs against
    /// many objects (the temporal-reuse hot path) pay the viewport math once.
    pub fn motion_probe(&self, res: Resolution) -> MotionProbe {
        let vp = self.viewport(res, Eye::Left);
        let (x0, y0, x1, y1) =
            (f64::from(vp.x), f64::from(vp.y), f64::from(vp.x1()), f64::from(vp.y1()));
        MotionProbe {
            corners: [[x0, y0], [x1, y0], [x0, y1], [x1, y1]],
            depth: f64::from(self.depth),
            width: f64::from(res.width),
            height: f64::from(res.height),
        }
    }

    /// Projected-bound motion (pixels) of this object between two poses:
    /// the view-matrix delta applied to the object's viewport bound, plus a
    /// depth-scaled positional parallax term. Deterministic f64 — no
    /// randomness, no wall clock — so identical pose pairs always measure
    /// identical motion.
    pub fn projected_motion(&self, res: Resolution, from: &Pose, to: &Pose) -> f64 {
        self.motion_probe(res).motion(from, to)
    }

    /// Emits the screen-space triangles of this object's `eye` instance.
    ///
    /// The grid mesh is deterministic; triangle `k` (0-based, row-major, two
    /// per cell) is assigned a texture by striping the texture shares across
    /// the triangle index range, so an object with `[("stone", 0.75),
    /// ("moss", 0.25)]` dedicates the first ~75% of its triangles to stone.
    pub fn triangles(&self, res: Resolution, eye: Eye) -> Triangles<'_> {
        Triangles { obj: self, vp: self.viewport(res, eye), next: 0, total: self.triangle_count() }
    }

    /// Like [`triangles`](Self::triangles), but starting at triangle index
    /// `start` (clamped to the mesh size). Used by resumable executors.
    pub fn triangles_from(&self, res: Resolution, eye: Eye, start: u64) -> Triangles<'_> {
        let total = self.triangle_count();
        Triangles { obj: self, vp: self.viewport(res, eye), next: start.min(total), total }
    }

    /// Texture used by triangle `k` of `triangle_count()` (striped by share).
    pub fn texture_for_triangle(&self, k: u64) -> TextureId {
        debug_assert!(!self.textures.is_empty());
        let total = self.triangle_count().max(1);
        let frac = (k as f64 + 0.5) / total as f64;
        let mut acc = 0.0f64;
        for tu in &self.textures {
            acc += f64::from(tu.share);
            if frac <= acc {
                return tu.texture;
            }
        }
        self.textures.last().expect("object has at least one texture").texture
    }
}

/// Iterator over an object's screen-space triangles. See
/// [`RenderObject::triangles`].
#[derive(Debug, Clone)]
pub struct Triangles<'a> {
    obj: &'a RenderObject,
    vp: Viewport,
    next: u64,
    total: u64,
}

impl Triangles<'_> {
    /// Repositions the iterator at triangle index `k` (clamped to the mesh
    /// size). Each triangle is a pure function of its index, so strided
    /// consumers can jump between selected indices instead of generating and
    /// discarding the triangles in between.
    pub fn skip_to(&mut self, k: u64) {
        self.next = k.min(self.total);
    }
}

impl Iterator for Triangles<'_> {
    type Item = ScreenTriangle;

    fn next(&mut self) -> Option<ScreenTriangle> {
        if self.next >= self.total {
            return None;
        }
        let k = self.next;
        self.next += 1;
        let (cols, rows) = self.obj.grid;
        let cell = k / 2;
        let upper = k.is_multiple_of(2);
        let cx = (cell % u64::from(cols)) as f32;
        let cy = (cell / u64::from(cols)) as f32;
        let dx = self.vp.width / cols as f32;
        let dy = self.vp.height / rows as f32;
        let x0 = self.vp.x + cx * dx;
        let y0 = self.vp.y + cy * dy;
        // Texel coordinates: tile the texture across the object at uv_scale
        // texels per pixel, with a common origin so objects sharing a texture
        // touch overlapping texel regions (that shared footprint is exactly
        // what TSL batching exploits).
        let s = self.obj.uv_scale;
        let u0 = (cx * dx) * s;
        let v0 = (cy * dy) * s;
        let swap = |p: Vec2| {
            if self.obj.uv_transpose {
                Vec2::new(p.y, p.x)
            } else {
                p
            }
        };
        let (v, uv) = if upper {
            (
                [Vec2::new(x0, y0), Vec2::new(x0 + dx, y0), Vec2::new(x0, y0 + dy)],
                [
                    swap(Vec2::new(u0, v0)),
                    swap(Vec2::new(u0 + dx * s, v0)),
                    swap(Vec2::new(u0, v0 + dy * s)),
                ],
            )
        } else {
            (
                [Vec2::new(x0 + dx, y0), Vec2::new(x0 + dx, y0 + dy), Vec2::new(x0, y0 + dy)],
                [
                    swap(Vec2::new(u0 + dx * s, v0)),
                    swap(Vec2::new(u0 + dx * s, v0 + dy * s)),
                    swap(Vec2::new(u0, v0 + dy * s)),
                ],
            )
        };
        Some(ScreenTriangle { v, uv, z: self.obj.depth, texture: self.obj.texture_for_triangle(k) })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.total - self.next) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Triangles<'_> {}

/// Precomputed reprojection data of one object's viewport bound — see
/// [`RenderObject::motion_probe`]. The probe assumes the canonical 90°
/// symmetric frustum (`tan(fov/2) = 1` on both axes), which is all the
/// motion *metric* needs: it ranks pose deltas, it does not rasterize.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MotionProbe {
    /// Pixel-space corners of the left-eye viewport bound.
    corners: [[f64; 2]; 4],
    /// Object depth in `(0,1)`; nearer objects parallax-shift more.
    depth: f64,
    /// Per-eye viewport width in pixels.
    width: f64,
    /// Per-eye viewport height in pixels.
    height: f64,
}

impl MotionProbe {
    /// Projected-bound motion in pixels between `from` and `to`: the
    /// maximum screen displacement of the bound's corners when their view
    /// rays are carried from the old view basis into the new one, plus a
    /// positional parallax term scaled by `(1 - depth)`. A corner whose
    /// reprojected ray leaves the forward frustum counts as a full-screen
    /// move (the object must be re-rendered, not warped).
    pub fn motion(&self, from: &Pose, to: &Pose) -> f64 {
        if from == to {
            return 0.0;
        }
        let rf = from.view_matrix();
        let rt = to.view_matrix();
        let diag = (self.width * self.width + self.height * self.height).sqrt();
        let mut worst = 0.0f64;
        for &[px, py] in &self.corners {
            // Pixel -> NDC -> view-space ray under the canonical frustum.
            let v = [px / self.width * 2.0 - 1.0, py / self.height * 2.0 - 1.0, 1.0];
            // View matrices map world->view with orthonormal rows, so the
            // world ray is R_from^T · v and the new view ray R_to · world.
            let mut w = [0.0f64; 3];
            for (i, vi) in v.iter().enumerate() {
                for (j, wj) in w.iter_mut().enumerate() {
                    *wj += rf[i][j] * vi;
                }
            }
            let mut n = [0.0f64; 3];
            for (i, ni) in n.iter_mut().enumerate() {
                for (j, wj) in w.iter().enumerate() {
                    *ni += rt[i][j] * wj;
                }
            }
            if n[2] <= 1e-9 {
                return diag;
            }
            let nx = (n[0] / n[2] + 1.0) * 0.5 * self.width;
            let ny = (n[1] / n[2] + 1.0) * 0.5 * self.height;
            let d = ((nx - px) * (nx - px) + (ny - py) * (ny - py)).sqrt();
            worst = worst.max(d);
        }
        let dp = [
            to.position[0] - from.position[0],
            to.position[1] - from.position[1],
            to.position[2] - from.position[2],
        ];
        let shift = (dp[0] * dp[0] + dp[1] * dp[1] + dp[2] * dp[2]).sqrt();
        let parallax = shift * (1.0 - self.depth) * 0.5 * self.width;
        (worst + parallax).min(diag)
    }
}

/// Builder for [`RenderObject`]; obtained from
/// [`SceneBuilder::object`](crate::scene::SceneBuilder::object).
#[derive(Debug)]
pub struct ObjectBuilder {
    pub(crate) id: ObjectId,
    pub(crate) name: String,
    pub(crate) rect: Rect,
    pub(crate) depth: f32,
    pub(crate) disparity: f32,
    pub(crate) grid: (u32, u32),
    pub(crate) textures: Vec<(String, f32)>,
    pub(crate) uv_scale: f32,
    pub(crate) uv_transpose: bool,
    pub(crate) depends_on: Option<ObjectId>,
}

impl ObjectBuilder {
    pub(crate) fn new(id: ObjectId, name: String) -> Self {
        ObjectBuilder {
            id,
            name,
            rect: Rect::new(0.25, 0.25, 0.5, 0.5),
            depth: 0.5,
            disparity: 0.05,
            grid: (4, 4),
            textures: Vec::new(),
            uv_scale: 1.0,
            uv_transpose: false,
            depends_on: None,
        }
    }

    /// Sets the normalized screen rect (`[0,1]²` of one eye's view).
    pub fn rect(&mut self, x: f32, y: f32, w: f32, h: f32) -> &mut Self {
        self.rect = Rect::new(x, y, w, h);
        self
    }

    /// Sets the depth in `(0,1)`.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is outside `(0,1)`.
    pub fn depth(&mut self, depth: f32) -> &mut Self {
        assert!(depth > 0.0 && depth < 1.0, "depth must be in (0,1)");
        self.depth = depth;
        self
    }

    /// Sets the stereo disparity (normalized horizontal eye separation).
    pub fn disparity(&mut self, disparity: f32) -> &mut Self {
        self.disparity = disparity;
        self
    }

    /// Sets the triangle grid (`cols × rows` quads, two triangles each).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn grid(&mut self, cols: u32, rows: u32) -> &mut Self {
        assert!(cols > 0 && rows > 0, "grid must be nonzero");
        self.grid = (cols, rows);
        self
    }

    /// Adds a texture binding by pool name with the given share.
    pub fn texture(&mut self, name: &str, share: f32) -> &mut Self {
        assert!(share > 0.0, "texture share must be positive");
        self.textures.push((name.to_string(), share));
        self
    }

    /// Sets texels sampled per pixel.
    pub fn uv_scale(&mut self, s: f32) -> &mut Self {
        assert!(s > 0.0, "uv_scale must be positive");
        self.uv_scale = s;
        self
    }

    /// Swaps the U/V axes of the texture mapping.
    pub fn uv_transpose(&mut self, t: bool) -> &mut Self {
        self.uv_transpose = t;
        self
    }

    /// Declares a rendering-order dependency on an earlier object.
    pub fn depends_on(&mut self, id: ObjectId) -> &mut Self {
        self.depends_on = Some(id);
        self
    }

    /// Fallible build: `resolve` returns `None` for unknown texture names,
    /// reported as a typed error along with texture-less objects.
    pub(crate) fn try_build(
        self,
        resolve: impl Fn(&str) -> Option<TextureId>,
    ) -> Result<RenderObject, crate::error::SceneError> {
        if self.textures.is_empty() {
            return Err(crate::error::SceneError::ObjectWithoutTexture(self.name));
        }
        let total: f32 = self.textures.iter().map(|(_, s)| s).sum();
        let mut textures = Vec::with_capacity(self.textures.len());
        for (n, s) in &self.textures {
            let texture = resolve(n).ok_or_else(|| crate::error::SceneError::UnknownTexture {
                object: self.name.clone(),
                texture: n.clone(),
            })?;
            textures.push(TextureUse { texture, share: s / total });
        }
        Ok(RenderObject {
            id: self.id,
            name: self.name,
            rect: self.rect,
            depth: self.depth,
            disparity: self.disparity,
            grid: self.grid,
            textures,
            uv_scale: self.uv_scale,
            uv_transpose: self.uv_transpose,
            depends_on: self.depends_on,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj() -> RenderObject {
        let mut b = ObjectBuilder::new(ObjectId(0), "o".into());
        b.rect(0.0, 0.0, 0.5, 0.5).grid(2, 3).texture("a", 3.0).texture("b", 1.0);
        b.try_build(|n| Some(if n == "a" { TextureId(0) } else { TextureId(1) }))
            .expect("test object builds")
    }

    #[test]
    fn counts() {
        let o = obj();
        assert_eq!(o.triangle_count(), 12);
        assert_eq!(o.vertex_count(), 12);
        assert_eq!(o.triangles(Resolution::new(64, 64), Eye::Left).len(), 12);
    }

    #[test]
    fn texture_shares_normalized_and_striped() {
        let o = obj();
        assert!((o.textures()[0].share - 0.75).abs() < 1e-6);
        // First 75% of triangles use texture a, rest texture b.
        assert_eq!(o.texture_for_triangle(0), TextureId(0));
        assert_eq!(o.texture_for_triangle(8), TextureId(0));
        assert_eq!(o.texture_for_triangle(11), TextureId(1));
    }

    #[test]
    fn triangles_tile_the_viewport() {
        let o = obj();
        let res = Resolution::new(128, 128);
        let total_area: f32 = o.triangles(res, Eye::Left).map(|t| t.area()).sum();
        let vp = o.viewport(res, Eye::Left);
        assert!((total_area - vp.area() as f32).abs() < 1.0, "mesh covers its viewport");
    }

    #[test]
    fn eyes_are_disparity_shifted() {
        let o = obj();
        let res = Resolution::new(100, 100);
        let l = o.viewport(res, Eye::Left);
        let r = o.viewport(res, Eye::Right);
        // Right-eye viewport lives in the right half, shifted further right.
        assert!(r.x - 100.0 > l.x, "l={l:?} r={r:?}");
        // Nearer objects (smaller depth) shift more.
        let mut b = ObjectBuilder::new(ObjectId(1), "near".into());
        b.rect(0.0, 0.0, 0.5, 0.5).depth(0.1).disparity(0.05).texture("a", 1.0);
        let near = b.try_build(|_| Some(TextureId(0))).expect("near object builds");
        let near_shift = near.viewport(res, Eye::Right).x - 100.0;
        let far_shift = r.x - 100.0;
        assert!(near_shift > far_shift);
    }

    #[test]
    fn zero_pose_delta_measures_zero_motion() {
        let o = obj();
        let res = Resolution::new(128, 96);
        let mut t = crate::pose::PoseTrajectory::new(11);
        for _ in 0..8 {
            let p = t.step();
            assert_eq!(o.projected_motion(res, &p, &p), 0.0);
        }
    }

    #[test]
    fn larger_rotation_moves_the_bound_further() {
        let o = obj();
        let res = Resolution::new(128, 96);
        let p0 = Pose::identity();
        let small = Pose { yaw: 0.01, ..Pose::identity() };
        let big = Pose { yaw: 0.1, ..Pose::identity() };
        let m_small = o.projected_motion(res, &p0, &small);
        let m_big = o.projected_motion(res, &p0, &big);
        assert!(m_small > 0.0, "any rotation must register motion");
        assert!(m_big > m_small, "10x the yaw delta must move the bound further");
        // ~0.01 rad of yaw at a 64 px half-width is on the order of a pixel.
        assert!(m_small < 5.0, "small delta stays small: {m_small}");
    }

    #[test]
    fn nearer_objects_parallax_more_under_translation() {
        let res = Resolution::new(128, 96);
        let mut near = ObjectBuilder::new(ObjectId(1), "near".into());
        near.rect(0.25, 0.25, 0.5, 0.5).depth(0.1).texture("a", 1.0);
        let near = near.try_build(|_| Some(TextureId(0))).expect("builds");
        let mut far = ObjectBuilder::new(ObjectId(2), "far".into());
        far.rect(0.25, 0.25, 0.5, 0.5).depth(0.9).texture("a", 1.0);
        let far = far.try_build(|_| Some(TextureId(0))).expect("builds");
        let p0 = Pose::identity();
        let moved = Pose { position: [0.05, 0.0, 0.0], ..Pose::identity() };
        let m_near = near.projected_motion(res, &p0, &moved);
        let m_far = far.projected_motion(res, &p0, &moved);
        assert!(m_near > m_far, "near {m_near} must out-parallax far {m_far}");
    }

    #[test]
    fn probe_motion_matches_object_motion_and_is_bounded() {
        let o = obj();
        let res = Resolution::new(128, 96);
        let probe = o.motion_probe(res);
        let mut t = crate::pose::PoseTrajectory::new(3);
        let mut prev = t.current();
        let diag = (128.0f64 * 128.0 + 96.0 * 96.0).sqrt();
        for _ in 0..32 {
            let next = t.step();
            let m = o.projected_motion(res, &prev, &next);
            assert_eq!(m, probe.motion(&prev, &next), "probe must equal the object metric");
            assert!((0.0..=diag).contains(&m), "motion {m} outside [0, diag]");
            prev = next;
        }
    }

    #[test]
    fn stereo_bounds_cover_both_eyes() {
        let o = obj();
        let res = Resolution::new(100, 100);
        let b = o.stereo_bounds(res);
        let l = o.viewport(res, Eye::Left);
        let r = o.viewport(res, Eye::Right);
        assert!(b.x <= l.x && b.x1() >= r.x1());
    }
}
