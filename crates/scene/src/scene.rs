//! Scenes: a texture pool plus an ordered list of rendering objects.

use std::collections::HashMap;

use crate::object::{ObjectBuilder, RenderObject};
use crate::texture::TextureDesc;
use crate::types::{ObjectId, Resolution, TextureId};

/// A complete frame description: what the application submits per frame.
///
/// Object order is the programmer-defined submission order the paper's
/// middleware must respect when objects carry dependencies.
#[derive(Debug, Clone)]
pub struct Scene {
    name: String,
    resolution: Resolution,
    textures: Vec<TextureDesc>,
    objects: Vec<RenderObject>,
}

impl Scene {
    /// The scene's name (benchmark abbreviation for generated workloads).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Per-eye rendering resolution.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// The texture pool.
    pub fn textures(&self) -> &[TextureDesc] {
        &self.textures
    }

    /// Looks up a texture by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is not in this scene's pool.
    pub fn texture(&self, id: TextureId) -> &TextureDesc {
        &self.textures[id.0 as usize]
    }

    /// The ordered object list (submission order).
    pub fn objects(&self) -> &[RenderObject] {
        &self.objects
    }

    /// Looks up an object by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is not in this scene.
    pub fn object(&self, id: ObjectId) -> &RenderObject {
        &self.objects[id.0 as usize]
    }

    /// Total triangles across all objects for a single eye.
    pub fn total_triangles_per_eye(&self) -> u64 {
        self.objects.iter().map(|o| o.triangle_count()).sum()
    }

    /// Total unique vertices across all objects for a single eye.
    pub fn total_vertices_per_eye(&self) -> u64 {
        self.objects.iter().map(|o| o.vertex_count()).sum()
    }

    /// Total texture pool footprint in bytes.
    pub fn texture_bytes(&self) -> u64 {
        self.textures.iter().map(|t| t.size_bytes()).sum()
    }

    /// Number of draw commands (== objects) in this scene; the Table 3
    /// `#Draw` column.
    pub fn draw_count(&self) -> usize {
        self.objects.len()
    }

    /// One reprojection probe per object at this scene's resolution, in
    /// submission order — the precomputed form of
    /// [`RenderObject::projected_motion`] the temporal-reuse layer keys on.
    pub fn motion_probes(&self) -> Vec<crate::object::MotionProbe> {
        self.objects.iter().map(|o| o.motion_probe(self.resolution)).collect()
    }

    /// Projected-bound motion (pixels) of every object between two poses,
    /// in submission order.
    pub fn projected_motions(&self, from: &crate::pose::Pose, to: &crate::pose::Pose) -> Vec<f64> {
        self.objects.iter().map(|o| o.projected_motion(self.resolution, from, to)).collect()
    }
}

/// Builder for [`Scene`]. See the [crate docs](crate) for an example.
#[derive(Debug)]
pub struct SceneBuilder {
    name: String,
    resolution: Resolution,
    textures: Vec<TextureDesc>,
    by_name: HashMap<String, TextureId>,
    objects: Vec<ObjectBuilder>,
}

impl SceneBuilder {
    /// Starts a scene at the given per-eye resolution.
    pub fn new(width: u32, height: u32) -> Self {
        SceneBuilder {
            name: "custom".to_string(),
            resolution: Resolution::new(width, height),
            textures: Vec::new(),
            by_name: HashMap::new(),
            objects: Vec::new(),
        }
    }

    /// Names the scene.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Adds a texture to the pool.
    ///
    /// # Panics
    ///
    /// Panics if a texture with this name already exists, or extents are not
    /// powers of two.
    pub fn texture(mut self, name: &str, width: u32, height: u32) -> Self {
        match self.add_texture(name, width, height) {
            Ok(()) => self,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`texture`](Self::texture): reports duplicate
    /// names and bad extents as typed errors instead of panicking.
    pub fn try_texture(
        mut self,
        name: &str,
        width: u32,
        height: u32,
    ) -> Result<Self, crate::error::SceneError> {
        self.add_texture(name, width, height)?;
        Ok(self)
    }

    fn add_texture(
        &mut self,
        name: &str,
        width: u32,
        height: u32,
    ) -> Result<(), crate::error::SceneError> {
        let id = TextureId(self.textures.len() as u32);
        let desc = TextureDesc::try_new(id, name, width, height)?;
        if self.by_name.insert(name.to_string(), id).is_some() {
            return Err(crate::error::SceneError::DuplicateTexture(name.to_string()));
        }
        self.textures.push(desc);
        Ok(())
    }

    /// Adds an object, configured through the closure.
    pub fn object(mut self, name: &str, f: impl FnOnce(&mut ObjectBuilder)) -> Self {
        let id = ObjectId(self.objects.len() as u32);
        let mut b = ObjectBuilder::new(id, name.to_string());
        f(&mut b);
        self.objects.push(b);
        self
    }

    /// Finalizes the scene.
    ///
    /// # Panics
    ///
    /// Panics if any object references an unknown texture name, has no
    /// texture, or depends on a later/unknown object.
    pub fn build(self) -> Scene {
        match self.try_build() {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`build`](Self::build): reports unknown texture
    /// references, texture-less objects, and forward dependencies as typed
    /// errors instead of panicking.
    pub fn try_build(self) -> Result<Scene, crate::error::SceneError> {
        let by_name = self.by_name;
        let objects: Vec<RenderObject> = self
            .objects
            .into_iter()
            .map(|b| b.try_build(|n| by_name.get(n).copied()))
            .collect::<Result<_, _>>()?;
        for o in &objects {
            if let Some(dep) = o.depends_on() {
                if dep >= o.id() {
                    return Err(crate::error::SceneError::ForwardDependency {
                        object: o.id().0,
                        depends_on: dep.0,
                    });
                }
            }
        }
        Ok(Scene { name: self.name, resolution: self.resolution, textures: self.textures, objects })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scene() -> Scene {
        SceneBuilder::new(320, 240)
            .name("test")
            .texture("stone", 256, 256)
            .texture("cloth", 128, 128)
            .object("pillar1", |o| {
                o.rect(0.0, 0.0, 0.3, 0.9).grid(2, 8).texture("stone", 1.0);
            })
            .object("flag", |o| {
                o.rect(0.4, 0.1, 0.2, 0.2).grid(2, 2).texture("cloth", 1.0);
            })
            .object("pillar2", |o| {
                o.rect(0.7, 0.0, 0.3, 0.9).grid(2, 8).texture("stone", 1.0);
            })
            .build()
    }

    #[test]
    fn totals() {
        let s = scene();
        assert_eq!(s.draw_count(), 3);
        assert_eq!(s.total_triangles_per_eye(), 32 + 8 + 32);
        assert_eq!(s.texture_bytes(), 256 * 256 * 4 + 128 * 128 * 4);
        assert_eq!(s.texture(TextureId(1)).name(), "cloth");
        assert_eq!(s.object(ObjectId(2)).name(), "pillar2");
    }

    #[test]
    #[should_panic(expected = "unknown texture")]
    fn unknown_texture_panics() {
        let _ = SceneBuilder::new(64, 64)
            .object("o", |o| {
                o.texture("missing", 1.0);
            })
            .build();
    }

    #[test]
    #[should_panic(expected = "duplicate texture")]
    fn duplicate_texture_panics() {
        let _ = SceneBuilder::new(64, 64).texture("a", 64, 64).texture("a", 64, 64);
    }

    #[test]
    fn try_build_reports_typed_errors() {
        use crate::error::SceneError;
        let err = SceneBuilder::new(64, 64)
            .object("o", |o| {
                o.texture("missing", 1.0);
            })
            .try_build()
            .unwrap_err();
        assert!(matches!(err, SceneError::UnknownTexture { .. }));

        let err = SceneBuilder::new(64, 64).object("bare", |_| {}).try_build().unwrap_err();
        assert_eq!(err, SceneError::ObjectWithoutTexture("bare".to_string()));

        let err = SceneBuilder::new(64, 64)
            .texture("t", 64, 64)
            .object("a", |o| {
                o.texture("t", 1.0).depends_on(ObjectId(1));
            })
            .try_build()
            .unwrap_err();
        assert_eq!(err, SceneError::ForwardDependency { object: 0, depends_on: 1 });
    }

    #[test]
    fn try_texture_reports_typed_errors() {
        use crate::error::SceneError;
        let err =
            SceneBuilder::new(64, 64).texture("a", 64, 64).try_texture("a", 64, 64).unwrap_err();
        assert_eq!(err, SceneError::DuplicateTexture("a".to_string()));
        let err = SceneBuilder::new(64, 64).try_texture("np2", 48, 64).unwrap_err();
        assert!(matches!(err, SceneError::BadTextureExtent { .. }));
    }

    #[test]
    fn dependencies_must_point_backwards() {
        let s = SceneBuilder::new(64, 64)
            .texture("t", 64, 64)
            .object("a", |o| {
                o.texture("t", 1.0);
            })
            .object("b", |o| {
                o.texture("t", 1.0).depends_on(ObjectId(0));
            })
            .build();
        assert_eq!(s.object(ObjectId(1)).depends_on(), Some(ObjectId(0)));
    }
}
