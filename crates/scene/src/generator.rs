//! Deterministic synthetic workload generation.
//!
//! The paper profiles rendering traces of five commercial games (Table 3) to
//! obtain per-object graphical properties (viewports, triangle counts,
//! texture data). Those traces cannot be redistributed, so each benchmark is
//! replaced by a seeded generator whose output matches the properties the
//! experiments actually depend on; see the crate docs and `DESIGN.md` for the
//! substitution argument.

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::scene::{Scene, SceneBuilder};
use crate::types::{ObjectId, Resolution};

/// Statistical "personality" of a benchmark: the knobs that differentiate a
/// dark corridor shooter from a racing game at the architecture level.
#[derive(Debug, Clone, PartialEq)]
pub struct Personality {
    /// Number of textures in the pool.
    pub texture_pool: u32,
    /// Zipf exponent of texture popularity; higher means a few hero textures
    /// ("stone") are shared by many objects.
    pub zipf_s: f64,
    /// Target total object coverage per eye in screens (≥1 means overdraw).
    pub overdraw: f64,
    /// Target total triangles per eye across all objects.
    pub tri_total: u64,
    /// Probability that an object binds each additional texture beyond its
    /// primary (objects bind 1 + Binomial(3, p) textures: diffuse plus
    /// normal/specular/lightmap-style secondaries).
    pub secondary_tex_prob: f64,
    /// Log-normal σ of object areas; higher means heavier load imbalance.
    pub size_sigma: f64,
    /// Probability that an object declares a dependency on an earlier one.
    pub dep_prob: f64,
    /// Range of texels sampled per pixel.
    pub uv_scale: (f32, f32),
    /// Normalized stereo disparity scale.
    pub disparity: f32,
    /// Texture extents are `2^k` with `k` drawn from this inclusive range.
    pub tex_log2: (u32, u32),
}

impl Default for Personality {
    fn default() -> Self {
        Personality {
            texture_pool: 64,
            zipf_s: 1.1,
            overdraw: 2.2,
            tri_total: 120_000,
            secondary_tex_prob: 0.35,
            size_sigma: 1.1,
            dep_prob: 0.02,
            uv_scale: (0.5, 2.0),
            disparity: 0.06,
            tex_log2: (7, 10),
        }
    }
}

/// A generatable benchmark: Table 3 row plus a personality and seed.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkSpec {
    /// Abbreviated name, e.g. `"HL2-1280"`.
    pub name: String,
    /// Per-eye rendering resolution.
    pub resolution: Resolution,
    /// Draw-command count (Table 3 `#Draw`).
    pub draws: u32,
    /// RNG seed; the same spec always generates the same scene.
    pub seed: u64,
    /// Statistical personality.
    pub personality: Personality,
}

impl BenchmarkSpec {
    /// Creates a spec with the default personality.
    pub fn new(name: impl Into<String>, width: u32, height: u32, draws: u32, seed: u64) -> Self {
        BenchmarkSpec {
            name: name.into(),
            resolution: Resolution::new(width, height),
            draws,
            seed,
            personality: Personality::default(),
        }
    }

    /// Returns a proportionally smaller copy (fewer draws, fewer triangles,
    /// lower resolution) for fast tests. `factor` in `(0,1]` scales draw
    /// count and linear resolution; triangle totals scale quadratically.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is outside `(0, 1]`.
    pub fn scaled(&self, factor: f64) -> BenchmarkSpec {
        match self.try_scaled(factor) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`scaled`](Self::scaled): reports an out-of-range
    /// factor as a typed error instead of panicking.
    pub fn try_scaled(&self, factor: f64) -> Result<BenchmarkSpec, crate::error::SceneError> {
        if !factor.is_finite() || factor <= 0.0 || factor > 1.0 {
            return Err(crate::error::SceneError::BadScaleFactor(factor));
        }
        let mut s = self.clone();
        s.name = format!("{}@{factor}", self.name);
        s.resolution = Resolution::new(
            ((f64::from(self.resolution.width) * factor).round() as u32).max(32),
            ((f64::from(self.resolution.height) * factor).round() as u32).max(32),
        );
        s.draws = ((f64::from(self.draws) * factor).round() as u32).max(4);
        s.personality.tri_total =
            ((self.personality.tri_total as f64 * factor * factor) as u64).max(64);
        s.personality.texture_pool =
            ((f64::from(self.personality.texture_pool) * factor).round() as u32).max(4);
        Ok(s)
    }

    /// Generates the scene.
    pub fn build(&self) -> Scene {
        let p = &self.personality;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut b = SceneBuilder::new(self.resolution.width, self.resolution.height)
            .name(self.name.clone());

        // Texture pool: sizes skewed toward the small end, a few heroes.
        let mut tex_names = Vec::with_capacity(p.texture_pool as usize);
        for i in 0..p.texture_pool {
            let lw = rng.gen_range(p.tex_log2.0..=p.tex_log2.1);
            let lh = rng.gen_range(p.tex_log2.0..=p.tex_log2.1);
            let name = format!("tex{i}");
            b = b.texture(&name, 1 << lw, 1 << lh);
            tex_names.push(name);
        }

        // Zipf popularity over the pool.
        let zipf = Zipf::new(p.texture_pool as usize, p.zipf_s);

        // Object areas: log-normal, rescaled so the sum hits `overdraw`.
        let log_normal = LogNormal { mu: 0.0, sigma: p.size_sigma };
        let mut areas: Vec<f64> = (0..self.draws).map(|_| log_normal.sample(&mut rng)).collect();
        let sum: f64 = areas.iter().sum();
        for a in &mut areas {
            *a *= p.overdraw / sum;
        }

        // Triangle budgets: proportional to area with multiplicative noise.
        let mut tris: Vec<f64> = areas.iter().map(|a| a * rng.gen_range(0.5..2.0)).collect();
        let tsum: f64 = tris.iter().sum();
        for t in &mut tris {
            *t = (*t * p.tri_total as f64 / tsum).max(2.0);
        }

        for i in 0..self.draws as usize {
            let area = areas[i].min(0.12); // clamp pathological giants
            let aspect = rng.gen_range(0.4..2.5f64);
            let w = (area * aspect).sqrt().min(1.0);
            let h = (area / aspect).sqrt().min(1.0);
            let x = rng.gen_range(0.0..(1.0 - w as f32).max(1e-3));
            // Game content concentrates around the vertical mid-band of the
            // screen (floors/skies are sparse): triangular distribution.
            let y_span = (1.0 - h as f32).max(1e-3);
            let y = {
                let t =
                    0.5 + 0.35 * (rng.gen_range(0.0..1.0f32) + rng.gen_range(0.0..1.0f32) - 1.0);
                t * y_span
            };
            let depth = rng.gen_range(0.05..0.95f32);
            let quads = (tris[i] / 2.0).max(1.0);
            let cols = ((quads * aspect).sqrt().round() as u32).max(1);
            let rows = ((quads / aspect).sqrt().round() as u32).max(1);
            let primary = zipf.sample(&mut rng);
            let mut bindings: Vec<(usize, f32)> = vec![(primary, 1.0)];
            for _ in 0..3 {
                if rng.gen_bool(p.secondary_tex_prob) {
                    let t = zipf.sample(&mut rng);
                    let share = rng.gen_range(0.15..0.5f32);
                    if !bindings.iter().any(|&(b, _)| b == t) {
                        bindings.push((t, share));
                    }
                }
            }
            let uv = rng.gen_range(p.uv_scale.0..p.uv_scale.1);
            let transpose = rng.gen_bool(0.5);
            let dep = if i > 0 && rng.gen_bool(p.dep_prob) {
                Some(ObjectId(rng.gen_range(0..i as u32)))
            } else {
                None
            };
            let disparity = p.disparity;
            let named: Vec<(String, f32)> =
                bindings.iter().map(|&(t, sh)| (tex_names[t].clone(), sh)).collect();
            b = b.object(&format!("draw{i}"), move |o| {
                o.rect(x, y, w as f32, h as f32)
                    .depth(depth)
                    .disparity(disparity)
                    .grid(cols, rows)
                    .uv_scale(uv)
                    .uv_transpose(transpose);
                for (name, share) in &named {
                    o.texture(name, *share);
                }
                if let Some(d) = dep {
                    o.depends_on(d);
                }
            });
        }
        b.build()
    }
}

/// Zipf sampler over ranks `0..n` with exponent `s`.
#[derive(Debug, Clone)]
struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Self {
        assert!(n > 0);
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cumulative.push(acc);
        }
        Zipf { cumulative }
    }

    fn sample(&self, rng: &mut impl Rng) -> usize {
        let total = *self.cumulative.last().expect("nonempty");
        let x = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c < x).min(self.cumulative.len() - 1)
    }
}

/// Log-normal sampler built from two uniform draws (Box–Muller), avoiding a
/// dependency on `rand_distr`.
#[derive(Debug, Clone, Copy)]
struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> BenchmarkSpec {
        BenchmarkSpec::new("T", 320, 240, 64, 42)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = spec().build();
        let b = spec().build();
        assert_eq!(a.objects(), b.objects());
        assert_eq!(a.textures(), b.textures());
    }

    #[test]
    fn different_seeds_differ() {
        let a = spec().build();
        let mut s2 = spec();
        s2.seed = 43;
        let b = s2.build();
        assert_ne!(a.objects(), b.objects());
    }

    #[test]
    fn draw_count_matches_spec() {
        assert_eq!(spec().build().draw_count(), 64);
    }

    #[test]
    fn triangle_total_near_target() {
        let s = spec();
        let scene = s.build();
        let total = scene.total_triangles_per_eye() as f64;
        let target = s.personality.tri_total as f64;
        assert!(total > target * 0.5 && total < target * 2.0, "total {total} vs target {target}");
    }

    #[test]
    fn coverage_near_overdraw_target() {
        let s = spec();
        let scene = s.build();
        let coverage: f64 = scene.objects().iter().map(|o| o.rect().area()).sum();
        assert!(
            coverage > s.personality.overdraw * 0.5 && coverage < s.personality.overdraw * 1.6,
            "coverage {coverage}"
        );
    }

    #[test]
    fn textures_are_shared_across_objects() {
        let scene = spec().build();
        let mut users = vec![0u32; scene.textures().len()];
        for o in scene.objects() {
            for t in o.textures() {
                users[t.texture.0 as usize] += 1;
            }
        }
        let max_users = *users.iter().max().unwrap();
        assert!(max_users >= 4, "hero texture shared by {max_users} objects");
    }

    #[test]
    fn scaled_spec_shrinks() {
        let s = spec().scaled(0.5);
        assert_eq!(s.resolution.width, 160);
        assert_eq!(s.draws, 32);
        assert!(s.personality.tri_total < spec().personality.tri_total);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scale_out_of_range_panics() {
        let _ = spec().scaled(1.5);
    }

    #[test]
    fn try_scaled_reports_typed_errors() {
        use crate::error::SceneError;
        assert_eq!(spec().try_scaled(0.0).unwrap_err(), SceneError::BadScaleFactor(0.0));
        assert!(spec().try_scaled(f64::NAN).is_err());
        assert!(spec().try_scaled(0.5).is_ok());
    }

    #[test]
    fn objects_bind_one_to_four_textures() {
        let scene = spec().build();
        let mut multi = 0;
        for o in scene.objects() {
            let n = o.textures().len();
            assert!((1..=4).contains(&n), "object binds {n} textures");
            let sum: f32 = o.textures().iter().map(|t| t.share).sum();
            assert!((sum - 1.0).abs() < 1e-5, "shares sum to {sum}");
            if n > 1 {
                multi += 1;
            }
        }
        assert!(multi > 0, "some objects bind secondaries");
    }

    #[test]
    fn content_concentrates_vertically() {
        let scene = spec().build();
        // Centers cluster around the vertical middle (triangular placement).
        let centers: Vec<f32> =
            scene.objects().iter().map(|o| o.rect().y + o.rect().h / 2.0).collect();
        let mid = centers.iter().filter(|&&c| (0.25..0.75).contains(&c)).count();
        assert!(
            mid * 2 > centers.len(),
            "most object centers in the middle band ({mid}/{})",
            centers.len()
        );
    }

    #[test]
    fn uv_transpose_is_mixed() {
        let scene = spec().build();
        let transposed = scene.objects().iter().filter(|o| o.uv_transpose()).count();
        assert!(transposed > 0 && transposed < scene.objects().len());
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let z = Zipf::new(16, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 16];
        for _ in 0..4000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[8] && counts[0] > counts[15]);
    }
}
