//! Minimal screen-space geometry: vectors, rectangles, and triangles.
//!
//! The simulator rasterizes real screen-space triangles (the paper's
//! experiments hinge on fragment volume, overlap and texture footprints, all
//! of which derive from geometry), but we deliberately stay in 2.5D screen
//! space: objects carry a depth and a screen rectangle rather than a full 3D
//! transform. The geometry *stage cost* (vertex shading etc.) is modeled in
//! `oovr-gpu` from triangle/vertex counts.

use crate::types::TextureId;

/// A 2D vector / point in pixels.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
}

impl Vec2 {
    /// Creates a vector.
    pub fn new(x: f32, y: f32) -> Self {
        Vec2 { x, y }
    }
}

/// An axis-aligned rectangle in normalized eye coordinates (`[0,1]²`) or in
/// pixels, depending on context.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Left edge.
    pub x: f32,
    /// Top edge.
    pub y: f32,
    /// Width (non-negative).
    pub w: f32,
    /// Height (non-negative).
    pub h: f32,
}

impl Rect {
    /// Creates a rectangle.
    ///
    /// # Panics
    ///
    /// Panics if `w` or `h` is negative.
    pub fn new(x: f32, y: f32, w: f32, h: f32) -> Self {
        assert!(w >= 0.0 && h >= 0.0, "rect extent must be non-negative");
        Rect { x, y, w, h }
    }

    /// Right edge.
    pub fn x1(&self) -> f32 {
        self.x + self.w
    }

    /// Bottom edge.
    pub fn y1(&self) -> f32 {
        self.y + self.h
    }

    /// Area.
    pub fn area(&self) -> f64 {
        f64::from(self.w) * f64::from(self.h)
    }

    /// Intersection with another rect, or `None` if disjoint.
    pub fn intersect(&self, other: &Rect) -> Option<Rect> {
        let x0 = self.x.max(other.x);
        let y0 = self.y.max(other.y);
        let x1 = self.x1().min(other.x1());
        let y1 = self.y1().min(other.y1());
        if x1 > x0 && y1 > y0 {
            Some(Rect::new(x0, y0, x1 - x0, y1 - y0))
        } else {
            None
        }
    }

    /// Whether the rectangles overlap with positive area.
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.intersect(other).is_some()
    }
}

/// A screen-space triangle ready for rasterization.
///
/// Vertices are in stereo-frame pixel coordinates. `uv` are texel
/// coordinates into `texture`; `z` is the (constant-per-object in our model)
/// depth used for the Z test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScreenTriangle {
    /// The three vertices in pixels.
    pub v: [Vec2; 3],
    /// Texel coordinates at each vertex.
    pub uv: [Vec2; 3],
    /// Depth in `[0,1)`; smaller is nearer.
    pub z: f32,
    /// Texture sampled by this triangle's fragments.
    pub texture: TextureId,
}

impl ScreenTriangle {
    /// Twice the signed area of the triangle (negative when wound clockwise).
    pub fn double_area(&self) -> f32 {
        let [a, b, c] = self.v;
        (b.x - a.x) * (c.y - a.y) - (c.x - a.x) * (b.y - a.y)
    }

    /// Absolute area in pixels².
    pub fn area(&self) -> f32 {
        self.double_area().abs() * 0.5
    }

    /// Axis-aligned pixel bounding box `(x0, y0, x1, y1)`, inclusive of x0/y0
    /// and exclusive of x1/y1, clamped to the given frame extent.
    pub fn bounds_clamped(&self, frame_w: u32, frame_h: u32) -> (u32, u32, u32, u32) {
        let min_x = self.v.iter().map(|p| p.x).fold(f32::INFINITY, f32::min);
        let min_y = self.v.iter().map(|p| p.y).fold(f32::INFINITY, f32::min);
        let max_x = self.v.iter().map(|p| p.x).fold(f32::NEG_INFINITY, f32::max);
        let max_y = self.v.iter().map(|p| p.y).fold(f32::NEG_INFINITY, f32::max);
        let x0 = min_x.floor().max(0.0) as u32;
        let y0 = min_y.floor().max(0.0) as u32;
        let x1 = (max_x.ceil().max(0.0) as u32).min(frame_w);
        let y1 = (max_y.ceil().max(0.0) as u32).min(frame_h);
        (x0.min(frame_w), y0.min(frame_h), x1, y1)
    }

    /// Barycentric-style coverage test for pixel center `(px + 0.5, py + 0.5)`.
    ///
    /// Returns interpolated UV when covered. Sample points carry a tiny
    /// deterministic offset so pixel centers never lie exactly on shared
    /// mesh edges: adjacent triangles then cover each pixel exactly once,
    /// like hardware top-left fill rules guarantee.
    pub fn sample(&self, px: u32, py: u32) -> Option<Vec2> {
        self.sampler().sample(px, py)
    }

    /// Per-triangle sampling state for a rasterization loop: the double
    /// area, its degeneracy test, and its winding sign are invariant across
    /// every pixel of the triangle, so callers probing many pixels hoist
    /// them here once. [`TriSampler::sample`] performs bit-for-bit the same
    /// arithmetic as [`sample`](Self::sample).
    pub fn sampler(&self) -> TriSampler<'_> {
        let d = self.double_area();
        TriSampler { tri: self, d, degenerate: d.abs() < 1e-12, ccw: d > 0.0 }
    }
}

/// Hoisted per-triangle state for repeated [`ScreenTriangle::sample`]
/// queries; see [`ScreenTriangle::sampler`].
#[derive(Debug, Clone, Copy)]
pub struct TriSampler<'a> {
    tri: &'a ScreenTriangle,
    d: f32,
    degenerate: bool,
    ccw: bool,
}

impl TriSampler<'_> {
    /// Whether the triangle is degenerate (`|2A| < 1e-12`). Every
    /// [`sample`](Self::sample) of a degenerate triangle returns `None`, so
    /// rasterizers may skip its pixels wholesale.
    pub fn is_degenerate(&self) -> bool {
        self.degenerate
    }

    /// Winding: `true` when counter-clockwise (`2A > 0`).
    pub fn is_ccw(&self) -> bool {
        self.ccw
    }

    /// UV for a pixel the caller has *proven* covered (e.g. a trivially
    /// accepted raster tile): performs bit-for-bit the arithmetic of the
    /// `Some` arm of [`sample`](Self::sample) while skipping the edge-sign
    /// and `w2` tests that proof already decided. Debug builds assert the
    /// coverage claim.
    #[inline]
    pub fn sample_covered(&self, px: u32, py: u32) -> Vec2 {
        debug_assert!(
            self.sample(px, py).is_some(),
            "sample_covered on uncovered pixel ({px},{py})"
        );
        let p = Vec2::new(px as f32 + 0.5 + 1.0 / 64.0, py as f32 + 0.5 + 1.0 / 128.0);
        let [a, b, c] = self.tri.v;
        let n0 = (b.x - p.x) * (c.y - p.y) - (c.x - p.x) * (b.y - p.y);
        let n1 = (c.x - p.x) * (a.y - p.y) - (a.x - p.x) * (c.y - p.y);
        let w0 = n0 / self.d;
        let w1 = n1 / self.d;
        let w2 = 1.0 - w0 - w1;
        Vec2::new(
            w0 * self.tri.uv[0].x + w1 * self.tri.uv[1].x + w2 * self.tri.uv[2].x,
            w0 * self.tri.uv[0].y + w1 * self.tri.uv[1].y + w2 * self.tri.uv[2].y,
        )
    }

    /// Coverage/UV test for pixel `(px, py)`; identical results to
    /// [`ScreenTriangle::sample`].
    #[inline]
    pub fn sample(&self, px: u32, py: u32) -> Option<Vec2> {
        if self.degenerate {
            return None;
        }
        let p = Vec2::new(px as f32 + 0.5 + 1.0 / 64.0, py as f32 + 0.5 + 1.0 / 128.0);
        let [a, b, c] = self.tri.v;
        let n0 = (b.x - p.x) * (c.y - p.y) - (c.x - p.x) * (b.y - p.y);
        let n1 = (c.x - p.x) * (a.y - p.y) - (a.x - p.x) * (c.y - p.y);
        // `w_i = n_i / d` and IEEE division preserves sign (±0 compares equal
        // to 0), so `w_i >= 0` can be decided from the numerator signs alone —
        // outside pixels skip both divisions in this per-pixel hot path.
        let edges_ok = if self.ccw { n0 >= 0.0 && n1 >= 0.0 } else { n0 <= 0.0 && n1 <= 0.0 };
        if !edges_ok {
            return None;
        }
        let w0 = n0 / self.d;
        let w1 = n1 / self.d;
        let w2 = 1.0 - w0 - w1;
        if w2 >= 0.0 {
            let uv = Vec2::new(
                w0 * self.tri.uv[0].x + w1 * self.tri.uv[1].x + w2 * self.tri.uv[2].x,
                w0 * self.tri.uv[0].y + w1 * self.tri.uv[1].y + w2 * self.tri.uv[2].y,
            );
            Some(uv)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri(v: [(f32, f32); 3]) -> ScreenTriangle {
        ScreenTriangle {
            v: [Vec2::new(v[0].0, v[0].1), Vec2::new(v[1].0, v[1].1), Vec2::new(v[2].0, v[2].1)],
            uv: [Vec2::default(); 3],
            z: 0.5,
            texture: TextureId(0),
        }
    }

    #[test]
    fn triangle_area() {
        let t = tri([(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)]);
        assert_eq!(t.area(), 50.0);
    }

    #[test]
    fn rect_intersection() {
        let a = Rect::new(0.0, 0.0, 10.0, 10.0);
        let b = Rect::new(5.0, 5.0, 10.0, 10.0);
        let i = a.intersect(&b).unwrap();
        assert_eq!((i.x, i.y, i.w, i.h), (5.0, 5.0, 5.0, 5.0));
        let c = Rect::new(20.0, 20.0, 1.0, 1.0);
        assert!(a.intersect(&c).is_none());
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn sample_inside_and_outside() {
        let t = tri([(0.0, 0.0), (8.0, 0.0), (0.0, 8.0)]);
        assert!(t.sample(1, 1).is_some());
        assert!(t.sample(7, 7).is_none());
    }

    #[test]
    fn bounds_clamping() {
        let t = tri([(-5.0, -5.0), (100.0, 0.0), (0.0, 100.0)]);
        let (x0, y0, x1, y1) = t.bounds_clamped(64, 64);
        assert_eq!((x0, y0, x1, y1), (0, 0, 64, 64));
    }

    #[test]
    fn degenerate_triangle_covers_nothing() {
        let t = tri([(0.0, 0.0), (10.0, 10.0), (20.0, 20.0)]);
        assert!(t.sample(5, 5).is_none());
        assert_eq!(t.area(), 0.0);
    }

    #[test]
    fn uv_interpolation_matches_corners() {
        let mut t = tri([(0.0, 0.0), (16.0, 0.0), (0.0, 16.0)]);
        t.uv = [Vec2::new(0.0, 0.0), Vec2::new(64.0, 0.0), Vec2::new(0.0, 64.0)];
        let uv = t.sample(0, 0).expect("corner pixel covered");
        assert!(uv.x < 8.0 && uv.y < 8.0, "near-origin pixel maps near uv origin: {uv:?}");
    }
}
