//! Fundamental identifier and screen-space types shared across the workspace.

use std::fmt;

/// Identifier of a rendering object (one draw command in the Table 3 sense).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u32);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// Identifier of a texture in the scene's texture pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TextureId(pub u32);

impl fmt::Display for TextureId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tex{}", self.0)
    }
}

/// Which eye a stereo view belongs to.
///
/// VR stereo rendering produces a pair of frames (Fig. 1 of the paper); most
/// scheduling decisions in the baselines treat the two eyes' instances of an
/// object as independent work, which is exactly the redundancy OO-VR removes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Eye {
    /// Left eye view.
    Left,
    /// Right eye view.
    Right,
}

impl Eye {
    /// Both eyes, in canonical (left, right) order.
    pub const BOTH: [Eye; 2] = [Eye::Left, Eye::Right];

    /// Index of the eye: 0 for left, 1 for right.
    pub fn index(self) -> usize {
        match self {
            Eye::Left => 0,
            Eye::Right => 1,
        }
    }

    /// Sign of the stereo disparity shift applied to this eye's projection
    /// (the SMP engine shifts the viewport by ±W/2, §3 of the paper).
    pub fn disparity_sign(self) -> f32 {
        match self {
            Eye::Left => -1.0,
            Eye::Right => 1.0,
        }
    }
}

impl fmt::Display for Eye {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Eye::Left => write!(f, "L"),
            Eye::Right => write!(f, "R"),
        }
    }
}

/// Per-eye rendering resolution in pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Resolution {
    /// Horizontal pixels per eye.
    pub width: u32,
    /// Vertical pixels per eye.
    pub height: u32,
}

impl Resolution {
    /// Creates a resolution.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "resolution dimensions must be nonzero");
        Resolution { width, height }
    }

    /// Pixels in one eye's image.
    pub fn pixels_per_eye(&self) -> u64 {
        u64::from(self.width) * u64::from(self.height)
    }

    /// Pixels in the full stereo frame (both eyes).
    pub fn stereo_pixels(&self) -> u64 {
        self.pixels_per_eye() * 2
    }

    /// Width of the full stereo frame when the two eye images are laid out
    /// side by side (left eye occupying x in `[0, width)`, right eye
    /// `[width, 2*width)`), as the paper's Fig. 5 does with the `±W` offset.
    pub fn stereo_width(&self) -> u32 {
        self.width * 2
    }
}

impl fmt::Display for Resolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.width, self.height)
    }
}

/// A screen-space viewport: an axis-aligned pixel region of the stereo frame.
///
/// The OO-VR programming model replaces an object's single viewport with a
/// `viewportL`/`viewportR` pair (§5.1); this type is used for both.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Viewport {
    /// Left edge in pixels (stereo-frame coordinates).
    pub x: f32,
    /// Top edge in pixels.
    pub y: f32,
    /// Width in pixels.
    pub width: f32,
    /// Height in pixels.
    pub height: f32,
}

impl Viewport {
    /// Creates a viewport.
    ///
    /// # Panics
    ///
    /// Panics if width or height are negative.
    pub fn new(x: f32, y: f32, width: f32, height: f32) -> Self {
        assert!(width >= 0.0 && height >= 0.0, "viewport extent must be non-negative");
        Viewport { x, y, width, height }
    }

    /// The full-frame viewport for one eye of a side-by-side stereo frame.
    pub fn eye_full(res: Resolution, eye: Eye) -> Self {
        let w = res.width as f32;
        Viewport::new(eye.index() as f32 * w, 0.0, w, res.height as f32)
    }

    /// Right edge in pixels.
    pub fn x1(&self) -> f32 {
        self.x + self.width
    }

    /// Bottom edge in pixels.
    pub fn y1(&self) -> f32 {
        self.y + self.height
    }

    /// Area in pixels.
    pub fn area(&self) -> f64 {
        f64::from(self.width) * f64::from(self.height)
    }

    /// Shifts the viewport horizontally, returning the result.
    pub fn shifted_x(&self, dx: f32) -> Self {
        Viewport { x: self.x + dx, ..*self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_pixel_counts() {
        let r = Resolution::new(1280, 1024);
        assert_eq!(r.pixels_per_eye(), 1280 * 1024);
        assert_eq!(r.stereo_pixels(), 2 * 1280 * 1024);
        assert_eq!(r.stereo_width(), 2560);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn resolution_rejects_zero() {
        let _ = Resolution::new(0, 480);
    }

    #[test]
    fn eye_indices_and_signs() {
        assert_eq!(Eye::Left.index(), 0);
        assert_eq!(Eye::Right.index(), 1);
        assert!(Eye::Left.disparity_sign() < 0.0);
        assert!(Eye::Right.disparity_sign() > 0.0);
    }

    #[test]
    fn viewport_eye_layout_is_side_by_side() {
        let r = Resolution::new(640, 480);
        let l = Viewport::eye_full(r, Eye::Left);
        let rgt = Viewport::eye_full(r, Eye::Right);
        assert_eq!(l.x, 0.0);
        assert_eq!(rgt.x, 640.0);
        assert_eq!(l.x1(), rgt.x);
        assert_eq!(l.area(), rgt.area());
    }

    #[test]
    fn viewport_shift() {
        let v = Viewport::new(10.0, 20.0, 100.0, 50.0).shifted_x(-5.0);
        assert_eq!(v.x, 5.0);
        assert_eq!(v.y, 20.0);
    }

    #[test]
    fn ids_are_ordered_and_display() {
        assert!(ObjectId(1) < ObjectId(2));
        assert_eq!(ObjectId(3).to_string(), "obj3");
        assert_eq!(TextureId(7).to_string(), "tex7");
    }
}
