//! VR display requirements (Table 1 of the paper).
//!
//! These constants motivate the whole study: stereo VR must deliver
//! 58.32×2 Mpixels within a 5–10 ms frame latency, far beyond PC gaming.

/// One side of Table 1: display requirements of a platform.
#[derive(Debug, Clone, PartialEq)]
pub struct DisplayRequirements {
    /// Platform name.
    pub platform: &'static str,
    /// Display description.
    pub display: &'static str,
    /// Field of view description.
    pub field_of_view: &'static str,
    /// Pixels that must be delivered per frame (both eyes for VR), in Mpixels.
    pub mpixels: f64,
    /// Frame latency budget in milliseconds (min, max).
    pub frame_latency_ms: (f64, f64),
}

/// Table 1, PC gaming column.
pub const GAMING_PC: DisplayRequirements = DisplayRequirements {
    platform: "Gaming PC",
    display: "2D LCD panel",
    field_of_view: "24-30\" diagonal",
    mpixels: 3.0,
    frame_latency_ms: (16.0, 33.0),
};

/// Table 1, stereo VR column (58.32 Mpixels per eye).
pub const STEREO_VR: DisplayRequirements = DisplayRequirements {
    platform: "Stereo VR",
    display: "Stereo HMD",
    field_of_view: "120° horizontally, 135° vertically",
    mpixels: 58.32 * 2.0,
    frame_latency_ms: (5.0, 10.0),
};

impl DisplayRequirements {
    /// Required pixel throughput in Mpixels/second at the *tightest* latency
    /// budget (the paper's "116 Mpixels within 5 ms").
    pub fn required_mpixels_per_second(&self) -> f64 {
        self.mpixels / (self.frame_latency_ms.0 / 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vr_is_orders_of_magnitude_harder_than_pc() {
        let pc = GAMING_PC.required_mpixels_per_second();
        let vr = STEREO_VR.required_mpixels_per_second();
        assert!(vr / pc > 50.0, "vr {vr} vs pc {pc}");
    }

    #[test]
    fn table1_values() {
        assert!((STEREO_VR.mpixels - 116.64).abs() < 1e-9);
        assert_eq!(STEREO_VR.frame_latency_ms, (5.0, 10.0));
    }
}
