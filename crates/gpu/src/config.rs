//! Simulator configuration: Table 2 of the paper plus model parameters.

use oovr_mem::timing::FabricParams;
use oovr_mem::{Cycle, MemConfig};

/// Gigabytes-per-second to bytes-per-cycle at the 1 GHz clock of Table 2.
pub fn gbps_to_bytes_per_cycle(gbps: f64) -> f64 {
    gbps * 1e9 / 1e9
}

/// One 90 Hz vsync interval in cycles at the 1 GHz clock of Table 2
/// (`1e9 / 90`, truncated). This is the per-frame refresh budget a stereo VR
/// HMD imposes on every serving session; the related
/// [`VR_DEADLINE_CYCLES`](crate::fault::VR_DEADLINE_CYCLES) is the slightly
/// tighter 11.1 ms budget the resilience deadline monitor uses.
pub const VSYNC_90HZ_CYCLES: Cycle = 11_111_111;

/// Top-level configuration of the multi-GPM system (Table 2 defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of GPU modules (Table 2: 4).
    pub n_gpms: usize,
    /// SMs per GPM (Table 2: 8).
    pub sms_per_gpm: u32,
    /// Shader cores per SM (Table 2: 64).
    pub cores_per_sm: u32,
    /// ROPs per GPM (Table 2: 8), each outputting 4 pixels/cycle (§3).
    pub rops_per_gpm: u32,
    /// Inter-GPM link bandwidth, GB/s per direction of a 2-port pair link
    /// (Table 2: 64).
    pub link_gbps: f64,
    /// NVLink ports per GPM (§3: 6; each pair of ports connects two GPMs,
    /// so a 4-GPM system dedicates 2 ports to each of the 3 peers). With
    /// other GPM counts the ports are divided among the peers, scaling the
    /// per-pair bandwidth accordingly.
    pub ports_per_gpm: u32,
    /// Local DRAM bandwidth, GB/s (Table 2: 1000).
    pub dram_gbps: f64,
    /// Cache configuration (Table 2: 128 KiB unified L1 per SM; 4 MiB
    /// 16-way L2 total across the 4-GPM system).
    pub mem: MemConfig,
    /// Throughput/byte-cost model parameters.
    pub model: ModelParams,
    /// Optional deterministic fault plan injected at executor construction.
    /// `None` (the default) keeps the exact fixed-rate arithmetic.
    pub fault: Option<crate::fault::FaultPlan>,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig {
            n_gpms: 4,
            sms_per_gpm: 8,
            cores_per_sm: 64,
            rops_per_gpm: 8,
            link_gbps: 64.0,
            ports_per_gpm: 6,
            dram_gbps: 1000.0,
            mem: MemConfig::default(),
            model: ModelParams::default(),
            fault: None,
        }
    }
}

impl GpuConfig {
    /// Returns a copy with a different inter-GPM link bandwidth (the Fig. 4
    /// and Fig. 17 sweeps).
    pub fn with_link_gbps(mut self, gbps: f64) -> Self {
        self.link_gbps = gbps;
        self
    }

    /// Returns a copy with a different GPM count (the Fig. 18 sweep). Each
    /// GPM keeps its per-module resources; the L2 slice per GPM is fixed.
    pub fn with_n_gpms(mut self, n: usize) -> Self {
        assert!((1..=16).contains(&n), "supported GPM counts are 1..=16");
        self.n_gpms = n;
        self
    }

    /// Returns a copy with a fault plan installed (resilience experiments).
    pub fn with_fault(mut self, fault: crate::fault::FaultPlan) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Validates the configuration, reporting the first violated constraint
    /// as a typed error (the panic-free entry used by experiment harnesses).
    pub fn validate(&self) -> Result<(), crate::error::GpuError> {
        use crate::error::GpuError;
        if !(1..=16).contains(&self.n_gpms) {
            return Err(GpuError::Mem(oovr_mem::MemError::TooManyGpms { requested: self.n_gpms }));
        }
        for (name, v) in [
            ("link_gbps", self.link_gbps),
            ("dram_gbps", self.dram_gbps),
            ("vertex_rate", self.model.vertex_rate),
            ("triangle_rate", self.model.triangle_rate),
            ("smp_rate", self.model.smp_rate),
            ("raster_quad_rate", self.model.raster_quad_rate),
            ("cycles_per_fragment", self.model.cycles_per_fragment),
            ("txu_samples_per_cycle", self.model.txu_samples_per_cycle),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(GpuError::InvalidConfig(format!(
                    "{name} must be positive and finite, got {v}"
                )));
            }
        }
        if self.sms_per_gpm == 0 || self.cores_per_sm == 0 || self.rops_per_gpm == 0 {
            return Err(GpuError::InvalidConfig(
                "sms_per_gpm, cores_per_sm and rops_per_gpm must be nonzero".to_string(),
            ));
        }
        if self.model.quantum_quads == 0 || self.model.quantum_vertices == 0 {
            return Err(GpuError::InvalidConfig("work quanta must be nonzero".to_string()));
        }
        if let Some(fault) = &self.fault {
            fault.validate()?;
        }
        Ok(())
    }

    /// Per-directed-pair link bandwidth in GB/s after dividing this GPM's
    /// ports among its peers (2 ports per peer yields the nominal rate).
    pub fn pair_link_gbps(&self) -> f64 {
        if self.n_gpms <= 1 {
            return self.link_gbps;
        }
        // Spare ports concentrate bandwidth on the remaining peers (a
        // 2-GPM system aims all 6 ports at one peer). Systems with more
        // peers than port pairs are assumed to grow ports rather than
        // share links (§3: pair traffic "will not be interfered by other
        // GPMs"; §6.4 targets future scenarios with increasing bandwidth).
        let ports_per_peer = f64::from(self.ports_per_gpm) / (self.n_gpms - 1) as f64;
        self.link_gbps * (ports_per_peer / 2.0).max(1.0)
    }

    /// Fabric timing parameters derived from the bandwidth settings.
    pub fn fabric_params(&self) -> FabricParams {
        FabricParams {
            dram_bytes_per_cycle: gbps_to_bytes_per_cycle(self.dram_gbps),
            link_bytes_per_cycle: gbps_to_bytes_per_cycle(self.pair_link_gbps()),
            ..FabricParams::default()
        }
    }

    /// Fragment-shading throughput per GPM in 2×2 quads per cycle.
    pub fn quad_rate(&self) -> f64 {
        let cores = f64::from(self.sms_per_gpm * self.cores_per_sm);
        cores / self.model.cycles_per_fragment / 4.0
    }

    /// ROP pixel throughput per GPM in pixels per cycle (4 px/cycle/ROP).
    pub fn rop_rate(&self) -> f64 {
        f64::from(self.rops_per_gpm) * 4.0
    }
}

/// Throughput and byte-cost constants of the pipeline model.
///
/// One set of constants drives every figure (no per-experiment tuning);
/// values are anchored to Table 2 and standard GPU ratios, then calibrated
/// once against the paper's Fig. 4 bandwidth-sensitivity curve (see
/// `EXPERIMENTS.md`).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelParams {
    /// Vertices shaded per cycle per GPM.
    pub vertex_rate: f64,
    /// Triangles set up per cycle per GPM (PME).
    pub triangle_rate: f64,
    /// Triangles re-projected per cycle by the SMP engine.
    pub smp_rate: f64,
    /// 2×2 quads rasterized per cycle per GPM (raster engine).
    pub raster_quad_rate: f64,
    /// Shader cycles per fragment (drives `GpuConfig::quad_rate`).
    pub cycles_per_fragment: f64,
    /// Bytes fetched per vertex (position + attributes).
    pub bytes_per_vertex: u64,
    /// Texel sample points evaluated per 2×2 quad. Bilinear filtering at
    /// quad granularity needs ~4; Table 2's 16× anisotropic filtering
    /// widens footprints, which we model with extra spread-out samples.
    pub texel_samples_per_quad: u32,
    /// Extra anisotropic spread in texels between sample points.
    pub aniso_spread: f32,
    /// Texture sample points filtered per cycle per GPM (4 TXUs per SM,
    /// each filtering a bilinear footprint per cycle).
    pub txu_samples_per_cycle: f64,
    /// Bytes of draw-command stream per draw call sent to a GPM.
    pub cmd_bytes_per_draw: u64,
    /// Work quantum for the event loop, in quads.
    pub quantum_quads: u64,
    /// Work quantum for geometry, in vertices.
    pub quantum_vertices: u64,
}

impl Default for ModelParams {
    fn default() -> Self {
        ModelParams {
            vertex_rate: 4.0,
            triangle_rate: 2.5,
            smp_rate: 6.0,
            raster_quad_rate: 32.0,
            cycles_per_fragment: 16.0,
            bytes_per_vertex: 32,
            texel_samples_per_quad: 8,
            aniso_spread: 12.0,
            txu_samples_per_cycle: 64.0,
            cmd_bytes_per_draw: 512,
            quantum_quads: 4096,
            quantum_vertices: 8192,
        }
    }
}

/// Cycle budget guard: a frame longer than this aborts the simulation (a
/// runaway usually indicates a configuration error, not a slow frame).
pub const MAX_FRAME_CYCLES: Cycle = 50_000_000_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_defaults() {
        let c = GpuConfig::default();
        assert_eq!(c.n_gpms, 4);
        assert_eq!(c.sms_per_gpm, 8);
        assert_eq!(c.rops_per_gpm, 8);
        assert_eq!(c.link_gbps, 64.0);
        assert_eq!(c.dram_gbps, 1000.0);
        // 8 ROPs × 4 px/cycle.
        assert_eq!(c.rop_rate(), 32.0);
        // 512 cores / 16 cycles / 4 px per quad.
        assert_eq!(c.quad_rate(), 8.0);
    }

    #[test]
    fn bandwidth_conversion() {
        assert_eq!(gbps_to_bytes_per_cycle(64.0), 64.0);
        assert_eq!(gbps_to_bytes_per_cycle(1000.0), 1000.0);
    }

    #[test]
    fn sweep_helpers() {
        let c = GpuConfig::default().with_link_gbps(256.0);
        assert_eq!(c.link_gbps, 256.0);
        assert_eq!(c.fabric_params().link_bytes_per_cycle, 256.0);
    }

    #[test]
    fn port_division_scales_pair_bandwidth() {
        // 4 GPMs: 6 ports / 3 peers = 2 ports per pair → nominal 64.
        assert_eq!(GpuConfig::default().pair_link_gbps(), 64.0);
        // 2 GPMs: all 6 ports face one peer → 3× bandwidth.
        assert_eq!(GpuConfig::default().with_n_gpms(2).pair_link_gbps(), 192.0);
        // 8 GPMs: assumed to keep nominal per-pair bandwidth (future
        // systems grow ports; pair links are never shared).
        assert_eq!(GpuConfig::default().with_n_gpms(8).pair_link_gbps(), 64.0);
        // 1 GPM: links unused.
        assert_eq!(GpuConfig::default().with_n_gpms(1).pair_link_gbps(), 64.0);
    }

    #[test]
    #[should_panic(expected = "GPM counts")]
    fn gpm_count_bounds() {
        let _ = GpuConfig::default().with_n_gpms(0);
    }

    #[test]
    fn validate_accepts_defaults_and_rejects_bad_fields() {
        use crate::error::GpuError;
        use crate::fault::{FaultPlan, FaultScenario};
        assert!(GpuConfig::default().validate().is_ok());
        let c = GpuConfig { n_gpms: 17, ..GpuConfig::default() };
        assert!(matches!(c.validate(), Err(GpuError::Mem(_))));
        let c = GpuConfig { link_gbps: 0.0, ..GpuConfig::default() };
        assert!(matches!(c.validate(), Err(GpuError::InvalidConfig(_))));
        let mut c = GpuConfig::default();
        c.model.quantum_quads = 0;
        assert!(matches!(c.validate(), Err(GpuError::InvalidConfig(_))));
        let c = GpuConfig::default().with_fault(FaultPlan::new(FaultScenario::LinkDegrade, 2.0, 0));
        assert!(matches!(c.validate(), Err(GpuError::InvalidFault(_))));
        let c = GpuConfig::default().with_fault(FaultPlan::new(FaultScenario::Mixed, 0.5, 9));
        assert!(c.validate().is_ok());
    }
}
