//! Interconnect energy accounting (§6.2 of the paper).
//!
//! "The data transfer via the inter-GPM links also leads to higher power
//! dissipation (e.g. 10pJ/bit for board or 250pJ/bit for nodes based on
//! different integration technologies). By reducing inter-GPM memory
//! traffic, OO-VR also achieves significant energy and cost saving."
//!
//! This module turns a frame's traffic ledger into link-transfer energy for
//! both integration technologies, so the energy claim of §6.2 is
//! reproducible alongside the traffic claim of Fig. 16.

use oovr_mem::Traffic;

/// Energy per transferred bit for on-board (package-level, GRS-class)
/// integration.
pub const BOARD_PJ_PER_BIT: f64 = 10.0;

/// Energy per transferred bit for node-level (system-level) integration.
pub const NODE_PJ_PER_BIT: f64 = 250.0;

/// Energy per *local* DRAM bit, for completeness of the comparison
/// (HBM-class local access, roughly 4 pJ/bit).
pub const LOCAL_DRAM_PJ_PER_BIT: f64 = 4.0;

/// Inter-GPM link energy of a traffic ledger in microjoules.
pub fn link_energy_uj(traffic: &Traffic, pj_per_bit: f64) -> f64 {
    traffic.inter_gpm_bytes() as f64 * 8.0 * pj_per_bit * 1e-6
}

/// Local DRAM energy of a traffic ledger in microjoules.
pub fn local_energy_uj(traffic: &Traffic) -> f64 {
    traffic.local_bytes() as f64 * 8.0 * LOCAL_DRAM_PJ_PER_BIT * 1e-6
}

/// A frame's memory-system energy summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergySummary {
    /// Link energy at board-level integration (µJ).
    pub link_board_uj: f64,
    /// Link energy at node-level integration (µJ).
    pub link_node_uj: f64,
    /// Local DRAM energy (µJ).
    pub local_uj: f64,
}

impl EnergySummary {
    /// Computes the summary for a traffic ledger.
    pub fn of(traffic: &Traffic) -> Self {
        EnergySummary {
            link_board_uj: link_energy_uj(traffic, BOARD_PJ_PER_BIT),
            link_node_uj: link_energy_uj(traffic, NODE_PJ_PER_BIT),
            local_uj: local_energy_uj(traffic),
        }
    }

    /// Total at board-level integration (µJ).
    pub fn total_board_uj(&self) -> f64 {
        self.link_board_uj + self.local_uj
    }

    /// Total at node-level integration (µJ).
    pub fn total_node_uj(&self) -> f64 {
        self.link_node_uj + self.local_uj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oovr_mem::{GpmId, TrafficClass};

    fn traffic() -> Traffic {
        let mut t = Traffic::new(2);
        t.add_remote(GpmId(0), GpmId(1), TrafficClass::Texture, 1_000_000);
        t.add_local(GpmId(0), TrafficClass::Texture, 1_000_000);
        t
    }

    #[test]
    fn link_energy_scales_with_technology() {
        let t = traffic();
        let board = link_energy_uj(&t, BOARD_PJ_PER_BIT);
        let node = link_energy_uj(&t, NODE_PJ_PER_BIT);
        assert!((node / board - 25.0).abs() < 1e-9, "250/10 pJ ratio");
        // 1 MB over the link at 10 pJ/bit = 80 µJ.
        assert!((board - 80.0).abs() < 1e-9);
    }

    #[test]
    fn remote_bits_cost_more_than_local() {
        let t = traffic();
        let s = EnergySummary::of(&t);
        // Equal local and remote byte counts, but remote dominates energy.
        // (local_bytes includes the DRAM read backing the remote transfer.)
        assert!(s.link_board_uj > s.local_uj / 2.0);
        assert!(s.total_node_uj() > s.total_board_uj());
    }

    #[test]
    fn zero_traffic_zero_energy() {
        let t = Traffic::new(4);
        let s = EnergySummary::of(&t);
        assert_eq!(s.total_board_uj(), 0.0);
    }
}
