//! Render work units and the SMP (simultaneous multi-projection) model.
//!
//! A [`RenderUnit`] is the granularity at which schedulers hand work to a
//! GPM: an object instance, optionally restricted to one eye, a screen clip
//! (tile schemes), or a triangle sub-range (OO-VR's fine-grained stealing).
//!
//! The SMP engine (§2.2/§3 of the paper) processes geometry *once* and
//! re-projects each triangle into both eyes' viewports, clipping each copy
//! to its own eye so it cannot spill into the other (Fig. 5). Without SMP, a
//! stereo frame needs two full geometry passes.

use oovr_scene::{Eye, ObjectId, Rect, RenderObject, Resolution};

/// Which eye views a unit renders, and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EyeMode {
    /// Both eyes through the SMP engine: geometry runs once, the SMP engine
    /// emits a re-projected triangle per eye.
    BothSmp,
    /// A single eye's instance (conventional stereo: submit one per eye).
    Single(Eye),
}

impl EyeMode {
    /// The eyes this mode renders.
    pub fn eyes(self) -> &'static [Eye] {
        match self {
            EyeMode::BothSmp => &Eye::BOTH,
            EyeMode::Single(Eye::Left) => &[Eye::Left],
            EyeMode::Single(Eye::Right) => &[Eye::Right],
        }
    }
}

/// One schedulable piece of rendering work.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderUnit {
    /// The object to render.
    pub object: ObjectId,
    /// Eye handling.
    pub mode: EyeMode,
    /// Optional stereo-frame pixel clip (tile schemes, composition strips).
    pub clip: Option<Rect>,
    /// Optional triangle sub-range `[start, end)` of the object's mesh
    /// (fine-grained stealing). `None` renders all triangles.
    pub tri_range: Option<(u64, u64)>,
    /// Optional strided triangle selection `(offset, step)`: the unit
    /// renders triangles whose index `k` satisfies `k % step == offset`
    /// (the baseline's affinity-free work interleaving across GPMs).
    pub stride: Option<(u64, u64)>,
    /// Whether the command processor charges a draw-command transfer for
    /// this unit (sub-ranges and extra tile passes of an already-issued draw
    /// do not re-send the command).
    pub charge_command: bool,
}

impl RenderUnit {
    /// A whole-object unit rendering both eyes through SMP.
    pub fn smp(object: ObjectId) -> Self {
        RenderUnit {
            object,
            mode: EyeMode::BothSmp,
            clip: None,
            tri_range: None,
            stride: None,
            charge_command: true,
        }
    }

    /// A whole-object unit for a single eye.
    pub fn single(object: ObjectId, eye: Eye) -> Self {
        RenderUnit {
            object,
            mode: EyeMode::Single(eye),
            clip: None,
            tri_range: None,
            stride: None,
            charge_command: true,
        }
    }

    /// Restricts the unit to a stereo-frame pixel clip rectangle.
    pub fn clipped(mut self, clip: Rect) -> Self {
        self.clip = Some(clip);
        self
    }

    /// Restricts the unit to triangles `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end`.
    pub fn with_tri_range(mut self, start: u64, end: u64) -> Self {
        assert!(start < end, "empty triangle range");
        self.tri_range = Some((start, end));
        self
    }

    /// Restricts the unit to triangles with `index % step == offset`.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero or `offset >= step`.
    pub fn with_stride(mut self, offset: u64, step: u64) -> Self {
        assert!(step > 0 && offset < step, "invalid stride");
        self.stride = Some((offset, step));
        self
    }

    /// Marks the unit as not charging a draw-command transfer.
    pub fn without_command(mut self) -> Self {
        self.charge_command = false;
        self
    }

    /// Number of triangles this unit processes per rendered eye (exact
    /// count of mesh indices selected by the range and stride filters).
    pub fn triangles_per_eye(&self, obj: &RenderObject) -> u64 {
        let (s, e) = match self.tri_range {
            Some((s, e)) => (s, e.min(obj.triangle_count())),
            None => (0, obj.triangle_count()),
        };
        if s >= e {
            return 0;
        }
        match self.stride {
            Some((off, step)) => {
                // First k ≥ s with k ≡ off (mod step).
                let rem = s % step;
                let first = if rem <= off { s - rem + off } else { s - rem + step + off };
                if first >= e {
                    0
                } else {
                    (e - 1 - first) / step + 1
                }
            }
            None => e - s,
        }
    }

    /// Whether triangle index `k` belongs to this unit.
    pub fn selects(&self, k: u64) -> bool {
        if let Some((s, e)) = self.tri_range {
            if k < s || k >= e {
                return false;
            }
        }
        if let Some((off, step)) = self.stride {
            if k % step != off {
                return false;
            }
        }
        true
    }
}

/// Geometry-stage work implied by a unit (the SMP savings show up here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeometryWork {
    /// Vertices fetched and shaded.
    pub vertices: u64,
    /// Triangles assembled/set up.
    pub triangles: u64,
    /// Triangles emitted by the SMP engine toward rasterization (two per
    /// input triangle under [`EyeMode::BothSmp`]).
    pub smp_triangles_out: u64,
}

/// Computes the geometry work of `unit` over `obj`.
///
/// Under SMP both eyes share one geometry pass; a single-eye unit pays the
/// full per-eye geometry cost, so submitting two `Single` units costs twice
/// the vertex work — exactly the redundancy the paper's §3 validation
/// measures (~27% speedup from SMP).
pub fn geometry_work(unit: &RenderUnit, obj: &RenderObject) -> GeometryWork {
    let tris = unit.triangles_per_eye(obj);
    // Vertices scale with the triangle sub-range share of the mesh.
    let vertices = if tris == obj.triangle_count() {
        obj.vertex_count()
    } else {
        (obj.vertex_count() as u128 * tris as u128 / obj.triangle_count().max(1) as u128) as u64
    };
    let eyes = unit.mode.eyes().len() as u64;
    GeometryWork { vertices, triangles: tris, smp_triangles_out: tris * eyes }
}

/// The pixel clip of one eye's viewport in the stereo frame (SMP's per-eye
/// clipping that "prevents the spill over into the opposite eye", §3).
pub fn eye_clip(res: Resolution, eye: Eye) -> Rect {
    let w = res.width as f32;
    Rect::new(eye.index() as f32 * w, 0.0, w, res.height as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oovr_scene::SceneBuilder;

    fn obj() -> RenderObject {
        let scene = SceneBuilder::new(64, 64)
            .texture("t", 64, 64)
            .object("o", |o| {
                o.grid(4, 4).texture("t", 1.0);
            })
            .build();
        scene.objects()[0].clone()
    }

    #[test]
    fn smp_halves_geometry() {
        let o = obj();
        let smp = geometry_work(&RenderUnit::smp(o.id()), &o);
        let l = geometry_work(&RenderUnit::single(o.id(), Eye::Left), &o);
        let r = geometry_work(&RenderUnit::single(o.id(), Eye::Right), &o);
        assert_eq!(smp.vertices, 25);
        assert_eq!(l.vertices + r.vertices, 50, "sequential stereo doubles vertex work");
        assert_eq!(smp.smp_triangles_out, 64, "SMP emits both eyes' triangles");
        assert_eq!(l.smp_triangles_out, 32);
    }

    #[test]
    fn tri_range_scales_vertices() {
        let o = obj();
        let u = RenderUnit::smp(o.id()).with_tri_range(0, 16);
        let g = geometry_work(&u, &o);
        assert_eq!(g.triangles, 16);
        assert_eq!(g.vertices, 12, "half the mesh, half the vertices (floor)");
    }

    #[test]
    fn eye_clips_are_disjoint_halves() {
        let res = Resolution::new(320, 240);
        let l = eye_clip(res, Eye::Left);
        let r = eye_clip(res, Eye::Right);
        assert!(!l.overlaps(&r));
        assert_eq!(l.x1(), r.x);
        assert_eq!(r.x1(), 640.0);
    }

    #[test]
    fn unit_builders() {
        let u = RenderUnit::smp(ObjectId(3))
            .clipped(Rect::new(0.0, 0.0, 10.0, 10.0))
            .with_tri_range(2, 6)
            .without_command();
        assert_eq!(u.object, ObjectId(3));
        assert!(u.clip.is_some());
        assert!(!u.charge_command);
        assert_eq!(u.triangles_per_eye(&obj()), 4);
    }

    #[test]
    #[should_panic(expected = "empty triangle range")]
    fn empty_range_panics() {
        let _ = RenderUnit::smp(ObjectId(0)).with_tri_range(5, 5);
    }

    #[test]
    #[should_panic(expected = "invalid stride")]
    fn bad_stride_panics() {
        let _ = RenderUnit::smp(ObjectId(0)).with_stride(3, 3);
    }

    #[test]
    fn eye_modes_enumerate_correctly() {
        assert_eq!(EyeMode::BothSmp.eyes(), &[Eye::Left, Eye::Right]);
        assert_eq!(EyeMode::Single(Eye::Right).eyes(), &[Eye::Right]);
    }

    #[test]
    fn stride_with_range_counts_exactly() {
        let o = obj(); // 32 triangles
        let u = RenderUnit::smp(o.id()).with_tri_range(5, 21).with_stride(1, 4);
        let brute = (0..32u64).filter(|&k| u.selects(k)).count() as u64;
        assert_eq!(u.triangles_per_eye(&o), brute);
        // k in [5,21) with k%4==1: 5, 9, 13, 17 → 4.
        assert_eq!(brute, 4);
    }

    #[test]
    fn selects_respects_both_filters() {
        let u = RenderUnit::smp(ObjectId(0)).with_tri_range(2, 10).with_stride(0, 2);
        assert!(u.selects(2) && u.selects(8));
        assert!(!u.selects(3), "wrong stride phase");
        assert!(!u.selects(10), "outside range");
        assert!(!u.selects(0), "below range");
    }
}
