//! Deterministic fault injection: seeded, time-varying hardware faults.
//!
//! Real NUMA multi-GPU parts do not run at nameplate rates for a whole
//! frame: NVLinks retrain to lower widths, GPMs throttle thermally, and
//! transient stalls steal cycles. A [`FaultPlan`] compiles a fault scenario
//! into per-link and per-GPM [`RateSchedule`]s that the executor installs on
//! the bandwidth servers and pipeline clocks. Everything is a pure function
//! of `(scenario, severity, seed)`, so a faulted experiment is exactly as
//! reproducible as a fault-free one.
//!
//! The scenarios are deliberately *asymmetric*: one victim GPM (chosen from
//! the seed) takes the brunt while its peers stay healthy. Symmetric faults
//! merely rescale the frame; asymmetric ones break the distribution engine's
//! equal-rate assumption, which is what the resilience countermeasures in
//! `oovr::distribution` exist to repair.

use oovr_mem::{Cycle, GpmId, RateSchedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::GpuError;

/// The VR frame budget in cycles at the 1 GHz clock of Table 2: 11.1 ms for
/// 90 FPS (Table 1 of the paper).
pub const VR_DEADLINE_CYCLES: Cycle = 11_100_000;

/// The class of hardware misbehavior a [`FaultPlan`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultScenario {
    /// The victim GPM's links run at a sustained fraction of nominal
    /// bandwidth (NVLink trained down to fewer lanes).
    LinkDegrade,
    /// The victim GPM's links suffer intermittent full outages (retrain
    /// events); between outages they are healthy.
    LinkDown,
    /// The victim GPM's pipeline clock is throttled (thermal capping).
    GpmThrottle,
    /// Every GPM suffers short random pipeline stalls.
    TransientStall,
    /// Milder combination of link degradation, throttling, and stalls.
    Mixed,
}

impl FaultScenario {
    /// All scenarios, in sweep order.
    pub const ALL: [FaultScenario; 5] = [
        FaultScenario::LinkDegrade,
        FaultScenario::LinkDown,
        FaultScenario::GpmThrottle,
        FaultScenario::TransientStall,
        FaultScenario::Mixed,
    ];

    /// Short stable name for tables and CLI arguments.
    pub fn name(self) -> &'static str {
        match self {
            FaultScenario::LinkDegrade => "link-degrade",
            FaultScenario::LinkDown => "link-down",
            FaultScenario::GpmThrottle => "gpm-throttle",
            FaultScenario::TransientStall => "transient-stall",
            FaultScenario::Mixed => "mixed",
        }
    }
}

/// A deterministic, seeded plan of time-varying hardware faults.
///
/// `severity` scales every fault in `[0, 1]`; `0` is a guaranteed no-op
/// (every schedule query returns `None`, leaving the exact fixed-rate
/// arithmetic untouched). `horizon` is the time span over which fault
/// windows are laid out; past it, sustained scenarios hold their degraded
/// rate and transient ones return to nominal.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Fault class to inject.
    pub scenario: FaultScenario,
    /// Fault strength in `[0, 1]`.
    pub severity: f64,
    /// Seed defining the victim, windows, and jitter.
    pub seed: u64,
    /// Span over which fault windows are generated.
    pub horizon: Cycle,
}

/// Number of fault windows laid across the horizon.
const WINDOWS: u64 = 8;

impl FaultPlan {
    /// Creates a plan over the default [`VR_DEADLINE_CYCLES`] horizon.
    pub fn new(scenario: FaultScenario, severity: f64, seed: u64) -> Self {
        FaultPlan { scenario, severity, seed, horizon: VR_DEADLINE_CYCLES }
    }

    /// A plan that injects nothing (equivalent to no plan at all).
    pub fn none() -> Self {
        FaultPlan::new(FaultScenario::LinkDegrade, 0.0, 0)
    }

    /// Returns a copy with a different window horizon.
    pub fn with_horizon(mut self, horizon: Cycle) -> Self {
        self.horizon = horizon;
        self
    }

    /// Whether this plan injects nothing.
    pub fn is_noop(&self) -> bool {
        self.severity <= 0.0
    }

    /// Validates the plan's fields.
    pub fn validate(&self) -> Result<(), GpuError> {
        if !self.severity.is_finite() || !(0.0..=1.0).contains(&self.severity) {
            return Err(GpuError::InvalidFault(format!(
                "severity must be in [0, 1], got {}",
                self.severity
            )));
        }
        if self.horizon == 0 {
            return Err(GpuError::InvalidFault("horizon must be positive".to_string()));
        }
        Ok(())
    }

    /// The GPM this plan victimizes in an `n_gpms` system.
    pub fn victim(&self, n_gpms: usize) -> GpmId {
        GpmId((self.seed % n_gpms.max(1) as u64) as u8)
    }

    /// The fault schedule of the directed link `from → to`, or `None` when
    /// the link is unaffected (exact nominal-rate arithmetic).
    pub fn link_schedule(&self, from: GpmId, to: GpmId, n_gpms: usize) -> Option<RateSchedule> {
        if self.is_noop() || n_gpms <= 1 || from == to {
            return None;
        }
        let v = self.victim(n_gpms);
        let touches_victim = from == v || to == v;
        let salt = 0x100 + (from.index() as u64) * 32 + to.index() as u64;
        match self.scenario {
            FaultScenario::LinkDegrade => touches_victim.then(|| self.degrade_schedule(salt, 0.9)),
            FaultScenario::LinkDown => {
                if touches_victim {
                    self.outage_schedule(salt, 0.5 * self.severity, 0.2 + 0.6 * self.severity)
                } else {
                    None
                }
            }
            FaultScenario::Mixed => touches_victim.then(|| self.degrade_schedule(salt, 0.45)),
            FaultScenario::GpmThrottle | FaultScenario::TransientStall => None,
        }
    }

    /// The pipeline-clock fault schedule of one GPM, or `None` when the GPM
    /// runs at nominal rate.
    pub fn gpm_schedule(&self, gpm: GpmId, n_gpms: usize) -> Option<RateSchedule> {
        if self.is_noop() {
            return None;
        }
        let v = self.victim(n_gpms);
        let salt = 0x10000 + gpm.index() as u64;
        match self.scenario {
            FaultScenario::LinkDegrade | FaultScenario::LinkDown => None,
            FaultScenario::GpmThrottle => (gpm == v).then(|| self.degrade_schedule(salt, 0.7)),
            FaultScenario::TransientStall => {
                self.outage_schedule(salt, 0.4 * self.severity, 0.1 + 0.2 * self.severity)
            }
            FaultScenario::Mixed => {
                if gpm == v {
                    Some(self.degrade_schedule(salt, 0.35))
                } else {
                    self.outage_schedule(salt, 0.15 * self.severity, 0.1 + 0.1 * self.severity)
                }
            }
        }
    }

    /// Compiles this plan into the per-link and per-GPM schedules an
    /// `n_gpms` system installs: the one shared unit behind the executor's
    /// bandwidth-server install loop, the cluster tier's per-server rates
    /// ([`server_schedule`](Self::server_schedule)), and the edge tier's
    /// client link. `links` holds only the affected directed pairs;
    /// `gpms[g]` is `None` for GPMs left at exact nominal-rate arithmetic.
    pub fn compile(&self, n_gpms: usize) -> CompiledFault {
        let ids = || (0..n_gpms).map(|g| GpmId(g as u8));
        let mut links = Vec::new();
        for from in ids() {
            for to in ids() {
                if let Some(s) = self.link_schedule(from, to, n_gpms) {
                    links.push((from, to, s));
                }
            }
        }
        let gpms = ids().map(|g| self.gpm_schedule(g, n_gpms)).collect();
        CompiledFault { links, gpms }
    }

    /// The full serving-rate schedule of one *server* in an `n_servers`
    /// fleet, or `None` when the server runs at exact nominal rate. The
    /// compiled form of [`server_rate_at`](Self::server_rate_at): the
    /// breakpoint-union product of the server's pipeline-clock schedule and
    /// the victim's uplink schedule, clamped to `[0, 1]` — so callers that
    /// sample every interval (the cluster tier) or install it on a
    /// bandwidth server (the edge link) share one compilation instead of
    /// re-deriving the combination per query.
    pub fn server_schedule(&self, server: usize, n_servers: usize) -> Option<RateSchedule> {
        if self.is_noop() || n_servers == 0 {
            return None;
        }
        let id = GpmId((server % n_servers.min(256)) as u8);
        let gpm = self.gpm_schedule(id, n_servers);
        let link = if n_servers > 1 && id == self.victim(n_servers) {
            let peer = GpmId(((server + 1) % n_servers.min(256)) as u8);
            self.link_schedule(id, peer, n_servers)
        } else {
            None
        };
        match (gpm, link) {
            (None, None) => None,
            (Some(s), None) | (None, Some(s)) => Some(clamp_schedule(&s)),
            (Some(g), Some(l)) => Some(product_schedule(&g, &l)),
        }
    }

    /// The serving-rate multiplier of one *server* in an `n_servers` fleet
    /// at time `t`, for the cluster tier that reuses fault plans at
    /// server granularity (server index plays the role of the GPM id).
    ///
    /// The rate combines the server's pipeline-clock schedule with the
    /// victim's uplink schedule (a server whose link is down cannot accept
    /// or serve sessions), so `link-down` kills the victim server outright
    /// while `gpm-throttle` merely shrinks its capacity. `0.0` means dead;
    /// `1.0` means nominal. Point-query form of
    /// [`server_schedule`](Self::server_schedule); per-interval callers
    /// should compile once and sample the schedule instead.
    pub fn server_rate_at(&self, server: usize, n_servers: usize, t: Cycle) -> f64 {
        match self.server_schedule(server, n_servers) {
            Some(sch) => sch.multiplier_at(t),
            None => 1.0,
        }
    }

    /// Whether this plan actually perturbs at least one server rate when
    /// sampled every `step` cycles across the horizon. Low-severity
    /// transient scenarios can draw zero outage windows; chaos sweeps use
    /// this to scan seeds until every cell's fault genuinely bites.
    pub fn disturbs_servers(&self, n_servers: usize, step: Cycle) -> bool {
        if self.is_noop() {
            return false;
        }
        let scheds: Vec<Option<RateSchedule>> =
            (0..n_servers).map(|s| self.server_schedule(s, n_servers)).collect();
        let step = step.max(1);
        let mut t: Cycle = 0;
        while t <= self.horizon {
            for sch in scheds.iter().flatten() {
                if sch.multiplier_at(t) < 1.0 {
                    return true;
                }
            }
            t += step;
        }
        false
    }

    /// Per-entity generator: a pure function of the plan seed and a salt, so
    /// each link/GPM draws an independent but reproducible stream.
    fn rng(&self, salt: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    fn window_len(&self) -> Cycle {
        (self.horizon / WINDOWS).max(1)
    }

    /// Sustained degradation: per-window jitter around a base multiplier of
    /// `1 − depth × severity`, holding the base past the horizon.
    fn degrade_schedule(&self, salt: u64, depth: f64) -> RateSchedule {
        let base = (1.0 - depth * self.severity).max(0.05);
        let mut rng = self.rng(salt);
        let wl = self.window_len();
        let mut segs = Vec::with_capacity(WINDOWS as usize + 1);
        for w in 0..WINDOWS {
            let jitter = rng.gen_range(0.85f64..1.15);
            segs.push((w * wl, (base * jitter).clamp(0.02, 1.0)));
        }
        segs.push((WINDOWS * wl, base));
        RateSchedule::new(segs)
    }

    /// Transient outages: each window goes fully down with probability
    /// `p_down` for `dur_frac` of its length, healthy otherwise. Returns
    /// `None` when no outage was drawn.
    fn outage_schedule(&self, salt: u64, p_down: f64, dur_frac: f64) -> Option<RateSchedule> {
        let mut rng = self.rng(salt);
        let wl = self.window_len();
        let mut segs: Vec<(Cycle, f64)> = vec![(0, 1.0)];
        let mut any = false;
        for w in 0..WINDOWS {
            let down = rng.gen_bool(p_down.clamp(0.0, 1.0));
            if down {
                any = true;
                let t0 = w * wl;
                let dur = ((wl as f64 * dur_frac.clamp(0.0, 1.0)) as Cycle)
                    .clamp(1, wl.saturating_sub(1).max(1));
                push_seg(&mut segs, t0, 0.0);
                push_seg(&mut segs, t0 + dur, 1.0);
            }
        }
        any.then(|| RateSchedule::new(segs))
    }
}

/// A [`FaultPlan`] compiled into the concrete schedules an `n_gpms` system
/// installs ([`FaultPlan::compile`]): the affected directed links and the
/// per-GPM pipeline-clock schedules.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledFault {
    /// `(from, to, schedule)` for every directed link the plan degrades.
    pub links: Vec<(GpmId, GpmId, RateSchedule)>,
    /// Pipeline-clock schedule per GPM; `None` keeps the GPM at exact
    /// nominal-rate arithmetic.
    pub gpms: Vec<Option<RateSchedule>>,
}

/// Clamps every segment multiplier into `[0, 1]` — the same clamp the
/// point query applies after combining schedules, applied once at compile
/// time so sampling the compiled schedule is bit-identical to the query.
fn clamp_schedule(s: &RateSchedule) -> RateSchedule {
    RateSchedule::new(s.segments().iter().map(|&(t, m)| (t, m.clamp(0.0, 1.0))).collect())
}

/// The pointwise product of two piecewise-constant schedules, clamped to
/// `[0, 1]`: breakpoints are the union of both inputs' breakpoints, and
/// within every union segment the product of two constants is constant, so
/// `product(a, b).multiplier_at(t) == (a.multiplier_at(t) *
/// b.multiplier_at(t)).clamp(0.0, 1.0)` exactly, for every `t`.
fn product_schedule(a: &RateSchedule, b: &RateSchedule) -> RateSchedule {
    let mut starts: Vec<Cycle> = a.segments().iter().chain(b.segments()).map(|&(t, _)| t).collect();
    starts.sort_unstable();
    starts.dedup();
    let mut segs: Vec<(Cycle, f64)> = Vec::with_capacity(starts.len());
    for t in starts {
        let m = (a.multiplier_at(t) * b.multiplier_at(t)).clamp(0.0, 1.0);
        push_seg(&mut segs, t, m);
    }
    RateSchedule::new(segs)
}

/// Appends a breakpoint, merging equal-time and equal-rate neighbors so the
/// segment starts stay strictly increasing.
fn push_seg(segs: &mut Vec<(Cycle, f64)>, t: Cycle, m: f64) {
    if let Some(last) = segs.last_mut() {
        if last.0 == t {
            last.1 = m;
            return;
        }
        if last.1 == m {
            return;
        }
    }
    segs.push((t, m));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_severity_is_noop() {
        let p = FaultPlan::none();
        assert!(p.is_noop());
        for from in 0..4u8 {
            for to in 0..4u8 {
                assert!(p.link_schedule(GpmId(from), GpmId(to), 4).is_none());
            }
            assert!(p.gpm_schedule(GpmId(from), 4).is_none());
        }
    }

    #[test]
    fn plans_are_deterministic() {
        let a = FaultPlan::new(FaultScenario::Mixed, 0.7, 42);
        let b = FaultPlan::new(FaultScenario::Mixed, 0.7, 42);
        for from in 0..4u8 {
            for to in 0..4u8 {
                assert_eq!(
                    a.link_schedule(GpmId(from), GpmId(to), 4),
                    b.link_schedule(GpmId(from), GpmId(to), 4)
                );
            }
            assert_eq!(a.gpm_schedule(GpmId(from), 4), b.gpm_schedule(GpmId(from), 4));
        }
    }

    #[test]
    fn link_degrade_hits_only_victim_links() {
        let p = FaultPlan::new(FaultScenario::LinkDegrade, 0.5, 1);
        let v = p.victim(4);
        assert_eq!(v, GpmId(1));
        for from in 0..4u8 {
            for to in 0..4u8 {
                let (f, t) = (GpmId(from), GpmId(to));
                let s = p.link_schedule(f, t, 4);
                if f == t {
                    assert!(s.is_none());
                } else if f == v || t == v {
                    let s = s.expect("victim link degraded");
                    assert!(s.multiplier_at(0) < 1.0);
                    // Sustained past the horizon.
                    assert!(s.multiplier_at(p.horizon * 10) < 1.0);
                } else {
                    assert!(s.is_none(), "healthy link {f}->{t} must keep exact arithmetic");
                }
                assert!(p.gpm_schedule(f, 4).is_none());
            }
        }
    }

    #[test]
    fn throttle_hits_only_victim_gpm() {
        let p = FaultPlan::new(FaultScenario::GpmThrottle, 0.8, 6);
        let v = p.victim(4);
        assert_eq!(v, GpmId(2));
        for g in 0..4u8 {
            let s = p.gpm_schedule(GpmId(g), 4);
            if GpmId(g) == v {
                assert!(s.expect("victim throttled").multiplier_at(0) < 1.0);
            } else {
                assert!(s.is_none());
            }
        }
    }

    #[test]
    fn outages_recover_after_horizon() {
        // High severity makes outage windows near-certain.
        let p = FaultPlan::new(FaultScenario::LinkDown, 1.0, 3);
        let v = p.victim(4);
        let other = GpmId((v.index() as u8 + 1) % 4);
        let s = p.link_schedule(v, other, 4).expect("victim link has outages");
        // Downtime exists somewhere inside the horizon...
        let wl = p.horizon / 8;
        let down = (0..8u64).any(|w| s.multiplier_at(w * wl) == 0.0);
        assert!(down, "severity-1 plan has at least one outage");
        // ...and the tail is healthy (retrain completes).
        assert_eq!(s.multiplier_at(p.horizon * 4), 1.0);
    }

    #[test]
    fn server_rates_are_nominal_without_faults() {
        let p = FaultPlan::none();
        for s in 0..8 {
            for w in 0..10u64 {
                assert_eq!(p.server_rate_at(s, 8, w * p.horizon / 8), 1.0);
            }
        }
        assert!(!p.disturbs_servers(8, p.horizon / 8));
    }

    #[test]
    fn link_down_kills_only_the_victim_server() {
        let p = FaultPlan::new(FaultScenario::LinkDown, 1.0, 3);
        let v = p.victim(4).index();
        let wl = p.horizon / 8;
        let mut victim_died = false;
        for s in 0..4 {
            for w in 0..8u64 {
                let r = p.server_rate_at(s, 4, w * wl);
                if s == v {
                    victim_died |= r == 0.0;
                } else {
                    assert_eq!(r, 1.0, "non-victim server {s} must stay nominal");
                }
            }
        }
        assert!(victim_died, "severity-1 link-down must kill the victim server");
        assert!(p.disturbs_servers(4, wl));
    }

    #[test]
    fn throttle_degrades_the_victim_server_without_killing_it() {
        let p = FaultPlan::new(FaultScenario::GpmThrottle, 0.8, 6);
        let v = p.victim(4).index();
        let r = p.server_rate_at(v, 4, 0);
        assert!(r > 0.0 && r < 1.0, "throttled victim runs degraded, got {r}");
        assert!(p.disturbs_servers(4, p.horizon / 8));
    }

    #[test]
    fn compiled_server_schedule_matches_the_point_query() {
        // The compiled per-server schedule must agree with the combined
        // point query at every sample, for every scenario and severity —
        // the contract that lets the cluster tier and the edge link sample
        // one compiled schedule instead of re-deriving the product.
        for scenario in FaultScenario::ALL {
            for &sev in &[0.3, 0.7, 1.0] {
                for seed in 0..4u64 {
                    let p = FaultPlan::new(scenario, sev, seed);
                    for n in [1usize, 2, 4] {
                        for server in 0..n {
                            let sch = p.server_schedule(server, n);
                            let wl = p.horizon / 16;
                            for w in 0..40u64 {
                                let t = w * wl;
                                let direct = match &sch {
                                    Some(s) => s.multiplier_at(t),
                                    None => 1.0,
                                };
                                assert_eq!(
                                    direct.to_bits(),
                                    p.server_rate_at(server, n, t).to_bits(),
                                    "{}/{sev}/{seed} server {server}/{n} t={t}",
                                    scenario.name()
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn compile_collects_exactly_the_affected_schedules() {
        let n = 4;
        for scenario in FaultScenario::ALL {
            let p = FaultPlan::new(scenario, 0.8, 11);
            let c = p.compile(n);
            assert_eq!(c.gpms.len(), n);
            for (g, slot) in c.gpms.iter().enumerate() {
                assert_eq!(*slot, p.gpm_schedule(GpmId(g as u8), n));
            }
            let mut expected = Vec::new();
            for from in 0..n as u8 {
                for to in 0..n as u8 {
                    if let Some(s) = p.link_schedule(GpmId(from), GpmId(to), n) {
                        expected.push((GpmId(from), GpmId(to), s));
                    }
                }
            }
            assert_eq!(c.links, expected);
        }
        // A no-op plan compiles to nothing.
        let c = FaultPlan::none().compile(n);
        assert!(c.links.is_empty());
        assert!(c.gpms.iter().all(|s| s.is_none()));
    }

    #[test]
    fn mixed_victim_schedule_is_a_genuine_product() {
        // Mixed faults throttle the victim GPM *and* degrade its uplink;
        // the compiled server schedule must be their pointwise product.
        let p = FaultPlan::new(FaultScenario::Mixed, 0.9, 5);
        let n = 4;
        let v = p.victim(n);
        let sch = p.server_schedule(v.index(), n).expect("mixed victim is degraded");
        let gpm = p.gpm_schedule(v, n).expect("victim GPM throttled");
        let peer = GpmId(((v.index() + 1) % n) as u8);
        let link = p.link_schedule(v, peer, n).expect("victim uplink degraded");
        let wl = p.horizon / 32;
        for w in 0..64u64 {
            let t = w * wl;
            let want = (gpm.multiplier_at(t) * link.multiplier_at(t)).clamp(0.0, 1.0);
            assert_eq!(sch.multiplier_at(t).to_bits(), want.to_bits());
        }
    }

    #[test]
    fn validation_rejects_bad_fields() {
        let mut p = FaultPlan::new(FaultScenario::LinkDegrade, 1.5, 0);
        assert!(p.validate().is_err());
        p.severity = f64::NAN;
        assert!(p.validate().is_err());
        p.severity = 0.5;
        p.horizon = 0;
        assert!(p.validate().is_err());
        p.horizon = VR_DEADLINE_CYCLES;
        assert!(p.validate().is_ok());
    }
}
