//! Executor-side tracing adapter.
//!
//! [`ExecTracer`] owns the flight recorder during a traced frame and holds
//! the bookkeeping that turns raw executor activity into `oovr-trace` events:
//! per-GPM open spans (adjacent quanta of the same object and phase merge so
//! phase boundaries are exact), and per-GPM sampling cursors over the
//! bandwidth servers and cache counters. Everything here observes simulation
//! state through shared references — tracing cannot perturb the simulation.

use oovr_mem::{Cycle, GpmId, MemorySystem, NumaTiming};
use oovr_trace::{Phase, Recorder, TraceConfig, TraceEvent, TraceSink};

/// An in-progress phase span on one GPM.
#[derive(Debug, Clone, Copy)]
struct OpenSpan {
    object: u32,
    phase: Phase,
    start: Cycle,
    end: Cycle,
    quanta: u64,
    stall: Cycle,
}

impl OpenSpan {
    fn event(self, gpm: usize) -> TraceEvent {
        TraceEvent::PhaseSpan {
            gpm: gpm as u32,
            object: self.object,
            phase: self.phase,
            start: self.start,
            end: self.end,
            quanta: self.quanta,
            stall: self.stall,
        }
    }
}

/// Tracing state attached to an `Executor` while tracing is enabled.
#[derive(Debug)]
pub(crate) struct ExecTracer {
    rec: Recorder,
    window: Cycle,
    n: usize,
    open: Vec<Option<OpenSpan>>,
    /// Next window boundary each GPM's clock must cross to trigger a sample.
    next_window: Vec<Cycle>,
    /// End cycle of each GPM's last emitted window (sample windows tile the
    /// timeline without gaps even when a clock jumps several widths at once).
    last_end: Vec<Cycle>,
    /// Last-seen `(served_bytes, busy_cycles)` per directed link (`n*n`).
    last_link: Vec<(u64, f64)>,
    /// Last-seen `(served_bytes, busy_cycles)` per GPM DRAM server.
    last_dram: Vec<(u64, f64)>,
    /// Last-seen `(accesses, hits)` per GPM L1.
    last_l1: Vec<(u64, u64)>,
    /// Last-seen `(accesses, hits)` per GPM L2.
    last_l2: Vec<(u64, u64)>,
}

impl ExecTracer {
    pub(crate) fn new(cfg: TraceConfig, n: usize) -> Self {
        let rec = Recorder::new(cfg);
        let window = rec.window_cycles();
        ExecTracer {
            rec,
            window,
            n,
            open: vec![None; n],
            next_window: vec![window; n],
            last_end: vec![0; n],
            last_link: vec![(0, 0.0); n * n],
            last_dram: vec![(0, 0.0); n],
            last_l1: vec![(0, 0); n],
            last_l2: vec![(0, 0); n],
        }
    }

    /// Direct access to the recorder (engine-side instant events).
    pub(crate) fn recorder_mut(&mut self) -> &mut Recorder {
        &mut self.rec
    }

    /// Record an event produced by the executor itself.
    pub(crate) fn record(&mut self, ev: TraceEvent) {
        self.rec.record(ev);
    }

    /// Fold one executed quantum into the per-GPM open span, flushing the
    /// previous span when the (object, phase) changes.
    pub(crate) fn quantum(
        &mut self,
        g: usize,
        object: u32,
        phase: Phase,
        start: Cycle,
        end: Cycle,
        stall: Cycle,
    ) {
        match &mut self.open[g] {
            Some(sp) if sp.object == object && sp.phase == phase => {
                sp.end = end;
                sp.quanta += 1;
                sp.stall += stall;
            }
            slot => {
                if let Some(sp) = slot.take() {
                    self.rec.record(sp.event(g));
                }
                *slot = Some(OpenSpan { object, phase, start, end, quanta: 1, stall });
            }
        }
    }

    /// Emit bandwidth/cache windows for GPM `g` once its clock crosses the
    /// next window boundary. Windows are aligned to multiples of the window
    /// width; a clock that jumps several widths yields one (wider) window,
    /// so samples always tile the timeline.
    pub(crate) fn sample_windows(
        &mut self,
        g: usize,
        now: Cycle,
        fabric: &NumaTiming,
        mem: &MemorySystem,
    ) {
        if now < self.next_window[g] {
            return;
        }
        let end = now - (now % self.window);
        self.emit_windows(g, end, fabric, mem);
        self.next_window[g] = end + self.window;
    }

    fn emit_windows(&mut self, g: usize, end: Cycle, fabric: &NumaTiming, mem: &MemorySystem) {
        let start = self.last_end[g];
        if end <= start {
            return;
        }
        let gid = GpmId(g as u8);
        let dram = fabric.dram(gid);
        let (b0, u0) = self.last_dram[g];
        let (b1, u1) = (dram.served_bytes(), dram.busy_cycles());
        if b1 != b0 || u1 != u0 {
            self.rec.record(TraceEvent::DramWindow {
                start,
                end,
                gpm: g as u32,
                bytes: b1 - b0,
                busy: u1 - u0,
                queue: dram.queue_depth_at(end),
            });
        }
        self.last_dram[g] = (b1, u1);
        for f in 0..self.n {
            if f == g {
                continue;
            }
            let srv = fabric.link(GpmId(f as u8), gid);
            let slot = f * self.n + g;
            let (b0, u0) = self.last_link[slot];
            let (b1, u1) = (srv.served_bytes(), srv.busy_cycles());
            if b1 != b0 || u1 != u0 {
                self.rec.record(TraceEvent::LinkWindow {
                    start,
                    end,
                    from: f as u32,
                    to: g as u32,
                    bytes: b1 - b0,
                    busy: u1 - u0,
                    queue: srv.queue_depth_at(end),
                });
            }
            self.last_link[slot] = (b1, u1);
        }
        let s1 = mem.l1_stats(gid);
        let s2 = mem.l2_stats(gid);
        let (a0, h0) = self.last_l1[g];
        let (a2, h2) = self.last_l2[g];
        if s1.accesses != a0 || s2.accesses != a2 {
            self.rec.record(TraceEvent::CacheWindow {
                gpm: g as u32,
                start,
                end,
                l1_accesses: s1.accesses - a0,
                l1_hits: s1.hits - h0,
                l2_accesses: s2.accesses - a2,
                l2_hits: s2.hits - h2,
            });
        }
        self.last_l1[g] = (s1.accesses, s1.hits);
        self.last_l2[g] = (s2.accesses, s2.hits);
        self.last_end[g] = end;
    }

    /// Flush all open spans and emit one final partial window per GPM up to
    /// the frame-complete cycle.
    pub(crate) fn finalize(&mut self, end: Cycle, fabric: &NumaTiming, mem: &MemorySystem) {
        for g in 0..self.n {
            if let Some(sp) = self.open[g].take() {
                self.rec.record(sp.event(g));
            }
        }
        for g in 0..self.n {
            self.emit_windows(g, end, fabric, mem);
        }
    }

    /// Hand the recorder to the caller once the frame is finished.
    pub(crate) fn into_recorder(self) -> Recorder {
        self.rec
    }
}
