//! Quad-granularity tiled rasterization.
//!
//! The raster engine walks a triangle's bounding box in 2×2 pixel quads (the
//! granularity real GPUs shade and sample at), emitting covered quads with
//! interpolated texel coordinates. Triangles are clipped to an optional
//! screen rectangle (tile schemes, per-eye SMP clipping).

use oovr_scene::{Rect, ScreenTriangle, Vec2};

/// A shaded 2×2 quad of fragments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuadFragment {
    /// X of the quad's top-left pixel (even).
    pub x: u32,
    /// Y of the quad's top-left pixel (even).
    pub y: u32,
    /// Coverage mask: bit 0 = (x,y), bit 1 = (x+1,y), bit 2 = (x,y+1),
    /// bit 3 = (x+1,y+1).
    pub mask: u8,
    /// Texel coordinates at the quad centroid (mean of covered samples).
    pub uv: Vec2,
    /// Depth of the quad (constant per triangle in this model).
    pub z: f32,
}

impl QuadFragment {
    /// Number of covered fragments in the quad (1–4).
    pub fn coverage(&self) -> u32 {
        self.mask.count_ones()
    }

    /// Iterates the covered pixel coordinates.
    pub fn pixels(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..4u32)
            .filter(|i| self.mask & (1 << i) != 0)
            .map(move |i| (self.x + (i & 1), self.y + (i >> 1)))
    }
}

/// Rasterizes `tri` clipped to `clip` (in stereo-frame pixels) over a frame
/// of `frame_w × frame_h`, invoking `sink` for every covered quad.
///
/// Returns the number of covered quads emitted.
pub fn rasterize(
    tri: &ScreenTriangle,
    clip: Option<&Rect>,
    frame_w: u32,
    frame_h: u32,
    mut sink: impl FnMut(QuadFragment),
) -> u64 {
    let (mut x0, mut y0, mut x1, mut y1) = tri.bounds_clamped(frame_w, frame_h);
    if let Some(c) = clip {
        x0 = x0.max(c.x.floor().max(0.0) as u32);
        y0 = y0.max(c.y.floor().max(0.0) as u32);
        x1 = x1.min(c.x1().ceil().max(0.0) as u32);
        y1 = y1.min(c.y1().ceil().max(0.0) as u32);
    }
    if x0 >= x1 || y0 >= y1 {
        return 0;
    }
    // Snap to even quad origins.
    let qx0 = x0 & !1;
    let qy0 = y0 & !1;
    let sampler = tri.sampler();
    let mut quads = 0;
    let mut y = qy0;
    while y < y1 {
        let mut x = qx0;
        while x < x1 {
            let mut mask = 0u8;
            let mut usum = 0.0f32;
            let mut vsum = 0.0f32;
            let mut n = 0u32;
            for i in 0..4u32 {
                let px = x + (i & 1);
                let py = y + (i >> 1);
                if px < x0 || px >= x1 || py < y0 || py >= y1 {
                    continue;
                }
                if let Some(uv) = sampler.sample(px, py) {
                    mask |= 1 << i;
                    usum += uv.x;
                    vsum += uv.y;
                    n += 1;
                }
            }
            if mask != 0 {
                quads += 1;
                sink(QuadFragment {
                    x,
                    y,
                    mask,
                    uv: Vec2::new(usum / n as f32, vsum / n as f32),
                    z: tri.z,
                });
            }
            x += 2;
        }
        y += 2;
    }
    quads
}

/// Counts the fragments (covered pixels) a triangle produces under a clip —
/// a cheaper call when only counts matter.
pub fn fragment_count(
    tri: &ScreenTriangle,
    clip: Option<&Rect>,
    frame_w: u32,
    frame_h: u32,
) -> u64 {
    let mut frags = 0u64;
    rasterize(tri, clip, frame_w, frame_h, |q| frags += u64::from(q.coverage()));
    frags
}

#[cfg(test)]
mod tests {
    use super::*;
    use oovr_scene::TextureId;

    fn tri(v: [(f32, f32); 3]) -> ScreenTriangle {
        ScreenTriangle {
            v: [Vec2::new(v[0].0, v[0].1), Vec2::new(v[1].0, v[1].1), Vec2::new(v[2].0, v[2].1)],
            uv: [Vec2::new(0.0, 0.0), Vec2::new(32.0, 0.0), Vec2::new(0.0, 32.0)],
            z: 0.5,
            texture: TextureId(0),
        }
    }

    #[test]
    fn right_triangle_covers_half_its_box() {
        let t = tri([(0.0, 0.0), (16.0, 0.0), (0.0, 16.0)]);
        let frags = fragment_count(&t, None, 64, 64);
        // Half of 256 pixels, within rasterization tolerance.
        assert!((100..=156).contains(&frags), "frags = {frags}");
    }

    #[test]
    fn full_square_from_two_triangles_covers_exactly() {
        let a = tri([(0.0, 0.0), (16.0, 0.0), (0.0, 16.0)]);
        let b = tri([(16.0, 0.0), (16.0, 16.0), (0.0, 16.0)]);
        let frags = fragment_count(&a, None, 64, 64) + fragment_count(&b, None, 64, 64);
        assert_eq!(frags, 256, "two triangles tile the 16×16 square");
    }

    #[test]
    fn clip_restricts_coverage() {
        let t = tri([(0.0, 0.0), (16.0, 0.0), (0.0, 16.0)]);
        let clip = Rect::new(0.0, 0.0, 8.0, 16.0);
        let clipped = fragment_count(&t, Some(&clip), 64, 64);
        let full = fragment_count(&t, None, 64, 64);
        assert!(clipped < full);
        assert!(clipped > 0);
    }

    #[test]
    fn disjoint_clip_is_empty() {
        let t = tri([(0.0, 0.0), (16.0, 0.0), (0.0, 16.0)]);
        let clip = Rect::new(32.0, 32.0, 8.0, 8.0);
        assert_eq!(fragment_count(&t, Some(&clip), 64, 64), 0);
    }

    #[test]
    fn quads_have_valid_masks_and_pixels() {
        let t = tri([(0.0, 0.0), (8.0, 0.0), (0.0, 8.0)]);
        let mut total = 0;
        rasterize(&t, None, 64, 64, |q| {
            assert!(q.mask != 0 && q.mask < 16);
            assert_eq!(q.x % 2, 0);
            assert_eq!(q.y % 2, 0);
            assert_eq!(q.pixels().count() as u32, q.coverage());
            for (px, py) in q.pixels() {
                assert!(px < 8 && py < 8);
            }
            total += q.coverage();
        });
        assert!(total > 0);
    }

    #[test]
    fn offscreen_triangle_emits_nothing() {
        let t = tri([(100.0, 100.0), (120.0, 100.0), (100.0, 120.0)]);
        assert_eq!(fragment_count(&t, None, 64, 64), 0);
    }

    #[test]
    fn uv_interpolation_increases_along_x() {
        let t = tri([(0.0, 0.0), (32.0, 0.0), (0.0, 32.0)]);
        let mut left_uv = None;
        let mut right_uv = None;
        rasterize(&t, None, 64, 64, |q| {
            if q.x == 0 && q.y == 0 {
                left_uv = Some(q.uv.x);
            }
            if q.x == 16 && q.y == 0 {
                right_uv = Some(q.uv.x);
            }
        });
        assert!(right_uv.unwrap() > left_uv.unwrap());
    }
}
