//! Quad-granularity tiled rasterization.
//!
//! The raster engine walks a triangle's bounding box in 2×2 pixel quads (the
//! granularity real GPUs shade and sample at), emitting covered quads with
//! interpolated texel coordinates. Triangles are clipped to an optional
//! screen rectangle (tile schemes, per-eye SMP clipping).
//!
//! # Tiled walk
//!
//! [`rasterize`] classifies 8×8-pixel tiles before touching their pixels.
//! The three edge functions are affine in the sample point (the bilinear
//! terms of the cross products cancel), so evaluating them at a tile's four
//! corner sample points bounds them over every sample point inside: a tile
//! whose corners are all strictly outside one edge is **trivially rejected**
//! (no per-pixel work), and a tile strictly inside all three is **trivially
//! accepted** (full 2×2 quads, no per-pixel edge or bounds tests). Corner
//! tests run in `f64` against a conservative margin covering both the `f64`
//! corner rounding and the worst-case `f32` rounding of the per-pixel test,
//! so a classification never contradicts what [`TriSampler::sample`] would
//! decide — borderline tiles simply fall back to the per-pixel **partial**
//! walk. Emission therefore stays bit-identical to the retained per-pixel
//! reference [`rasterize_scalar`] (quad order, masks, and UV bits), which
//! `tests/prop_differential.rs` holds over arbitrary triangles and clips.
//!
//! Coordinates are assumed to be screen-scale (|v| ≲ 1e6 pixels, true by
//! construction for every scene this simulator builds): the margin analysis
//! models `f32` rounding, not overflow of the edge products.

use std::sync::atomic::{AtomicU64, Ordering};

use oovr_scene::{Rect, ScreenTriangle, TriSampler, Vec2};

/// Tile edge length in pixels (4×4 quads).
const TILE: u32 = 8;

/// Minimum walk-rect span (either axis, in pixels) for the tiled path.
/// Below this the classifier setup costs more than the per-pixel tests it
/// could skip, so [`rasterize`] bails to [`rasterize_scalar`].
const MIN_TILED_SPAN: u32 = 16;

/// Widest frame (in tile columns) the tiled walk handles with its stack
/// buffer; wider frames fall back to the per-pixel reference.
const MAX_TILE_COLS: usize = 1024;

static TILES_ACCEPTED: AtomicU64 = AtomicU64::new(0);
static TILES_REJECTED: AtomicU64 = AtomicU64::new(0);
static TILES_PARTIAL: AtomicU64 = AtomicU64::new(0);

/// Process-wide tile-classification counters (diagnostics only; no
/// simulated state reads them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RasterTileStats {
    /// Tiles fully covered: emitted as whole quads with no per-pixel tests.
    pub accepted: u64,
    /// Tiles fully outside: skipped with no per-pixel work.
    pub rejected: u64,
    /// Tiles crossed by an edge (or clipped): walked per pixel.
    pub partial: u64,
}

/// Current process-wide raster tile counters.
pub fn raster_tile_stats() -> RasterTileStats {
    RasterTileStats {
        accepted: TILES_ACCEPTED.load(Ordering::Relaxed),
        rejected: TILES_REJECTED.load(Ordering::Relaxed),
        partial: TILES_PARTIAL.load(Ordering::Relaxed),
    }
}

/// A shaded 2×2 quad of fragments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuadFragment {
    /// X of the quad's top-left pixel (even).
    pub x: u32,
    /// Y of the quad's top-left pixel (even).
    pub y: u32,
    /// Coverage mask: bit 0 = (x,y), bit 1 = (x+1,y), bit 2 = (x,y+1),
    /// bit 3 = (x+1,y+1).
    pub mask: u8,
    /// Texel coordinates at the quad centroid (mean of covered samples).
    pub uv: Vec2,
    /// Depth of the quad (constant per triangle in this model).
    pub z: f32,
}

impl QuadFragment {
    /// Number of covered fragments in the quad (1–4).
    pub fn coverage(&self) -> u32 {
        self.mask.count_ones()
    }

    /// Iterates the covered pixel coordinates.
    pub fn pixels(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..4u32)
            .filter(|i| self.mask & (1 << i) != 0)
            .map(move |i| (self.x + (i & 1), self.y + (i >> 1)))
    }
}

/// Pixel bounds of the walk after bbox clamping and clipping:
/// `[x0, x1) × [y0, y1)` are the sampled pixels, `(qx0, qy0)` the even quad
/// origin. `None` when the clipped bounds are empty.
fn walk_bounds(
    tri: &ScreenTriangle,
    clip: Option<&Rect>,
    frame_w: u32,
    frame_h: u32,
) -> Option<(u32, u32, u32, u32, u32, u32)> {
    let (mut x0, mut y0, mut x1, mut y1) = tri.bounds_clamped(frame_w, frame_h);
    if let Some(c) = clip {
        x0 = x0.max(c.x.floor().max(0.0) as u32);
        y0 = y0.max(c.y.floor().max(0.0) as u32);
        x1 = x1.min(c.x1().ceil().max(0.0) as u32);
        y1 = y1.min(c.y1().ceil().max(0.0) as u32);
    }
    if x0 >= x1 || y0 >= y1 {
        return None;
    }
    Some((x0, y0, x1, y1, x0 & !1, y0 & !1))
}

/// One 2×2 quad of the per-pixel walk: samples each in-bounds pixel and
/// emits the covered mask. This is the reference emission; the tiled walk's
/// accepted tiles must (and provably do) produce the same bits.
#[inline]
fn emit_quad_scalar(
    sampler: &TriSampler<'_>,
    z: f32,
    x: u32,
    y: u32,
    bounds: (u32, u32, u32, u32),
    quads: &mut u64,
    sink: &mut impl FnMut(QuadFragment),
) {
    let (x0, y0, x1, y1) = bounds;
    let mut mask = 0u8;
    let mut usum = 0.0f32;
    let mut vsum = 0.0f32;
    let mut n = 0u32;
    for i in 0..4u32 {
        let px = x + (i & 1);
        let py = y + (i >> 1);
        if px < x0 || px >= x1 || py < y0 || py >= y1 {
            continue;
        }
        if let Some(uv) = sampler.sample(px, py) {
            mask |= 1 << i;
            usum += uv.x;
            vsum += uv.y;
            n += 1;
        }
    }
    if mask != 0 {
        *quads += 1;
        sink(QuadFragment { x, y, mask, uv: Vec2::new(usum / n as f32, vsum / n as f32), z });
    }
}

/// Retained per-pixel reference rasterizer: the pre-tiling walk, kept as
/// the scalar model the tiled [`rasterize`] is differentially tested
/// against (and as the fallback for frames wider than the tiled walk's
/// stack buffer).
pub fn rasterize_scalar(
    tri: &ScreenTriangle,
    clip: Option<&Rect>,
    frame_w: u32,
    frame_h: u32,
    mut sink: impl FnMut(QuadFragment),
) -> u64 {
    let Some((x0, y0, x1, y1, qx0, qy0)) = walk_bounds(tri, clip, frame_w, frame_h) else {
        return 0;
    };
    let sampler = tri.sampler();
    scalar_walk(&sampler, tri.z, (x0, y0, x1, y1), qx0, qy0, &mut sink)
}

/// Shared inner walk of [`rasterize_scalar`]: quad-steps the walk rect with
/// per-pixel coverage tests. Takes an already-built sampler and bounds so
/// [`rasterize`]'s bail-outs (small or over-wide triangles) reuse theirs
/// instead of redoing `walk_bounds` + sampler setup per triangle.
fn scalar_walk(
    sampler: &TriSampler<'_>,
    z: f32,
    bounds: (u32, u32, u32, u32),
    qx0: u32,
    qy0: u32,
    sink: &mut impl FnMut(QuadFragment),
) -> u64 {
    let (_, _, x1, y1) = bounds;
    let mut quads = 0;
    let mut y = qy0;
    while y < y1 {
        let mut x = qx0;
        while x < x1 {
            emit_quad_scalar(sampler, z, x, y, bounds, &mut quads, sink);
            x += 2;
        }
        y += 2;
    }
    quads
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TileClass {
    Reject,
    Accept,
    Partial,
}

/// Conservative `f64` tile classifier over the triangle's edge functions.
///
/// The per-pixel test decides coverage from the **`f32`-computed** edge
/// numerators `n0`, `n1` and from `w2 = 1 - n0/d - n1/d`; the classifier
/// must never contradict it. Each edge function is exactly affine in the
/// sample point, so its real value over a tile is bounded by its values at
/// the four corner sample points. Corner values are computed in `f64`
/// (error ~2⁻⁵³ relative, absorbed by the margin) and compared against `MARGIN_EPS ×
/// (magnitude bound of the f32 intermediates)`, which over-bounds the
/// accumulated `f32` rounding (≲ 8 ε₃₂ relative) of the per-pixel
/// evaluation with a 4× safety factor. A tile classifies as
/// `Reject`/`Accept` only when every corner clears the margin; anything
/// within it stays `Partial` and is decided per pixel.
///
/// The margins are hoisted: magnitude bounds are taken once over the whole
/// walk rect (not per tile), so the per-tile work is four shared corner
/// evaluations and a handful of min/max/compares. Rect-wide margins are
/// larger than per-tile ones, but only by the rect/tile magnitude ratio —
/// sub-pixel in the demotion band they induce — and demotion is always
/// sound (a `Partial` tile is decided exactly, per pixel).
struct TileClassifier {
    ax: f64,
    ay: f64,
    bx: f64,
    by: f64,
    cx: f64,
    cy: f64,
    d: f64,
    /// +1 for counter-clockwise winding, −1 for clockwise: `s·nᵢ ≥ 0` is
    /// then the inside test for every edge, matching the sign dance in
    /// [`TriSampler::sample`].
    s: f64,
    /// Margin for edge 0 (`n0`), valid over the whole walk rect.
    e0: f64,
    /// Margin for edge 1 (`n1`).
    e1: f64,
    /// Margin for the third test (`w2`, scaled back by `|d|`).
    e2: f64,
}

/// Margin per unit of magnitude bound: 32 ε₃₂ against a worst-case
/// per-pixel `f32` error of ≲ 8 ε₃₂ relative to the same bound.
const MARGIN_EPS: f64 = 32.0 * (f32::EPSILON as f64);

/// One classified corner: `(s·n0, s·n1, s·n2)` at a corner sample point.
type Corner = (f64, f64, f64);

impl TileClassifier {
    /// Builds the classifier with margins valid over the walk rect whose
    /// corner sample coordinates span `sx × sy` (each `[lo, hi]`).
    fn new(tri: &ScreenTriangle, ccw: bool, sx: [f64; 2], sy: [f64; 2]) -> Self {
        let [a, b, c] = tri.v;
        let (ax, ay) = (f64::from(a.x), f64::from(a.y));
        let (bx, by) = (f64::from(b.x), f64::from(b.y));
        let (cx, cy) = (f64::from(c.x), f64::from(c.y));
        let d = f64::from(tri.double_area());
        // Magnitude bounds of the edge-product factors over the rect (each
        // factor is monotone in one coordinate, so the extremes bound it).
        let mag = |v: f64, lohi: [f64; 2]| (v - lohi[0]).abs().max((v - lohi[1]).abs());
        let m_ax = mag(ax, sx);
        let m_ay = mag(ay, sy);
        let m_bx = mag(bx, sx);
        let m_by = mag(by, sy);
        let m_cx = mag(cx, sx);
        let m_cy = mag(cy, sy);
        let e0 = MARGIN_EPS * (m_bx * m_cy + m_cx * m_by);
        let e1 = MARGIN_EPS * (m_cx * m_ay + m_ax * m_cy);
        // w2's test divides by d, so its margin carries the n0/n1 errors
        // plus the division/subtraction rounding scaled back by |d|. The
        // same products that bound the errors also bound |n0| and |n1|
        // themselves (`|n0| ≤ e0 / MARGIN_EPS`), folding the bound to
        // `2(e0 + e1) + MARGIN_EPS·|d|`.
        let e2 = 2.0 * (e0 + e1) + MARGIN_EPS * d.abs();
        TileClassifier { ax, ay, bx, by, cx, cy, d, s: if ccw { 1.0 } else { -1.0 }, e0, e1, e2 }
    }

    /// Evaluates the three signed edge functions at one corner sample
    /// point. Corners are shared: a tile's right pair is its neighbor's
    /// left pair, so the band loop evaluates each corner once.
    #[inline]
    fn corner(&self, x: f64, y: f64) -> Corner {
        let n0 = (self.bx - x) * (self.cy - y) - (self.cx - x) * (self.by - y);
        let n1 = (self.cx - x) * (self.ay - y) - (self.ax - x) * (self.cy - y);
        let n2 = self.d - n0 - n1;
        (self.s * n0, self.s * n1, self.s * n2)
    }

    /// Classifies the tile spanned by corner pairs `l` (left, top/bottom)
    /// and `r` (right, top/bottom).
    #[inline]
    fn classify(&self, l: [Corner; 2], r: [Corner; 2]) -> TileClass {
        let max0 = l[0].0.max(l[1].0).max(r[0].0).max(r[1].0);
        let max1 = l[0].1.max(l[1].1).max(r[0].1).max(r[1].1);
        let max2 = l[0].2.max(l[1].2).max(r[0].2).max(r[1].2);
        if max0 < -self.e0 || max1 < -self.e1 || max2 < -self.e2 {
            return TileClass::Reject;
        }
        let min0 = l[0].0.min(l[1].0).min(r[0].0).min(r[1].0);
        let min1 = l[0].1.min(l[1].1).min(r[0].1).min(r[1].1);
        let min2 = l[0].2.min(l[1].2).min(r[0].2).min(r[1].2);
        if min0 > self.e0 && min1 > self.e1 && min2 > self.e2 {
            return TileClass::Accept;
        }
        TileClass::Partial
    }
}

/// Rasterizes `tri` clipped to `clip` (in stereo-frame pixels) over a frame
/// of `frame_w × frame_h`, invoking `sink` for every covered quad.
///
/// Emission (quad order, coverage masks, UV bits) is bit-identical to the
/// per-pixel reference [`rasterize_scalar`]; the tiled walk only changes
/// how much arithmetic decides it (see the [module docs](self)).
///
/// Returns the number of covered quads emitted.
pub fn rasterize(
    tri: &ScreenTriangle,
    clip: Option<&Rect>,
    frame_w: u32,
    frame_h: u32,
    mut sink: impl FnMut(QuadFragment),
) -> u64 {
    let Some((x0, y0, x1, y1, qx0, qy0)) = walk_bounds(tri, clip, frame_w, frame_h) else {
        return 0;
    };
    let sampler = tri.sampler();
    // Degenerate triangles cover no sample; the reference walk would emit
    // nothing after testing every pixel.
    if sampler.is_degenerate() {
        return 0;
    }
    // Small triangles don't amortize even the shared-corner classifier:
    // bail to the per-pixel reference below a one-to-two-tile footprint.
    if x1 - x0 < MIN_TILED_SPAN || y1 - y0 < MIN_TILED_SPAN {
        return scalar_walk(&sampler, tri.z, (x0, y0, x1, y1), qx0, qy0, &mut sink);
    }
    let n_cols = ((x1 - qx0) as usize).div_ceil(TILE as usize);
    if n_cols > MAX_TILE_COLS {
        return scalar_walk(&sampler, tri.z, (x0, y0, x1, y1), qx0, qy0, &mut sink);
    }
    let n_bands = ((y1 - qy0) as usize).div_ceil(TILE as usize);
    // Corner sample coordinates walk the tile grid at pixel multiples of
    // `TILE`. They bracket every in-tile sample point because the f32
    // image of `px + 0.5 + ε` is monotone in `px`; the right/bottom
    // corners of edge tiles overshoot the walk rect by up to a tile, which
    // is sound (corner extremes still bound the contained samples, so the
    // overshoot can only demote) and is what makes corner sharing work.
    let corner_x = |t: usize| f64::from((qx0 + TILE * t as u32) as f32 + 0.5 + 1.0 / 64.0);
    let corner_y = |py: u32| f64::from(py as f32 + 0.5 + 1.0 / 128.0);
    let classifier = TileClassifier::new(
        tri,
        sampler.is_ccw(),
        [corner_x(0), corner_x(n_cols)],
        [corner_y(qy0), corner_y(qy0 + TILE * n_bands as u32)],
    );
    let mut cls = [TileClass::Partial; MAX_TILE_COLS];
    let (mut accepted, mut rejected, mut partial) = (0u64, 0u64, 0u64);
    let mut quads = 0u64;
    let bounds = (x0, y0, x1, y1);
    let mut ty = qy0;
    while ty < y1 {
        let band_y1 = (ty + TILE).min(y1);
        let yt = corner_y(ty);
        let yb = corner_y(ty + TILE);
        let x_left = corner_x(0);
        let mut left = [classifier.corner(x_left, yt), classifier.corner(x_left, yb)];
        for (t, slot) in cls.iter_mut().enumerate().take(n_cols) {
            let xr = corner_x(t + 1);
            let right = [classifier.corner(xr, yt), classifier.corner(xr, yb)];
            let mut c = classifier.classify(left, right);
            left = right;
            let tx0 = qx0 + TILE * t as u32;
            // The accepted fast path emits full 8×8 tiles; a tile truncated
            // by the walk bounds keeps its per-pixel bounds tests.
            if c == TileClass::Accept
                && !(tx0 >= x0 && tx0 + TILE <= x1 && ty >= y0 && ty + TILE <= y1)
            {
                c = TileClass::Partial;
            }
            *slot = c;
            match c {
                TileClass::Accept => accepted += 1,
                TileClass::Reject => rejected += 1,
                TileClass::Partial => partial += 1,
            }
        }
        let mut y = ty;
        while y < band_y1 {
            for (t, &c) in cls.iter().enumerate().take(n_cols) {
                let tx0 = qx0 + TILE * t as u32;
                let tx1 = (tx0 + TILE).min(x1);
                match c {
                    TileClass::Reject => {}
                    TileClass::Accept => {
                        // Every sample in the tile is covered: emit full
                        // quads, accumulating the four UVs in the same
                        // order (and with the same f32 sums) as the
                        // per-pixel walk would.
                        let mut x = tx0;
                        while x < tx1 {
                            let s0 = sampler.sample_covered(x, y);
                            let s1 = sampler.sample_covered(x + 1, y);
                            let s2 = sampler.sample_covered(x, y + 1);
                            let s3 = sampler.sample_covered(x + 1, y + 1);
                            let mut usum = 0.0f32;
                            let mut vsum = 0.0f32;
                            usum += s0.x;
                            vsum += s0.y;
                            usum += s1.x;
                            vsum += s1.y;
                            usum += s2.x;
                            vsum += s2.y;
                            usum += s3.x;
                            vsum += s3.y;
                            quads += 1;
                            sink(QuadFragment {
                                x,
                                y,
                                mask: 0b1111,
                                uv: Vec2::new(usum / 4.0, vsum / 4.0),
                                z: tri.z,
                            });
                            x += 2;
                        }
                    }
                    TileClass::Partial => {
                        let mut x = tx0;
                        while x < tx1 {
                            emit_quad_scalar(&sampler, tri.z, x, y, bounds, &mut quads, &mut sink);
                            x += 2;
                        }
                    }
                }
            }
            y += 2;
        }
        ty += TILE;
    }
    if accepted > 0 {
        TILES_ACCEPTED.fetch_add(accepted, Ordering::Relaxed);
    }
    if rejected > 0 {
        TILES_REJECTED.fetch_add(rejected, Ordering::Relaxed);
    }
    if partial > 0 {
        TILES_PARTIAL.fetch_add(partial, Ordering::Relaxed);
    }
    quads
}

/// Counts the fragments (covered pixels) a triangle produces under a clip —
/// a cheaper call when only counts matter.
pub fn fragment_count(
    tri: &ScreenTriangle,
    clip: Option<&Rect>,
    frame_w: u32,
    frame_h: u32,
) -> u64 {
    let mut frags = 0u64;
    rasterize(tri, clip, frame_w, frame_h, |q| frags += u64::from(q.coverage()));
    frags
}

#[cfg(test)]
mod tests {
    use super::*;
    use oovr_scene::TextureId;

    fn tri(v: [(f32, f32); 3]) -> ScreenTriangle {
        ScreenTriangle {
            v: [Vec2::new(v[0].0, v[0].1), Vec2::new(v[1].0, v[1].1), Vec2::new(v[2].0, v[2].1)],
            uv: [Vec2::new(0.0, 0.0), Vec2::new(32.0, 0.0), Vec2::new(0.0, 32.0)],
            z: 0.5,
            texture: TextureId(0),
        }
    }

    /// Byte-level emission record for exact tiled-vs-scalar comparison.
    fn emissions(
        t: &ScreenTriangle,
        clip: Option<&Rect>,
        w: u32,
        h: u32,
        tiled: bool,
    ) -> Vec<(u32, u32, u8, u32, u32, u32)> {
        let mut out = Vec::new();
        let sink = |q: QuadFragment| {
            out.push((q.x, q.y, q.mask, q.uv.x.to_bits(), q.uv.y.to_bits(), q.z.to_bits()));
        };
        if tiled {
            rasterize(t, clip, w, h, sink);
        } else {
            rasterize_scalar(t, clip, w, h, sink);
        }
        out
    }

    fn assert_tiled_matches_scalar(t: &ScreenTriangle, clip: Option<&Rect>, w: u32, h: u32) {
        assert_eq!(
            emissions(t, clip, w, h, true),
            emissions(t, clip, w, h, false),
            "tiled emission diverged for {t:?} clip {clip:?}"
        );
    }

    #[test]
    fn right_triangle_covers_half_its_box() {
        let t = tri([(0.0, 0.0), (16.0, 0.0), (0.0, 16.0)]);
        let frags = fragment_count(&t, None, 64, 64);
        // Half of 256 pixels, within rasterization tolerance.
        assert!((100..=156).contains(&frags), "frags = {frags}");
    }

    #[test]
    fn full_square_from_two_triangles_covers_exactly() {
        let a = tri([(0.0, 0.0), (16.0, 0.0), (0.0, 16.0)]);
        let b = tri([(16.0, 0.0), (16.0, 16.0), (0.0, 16.0)]);
        let frags = fragment_count(&a, None, 64, 64) + fragment_count(&b, None, 64, 64);
        assert_eq!(frags, 256, "two triangles tile the 16×16 square");
    }

    #[test]
    fn clip_restricts_coverage() {
        let t = tri([(0.0, 0.0), (16.0, 0.0), (0.0, 16.0)]);
        let clip = Rect::new(0.0, 0.0, 8.0, 16.0);
        let clipped = fragment_count(&t, Some(&clip), 64, 64);
        let full = fragment_count(&t, None, 64, 64);
        assert!(clipped < full);
        assert!(clipped > 0);
    }

    #[test]
    fn disjoint_clip_is_empty() {
        let t = tri([(0.0, 0.0), (16.0, 0.0), (0.0, 16.0)]);
        let clip = Rect::new(32.0, 32.0, 8.0, 8.0);
        assert_eq!(fragment_count(&t, Some(&clip), 64, 64), 0);
    }

    #[test]
    fn quads_have_valid_masks_and_pixels() {
        let t = tri([(0.0, 0.0), (8.0, 0.0), (0.0, 8.0)]);
        let mut total = 0;
        rasterize(&t, None, 64, 64, |q| {
            assert!(q.mask != 0 && q.mask < 16);
            assert_eq!(q.x % 2, 0);
            assert_eq!(q.y % 2, 0);
            assert_eq!(q.pixels().count() as u32, q.coverage());
            for (px, py) in q.pixels() {
                assert!(px < 8 && py < 8);
            }
            total += q.coverage();
        });
        assert!(total > 0);
    }

    #[test]
    fn offscreen_triangle_emits_nothing() {
        let t = tri([(100.0, 100.0), (120.0, 100.0), (100.0, 120.0)]);
        assert_eq!(fragment_count(&t, None, 64, 64), 0);
    }

    #[test]
    fn uv_interpolation_increases_along_x() {
        let t = tri([(0.0, 0.0), (32.0, 0.0), (0.0, 32.0)]);
        let mut left_uv = None;
        let mut right_uv = None;
        rasterize(&t, None, 64, 64, |q| {
            if q.x == 0 && q.y == 0 {
                left_uv = Some(q.uv.x);
            }
            if q.x == 16 && q.y == 0 {
                right_uv = Some(q.uv.x);
            }
        });
        assert!(right_uv.unwrap() > left_uv.unwrap());
    }

    #[test]
    fn tiled_matches_scalar_on_assorted_triangles() {
        let cases = [
            tri([(0.0, 0.0), (16.0, 0.0), (0.0, 16.0)]),
            tri([(0.0, 0.0), (64.0, 0.0), (0.0, 64.0)]),
            tri([(-20.0, -20.0), (90.0, 3.0), (5.0, 90.0)]),
            tri([(3.3, 7.7), (3.9, 7.1), (3.5, 8.2)]), // sub-pixel sliver
            tri([(0.0, 0.0), (64.0, 0.1), (0.0, 0.2)]), // thin horizontal
            tri([(10.0, 10.0), (20.0, 20.0), (30.0, 30.0)]), // degenerate
            tri([(5.0, 5.0), (5.0, 60.0), (60.0, 5.0)]), // clockwise
            tri([(31.0, 1.0), (62.5, 61.0), (1.5, 61.5)]),
        ];
        let clips =
            [None, Some(Rect::new(8.0, 8.0, 30.0, 30.0)), Some(Rect::new(3.0, 5.0, 61.0, 59.0))];
        for t in &cases {
            for clip in &clips {
                assert_tiled_matches_scalar(t, clip.as_ref(), 64, 64);
            }
        }
    }

    #[test]
    fn large_triangle_trivially_accepts_interior_tiles() {
        let before = raster_tile_stats();
        let t = tri([(0.0, 0.0), (128.0, 0.0), (0.0, 128.0)]);
        assert_tiled_matches_scalar(&t, None, 128, 128);
        let after = raster_tile_stats();
        assert!(after.accepted > before.accepted, "interior tiles should trivially accept");
        assert!(after.rejected > before.rejected, "outside-the-hypotenuse tiles should reject");
    }
}
