//! Scene memory layout: where vertex buffers, textures and the framebuffer
//! live in the unified multi-GPM address space.
//!
//! The graphics driver pre-allocates these before rendering (§2.2 of the
//! paper); *placement* (which GPM's DRAM holds which page) is decided by the
//! NUMA policies in `oovr-mem`, not by this layout.

use oovr_mem::address::AddressSpace;
use oovr_mem::{Addr, Region};
use oovr_scene::{Scene, TextureId};

/// Bytes per framebuffer pixel (RGBA8).
pub const FB_BYTES_PER_PIXEL: u64 = 4;

/// Bytes per depth-buffer sample (D32).
pub const ZB_BYTES_PER_PIXEL: u64 = 4;

/// Address-space layout for one scene.
#[derive(Debug, Clone)]
pub struct SceneLayout {
    vertex_regions: Vec<Region>,
    texture_regions: Vec<Region>,
    framebuffer: Region,
    zbuffer: Region,
    stereo_width: u64,
    command_region: Region,
    /// Per-GPM color scratch buffers for deferred (composed) color output.
    scratch: Vec<Region>,
}

impl SceneLayout {
    /// Allocates regions for every object's vertex buffer, every texture,
    /// the stereo framebuffer + depth buffer, and one color scratch buffer
    /// per GPM (used by schemes that compose explicitly).
    pub fn new(scene: &Scene, n_gpms: usize) -> Self {
        let mut space = AddressSpace::new();
        let vertex_regions =
            scene.objects().iter().map(|o| space.alloc(o.vertex_count() * 32)).collect();
        let texture_regions =
            scene.textures().iter().map(|t| space.alloc(t.size_bytes())).collect();
        let res = scene.resolution();
        let stereo_pixels = res.stereo_pixels();
        let framebuffer = space.alloc(stereo_pixels * FB_BYTES_PER_PIXEL);
        let zbuffer = space.alloc(stereo_pixels * ZB_BYTES_PER_PIXEL);
        let command_region = space.alloc(scene.draw_count() as u64 * 1024);
        let scratch =
            (0..n_gpms).map(|_| space.alloc(stereo_pixels * FB_BYTES_PER_PIXEL)).collect();
        SceneLayout {
            vertex_regions,
            texture_regions,
            framebuffer,
            zbuffer,
            stereo_width: u64::from(res.stereo_width()),
            command_region,
            scratch,
        }
    }

    /// The color scratch region of one GPM.
    pub fn scratch(&self, gpm: usize) -> Region {
        self.scratch[gpm]
    }

    /// Address of the scratch color sample of GPM `gpm` at pixel `(x, y)`.
    pub fn scratch_addr(&self, gpm: usize, x: u32, y: u32) -> Addr {
        self.scratch[gpm].at((u64::from(y) * self.stereo_width + u64::from(x)) * FB_BYTES_PER_PIXEL)
    }

    /// Vertex buffer region of an object.
    pub fn vertex_region(&self, object: usize) -> Region {
        self.vertex_regions[object]
    }

    /// Memory region of a texture.
    pub fn texture_region(&self, tex: TextureId) -> Region {
        self.texture_regions[tex.0 as usize]
    }

    /// The stereo color framebuffer region.
    pub fn framebuffer(&self) -> Region {
        self.framebuffer
    }

    /// The stereo depth buffer region.
    pub fn zbuffer(&self) -> Region {
        self.zbuffer
    }

    /// The command stream region.
    pub fn command_region(&self) -> Region {
        self.command_region
    }

    /// Address of the color sample at stereo-frame pixel `(x, y)`.
    pub fn fb_addr(&self, x: u32, y: u32) -> Addr {
        self.framebuffer.at((u64::from(y) * self.stereo_width + u64::from(x)) * FB_BYTES_PER_PIXEL)
    }

    /// Address of the depth sample at stereo-frame pixel `(x, y)`.
    pub fn zb_addr(&self, x: u32, y: u32) -> Addr {
        self.zbuffer.at((u64::from(y) * self.stereo_width + u64::from(x)) * ZB_BYTES_PER_PIXEL)
    }

    /// Address of texel `(tx, ty)` of texture `tex` (wrapping is handled by
    /// the caller via [`oovr_scene::TextureDesc::texel_offset`]).
    pub fn texel_addr(&self, tex: TextureId, offset: u64) -> Addr {
        self.texture_regions[tex.0 as usize].at(offset)
    }

    /// Sub-region of the framebuffer covering full pixel rows `[y0, y1)`,
    /// used to pin horizontal partitions. (Vertical partitions are expressed
    /// per-write instead, since rows interleave owners.)
    pub fn fb_rows(&self, y0: u32, y1: u32) -> Region {
        let base = self.framebuffer.base + u64::from(y0) * self.stereo_width * FB_BYTES_PER_PIXEL;
        let size = u64::from(y1 - y0) * self.stereo_width * FB_BYTES_PER_PIXEL;
        Region { base, size }
    }
}

/// Functional stereo depth buffer: resolves per-pixel visibility so color
/// traffic reflects the Z test, deterministically across schemes.
#[derive(Debug, Clone)]
pub struct ZBuffer {
    width: u32,
    height: u32,
    depth: Vec<f32>,
}

impl ZBuffer {
    /// Creates a cleared (far plane) depth buffer for a stereo frame of
    /// `width × height` pixels.
    pub fn new(width: u32, height: u32) -> Self {
        ZBuffer {
            width,
            height,
            depth: [f32::INFINITY].repeat((width as usize) * (height as usize)),
        }
    }

    /// Stereo frame width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Stereo frame height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Depth-tests pixel `(x, y)` against `z`; on pass, writes `z` and
    /// returns `true`. Out-of-bounds pixels fail.
    pub fn test_and_set(&mut self, x: u32, y: u32, z: f32) -> bool {
        if x >= self.width || y >= self.height {
            return false;
        }
        let idx = y as usize * self.width as usize + x as usize;
        if z < self.depth[idx] {
            self.depth[idx] = z;
            true
        } else {
            false
        }
    }

    /// Clears to the far plane.
    pub fn clear(&mut self) {
        self.depth.fill(f32::INFINITY);
    }

    /// Fraction of pixels covered by at least one surviving fragment.
    pub fn coverage(&self) -> f64 {
        let covered = self.depth.iter().filter(|d| d.is_finite()).count();
        covered as f64 / self.depth.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oovr_scene::SceneBuilder;

    fn scene() -> Scene {
        SceneBuilder::new(64, 64)
            .texture("t", 64, 64)
            .object("o", |o| {
                o.grid(2, 2).texture("t", 1.0);
            })
            .build()
    }

    #[test]
    fn regions_are_disjoint_and_sized() {
        let s = scene();
        let l = SceneLayout::new(&s, 4);
        let v = l.vertex_region(0);
        let t = l.texture_region(TextureId(0));
        assert_eq!(v.size, 9 * 32);
        assert_eq!(t.size, 64 * 64 * 4);
        assert!(v.end() <= t.base);
        assert_eq!(l.framebuffer().size, 64 * 64 * 2 * 4);
        assert_eq!(l.zbuffer().size, 64 * 64 * 2 * 4);
    }

    #[test]
    fn fb_addressing_is_row_major_stereo() {
        let s = scene();
        let l = SceneLayout::new(&s, 4);
        let a0 = l.fb_addr(0, 0);
        let a1 = l.fb_addr(1, 0);
        let arow = l.fb_addr(0, 1);
        assert_eq!(a1.0 - a0.0, 4);
        assert_eq!(arow.0 - a0.0, 128 * 4, "stereo width is 128");
    }

    #[test]
    fn fb_rows_partition() {
        let s = scene();
        let l = SceneLayout::new(&s, 4);
        let top = l.fb_rows(0, 32);
        let bottom = l.fb_rows(32, 64);
        assert_eq!(top.end(), bottom.base);
        assert_eq!(top.size + bottom.size, l.framebuffer().size);
    }

    #[test]
    fn zbuffer_nearer_wins() {
        let mut z = ZBuffer::new(4, 4);
        assert!(z.test_and_set(1, 1, 0.5));
        assert!(!z.test_and_set(1, 1, 0.7), "farther fragment fails");
        assert!(z.test_and_set(1, 1, 0.2), "nearer fragment passes");
        assert!(!z.test_and_set(9, 0, 0.1), "out of bounds fails");
        assert!(z.coverage() > 0.0);
        z.clear();
        assert_eq!(z.coverage(), 0.0);
    }
}
