//! # oovr-gpu
//!
//! A discrete-event, cycle-accounting simulator of the future NUMA-based
//! multi-GPU system of the OO-VR paper (Xie et al., ISCA 2019) — the
//! substitute for the authors' extended ATTILA-sim (see `DESIGN.md` for the
//! substitution argument).
//!
//! The model follows Table 2: 4 GPMs at 1 GHz, 8 SMs × 64 cores each,
//! 8 ROPs × 4 px/cycle, 16×16 tiled rasterization, 128 KiB unified L1 per
//! SM, a 4 MiB 16-way L2, 1 TB/s local DRAM and 64 GB/s pairwise NVLinks.
//! The rendering pipeline implements the paper's Fig. 2: geometry → SMP
//! multi-projection → rasterization → fragment → color output.
//!
//! Entry point: [`Executor`] — schedulers submit [`RenderUnit`]s per GPM and
//! finish with a [`Composition`] pass to obtain a [`FrameReport`].
//!
//! ```
//! use oovr_gpu::{ColorMode, Composition, Executor, FbOrg, GpuConfig, RenderUnit};
//! use oovr_mem::Placement;
//! use oovr_scene::benchmarks;
//!
//! let scene = benchmarks::hl2_640().scaled(0.1).build();
//! let mut ex = Executor::new(
//!     GpuConfig::default(),
//!     &scene,
//!     Placement::FirstTouch,
//!     FbOrg::InterleavedPages,
//!     ColorMode::Direct,
//! );
//! for obj in scene.objects() {
//!     let gpm = ex.least_loaded_gpm();
//!     ex.exec_unit(gpm, &RenderUnit::smp(obj.id()));
//! }
//! let report = ex.finish("demo", Composition::None);
//! assert!(report.frame_cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod energy;
pub mod error;
pub mod executor;
pub mod fault;
pub mod layout;
pub mod raster;
pub mod report;
pub mod sample;
pub mod tasks;
mod trace;

pub use config::{GpuConfig, ModelParams, VSYNC_90HZ_CYCLES};
pub use energy::EnergySummary;
pub use error::GpuError;
pub use executor::{
    partition_of_column, partition_of_row, ColorMode, Composition, Executor, FbOrg, FrameMark,
    GpmState, RunningUnit,
};
pub use fault::{CompiledFault, FaultPlan, FaultScenario, VR_DEADLINE_CYCLES};
pub use layout::{SceneLayout, ZBuffer};
pub use oovr_mem::RateSchedule;
pub use raster::{
    fragment_count, raster_tile_stats, rasterize, rasterize_scalar, QuadFragment, RasterTileStats,
};
pub use report::{FrameReport, WorkCounts, IMBALANCE_SENTINEL};
pub use tasks::{eye_clip, geometry_work, EyeMode, GeometryWork, RenderUnit};
