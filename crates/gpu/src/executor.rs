//! The multi-GPM discrete-event executor.
//!
//! Schemes (the baselines in `oovr-frameworks` and OO-VR in `oovr`) submit
//! [`RenderUnit`]s to GPMs; the executor runs each unit through the pipeline
//! (command → geometry → SMP → raster → fragment → ROP), generating real
//! cache/NUMA memory traffic through [`oovr_mem::MemorySystem`] and applying
//! bandwidth contention per work quantum through [`oovr_mem::NumaTiming`].
//!
//! Time model: each GPM owns a clock. A unit executes as a sequence of
//! quanta; each quantum's duration is `max(compute, memory-ready)`, where
//! compute is the *slowest pipeline stage* touched by the quantum (stages
//! pipeline against each other) and memory-ready comes from the FIFO
//! bandwidth servers. Callers should execute units across GPMs in roughly
//! global time order (see [`Executor::least_loaded_gpm`]) so that shared
//! links see interleaved demand, as they would in hardware.

use oovr_mem::{
    Cycle, GpmId, MemorySystem, NumaTiming, Placement, RateSchedule, Traffic, TrafficClass,
};
use oovr_scene::{ObjectId, Resolution, Scene};
use oovr_trace::{Phase, Recorder, TraceConfig, TraceEvent};

use crate::config::GpuConfig;
use crate::error::GpuError;
use crate::layout::{SceneLayout, ZBuffer, FB_BYTES_PER_PIXEL};
use crate::raster::rasterize;
use crate::report::{FrameReport, WorkCounts};
use crate::tasks::{eye_clip, geometry_work, RenderUnit};
use crate::trace::ExecTracer;

/// How color outputs reach the final frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColorMode {
    /// ROPs write straight to the framebuffer; page placement decides
    /// locality (baseline, AFR, tile schemes).
    Direct,
    /// ROPs write to a per-GPM local scratch; an explicit composition pass
    /// later moves pixels to the framebuffer (object-level SFR, OO-VR).
    Deferred,
}

/// Final-frame composition strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Composition {
    /// No explicit composition (color was written in place).
    None,
    /// Conventional object-level SFR: every worker ships its outputs to the
    /// master node, whose ROPs assemble the frame alone (§4.3).
    Master(GpmId),
    /// OO-VR's distributed hardware composition: the framebuffer is split
    /// into vertical per-GPM partitions and all ROPs compose in parallel
    /// (§5.3, Fig. 14).
    Distributed,
}

/// Framebuffer organization: how FB/Z pages map onto GPM memories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FbOrg {
    /// Pages striped across GPMs (the baseline's single-GPU view).
    InterleavedPages,
    /// Whole framebuffer homed at one GPM (master-node composition).
    Single(GpmId),
    /// Vertical column partitions, one per GPM (tile-V, OO-VR's DHC).
    Columns,
    /// Horizontal row partitions, one per GPM (tile-H).
    Rows,
}

/// Per-GPM execution state, including the runtime counters the OO-VR
/// distribution engine reads (#tv and #pixel of Eq. 3).
#[derive(Debug, Clone, Copy, Default)]
pub struct GpmState {
    /// This GPM's clock.
    pub now: Cycle,
    /// Busy cycles accumulated.
    pub busy: Cycle,
    /// Transformed vertices counter (`#tv`).
    pub transformed_vertices: u64,
    /// Shaded pixel counter (`#pixel`).
    pub shaded_pixels: u64,
    /// Triangles processed (post-SMP).
    pub triangles: u64,
    /// Units completed.
    pub units_done: u32,
    /// Pure compute cycles of geometry quanta (diagnostics).
    pub geom_compute: u64,
    /// Pure compute cycles of fragment quanta (diagnostics).
    pub frag_compute: u64,
    /// Cycles waiting on memory beyond compute (diagnostics).
    pub stall_cycles: u64,
    /// Number of advance() quanta (diagnostics).
    pub quanta: u64,
}

/// Snapshot of cumulative executor state at a frame boundary; created by
/// [`Executor::begin_frame`] and consumed by [`Executor::finish_frame`].
#[derive(Debug, Clone)]
pub struct FrameMark {
    traffic: Traffic,
    counts: WorkCounts,
    busy: Vec<Cycle>,
    start: Cycle,
}

/// A unit under resumable execution; created by
/// [`Executor::start_unit`] and driven by [`Executor::step_unit`].
/// Drivers create thousands of these per frame, so the scene's
/// [`oovr_scene::RenderObject`] is borrowed rather than cloned.
#[derive(Debug, Clone)]
pub struct RunningUnit<'s> {
    unit: RenderUnit,
    obj: &'s oovr_scene::RenderObject,
    gw: crate::tasks::GeometryWork,
    stage: UnitStage,
}

impl RunningUnit<'_> {
    /// The unit being executed.
    pub fn unit(&self) -> &RenderUnit {
        &self.unit
    }

    /// Whether execution has finished.
    pub fn is_done(&self) -> bool {
        matches!(self.stage, UnitStage::Done)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UnitStage {
    Command,
    Geometry { fetched: u64 },
    Fragment { eye: usize, tri: u64 },
    Done,
}

/// The multi-GPM frame executor. See the [module docs](self).
#[derive(Debug)]
pub struct Executor<'s> {
    cfg: GpuConfig,
    scene: &'s Scene,
    layout: SceneLayout,
    mem: MemorySystem,
    fabric: NumaTiming,
    zbuf: ZBuffer,
    gpms: Vec<GpmState>,
    counts: WorkCounts,
    color_mode: ColorMode,
    fb_org: FbOrg,
    /// Deferred-composition pixel counts: `[renderer][partition]`.
    comp_pixels: Vec<Vec<u64>>,
    composition_cycles: Cycle,
    command_root: GpmId,
    /// Reusable drain buffer for per-quantum traffic (swapped with the
    /// memory system's pending ledger instead of allocating each quantum).
    scratch: Traffic,
    /// Precomputed [`partition_of_column`] per pixel column: the deferred
    /// color path looks an owner up per shaded pixel, and the two integer
    /// divides would otherwise dominate that inner loop.
    col_owner: Vec<u8>,
    /// Precomputed [`partition_of_row`] per pixel row.
    row_owner: Vec<u8>,
    /// Per-GPM pipeline-clock fault schedules (thermal throttling, stalls);
    /// `None` keeps the exact fixed-rate arithmetic.
    throttle: Vec<Option<RateSchedule>>,
    /// Per-GPM segment cursor into `throttle` from the last quantum: GPM
    /// clocks are monotone, so the schedule walk resumes where it left off.
    throttle_cursor: Vec<usize>,
    /// Fragment-compute scale in `(0, 1]`: the deadline monitor's foveation
    /// knob. `1.0` (the default) is bit-identical to the unscaled model.
    shade_scale: f64,
    /// Batched-memory counter aggregate `(sessions, ops, folded)`: the
    /// fragment sink streams each triangle's accesses through one
    /// [`BatchSession`](oovr_mem::BatchSession) and tallies its counts
    /// here; `Drop` flushes the totals to the process-wide substrate
    /// counters in one shot, keeping atomics off the per-triangle path.
    batch_counts: (u64, u64, u64),
    /// Precomputed anisotropic sample offsets `s × aniso_spread` for
    /// `s in 0..texel_samples_per_quad`: the per-sample int→float convert
    /// and multiply would otherwise run once per quad sample.
    du_table: Vec<f32>,
    /// Flight recorder attached by [`enable_trace`](Self::enable_trace).
    /// `None` (the default) keeps every hot path on a single-branch fast
    /// path; tracing observes through shared references only, so enabling
    /// it cannot perturb simulated state.
    tracer: Option<Box<ExecTracer>>,
    /// Cumulative busy-cycle attribution `[object × n_gpms + gpm]`: every
    /// quantum's clock advance is charged to the unit's object on the GPM
    /// that ran it. The temporal-reuse layer diffs this across a frame to
    /// learn what skipping an object would save on each GPM.
    object_busy: Vec<Cycle>,
    /// Cumulative shaded-pixel attribution per object (both eyes): the
    /// pixel count an ATW reprojection of that object would warp.
    object_pixels: Vec<u64>,
}

impl<'s> Executor<'s> {
    /// Creates an executor for one frame of `scene`.
    ///
    /// `default_policy` governs pages without explicit placement (vertex
    /// buffers and textures): `FirstTouch` for NUMA schemes, `Replicated`
    /// for AFR's separate memory spaces. `fb_org` pins framebuffer and
    /// depth pages; `color_mode` selects in-place versus composed output.
    pub fn new(
        cfg: GpuConfig,
        scene: &'s Scene,
        default_policy: Placement,
        fb_org: FbOrg,
        color_mode: ColorMode,
    ) -> Self {
        match Self::try_new(cfg, scene, default_policy, fb_org, color_mode) {
            Ok(ex) => ex,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`new`](Self::new): validates the configuration
    /// (including any fault plan) and reports violations as [`GpuError`]
    /// instead of panicking.
    pub fn try_new(
        cfg: GpuConfig,
        scene: &'s Scene,
        default_policy: Placement,
        fb_org: FbOrg,
        color_mode: ColorMode,
    ) -> Result<Self, GpuError> {
        cfg.validate()?;
        let n = cfg.n_gpms;
        let layout = SceneLayout::new(scene, n);
        let mut mem = MemorySystem::try_new(n, cfg.mem, default_policy)?;
        let mut fabric = NumaTiming::new(n, cfg.fabric_params());
        let res = scene.resolution();

        // Compile the fault plan into per-server schedules.
        let mut throttle = vec![None; n];
        if let Some(plan) = &cfg.fault {
            let compiled = plan.compile(n);
            for (from, to, s) in compiled.links {
                fabric.set_link_schedule(from, to, Some(s));
            }
            throttle = compiled.gpms;
        }

        // Pin framebuffer + depth placement.
        match fb_org {
            FbOrg::InterleavedPages => {
                mem.page_table_mut().set_policy(layout.framebuffer(), Placement::Interleaved);
                mem.page_table_mut().set_policy(layout.zbuffer(), Placement::Interleaved);
            }
            FbOrg::Single(root) => {
                mem.page_table_mut().set_policy(layout.framebuffer(), Placement::Fixed(root));
                mem.page_table_mut().set_policy(layout.zbuffer(), Placement::Fixed(root));
            }
            FbOrg::Columns => {
                Self::place_by_pixel(&mut mem, &layout, res, n, |x, _y| {
                    partition_of_column(x, res.stereo_width(), n)
                });
            }
            FbOrg::Rows => {
                Self::place_by_pixel(&mut mem, &layout, res, n, |_x, y| {
                    partition_of_row(y, res.height, n)
                });
            }
        }
        // Scratch buffers are always local to their GPM.
        for g in 0..n {
            mem.page_table_mut().set_policy(layout.scratch(g), Placement::Fixed(GpmId(g as u8)));
        }

        let (cfg_du_samples, cfg_du_spread) =
            (cfg.model.texel_samples_per_quad, cfg.model.aniso_spread);
        Ok(Executor {
            cfg,
            scene,
            layout,
            mem,
            fabric,
            zbuf: ZBuffer::new(res.stereo_width(), res.height),
            gpms: vec![GpmState::default(); n],
            counts: WorkCounts::default(),
            color_mode,
            fb_org,
            comp_pixels: vec![vec![0; n]; n],
            composition_cycles: 0,
            command_root: GpmId(0),
            scratch: Traffic::new(n),
            col_owner: (0..res.stereo_width())
                .map(|x| partition_of_column(x, res.stereo_width(), n) as u8)
                .collect(),
            row_owner: (0..res.height).map(|y| partition_of_row(y, res.height, n) as u8).collect(),
            throttle_cursor: vec![0; throttle.len()],
            throttle,
            shade_scale: 1.0,
            batch_counts: (0, 0, 0),
            du_table: (0..cfg_du_samples).map(|s| s as f32 * cfg_du_spread).collect(),
            tracer: None,
            object_busy: vec![0; scene.objects().len() * n],
            object_pixels: vec![0; scene.objects().len()],
        })
    }

    fn place_by_pixel(
        mem: &mut MemorySystem,
        layout: &SceneLayout,
        res: Resolution,
        n: usize,
        owner: impl Fn(u32, u32) -> usize,
    ) {
        // Home each FB/Z page at the owner of its midpoint pixel.
        let stereo_w = u64::from(res.stereo_width());
        for region in [layout.framebuffer(), layout.zbuffer()] {
            for page in region.pages() {
                let page_base = page * oovr_mem::PAGE_SIZE;
                let mid = page_base + oovr_mem::PAGE_SIZE / 2;
                let pixel = (mid.saturating_sub(region.base)) / FB_BYTES_PER_PIXEL;
                let x = (pixel % stereo_w) as u32;
                let y = (pixel / stereo_w) as u32;
                let g = owner(x, y.min(res.height - 1)).min(n - 1);
                mem.page_table_mut().migrate(oovr_mem::Addr(page_base), GpmId(g as u8));
            }
        }
    }

    /// The simulated scene.
    pub fn scene(&self) -> &Scene {
        self.scene
    }

    /// The configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// The scene's memory layout.
    pub fn layout(&self) -> &SceneLayout {
        &self.layout
    }

    /// Number of GPMs.
    pub fn n_gpms(&self) -> usize {
        self.gpms.len()
    }

    /// Per-GPM state (clocks and Eq. 3 runtime counters).
    pub fn gpm(&self, g: GpmId) -> &GpmState {
        &self.gpms[g.index()]
    }

    /// The GPM whose clock is earliest (ties broken by lower id): the next
    /// GPM a global-time-ordered driver should feed.
    pub fn least_loaded_gpm(&self) -> GpmId {
        let (i, _) =
            self.gpms.iter().enumerate().min_by_key(|(_, s)| s.now).expect("at least one GPM");
        GpmId(i as u8)
    }

    /// Largest GPM clock (the rendering makespan so far).
    pub fn makespan(&self) -> Cycle {
        self.gpms.iter().map(|s| s.now).max().unwrap_or(0)
    }

    /// The prefix of a texture's allocation that `obj` actually samples:
    /// the object tiles the texture from texel row 0 up to its viewport
    /// height × uv-scale, so its footprint is a row-prefix of the linear
    /// texture layout. The PA units move only this required data (§5.2).
    pub fn touched_texture_region(
        &self,
        obj: &oovr_scene::RenderObject,
        tex: oovr_scene::TextureId,
    ) -> oovr_mem::Region {
        let res = self.scene.resolution();
        let vp = obj.viewport(res, oovr_scene::Eye::Left);
        let desc = self.scene.texture(tex);
        let extent = if obj.uv_transpose() { vp.width } else { vp.height };
        let rows = ((extent * obj.uv_scale()).ceil() as u64).clamp(1, u64::from(desc.height()));
        let bytes = rows * u64::from(desc.width()) * oovr_scene::texture::BYTES_PER_TEXEL;
        let r = self.layout.texture_region(tex);
        oovr_mem::Region { base: r.base, size: bytes.min(r.size) }
    }

    /// Pre-allocates an object's required data into a GPM's local DRAM
    /// (OO-VR PA units, §5.2). Vertex and texture data are static,
    /// read-only resources, so the PA unit *replicates* their pages at the
    /// consumer instead of migrating them — re-assigning a batch to another
    /// GPM (this frame or a later one) must not ping-pong pages back and
    /// forth. The copy consumes link bandwidth immediately but does not
    /// stall the GPM: the engine issues it ahead of the batch to hide the
    /// latency. Returns bytes moved.
    pub fn prealloc_object(&mut self, object: ObjectId, gpm: GpmId) -> u64 {
        // PA copies run in the background ahead of the batch ("pre-allocate
        // ... to hide long data copy latency", §5.2): they appear in the
        // traffic ledger but do not occupy the foreground link servers.
        let bytes = self.replicate_object_data(object, gpm);
        let cycle = self.gpms[gpm.index()].now;
        if let Some(tr) = self.tracer.as_deref_mut() {
            tr.record(TraceEvent::PreAlloc {
                cycle,
                gpm: gpm.index() as u32,
                object: object.0,
                bytes,
            });
        }
        bytes
    }

    /// Replicates an object's data at a GPM (fine-grained stealing's data
    /// duplication, §5.2). Returns bytes copied.
    pub fn replicate_object(&mut self, object: ObjectId, gpm: GpmId) -> u64 {
        self.replicate_object_data(object, gpm)
    }

    /// Shared body of [`prealloc_object`](Self::prealloc_object) and
    /// [`replicate_object`](Self::replicate_object): replicates the vertex
    /// region and the touched prefix of each texture, then discards the
    /// pending ledger (the copies by-pass the foreground link servers).
    fn replicate_object_data(&mut self, object: ObjectId, gpm: GpmId) -> u64 {
        let obj = self.scene.object(object);
        let mut moved =
            self.mem.replicate_region(self.layout.vertex_region(object.0 as usize), gpm);
        for tu in obj.textures() {
            let touched = self.touched_texture_region(obj, tu.texture);
            moved += self.mem.replicate_region(touched, gpm);
        }
        self.mem.discard_pending();
        moved
    }

    /// Charges an explicit inter-GPM transfer (e.g. sort-middle primitive
    /// redistribution). The transfer occupies the link starting at the
    /// source's clock, and the destination cannot proceed before the data
    /// arrives — a synchronization point between the two GPMs.
    pub fn charge_transfer(&mut self, from: GpmId, to: GpmId, class: TrafficClass, bytes: u64) {
        if bytes == 0 {
            return;
        }
        self.mem.transfer(from, to, class, bytes);
        self.mem.drain_pending_into(&mut self.scratch);
        let start = self.gpms[from.index()].now;
        let ready = self.fabric.apply(start, &self.scratch);
        let d = to.index();
        if ready > self.gpms[d].now {
            self.gpms[d].busy += ready - self.gpms[d].now;
            self.gpms[d].now = ready;
        }
    }

    /// Advances `gpm`'s clock over one quantum: drains pending memory
    /// traffic into the fabric and takes `max(compute, memory)`.
    fn advance(&mut self, gpm: GpmId, compute_cycles: f64) {
        let g = gpm.index();
        let start = self.gpms[g].now;
        let ready = if self.mem.has_pending() {
            self.mem.drain_pending_into(&mut self.scratch);
            self.fabric.apply(start, &self.scratch)
        } else {
            start
        };
        // A throttled GPM retires compute at the schedule's rate; the `None`
        // path keeps the exact fixed-rate arithmetic.
        let compute_end = match &self.throttle[g] {
            None => start + compute_cycles.ceil() as Cycle,
            Some(s) => {
                let (end, cur) =
                    s.advance_with_hint(self.throttle_cursor[g], start as f64, compute_cycles);
                self.throttle_cursor[g] = cur;
                end.ceil() as Cycle
            }
        };
        let end = ready.max(compute_end);
        assert!(
            end < crate::config::MAX_FRAME_CYCLES,
            "frame exceeded {} cycles — runaway configuration?",
            crate::config::MAX_FRAME_CYCLES
        );
        self.gpms[g].stall_cycles += end.saturating_sub(compute_end);
        self.gpms[g].quanta += 1;
        self.gpms[g].busy += end - start;
        self.gpms[g].now = end;
        if let Some(tr) = self.tracer.as_deref_mut() {
            tr.sample_windows(g, end, &self.fabric, &self.mem);
        }
    }

    /// Prepares a unit for resumable execution. Drivers should interleave
    /// [`step_unit`](Self::step_unit) calls across GPMs in global time order
    /// so the shared links see concurrent demand (a whole unit executed at
    /// once would let one GPM's clock run far ahead, and the FIFO bandwidth
    /// servers would mis-serialize the skewed arrivals).
    pub fn start_unit(&self, unit: &RenderUnit) -> RunningUnit<'s> {
        let obj = self.scene.object(unit.object);
        let gw = geometry_work(unit, obj);
        RunningUnit { unit: unit.clone(), obj, gw, stage: UnitStage::Command }
    }

    /// Executes one quantum of `ru` on `gpm`, advancing that GPM's clock.
    /// Returns `true` when the unit has completed.
    pub fn step_unit(&mut self, gpm: GpmId, ru: &mut RunningUnit<'_>) -> bool {
        let g = gpm.index();
        let slot = ru.unit.object.0 as usize * self.gpms.len() + g;
        if self.tracer.is_none() {
            let busy0 = self.gpms[g].busy;
            let done = self.step_unit_inner(gpm, ru);
            self.object_busy[slot] += self.gpms[g].busy - busy0;
            return done;
        }
        let phase = match ru.stage {
            UnitStage::Command => Phase::Command,
            UnitStage::Geometry { .. } => Phase::Geometry,
            UnitStage::Fragment { .. } => Phase::Fragment,
            UnitStage::Done => return true,
        };
        let object = ru.unit.object.0;
        let start = self.gpms[g].now;
        let busy0 = self.gpms[g].busy;
        let stall0 = self.gpms[g].stall_cycles;
        let done = self.step_unit_inner(gpm, ru);
        self.object_busy[slot] += self.gpms[g].busy - busy0;
        let end = self.gpms[g].now;
        if end > start {
            let stall = self.gpms[g].stall_cycles - stall0;
            if let Some(tr) = self.tracer.as_deref_mut() {
                tr.quantum(g, object, phase, start, end, stall);
            }
        }
        done
    }

    /// The untraced body of [`step_unit`](Self::step_unit).
    fn step_unit_inner(&mut self, gpm: GpmId, ru: &mut RunningUnit<'_>) -> bool {
        let g = gpm.index();
        match ru.stage {
            UnitStage::Command => {
                if ru.unit.charge_command {
                    let bytes = self.cfg.model.cmd_bytes_per_draw;
                    self.mem.transfer(self.command_root, gpm, TrafficClass::Command, bytes);
                    self.advance(gpm, 4.0);
                }
                ru.stage = UnitStage::Geometry { fetched: 0 };
                false
            }
            UnitStage::Geometry { fetched } => {
                let model = &self.cfg.model;
                let gw = ru.gw;
                if gw.vertices == 0 {
                    self.finish_geometry(g, gw);
                    ru.stage = UnitStage::Fragment { eye: 0, tri: 0 };
                    return false;
                }
                let n = (gw.vertices - fetched).min(model.quantum_vertices);
                let vregion = self.layout.vertex_region(ru.unit.object.0 as usize);
                let byte0 = fetched * model.bytes_per_vertex;
                let byte1 = (fetched + n) * model.bytes_per_vertex;
                let mut b = byte0;
                while b < byte1.min(vregion.size) {
                    self.mem.read(gpm, vregion.at(b), TrafficClass::Vertex, true);
                    b += oovr_mem::LINE_SIZE;
                }
                let share = n as f64 / gw.vertices.max(1) as f64;
                let tri_in = gw.triangles as f64 * share;
                let tri_out = gw.smp_triangles_out as f64 * share;
                let compute = (n as f64 / self.cfg.model.vertex_rate)
                    .max(tri_in / self.cfg.model.triangle_rate)
                    .max(tri_out / self.cfg.model.smp_rate);
                self.gpms[g].geom_compute += compute.ceil() as Cycle;
                self.advance(gpm, compute);
                if fetched + n >= gw.vertices {
                    self.finish_geometry(g, gw);
                    ru.stage = UnitStage::Fragment { eye: 0, tri: 0 };
                } else {
                    ru.stage = UnitStage::Geometry { fetched: fetched + n };
                }
                false
            }
            UnitStage::Fragment { eye, tri } => {
                let done = self.fragment_quantum(gpm, ru, eye, tri);
                if done {
                    self.gpms[g].units_done += 1;
                    ru.stage = UnitStage::Done;
                }
                done
            }
            UnitStage::Done => true,
        }
    }

    fn finish_geometry(&mut self, g: usize, gw: crate::tasks::GeometryWork) {
        self.gpms[g].transformed_vertices += gw.vertices;
        self.gpms[g].triangles += gw.smp_triangles_out;
        self.counts.vertices += gw.vertices;
        self.counts.triangles += gw.smp_triangles_out;
    }

    /// Processes up to one quad quantum of fragment work; updates `ru.stage`
    /// for resumption and returns `true` when all eyes are finished.
    fn fragment_quantum(
        &mut self,
        gpm: GpmId,
        ru: &mut RunningUnit<'_>,
        eye0: usize,
        tri0: u64,
    ) -> bool {
        let g = gpm.index();
        let model = self.cfg.model.clone();
        let res = self.scene.resolution();
        let eyes = ru.unit.mode.eyes();
        let mut pending_quads = 0u64;
        let mut pending_samples = 0u64;
        let mut pending_pixels = 0u64;
        let mut eye_idx = eye0;
        let mut tri_idx = tri0;
        let total_tris = ru.obj.triangle_count();
        'eyes: while eye_idx < eyes.len() {
            let eye = eyes[eye_idx];
            let eclip = eye_clip(res, eye);
            let clip = match ru.unit.clip {
                Some(c) => match c.intersect(&eclip) {
                    Some(i) => i,
                    None => {
                        eye_idx += 1;
                        tri_idx = 0;
                        continue 'eyes;
                    }
                },
                None => eclip,
            };
            // Triangles the unit does not select emit nothing, so walk only
            // the selected indices: clamp to the contiguous sub-range and
            // jump the iterator across the stride gaps instead of generating
            // and discarding the triangles in between.
            let (sel_start, sel_end) = match ru.unit.tri_range {
                Some((s, e)) => (s, e.min(total_tris)),
                None => (0, total_tris),
            };
            let (phase, step) = ru.unit.stride.unwrap_or((0, 1));
            // First index ≥ max(resume point, range start) on the stride.
            let lo = tri_idx.max(sel_start);
            let mut k = if step > 1 {
                let rem = lo % step;
                if rem <= phase {
                    lo - rem + phase
                } else {
                    lo - rem + step + phase
                }
            } else {
                lo
            };
            let mut tris = ru.obj.triangles_from(res, eye, k);
            while k < sel_end {
                let Some(tri) = tris.next() else { break };
                let this_k = k;
                debug_assert!(ru.unit.selects(this_k));
                k += step;
                if step > 1 {
                    tris.skip_to(k);
                }
                let desc = self.scene.texture(tri.texture);
                let tex_region = self.layout.texture_region(tri.texture);
                // Split borrows for the rasterization sink. Memory traffic
                // goes through a streaming batch session (one per triangle):
                // the fold collapses same-line runs into counted MRU hits
                // with bit-identical outcomes, and the exclusive borrow it
                // holds is exactly the fold's soundness premise.
                let mut batch = self.mem.batch(gpm);
                let zbuf = &mut self.zbuf;
                let layout = &self.layout;
                let counts = &mut self.counts;
                let comp_row = &mut self.comp_pixels[g];
                let color_mode = self.color_mode;
                let fb_org = self.fb_org;
                let col_owner = &self.col_owner;
                let row_owner = &self.row_owner;
                let du_table = &self.du_table;
                let mut quads = 0u64;
                let mut samples = 0u64;
                let mut passed = 0u64;
                rasterize(&tri, Some(&clip), res.stereo_width(), res.height, |q| {
                    quads += 1;
                    counts.fragments += u64::from(q.coverage());
                    // Texture sampling: `texel_samples_per_quad` points
                    // spread along u (anisotropic footprint). All samples
                    // share the quad's texel row, so its base is hoisted.
                    let mut last_line = u64::MAX;
                    let row = desc.row_base(q.uv.y as i64);
                    for &du in du_table {
                        let off = row + desc.col_offset((q.uv.x + du) as i64);
                        let addr = tex_region.at(off.min(tex_region.size - 1));
                        if addr.line() != last_line {
                            batch.read_l1(addr, TrafficClass::Texture);
                            last_line = addr.line();
                            samples += 1;
                        }
                    }
                    // Depth test: read the Z line, write back if any pass.
                    let zaddr = layout.zb_addr(q.x, q.y);
                    batch.read_l2(zaddr, TrafficClass::Depth);
                    let mut quad_passed = 0u64;
                    for (px, py) in q.pixels() {
                        if zbuf.test_and_set(px, py, q.z) {
                            quad_passed += 1;
                            match color_mode {
                                ColorMode::Direct => {
                                    batch.write(layout.fb_addr(px, py), TrafficClass::Color);
                                }
                                ColorMode::Deferred => {
                                    batch
                                        .write(layout.scratch_addr(g, px, py), TrafficClass::Color);
                                    let p = match fb_org {
                                        FbOrg::Single(root) => root.index(),
                                        FbOrg::Rows => row_owner[py as usize] as usize,
                                        _ => col_owner[px as usize] as usize,
                                    };
                                    comp_row[p] += 1;
                                }
                            }
                        }
                    }
                    if quad_passed > 0 {
                        batch.write(zaddr, TrafficClass::Depth);
                        passed += quad_passed;
                    }
                });
                let (ops, folded) = batch.finish();
                self.batch_counts.0 += 1;
                self.batch_counts.1 += ops;
                self.batch_counts.2 += folded;
                self.counts.quads += quads;
                self.counts.pixels_out += passed;
                self.gpms[g].shaded_pixels += passed;
                self.object_pixels[ru.unit.object.0 as usize] += passed;
                pending_quads += quads;
                pending_samples += samples;
                pending_pixels += passed;
                if pending_quads >= model.quantum_quads {
                    // Quantum full: charge it and suspend after this triangle.
                    let compute =
                        self.fragment_compute(pending_quads, pending_samples, pending_pixels);
                    self.gpms[g].frag_compute += compute.ceil() as Cycle;
                    self.advance(gpm, compute);
                    ru.stage = UnitStage::Fragment { eye: eye_idx, tri: k };
                    return false;
                }
            }
            eye_idx += 1;
            tri_idx = 0;
        }
        if pending_quads > 0 {
            let compute = self.fragment_compute(pending_quads, pending_samples, pending_pixels);
            self.gpms[g].frag_compute += compute.ceil() as Cycle;
            self.advance(gpm, compute);
        }
        true
    }

    /// Executes one unit to completion on `gpm` (single-GPM drivers like
    /// AFR; multi-GPM drivers should interleave [`Self::step_unit`] instead).
    /// Returns the completion cycle.
    pub fn exec_unit(&mut self, gpm: GpmId, unit: &RenderUnit) -> Cycle {
        let mut ru = self.start_unit(unit);
        while !self.step_unit(gpm, &mut ru) {}
        self.gpms[gpm.index()].now
    }

    /// Slowest-stage compute time of a fragment quantum, scaled by the
    /// deadline monitor's foveation knob when active (`shade_scale < 1`
    /// models cheaper peripheral shading; every fragment is still produced).
    fn fragment_compute(&self, quads: u64, samples: u64, pixels: u64) -> f64 {
        let m = &self.cfg.model;
        let base = (quads as f64 / m.raster_quad_rate)
            .max(quads as f64 / self.cfg.quad_rate())
            .max(samples as f64 / m.txu_samples_per_cycle)
            .max(pixels as f64 / self.cfg.rop_rate());
        if self.shade_scale < 1.0 {
            base * self.shade_scale
        } else {
            base
        }
    }

    /// Sets the fragment-compute scale in `(0, 1]` (deadline-monitor load
    /// shedding, modeling foveated shading). `1.0` restores the exact
    /// unscaled model.
    pub fn set_shade_scale(&mut self, scale: f64) {
        assert!(scale > 0.0 && scale <= 1.0, "shade scale must be in (0, 1], got {scale}");
        self.shade_scale = scale;
        let cycle = self.makespan();
        if let Some(tr) = self.tracer.as_deref_mut() {
            tr.record(TraceEvent::ShadeScale { cycle, scale });
        }
    }

    /// The current fragment-compute scale.
    pub fn shade_scale(&self) -> f64 {
        self.shade_scale
    }

    /// The fault-schedule rate multiplier of the directed link `from → to`
    /// at cycle `at` (`1.0` when healthy).
    pub fn link_multiplier(&self, from: GpmId, to: GpmId, at: Cycle) -> f64 {
        self.fabric.link_multiplier_at(from, to, at)
    }

    /// Whether every incoming link of `gpm` is up at cycle `at`. The PA
    /// pre-allocation path probes this before copying data toward a GPM: a
    /// retraining link would stall the copy past its usefulness, so the
    /// engine backs off and ultimately falls back to remote rendering.
    pub fn gpm_reachable(&self, gpm: GpmId, at: Cycle) -> bool {
        GpmId::all(self.gpms.len())
            .filter(|&g| g != gpm)
            .all(|g| self.fabric.link_multiplier_at(g, gpm, at) > 0.0)
    }

    /// Runs the composition pass and returns the frame-complete cycle.
    ///
    /// With [`ColorMode::Direct`] and [`Composition::None`], the frame is
    /// done when the last GPM finishes rendering. The other modes move the
    /// deferred scratch pixels per §4.3 (master) or §5.3 (distributed).
    pub fn compose(&mut self, comp: Composition) -> Cycle {
        let start = self.makespan();
        let end = match comp {
            Composition::None => start,
            Composition::Master(root) => {
                let mut total_pixels = 0u64;
                for g in 0..self.gpms.len() {
                    let pixels: u64 = self.comp_pixels[g].iter().sum();
                    total_pixels += pixels;
                    self.mem.transfer(
                        GpmId(g as u8),
                        root,
                        TrafficClass::Composition,
                        pixels * FB_BYTES_PER_PIXEL,
                    );
                }
                // The root's ROPs assemble the whole frame alone.
                let rop_cycles = total_pixels as f64 / self.cfg.rop_rate();
                self.mem.drain_pending_into(&mut self.scratch);
                let ready = self.fabric.apply(start, &self.scratch);
                ready.max(start + rop_cycles.ceil() as Cycle)
            }
            Composition::Distributed => {
                let n = self.gpms.len();
                let mut received = vec![0u64; n];
                #[allow(clippy::needless_range_loop)] // g and p index two matrices
                for g in 0..n {
                    for p in 0..n {
                        let pixels = self.comp_pixels[g][p];
                        received[p] += pixels;
                        self.mem.transfer(
                            GpmId(g as u8),
                            GpmId(p as u8),
                            TrafficClass::Composition,
                            pixels * FB_BYTES_PER_PIXEL,
                        );
                    }
                }
                // Every GPM's ROPs work on their own partition in parallel.
                let rop_cycles = received
                    .iter()
                    .map(|&px| px as f64 / self.cfg.rop_rate())
                    .fold(0.0f64, f64::max);
                self.mem.drain_pending_into(&mut self.scratch);
                let ready = self.fabric.apply(start, &self.scratch);
                ready.max(start + rop_cycles.ceil() as Cycle)
            }
        };
        self.composition_cycles = end - start;
        if end > start {
            if let Some(tr) = self.tracer.as_deref_mut() {
                tr.record(TraceEvent::CompositionSpan { start, end });
            }
        }
        end
    }

    /// Begins a new frame on a *warm* executor: clears the depth buffer and
    /// composition accumulators while keeping caches, page placement, and
    /// clocks. Use with [`finish_frame`](Self::finish_frame) to measure
    /// steady-state frames (the first frame pays one-time PA data
    /// distribution; later frames do not).
    pub fn begin_frame(&mut self) -> FrameMark {
        self.zbuf.clear();
        for row in &mut self.comp_pixels {
            row.fill(0);
        }
        self.composition_cycles = 0;
        FrameMark {
            traffic: self.mem.total_traffic().clone(),
            counts: self.counts,
            busy: self.gpms.iter().map(|s| s.busy).collect(),
            start: self.makespan(),
        }
    }

    /// Composes the frame begun at `mark` and reports its isolated metrics
    /// without consuming the executor. All GPM clocks synchronize to the
    /// composition end (the frame-present barrier).
    pub fn finish_frame(
        &mut self,
        mark: &FrameMark,
        scheme: &str,
        comp: Composition,
    ) -> FrameReport {
        let end = self.compose(comp);
        for s in &mut self.gpms {
            s.now = end;
        }
        let counts = WorkCounts {
            vertices: self.counts.vertices - mark.counts.vertices,
            triangles: self.counts.triangles - mark.counts.triangles,
            quads: self.counts.quads - mark.counts.quads,
            fragments: self.counts.fragments - mark.counts.fragments,
            pixels_out: self.counts.pixels_out - mark.counts.pixels_out,
        };
        let (l1, l2) = self.cache_hit_rates();
        FrameReport {
            scheme: scheme.to_string(),
            workload: self.scene.name().to_string(),
            frame_cycles: (end - mark.start).max(1),
            composition_cycles: self.composition_cycles,
            gpm_busy: self.gpms.iter().zip(&mark.busy).map(|(s, b0)| s.busy - b0).collect(),
            traffic: self.mem.total_traffic().since(&mark.traffic),
            counts,
            l1_hit_rate: l1,
            l2_hit_rate: l2,
            resident_bytes: self.mem.page_table().resident_bytes().to_vec(),
        }
    }

    /// Aggregate (cumulative) L1/L2 hit rates across GPMs.
    fn cache_hit_rates(&self) -> (f64, f64) {
        let n = self.gpms.len();
        let mut l1_acc = 0u64;
        let mut l1_hit = 0u64;
        let mut l2_acc = 0u64;
        let mut l2_hit = 0u64;
        for g in GpmId::all(n) {
            let s1 = self.mem.l1_stats(g);
            let s2 = self.mem.l2_stats(g);
            l1_acc += s1.accesses;
            l1_hit += s1.hits;
            l2_acc += s2.accesses;
            l2_hit += s2.hits;
        }
        (
            if l1_acc == 0 { 0.0 } else { l1_hit as f64 / l1_acc as f64 },
            if l2_acc == 0 { 0.0 } else { l2_hit as f64 / l2_acc as f64 },
        )
    }

    /// Builds the cumulative frame report at frame-complete cycle `end`.
    fn report_at(&self, end: Cycle, scheme: &str) -> FrameReport {
        let (l1, l2) = self.cache_hit_rates();
        FrameReport {
            scheme: scheme.to_string(),
            workload: self.scene.name().to_string(),
            frame_cycles: end.max(1),
            composition_cycles: self.composition_cycles,
            gpm_busy: self.gpms.iter().map(|s| s.busy).collect(),
            traffic: self.mem.total_traffic().clone(),
            counts: self.counts,
            l1_hit_rate: l1,
            l2_hit_rate: l2,
            resident_bytes: self.mem.page_table().resident_bytes().to_vec(),
        }
    }

    /// Flushes the batched-memory counter aggregate to the process-wide
    /// substrate counters. Called from `Drop`, so every executor —
    /// single-frame, warm frame-sequence, or abandoned — reports exactly
    /// once, with one atomic round-trip per executor lifetime.
    fn flush_batch_counts(&mut self) {
        let (batches, ops, folded) = self.batch_counts;
        self.batch_counts = (0, 0, 0);
        oovr_mem::record_batch_group(batches, ops, folded);
    }

    /// Composes and produces the frame report.
    pub fn finish(mut self, scheme: &str, comp: Composition) -> FrameReport {
        let end = self.compose(comp);
        self.report_at(end, scheme)
    }

    /// Like [`finish`](Self::finish), but also hands back the flight
    /// recorder when tracing was enabled. The report is identical to the one
    /// `finish` would produce: the tracer only observes.
    pub fn finish_traced(
        mut self,
        scheme: &str,
        comp: Composition,
    ) -> (FrameReport, Option<Recorder>) {
        let end = self.compose(comp);
        if let Some(tr) = self.tracer.as_deref_mut() {
            tr.finalize(end, &self.fabric, &self.mem);
        }
        let report = self.report_at(end, scheme);
        let recorder = self.tracer.take().map(|t| t.into_recorder());
        (report, recorder)
    }

    /// Attaches a flight recorder; subsequent execution records per-quantum
    /// phase spans, bandwidth/cache windows, and executor events. Retrieve
    /// the recorder via [`finish_traced`](Self::finish_traced).
    pub fn enable_trace(&mut self, cfg: TraceConfig) {
        let n = self.gpms.len();
        self.tracer = Some(Box::new(ExecTracer::new(cfg, n)));
    }

    /// Mutable access to the attached recorder, if tracing is enabled. The
    /// distribution engine uses this to record its scheduling decisions
    /// alongside the executor's spans.
    pub fn tracer_mut(&mut self) -> Option<&mut Recorder> {
        self.tracer.as_deref_mut().map(ExecTracer::recorder_mut)
    }

    /// Current work counters.
    pub fn counts(&self) -> WorkCounts {
        self.counts
    }

    /// Cumulative per-object busy attribution, flattened
    /// `[object × n_gpms + gpm]`. Diff two snapshots to isolate one frame.
    pub fn object_busy(&self) -> &[Cycle] {
        &self.object_busy
    }

    /// Cumulative shaded pixels per object (both eyes).
    pub fn object_pixels(&self) -> &[u64] {
        &self.object_pixels
    }

    /// Cumulative traffic so far.
    pub fn traffic(&self) -> &Traffic {
        self.mem.total_traffic()
    }
}

/// Vertical-partition owner of a pixel column (Fig. 14's framebuffer split).
pub fn partition_of_column(x: u32, stereo_width: u32, n: usize) -> usize {
    let w = (stereo_width as usize).div_ceil(n);
    ((x as usize) / w).min(n - 1)
}

/// Horizontal-partition owner of a pixel row.
pub fn partition_of_row(y: u32, height: u32, n: usize) -> usize {
    let h = (height as usize).div_ceil(n);
    ((y as usize) / h).min(n - 1)
}

impl Drop for Executor<'_> {
    fn drop(&mut self) {
        self.flush_batch_counts();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oovr_scene::{Eye, Rect, SceneBuilder};

    fn scene() -> Scene {
        SceneBuilder::new(64, 64)
            .name("exec-test")
            .texture("stone", 128, 128)
            .texture("cloth", 64, 64)
            .object("a", |o| {
                o.rect(0.1, 0.1, 0.5, 0.5).grid(4, 4).depth(0.4).texture("stone", 1.0);
            })
            .object("b", |o| {
                o.rect(0.3, 0.3, 0.5, 0.5).grid(4, 4).depth(0.6).texture("cloth", 1.0);
            })
            .build()
    }

    fn executor(scene: &Scene) -> Executor<'_> {
        Executor::new(
            GpuConfig::default(),
            scene,
            Placement::FirstTouch,
            FbOrg::InterleavedPages,
            ColorMode::Direct,
        )
    }

    #[test]
    fn unit_produces_work_and_time() {
        let s = scene();
        let mut ex = executor(&s);
        let end = ex.exec_unit(GpmId(0), &RenderUnit::smp(ObjectId(0)));
        assert!(end > 0);
        let c = ex.counts();
        assert_eq!(c.vertices, 25);
        assert_eq!(c.triangles, 64, "SMP emits both eyes");
        assert!(c.fragments > 0);
        assert!(c.pixels_out > 0);
        assert!(ex.traffic().local_bytes() > 0);
        assert_eq!(ex.gpm(GpmId(0)).transformed_vertices, 25);
        assert!(ex.gpm(GpmId(0)).shaded_pixels > 0);
    }

    #[test]
    fn occlusion_reduces_color_output() {
        let s = scene();
        let mut ex = executor(&s);
        // Nearer object first; the farther object then fails Z where they
        // overlap.
        ex.exec_unit(GpmId(0), &RenderUnit::smp(ObjectId(0)));
        let first_out = ex.counts().pixels_out;
        ex.exec_unit(GpmId(0), &RenderUnit::smp(ObjectId(1)));
        let second_out = ex.counts().pixels_out - first_out;
        assert!(second_out < ex.counts().fragments - first_out, "some fragments occluded");
    }

    #[test]
    fn smp_unit_beats_sequential_stereo() {
        let s = scene();
        let mut ex1 = executor(&s);
        ex1.exec_unit(GpmId(0), &RenderUnit::smp(ObjectId(0)));
        let smp_end = ex1.makespan();
        let smp_frags = ex1.counts().fragments;

        let mut ex2 = executor(&s);
        ex2.exec_unit(GpmId(0), &RenderUnit::single(ObjectId(0), Eye::Left));
        ex2.exec_unit(GpmId(0), &RenderUnit::single(ObjectId(0), Eye::Right));
        let seq_end = ex2.makespan();
        assert_eq!(ex2.counts().fragments, smp_frags, "same fragments either way");
        assert!(seq_end > smp_end, "sequential stereo is slower (seq {seq_end} vs smp {smp_end})");
    }

    #[test]
    fn remote_placement_slows_execution() {
        let s = scene();
        // All data local to GPM1, but GPM0 renders: every miss is remote.
        let mut remote = Executor::new(
            GpuConfig::default(),
            &s,
            Placement::Fixed(GpmId(1)),
            FbOrg::Single(GpmId(1)),
            ColorMode::Direct,
        );
        remote.exec_unit(GpmId(0), &RenderUnit::smp(ObjectId(0)));
        let remote_end = remote.makespan();
        assert!(remote.traffic().inter_gpm_bytes() > 0);

        // Local case: everything (including FB/Z) homed where it is used.
        let mut local = Executor::new(
            GpuConfig::default(),
            &s,
            Placement::FirstTouch,
            FbOrg::Single(GpmId(0)),
            ColorMode::Direct,
        );
        local.exec_unit(GpmId(0), &RenderUnit::smp(ObjectId(0)));
        let local_end = local.makespan();
        assert_eq!(local.traffic().inter_gpm_bytes(), 0, "first touch keeps all local");
        assert!(remote_end > local_end, "remote {remote_end} vs local {local_end}");
    }

    #[test]
    fn clipped_units_cover_disjoint_work() {
        let s = scene();
        let mut full = executor(&s);
        full.exec_unit(GpmId(0), &RenderUnit::smp(ObjectId(0)));
        let full_frags = full.counts().fragments;

        let mut halves = executor(&s);
        let left = Rect::new(0.0, 0.0, 64.0, 64.0);
        let right = Rect::new(64.0, 0.0, 64.0, 64.0);
        halves.exec_unit(GpmId(0), &RenderUnit::smp(ObjectId(0)).clipped(left));
        halves.exec_unit(GpmId(1), &RenderUnit::smp(ObjectId(0)).clipped(right).without_command());
        assert_eq!(halves.counts().fragments, full_frags, "strips tile the frame");
    }

    #[test]
    fn tri_ranges_partition_the_object() {
        let s = scene();
        let mut split = executor(&s);
        let total = s.object(ObjectId(0)).triangle_count();
        split.exec_unit(GpmId(0), &RenderUnit::smp(ObjectId(0)).with_tri_range(0, total / 2));
        split.exec_unit(
            GpmId(1),
            &RenderUnit::smp(ObjectId(0)).with_tri_range(total / 2, total).without_command(),
        );
        let mut full = executor(&s);
        full.exec_unit(GpmId(0), &RenderUnit::smp(ObjectId(0)));
        assert_eq!(split.counts().fragments, full.counts().fragments);
        assert_eq!(split.counts().triangles, full.counts().triangles);
    }

    #[test]
    fn deferred_master_composition_charges_links_and_root_rops() {
        let s = scene();
        let mut ex = Executor::new(
            GpuConfig::default(),
            &s,
            Placement::FirstTouch,
            FbOrg::Single(GpmId(0)),
            ColorMode::Deferred,
        );
        ex.exec_unit(GpmId(1), &RenderUnit::smp(ObjectId(0)));
        let render_end = ex.makespan();
        let pre_comp_traffic = ex.traffic().remote_of(TrafficClass::Composition);
        assert_eq!(pre_comp_traffic, 0);
        let end = ex.compose(Composition::Master(GpmId(0)));
        assert!(end > render_end);
        assert!(ex.traffic().remote_of(TrafficClass::Composition) > 0);
    }

    #[test]
    fn distributed_composition_splits_across_partitions() {
        let s = scene();
        let mut ex = Executor::new(
            GpuConfig::default(),
            &s,
            Placement::FirstTouch,
            FbOrg::Columns,
            ColorMode::Deferred,
        );
        ex.exec_unit(GpmId(1), &RenderUnit::smp(ObjectId(0)));
        let report = ex.finish("t", Composition::Distributed);
        // Some pixels land in partitions other than GPM1's: link traffic.
        assert!(report.traffic.remote_of(TrafficClass::Composition) > 0);
        assert!(report.composition_cycles > 0);
        assert!(report.frame_cycles >= report.composition_cycles);
    }

    #[test]
    fn prealloc_localizes_a_migrated_object() {
        let s = scene();
        let mut ex = executor(&s);
        // First touch by GPM0...
        ex.exec_unit(GpmId(0), &RenderUnit::smp(ObjectId(0)));
        let before = ex.traffic().inter_gpm_bytes();
        // ...then pre-allocate to GPM2 and render there: no new remote
        // texture traffic beyond the PA copy itself.
        let moved = ex.prealloc_object(ObjectId(0), GpmId(2));
        assert!(moved > 0);
        ex.exec_unit(GpmId(2), &RenderUnit::smp(ObjectId(0)).without_command());
        let after = ex.traffic();
        assert_eq!(after.remote_of(TrafficClass::PreAlloc), moved);
        // Texture/vertex reads from GPM2 stayed local (Z pages may still be
        // remote, so compare texture class only).
        assert_eq!(
            after.remote_of(TrafficClass::Texture),
            0,
            "inter-GPM before {before}, after {}",
            after.inter_gpm_bytes()
        );
    }

    #[test]
    fn frame_boundaries_isolate_metrics() {
        let s = scene();
        let mut ex = Executor::new(
            GpuConfig::default(),
            &s,
            Placement::FirstTouch,
            FbOrg::Columns,
            ColorMode::Deferred,
        );
        let m1 = ex.begin_frame();
        ex.exec_unit(GpmId(0), &RenderUnit::smp(ObjectId(0)));
        let f1 = ex.finish_frame(&m1, "t", Composition::Distributed);
        let m2 = ex.begin_frame();
        ex.exec_unit(GpmId(0), &RenderUnit::smp(ObjectId(0)));
        let f2 = ex.finish_frame(&m2, "t", Composition::Distributed);
        // Same work per frame.
        assert_eq!(f1.counts.fragments, f2.counts.fragments);
        assert_eq!(f1.counts.vertices, f2.counts.vertices);
        // Warm frame re-reads less memory (caches + page placement persist).
        assert!(f2.traffic.local_bytes() <= f1.traffic.local_bytes());
        assert!(f2.frame_cycles <= f1.frame_cycles);
        // Clocks synchronized at the frame barrier.
        let now0 = ex.gpm(GpmId(0)).now;
        for g in 1..4 {
            assert_eq!(ex.gpm(GpmId(g)).now, now0);
        }
    }

    #[test]
    fn running_unit_reports_state() {
        let s = scene();
        let ex = Executor::new(
            GpuConfig::default(),
            &s,
            Placement::FirstTouch,
            FbOrg::InterleavedPages,
            ColorMode::Direct,
        );
        let ru = ex.start_unit(&RenderUnit::smp(ObjectId(0)));
        assert!(!ru.is_done());
        assert_eq!(ru.unit().object, ObjectId(0));
    }

    #[test]
    fn throttled_gpm_runs_slower() {
        use crate::fault::{FaultPlan, FaultScenario};
        let s = scene();
        let mut healthy = executor(&s);
        healthy.exec_unit(GpmId(0), &RenderUnit::smp(ObjectId(0)));
        let healthy_end = healthy.makespan();

        // Seed 0 victimizes GPM0, where the unit runs.
        let plan = FaultPlan::new(FaultScenario::GpmThrottle, 0.8, 0);
        assert_eq!(plan.victim(4), GpmId(0));
        let mut faulted = Executor::new(
            GpuConfig::default().with_fault(plan),
            &s,
            Placement::FirstTouch,
            FbOrg::InterleavedPages,
            ColorMode::Direct,
        );
        faulted.exec_unit(GpmId(0), &RenderUnit::smp(ObjectId(0)));
        assert!(
            faulted.makespan() > healthy_end,
            "throttled {} vs healthy {healthy_end}",
            faulted.makespan()
        );
        // Same functional output either way.
        assert_eq!(faulted.counts().fragments, healthy.counts().fragments);
        assert_eq!(faulted.counts().pixels_out, healthy.counts().pixels_out);
    }

    #[test]
    fn noop_fault_plan_is_bit_identical() {
        use crate::fault::FaultPlan;
        let s = scene();
        let mut plain = executor(&s);
        plain.exec_unit(GpmId(0), &RenderUnit::smp(ObjectId(0)));
        let mut noop = Executor::new(
            GpuConfig::default().with_fault(FaultPlan::none()),
            &s,
            Placement::FirstTouch,
            FbOrg::InterleavedPages,
            ColorMode::Direct,
        );
        noop.exec_unit(GpmId(0), &RenderUnit::smp(ObjectId(0)));
        assert_eq!(plain.makespan(), noop.makespan());
        assert_eq!(plain.traffic().local_bytes(), noop.traffic().local_bytes());
    }

    #[test]
    fn reachability_follows_link_outages() {
        use crate::fault::{FaultPlan, FaultScenario};
        let s = scene();
        let plan = FaultPlan::new(FaultScenario::LinkDown, 1.0, 3);
        let v = plan.victim(4);
        let ex = Executor::new(
            GpuConfig::default().with_fault(plan.clone()),
            &s,
            Placement::FirstTouch,
            FbOrg::InterleavedPages,
            ColorMode::Direct,
        );
        // Far past the horizon every link has retrained.
        assert!(ex.gpm_reachable(v, plan.horizon * 4));
        // At some cycle inside the horizon the victim is unreachable.
        let wl = plan.horizon / 8;
        let blocked = (0..8u64).any(|w| !ex.gpm_reachable(v, w * wl));
        assert!(blocked, "severity-1 link-down leaves the victim unreachable at some point");
    }

    #[test]
    fn shade_scale_shrinks_fragment_time_only() {
        let s = scene();
        let mut full = executor(&s);
        full.exec_unit(GpmId(0), &RenderUnit::smp(ObjectId(0)));
        let mut shed = executor(&s);
        shed.set_shade_scale(0.5);
        shed.exec_unit(GpmId(0), &RenderUnit::smp(ObjectId(0)));
        assert!(shed.makespan() < full.makespan());
        // Every fragment still rendered (foveation reduces cost, not work).
        assert_eq!(shed.counts().fragments, full.counts().fragments);
        assert_eq!(shed.counts().pixels_out, full.counts().pixels_out);
    }

    #[test]
    fn try_new_rejects_invalid_config() {
        let s = scene();
        let cfg = GpuConfig { dram_gbps: -1.0, ..GpuConfig::default() };
        let r = Executor::try_new(
            cfg,
            &s,
            Placement::FirstTouch,
            FbOrg::InterleavedPages,
            ColorMode::Direct,
        );
        assert!(matches!(r, Err(crate::error::GpuError::InvalidConfig(_))));
    }

    #[test]
    fn object_attribution_partitions_busy_and_pixels() {
        let s = scene();
        let mut ex = executor(&s);
        ex.exec_unit(GpmId(0), &RenderUnit::smp(ObjectId(0)));
        ex.exec_unit(GpmId(1), &RenderUnit::smp(ObjectId(1)));
        let n = ex.n_gpms();
        // Every quantum was charged to exactly one (object, gpm) slot, so
        // summing over objects recovers each GPM's busy counter.
        for g in 0..n {
            let per_gpm: Cycle = (0..s.objects().len()).map(|o| ex.object_busy()[o * n + g]).sum();
            assert_eq!(per_gpm, ex.gpm(GpmId(g as u8)).busy);
        }
        let px: u64 = ex.object_pixels().iter().sum();
        assert_eq!(px, ex.counts().pixels_out);
        assert!(ex.object_busy()[0] > 0, "object 0 ran on GPM 0");
        assert!(ex.object_pixels().iter().all(|&p| p > 0));
    }

    #[test]
    fn object_attribution_is_identical_under_tracing() {
        let s = scene();
        let mut plain = executor(&s);
        plain.exec_unit(GpmId(0), &RenderUnit::smp(ObjectId(0)));
        let mut traced = executor(&s);
        traced.enable_trace(TraceConfig::default());
        traced.exec_unit(GpmId(0), &RenderUnit::smp(ObjectId(0)));
        assert_eq!(plain.object_busy(), traced.object_busy());
        assert_eq!(plain.object_pixels(), traced.object_pixels());
    }

    #[test]
    fn partition_helpers_cover_range() {
        assert_eq!(partition_of_column(0, 128, 4), 0);
        assert_eq!(partition_of_column(127, 128, 4), 3);
        assert_eq!(partition_of_row(0, 64, 4), 0);
        assert_eq!(partition_of_row(63, 64, 4), 3);
    }
}
