//! Typed errors for fallible simulator construction and configuration.

use std::fmt;

use oovr_mem::MemError;

/// Errors raised by the GPU simulator's fallible paths.
#[derive(Debug, Clone, PartialEq)]
pub enum GpuError {
    /// A [`GpuConfig`](crate::GpuConfig) field is out of range.
    InvalidConfig(String),
    /// A [`FaultPlan`](crate::FaultPlan) field is out of range.
    InvalidFault(String),
    /// The memory substrate rejected the configuration.
    Mem(MemError),
}

impl fmt::Display for GpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuError::InvalidConfig(msg) => write!(f, "invalid GPU configuration: {msg}"),
            GpuError::InvalidFault(msg) => write!(f, "invalid fault plan: {msg}"),
            GpuError::Mem(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for GpuError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GpuError::Mem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemError> for GpuError {
    fn from(e: MemError) -> Self {
        GpuError::Mem(e)
    }
}
