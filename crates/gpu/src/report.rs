//! Frame-level simulation results.

use std::fmt;

use oovr_mem::{Cycle, Traffic, TrafficClass};

/// Ceiling on [`FrameReport::imbalance_ratio`]: extreme busy-time skews clamp
/// here instead of overflowing toward `inf`, which would poison CSV exports
/// (a non-finite value round-trips as text the figure validator rejects).
pub const IMBALANCE_SENTINEL: f64 = 1e6;

/// Work volume counters accumulated over a frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkCounts {
    /// Vertices fetched and shaded.
    pub vertices: u64,
    /// Triangles emitted toward rasterization (post-SMP).
    pub triangles: u64,
    /// Covered 2×2 quads rasterized.
    pub quads: u64,
    /// Covered fragments shaded.
    pub fragments: u64,
    /// Pixels surviving the depth test (color outputs).
    pub pixels_out: u64,
}

/// The result of simulating one frame under one scheme.
#[derive(Debug, Clone)]
pub struct FrameReport {
    /// Scheme label.
    pub scheme: String,
    /// Workload label.
    pub workload: String,
    /// Total cycles from frame start to the last composition output.
    pub frame_cycles: Cycle,
    /// Cycles spent composing (included in `frame_cycles`).
    pub composition_cycles: Cycle,
    /// Busy cycles per GPM.
    pub gpm_busy: Vec<Cycle>,
    /// Full traffic ledger of the frame.
    pub traffic: Traffic,
    /// Work volumes.
    pub counts: WorkCounts,
    /// Aggregate L1 hit rate across GPMs.
    pub l1_hit_rate: f64,
    /// Aggregate L2 hit rate across GPMs.
    pub l2_hit_rate: f64,
    /// DRAM-resident bytes per GPM at end of frame (capacity accounting;
    /// AFR's replicated footprint shows up here).
    pub resident_bytes: Vec<u64>,
}

impl FrameReport {
    /// Total inter-GPM link bytes (the paper's traffic metric).
    pub fn inter_gpm_bytes(&self) -> u64 {
        self.traffic.inter_gpm_bytes()
    }

    /// Inter-GPM bytes excluding one-time PA warm-up copies (steady-state
    /// per-frame traffic; see [`oovr_mem::Traffic::steady_inter_gpm_bytes`]).
    pub fn steady_inter_gpm_bytes(&self) -> u64 {
        self.traffic.steady_inter_gpm_bytes()
    }

    /// Frames per second at the 1 GHz clock.
    pub fn fps(&self) -> f64 {
        1e9 / self.frame_cycles.max(1) as f64
    }

    /// Speedup of this frame over `other` (by frame cycles: >1 means this
    /// report is faster).
    pub fn speedup_over(&self, other: &FrameReport) -> f64 {
        other.frame_cycles as f64 / self.frame_cycles.max(1) as f64
    }

    /// Best-to-worst busy-time ratio across GPMs that did any work
    /// (Fig. 10's load-balance metric; 1.0 is perfectly balanced). Clamped
    /// to [`IMBALANCE_SENTINEL`] so the ratio is always finite — `u64` busy
    /// counts near the top of the range lose precision as `f64` and a
    /// pathological skew could otherwise emit `inf` into CSVs.
    pub fn imbalance_ratio(&self) -> f64 {
        let busy: Vec<u64> = self.gpm_busy.iter().copied().filter(|&b| b > 0).collect();
        if busy.is_empty() {
            return 1.0;
        }
        let max = *busy.iter().max().expect("nonempty") as f64;
        let min = *busy.iter().min().expect("nonempty") as f64;
        let ratio = max / min;
        if ratio.is_finite() {
            ratio.min(IMBALANCE_SENTINEL)
        } else {
            IMBALANCE_SENTINEL
        }
    }

    /// Mean GPM utilization: busy cycles over frame cycles.
    pub fn mean_utilization(&self) -> f64 {
        if self.frame_cycles == 0 || self.gpm_busy.is_empty() {
            return 0.0;
        }
        let sum: u64 = self.gpm_busy.iter().sum();
        sum as f64 / (self.frame_cycles as f64 * self.gpm_busy.len() as f64)
    }
}

impl fmt::Display for FrameReport {
    /// Multi-line human-readable summary (used by examples and debugging).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} on {}: {} cycles ({:.2} ms @1GHz), composition {} cycles",
            self.scheme,
            self.workload,
            self.frame_cycles,
            self.frame_cycles as f64 / 1e6,
            self.composition_cycles
        )?;
        writeln!(
            f,
            "  work: {} verts, {} tris, {} quads, {} frags, {} px out",
            self.counts.vertices,
            self.counts.triangles,
            self.counts.quads,
            self.counts.fragments,
            self.counts.pixels_out
        )?;
        writeln!(
            f,
            "  memory: {} B local, {} B inter-GPM ({} B steady), L1 {:.0}%, L2 {:.0}%",
            self.traffic.local_bytes(),
            self.inter_gpm_bytes(),
            self.steady_inter_gpm_bytes(),
            self.l1_hit_rate * 100.0,
            self.l2_hit_rate * 100.0
        )?;
        write!(f, "  remote by class:")?;
        for c in TrafficClass::ALL {
            let b = self.traffic.remote_of(c);
            if b > 0 {
                write!(f, " {c}={b}")?;
            }
        }
        writeln!(f)?;
        write!(f, "  busy: {:?} (imbalance {:.2})", self.gpm_busy, self.imbalance_ratio())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(frame_cycles: Cycle, busy: Vec<Cycle>) -> FrameReport {
        FrameReport {
            scheme: "test".into(),
            workload: "w".into(),
            frame_cycles,
            composition_cycles: 0,
            gpm_busy: busy,
            traffic: Traffic::new(4),
            counts: WorkCounts::default(),
            l1_hit_rate: 0.0,
            l2_hit_rate: 0.0,
            resident_bytes: vec![0; 4],
        }
    }

    #[test]
    fn speedup_and_fps() {
        let fast = report(1_000_000, vec![1; 4]);
        let slow = report(2_000_000, vec![1; 4]);
        assert_eq!(fast.speedup_over(&slow), 2.0);
        assert!((fast.fps() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn imbalance_ignores_idle_gpms() {
        let r = report(100, vec![100, 50, 0, 0]);
        assert_eq!(r.imbalance_ratio(), 2.0);
        let balanced = report(100, vec![70, 70, 70, 70]);
        assert_eq!(balanced.imbalance_ratio(), 1.0);
    }

    #[test]
    fn imbalance_is_clamped_to_finite_sentinel() {
        // A pathological skew (one GPM at u64::MAX busy cycles, one at 1)
        // would emit inf/1.8e19 into CSVs without the clamp.
        let r = report(100, vec![u64::MAX, 1]);
        let ratio = r.imbalance_ratio();
        assert!(ratio.is_finite());
        assert_eq!(ratio, IMBALANCE_SENTINEL);
    }

    #[test]
    fn imbalance_survives_csv_round_trip() {
        // Figure tables serialize values with `{:.4}`; the ratio must come
        // back from that text finite and unchanged.
        for r in [
            report(100, vec![u64::MAX, 1]),
            report(100, vec![100, 50, 0, 0]),
            report(100, vec![70, 70, 70, 70]),
        ] {
            let ratio = r.imbalance_ratio();
            let csv_cell = format!("{ratio:.4}");
            let parsed: f64 = csv_cell.parse().expect("CSV cell must parse back");
            assert!(parsed.is_finite(), "non-finite CSV cell {csv_cell}");
            assert!((parsed - ratio).abs() <= 1e-4, "round-trip drift: {parsed} vs {ratio}");
        }
    }

    #[test]
    fn utilization() {
        let r = report(100, vec![100, 100, 0, 0]);
        assert!((r.mean_utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn display_is_nonempty_and_mentions_scheme() {
        let r = report(1000, vec![10, 20, 30, 40]);
        let text = r.to_string();
        assert!(text.contains("test"));
        assert!(text.contains("imbalance"));
    }

    #[test]
    fn steady_bytes_never_exceed_total() {
        let r = report(1, vec![1]);
        assert!(r.steady_inter_gpm_bytes() <= r.inter_gpm_bytes());
    }
}
