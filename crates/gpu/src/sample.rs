//! GPU-side metrics sampling.
//!
//! Bridges a finished frame and the memory system into the
//! `oovr-metrics` registry, mirroring what [`crate::trace`]'s `ExecTracer`
//! does for the flight recorder: observers that read executor and memory
//! state through shared references and can never perturb the simulation.
//! Per-quantum activity reaches the registry via
//! `oovr_metrics::ingest_trace` on a drained recorder; the functions here
//! cover the frame-level report and the cache/traffic totals the trace
//! stream only carries as deltas.

use oovr_mem::{Cycle, MemorySystem};
use oovr_metrics::Registry;

use crate::report::FrameReport;

/// Fold one finished frame's report into the registry at cycle `now`.
pub fn record_report(reg: &mut Registry, now: Cycle, report: &FrameReport) {
    reg.inc("gpu_frames", "", now, 1);
    reg.inc("gpu_frame_cycles", "", now, report.frame_cycles);
    reg.inc("gpu_composition_cycles", "", now, report.composition_cycles);
    reg.inc("gpu_inter_gpm_bytes", "", now, report.inter_gpm_bytes());
    reg.inc("gpu_local_bytes", "", now, report.traffic.local_bytes());
    reg.inc("gpu_triangles", "", now, report.counts.triangles);
    reg.inc("gpu_pixels_out", "", now, report.counts.pixels_out);
    for &busy in &report.gpm_busy {
        reg.observe("gpu_gpm_busy_cycles", "", now, busy);
    }
    reg.set_gauge("gpu_l1_hit_rate", "", report.l1_hit_rate);
    reg.set_gauge("gpu_l2_hit_rate", "", report.l2_hit_rate);
    reg.set_gauge("gpu_imbalance_ratio", "", report.imbalance_ratio());
}

/// Snapshot the memory system's aggregate cache counters into gauges.
pub fn sample_memory(reg: &mut Registry, mem: &MemorySystem) {
    let (l1, l2) = mem.cache_totals();
    reg.set_gauge("mem_l1_hit_rate", "", l1.hit_rate());
    reg.set_gauge("mem_l2_hit_rate", "", l2.hit_rate());
    reg.set_gauge("mem_l1_accesses", "", l1.accesses as f64);
    reg.set_gauge("mem_l2_accesses", "", l2.accesses as f64);
    reg.set_gauge("mem_writebacks", "", (l1.writebacks + l2.writebacks) as f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use oovr_mem::Traffic;

    use crate::report::WorkCounts;

    #[test]
    fn report_folds_into_counters_and_gauges() {
        let report = FrameReport {
            scheme: "test".into(),
            workload: "demo".into(),
            frame_cycles: 1_000,
            composition_cycles: 100,
            gpm_busy: vec![400, 600],
            traffic: Traffic::new(2),
            counts: WorkCounts { triangles: 12, ..WorkCounts::default() },
            l1_hit_rate: 0.9,
            l2_hit_rate: 0.5,
            resident_bytes: vec![0, 0],
        };
        let mut reg = Registry::new(1_000);
        record_report(&mut reg, 0, &report);
        assert_eq!(reg.counter("gpu_frames", ""), 1);
        assert_eq!(reg.counter("gpu_frame_cycles", ""), 1_000);
        assert_eq!(reg.counter("gpu_triangles", ""), 12);
        assert_eq!(reg.gauge("gpu_l1_hit_rate", ""), Some(0.9));
        assert_eq!(reg.hist("gpu_gpm_busy_cycles", "").unwrap().count(), 2);
    }
}
