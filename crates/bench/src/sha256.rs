//! Re-export of the shared SHA-256 implementation.
//!
//! The hasher originally lived here for the golden-digest check; it moved to
//! the `oovr-hash` crate when the render cache in `oovr` started
//! fingerprinting configs with it. This module keeps the old
//! `oovr_bench::sha256::*` paths working.

pub use oovr_hash::{hex_digest, to_hex, Sha256};
