//! Benchmark harness for the OO-VR reproduction; see the `figures` binary and `benches/`.
