//! Benchmark harness for the OO-VR reproduction; see the `figures` binary and `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sha256;
